"""Quickstart: prove the paper's own example statement.

Figure 1 of the UniZK paper walks through proving knowledge of
``(x0, x1, x2, x3)`` with ``(x0 + x1) * (x2 * x3) = 99``.  This script
builds exactly that circuit, generates a Plonk proof with the FRI
commitment scheme, verifies it, and shows what happens with a cheating
witness.

Run:  python examples/quickstart.py
"""

import time

from repro.fri import FriConfig
from repro.plonk import CircuitBuilder, PlonkError, prove, setup, verify


def main() -> None:
    # 1. Arithmetization: the circuit of Figure 1.
    builder = CircuitBuilder()
    x0, x1, x2, x3 = (builder.add_variable() for _ in range(4))
    total = builder.add(x0, x1)  # x4 = x0 + x1
    product = builder.mul(x2, x3)  # x5 = x2 * x3
    out = builder.mul(total, product)  # x6 = x4 * x5
    builder.assert_constant(out, 99)  # x6 == 99
    circuit = builder.build()
    print(f"circuit: {circuit.n} rows, {circuit.num_vars} variables")

    # 2. Setup: commit the selector and sigma polynomials.
    config = FriConfig(
        rate_bits=3,  # blowup 8, as Plonky2
        cap_height=1,
        num_queries=12,
        proof_of_work_bits=8,
        final_poly_len=4,
    )
    data = setup(circuit, config)

    # 3. Prove: the prover knows (2, 9, 3, 3) -> (2+9) * (3*3) = 99.
    witness = {x0.index: 2, x1.index: 9, x2.index: 3, x3.index: 3}
    t0 = time.time()
    proof = prove(data, witness)
    print(f"proved in {time.time() - t0:.2f}s, proof size {proof.size_bytes()} bytes")

    # 4. Verify.
    t0 = time.time()
    verify(data.verifier_data, proof)
    print(f"verified in {time.time() - t0:.2f}s")

    # 5. A cheating witness fails: (2+9) * (3*4) = 132 != 99.
    cheat = {x0.index: 2, x1.index: 9, x2.index: 3, x3.index: 4}
    try:
        verify(data.verifier_data, prove(data, cheat))
        raise SystemExit("BUG: cheating witness accepted")
    except PlonkError as exc:
        print(f"cheating witness rejected: {exc}")


if __name__ == "__main__":
    main()
