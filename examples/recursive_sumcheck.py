"""Recursion scenario: verify one proof inside another (Section 7.4).

The paper's Starky+Plonky2 scheme compresses proofs by expressing a
verifier as a circuit.  This script demonstrates the substrate with a
complete small-scale instance:

1. run the sum-check protocol natively (prover + Fiat-Shamir);
2. build a Plonk circuit that *re-verifies that proof in-circuit* --
   re-deriving every challenge through an in-circuit Poseidon duplex
   transcript and evaluating the multilinear extension at the challenge
   point;
3. generate an outer Plonk proof of the verifier circuit, so the final
   artifact attests "I verified a sum-check proof" -- genuine
   recursion, end to end.

It also proves a Poseidon hash *chain* with the Starky AIR (the
VDF-style statement production systems aggregate this way).

Run:  python examples/recursive_sumcheck.py
"""

import time

import numpy as np

from repro.field import gl64
from repro.fri import FriConfig
from repro.hashing import Challenger
from repro.plonk import check_copy_constraints, prove, setup, verify
from repro.plonk.recursion import (
    build_sumcheck_verifier_circuit,
    sumcheck_proof_inputs,
)
from repro.stark import PoseidonAir
from repro.stark import prove as stark_prove, verify as stark_verify
from repro.stark.poseidon_air import generate_trace, public_values
from repro.sumcheck import prove as sc_prove, verify as sc_verify


def recursive_sumcheck() -> None:
    print("== inner proof: sum-check over a public table ==")
    rng = np.random.default_rng(42)
    num_vars = 3
    table = gl64.random(1 << num_vars, rng)
    inner = sc_prove(table, Challenger())
    sc_verify(inner, num_vars, Challenger())
    print(f"native sum-check verified: claim {inner.claimed_sum}")

    print("\n== verifier-as-circuit ==")
    t0 = time.time()
    circuit, handles = build_sumcheck_verifier_circuit(num_vars)
    print(f"verifier circuit: {circuit.n} rows "
          f"(full-round in-circuit Poseidon transcript), "
          f"built in {time.time() - t0:.1f}s")
    inputs = sumcheck_proof_inputs(handles, inner, table)
    witness = circuit.generate_witness(inputs)
    ok = circuit.check_gates(witness, []) and check_copy_constraints(circuit, witness)
    print(f"inner proof satisfies the verifier circuit: {ok}")

    print("\n== outer proof of the verifier circuit ==")
    cfg = FriConfig(rate_bits=3, cap_height=2, num_queries=8,
                    proof_of_work_bits=8, final_poly_len=8)
    data = setup(circuit, cfg)
    t0 = time.time()
    outer = prove(data, inputs)
    print(f"outer Plonk proof in {time.time() - t0:.1f}s, "
          f"{outer.size_bytes() / 1024:.0f} kB")
    verify(data.verifier_data, outer)
    print("outer proof verified: the chain attests to a verified sum-check")


def poseidon_chain() -> None:
    print("\n== bonus: Poseidon hash chain as a Starky AET ==")
    rng = np.random.default_rng(43)
    state = [int(x) for x in gl64.random(12, rng)]
    air = PoseidonAir(num_perms=4)
    trace = generate_trace(state, 4)
    publics = public_values(state, 4)
    cfg = FriConfig(rate_bits=3, cap_height=2, num_queries=12,
                    proof_of_work_bits=8, final_poly_len=8)
    t0 = time.time()
    proof = stark_prove(air, trace, publics, cfg)
    stark_verify(air, proof, cfg)
    print(f"proved 4 chained permutations ({trace.shape[0]} rows x "
          f"{trace.shape[1]} cols) in {time.time() - t0:.1f}s, "
          f"{proof.size_bytes() / 1024:.0f} kB; verified")


if __name__ == "__main__":
    recursive_sumcheck()
    poseidon_chain()
