"""Generality scenario: sum-check on UniZK (paper Section 8.1).

Newer protocols (Spartan, Binius, Basefold) are built on the sum-check
protocol; the paper argues UniZK's unified architecture handles it with
existing mechanisms -- the per-round vector update runs in vector mode
and the half-sums ride the systolic accumulation links (Algorithm 2).

This script runs the actual protocol (prover + Fiat-Shamir verifier),
emulates one round on the VSA model, and estimates a paper-scale
sum-check pass on the accelerator.

Run:  python examples/sumcheck_generality.py
"""

import numpy as np

from repro.field import gl64
from repro.hashing import Challenger
from repro.hw import DEFAULT_CONFIG
from repro.mapping import emulate_sumcheck_round, sumcheck_cost
from repro.sumcheck import multilinear_eval, prove, verify


def protocol_demo() -> None:
    print("== sum-check protocol (Algorithm 2) ==")
    rng = np.random.default_rng(11)
    table = gl64.random(1 << 10, rng)
    proof = prove(table, Challenger())
    print(f"claimed sum over the 10-cube: {proof.claimed_sum}")
    point = verify(proof, 10, Challenger())
    assert multilinear_eval(table, point) == proof.final_value
    print(f"verified: {len(proof.round_values)} rounds, final value matches "
          f"the multilinear extension at the challenge point")


def vsa_demo() -> None:
    print("\n== one round on the VSA (vector mode + link accumulation) ==")
    rng = np.random.default_rng(12)
    table = gl64.random(256, rng)
    y0, y1, folded = emulate_sumcheck_round(table, 123456789)
    print(f"half sums via systolic links: y0={y0}, y1={y1}")
    print(f"folded table length: {len(folded)} (vector-mode update)")


def paper_scale() -> None:
    print("\n== paper-scale estimate: full sum-check pass on 2^24 entries ==")
    cost = sumcheck_cost(24, DEFAULT_CONFIG)
    elapsed = cost.elapsed_cycles(DEFAULT_CONFIG)
    print(f"elapsed: {DEFAULT_CONFIG.cycles_to_seconds(elapsed) * 1e3:.2f} ms "
          f"({'memory' if cost.is_memory_bound(DEFAULT_CONFIG) else 'compute'}-bound)")
    print(f"DRAM traffic: {cost.mem_bytes / (1 << 20):.0f} MB "
          f"(rounds below the scratchpad threshold stay on-chip)")


if __name__ == "__main__":
    protocol_demo()
    vsa_demo()
    paper_scale()
