"""ZKML scenario: prove a matrix-vector multiplication (paper app 6).

The paper's MVM workload (proto-neural-zkp) proves a neural-network
layer: ``y = M x`` for a private matrix and input.  This script:

1. proves a scaled-down MVM functionally (real proof, real verification);
2. estimates the paper-scale workload (3000x3000, circuit width 400) on
   the CPU baseline and on the UniZK accelerator model, reproducing the
   MVM row of Table 3.

Run:  python examples/zkml_mvm.py
"""

import time

from repro.baselines import CpuModel, GpuModel
from repro.compiler import trace_plonky2
from repro.fri import FriConfig
from repro.plonk import prove, setup, verify
from repro.sim import simulate_plonky2
from repro.workloads import by_name


def functional_proof() -> None:
    spec = by_name("MVM")
    print(f"== functional proof: {spec.name} (scaled down) ==")
    circuit, inputs, publics = spec.build_circuit(6)  # 6x6 matrix
    print(f"circuit rows: {circuit.n}; public outputs: {len(publics)}")
    config = FriConfig(rate_bits=3, cap_height=1, num_queries=12,
                       proof_of_work_bits=8, final_poly_len=4)
    data = setup(circuit, config)
    t0 = time.time()
    proof = prove(data, inputs)
    verify(data.verifier_data, proof)
    print(f"proved + verified y = Mx in {time.time() - t0:.2f}s "
          f"(proof {proof.size_bytes()} bytes)")


def paper_scale_estimate() -> None:
    spec = by_name("MVM")
    print("\n== paper-scale performance (Table 3, MVM row) ==")
    graph = trace_plonky2(spec.plonk)
    cpu = CpuModel().run(graph).total_seconds
    gpu = GpuModel().run(graph).total_seconds
    uni = simulate_plonky2(spec.plonk)
    print(f"CPU (80 threads): {cpu:7.2f} s   (paper: 39.67 s)")
    print(f"GPU (A100):       {gpu:7.2f} s   (paper: 33.38 s)")
    print(f"UniZK:            {uni.total_seconds:7.3f} s   (paper: 0.320 s)")
    print(f"UniZK speedup:    {cpu / uni.total_seconds:5.0f}x  (paper: 124x)")
    print("\nUniZK kernel breakdown (Figure 8, MVM bar):")
    for kind, frac in uni.fraction_by_kind().items():
        print(f"  {kind:5s} {frac * 100:5.1f}%")


if __name__ == "__main__":
    functional_proof()
    paper_scale_estimate()
