"""Starky scenario: AET proof + recursive aggregation cost (Table 5).

Reproduces the paper's Figure 2 workflow: a Fibonacci Algebraic
Execution Trace is proven with the cheap blowup-2 Starky configuration,
then the cost of compressing it with a recursive Plonky2 proof is
estimated -- the combination the paper evaluates in Section 7.4.

Run:  python examples/starky_fibonacci.py
"""

import time

from repro.baselines import CpuModel
from repro.compiler import trace_recursive_plonky2, trace_starky
from repro.experiments.proof_size import plonk_proof_size, stark_proof_size
from repro.compiler.frontend import RECURSION_PARAMS
from repro.fri import FriConfig
from repro.sim import simulate_graph, simulate_starky
from repro.stark import prove, verify
from repro.workloads import by_name


def functional_proof() -> None:
    spec = by_name("Fibonacci")
    print("== functional Starky proof (Figure 2 AET) ==")
    air, trace, publics = spec.build_air(10)  # 1024 steps
    assert air.check_trace(trace, publics)
    config = FriConfig(rate_bits=1, cap_height=2, num_queries=24,
                       proof_of_work_bits=8, final_poly_len=8)
    t0 = time.time()
    proof = prove(air, trace, publics, config)
    print(f"proved 2^10 Fibonacci steps in {time.time() - t0:.2f}s; "
          f"proof {proof.size_bytes() / 1024:.0f} kB "
          f"(blowup 2 -> big proofs, cheap proving)")
    verify(air, proof, config)
    print(f"verified; claimed F_{publics[0] + 1} = {publics[1]}")


def table5_estimate() -> None:
    spec = by_name("Fibonacci")
    print("\n== paper-scale Starky + Plonky2 (Table 5, Fibonacci rows) ==")
    cpu = CpuModel()
    base_cpu = cpu.run(trace_starky(spec.stark)).total_seconds
    base_uni = simulate_starky(spec.stark).total_seconds
    rec_graph = trace_recursive_plonky2()
    rec_cpu = cpu.run(rec_graph).total_seconds
    rec_uni = simulate_graph(rec_graph).total_seconds
    print(f"Base:      CPU {base_cpu:4.1f} s, UniZK {base_uni * 1e3:5.1f} ms, "
          f"speedup {base_cpu / base_uni:3.0f}x, "
          f"proof {stark_proof_size(spec.stark) / 1024:3.0f} kB "
          f"(paper: 2.3 s / 26 ms / 88x / 259 kB)")
    print(f"Recursive: CPU {rec_cpu:4.1f} s, UniZK {rec_uni * 1e3:5.1f} ms, "
          f"speedup {rec_cpu / rec_uni:3.0f}x, "
          f"proof {plonk_proof_size(RECURSION_PARAMS) / 1024:3.0f} kB "
          f"(paper: 1.9 s / 12 ms / 158x / 155 kB)")


if __name__ == "__main__":
    functional_proof()
    table5_estimate()
