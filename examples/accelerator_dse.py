"""Architect's scenario: explore UniZK's hardware design space.

Sweeps the three resources of the paper's Figure 10 (scratchpad size,
VSA count, memory bandwidth) on the MVM workload, prints normalised
per-kernel performance, and reports the area/power cost of each point
(Table 2's model) -- i.e. the performance-per-mm2 view an architect
actually wants.

Run:  python examples/accelerator_dse.py
"""

from repro.hw import DEFAULT_CONFIG, chip_budget
from repro.sim import simulate_plonky2
from repro.workloads import by_name


def sweep() -> None:
    params = by_name("MVM").plonk
    base = simulate_plonky2(params, DEFAULT_CONFIG)
    base_t = base.total_seconds
    base_area = chip_budget(DEFAULT_CONFIG).total_area_mm2
    print(f"default config: {base_t * 1e3:.1f} ms, {base_area:.1f} mm2, "
          f"{chip_budget(DEFAULT_CONFIG).total_power_w:.1f} W")
    print(f"{'config':28s} {'time(ms)':>9s} {'speedup':>8s} {'area(mm2)':>10s} "
          f"{'power(W)':>9s} {'perf/area':>9s}")

    points = []
    for vsas in (16, 32, 64, 128):
        points.append((f"{vsas} VSAs", DEFAULT_CONFIG.scaled(num_vsas=vsas)))
    for spad in (2.0, 8.0, 32.0):
        points.append((f"{spad:g} MB scratchpad", DEFAULT_CONFIG.scaled(scratchpad_mb=spad)))
    for bw in (500.0, 1000.0, 2000.0, 4000.0):
        points.append((f"{bw / 1000:g} TB/s HBM", DEFAULT_CONFIG.scaled(mem_bandwidth_gbps=bw)))

    for name, hw in points:
        rep = simulate_plonky2(params, hw)
        budget = chip_budget(hw)
        speedup = base_t / rep.total_seconds
        perf_per_area = speedup / (budget.total_area_mm2 / base_area)
        print(f"{name:28s} {rep.total_seconds * 1e3:9.1f} {speedup:7.2f}x "
              f"{budget.total_area_mm2:10.1f} {budget.total_power_w:9.1f} "
              f"{perf_per_area:9.2f}")

    print("\nTakeaways (matching the paper's Figure 10):")
    print(" - Merkle hashing scales with VSA count; NTT/poly do not.")
    print(" - NTT and poly kernels track memory bandwidth almost linearly.")
    print(" - Shrinking the scratchpad below ~4 MB breaks NTT pass fusion")
    print("   and poly operand tiling; growing it mainly helps poly reuse.")


if __name__ == "__main__":
    sweep()
