"""Benchmark: regenerate paper Figure 10 (design space exploration)."""

from repro.experiments.figures import fig10, format_fig10


def test_fig10(benchmark):
    sweeps = benchmark(fig10)
    print()
    print(format_fig10(sweeps))
    vs = {r["scale"]: r for r in sweeps["vsas"]}
    bw = {r["scale"]: r for r in sweeps["bandwidth"]}
    assert vs[4.0]["hash"] > 3.5  # Merkle tracks VSA count
    assert bw[0.25]["ntt"] < 0.3  # NTT tracks bandwidth
