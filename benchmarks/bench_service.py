"""Proving-service throughput/latency benchmark (BENCH_service.json).

Measures jobs/sec and p50/p99 latency on the Fibonacci STARK workload:

* worker counts {1, 2, 4} with batching and caching disabled -- the
  raw multiprocess scaling curve.  This scales with the host's
  *effective* core count (``effective_cpus``, the scheduler affinity
  mask -- ``cpu_count`` overstates it inside containers): on a
  single-core container it is flat by construction, on a 4-core host
  it approaches 4x.  Runs whose total process count exceeds the
  effective CPUs are annotated ``oversubscribed``.
* at 4 workers, the same job mix with batching and/or caching enabled
  -- the service-level amortisations (duplicate coalescing, the
  content-addressed result cache) that speed things up regardless of
  core count.
* a stage-sharding sweep: 1 service worker whose proofs fan out
  across {1, 2} shard workers (``repro.parallel``) -- intra-proof
  parallelism, the latency lever batching cannot touch.

The headline ``speedup_4workers_vs_1`` compares the full service
(4 workers, batching + caching) against the 1-worker no-amortisation
baseline serving identical traffic.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro import parallel
from repro.service import ProvingService

#: CPUs this process may actually run on (affinity mask, not the
#: machine-wide count) -- the honest parallelism bound for every row.
EFFECTIVE_CPUS = parallel.effective_cpus()

#: 24 jobs cycling three proof sizes: each scale appears 8x.  Real
#: proving traffic is duplicate-heavy (same circuit, many requests);
#: the plain runs prove every job independently while the batching /
#: caching runs get to exploit the duplication.
SCALES = [6, 7, 8] * 8
OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_once(
    workers: int, *, batching: bool, caching: bool, shard_workers: int = 1
) -> dict:
    """One benchmark run; returns its stats row."""
    service = ProvingService(
        workers=workers,
        enable_batching=batching,
        enable_cache=caching,
        batch_window_s=0.05 if batching else 0.0,
        jitter_seed=0,
        shard_workers=shard_workers,
        shard_config=(
            {"min_rows": 1, "min_tree_leaves": 2, "min_queries": 1}
            if shard_workers > 1
            else None
        ),
    )
    ids = []
    with service:
        t0 = time.monotonic()
        for scale in SCALES:
            ids.append(
                service.submit(workload="Fibonacci", kind="stark", scale=scale)
            )
        for job_id in ids:
            service.result(job_id, timeout_s=600)
        wall_s = time.monotonic() - t0
        latencies = []
        cache_hits = 0
        for job_id in ids:
            stats = service.job(job_id)
            latencies.append(
                (stats["queue_wait_s"] or 0.0) + (stats["run_time_s"] or 0.0)
            )
            cache_hits += bool(stats["cache_hit"])
        totals = service.stats()
    return {
        "workers": workers,
        "shard_workers": shard_workers,
        "batching": batching,
        "caching": caching,
        # More processes than schedulable CPUs: the row measures
        # context-switch overhead, not parallel speedup.
        "oversubscribed": workers * shard_workers > EFFECTIVE_CPUS,
        "jobs": len(ids),
        "wall_s": round(wall_s, 4),
        "jobs_per_s": round(len(ids) / wall_s, 3),
        "p50_latency_s": round(_percentile(latencies, 0.50), 4),
        "p99_latency_s": round(_percentile(latencies, 0.99), 4),
        "cache_hits": cache_hits,
        "batches_dispatched": totals["batches_dispatched"],
        "worker_restarts": totals["worker_restarts"],
    }


def main() -> dict:
    """Run every configuration and write ``BENCH_service.json``."""
    runs = []
    for workers in (1, 2, 4):
        row = run_once(workers, batching=False, caching=False)
        print(
            f"workers={workers} plain: {row['jobs_per_s']:.2f} jobs/s  "
            f"p50 {row['p50_latency_s']:.2f}s  p99 {row['p99_latency_s']:.2f}s"
        )
        runs.append(row)
    for workers, batching, caching in (
        (4, True, False), (4, False, True), (4, True, True), (1, True, True),
    ):
        row = run_once(workers, batching=batching, caching=caching)
        print(
            f"workers={workers} batching={batching} caching={caching}: "
            f"{row['jobs_per_s']:.2f} jobs/s  p50 {row['p50_latency_s']:.2f}s  "
            f"cache_hits {row['cache_hits']}  batches {row['batches_dispatched']}"
        )
        runs.append(row)
    # Intra-proof sharding sweep: one service worker, proofs fanned out
    # across shard workers.  Compare against the workers=1 plain row --
    # same job-level serialisation, stage-level parallelism added.
    for shard_workers in (2,):
        row = run_once(
            1, batching=False, caching=False, shard_workers=shard_workers
        )
        print(
            f"workers=1 shard_workers={shard_workers}: "
            f"{row['jobs_per_s']:.2f} jobs/s  p50 {row['p50_latency_s']:.2f}s"
            + ("  [oversubscribed]" if row["oversubscribed"] else "")
        )
        runs.append(row)

    def pick(workers, batching, caching, shard_workers=1):
        return next(
            r for r in runs
            if (r["workers"], r["batching"], r["caching"], r["shard_workers"])
            == (workers, batching, caching, shard_workers)
        )

    baseline = pick(1, False, False)
    speedup_service = pick(4, True, True)["jobs_per_s"] / baseline["jobs_per_s"]
    speedup_plain = pick(4, False, False)["jobs_per_s"] / baseline["jobs_per_s"]
    speedup_sharded = (
        pick(1, False, False, shard_workers=2)["jobs_per_s"]
        / baseline["jobs_per_s"]
    )
    report = {
        "workload": "Fibonacci",
        "kind": "stark",
        # The job mix, recorded once: each scale appears repeats_per_scale
        # times (the submission order cycles through the scales).
        "scales": sorted(set(SCALES)),
        "repeats_per_scale": len(SCALES) // len(set(SCALES)),
        "jobs_submitted": len(SCALES),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "effective_cpus": EFFECTIVE_CPUS,
        "runs": runs,
        # Full service (4 workers + batching + caching) vs the 1-worker
        # no-amortisation baseline on identical traffic.
        "speedup_4workers_vs_1": round(speedup_service, 3),
        # Raw process scaling only; bounded by effective_cpus.
        "speedup_plain_4workers_vs_1": round(speedup_plain, 3),
        # Intra-proof stage sharding (1 worker x 2 shard workers) vs the
        # same worker proving serially; bounded by effective_cpus too.
        "speedup_sharded_2x_vs_serial": round(speedup_sharded, 3),
    }
    OUT.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"speedup 4 workers (full service) vs 1-worker baseline: "
        f"{speedup_service:.2f}x  (plain process scaling {speedup_plain:.2f}x, "
        f"stage sharding {speedup_sharded:.2f}x on {EFFECTIVE_CPUS} "
        f"effective of {os.cpu_count()} cores)  ->  {OUT}"
    )
    return report


if __name__ == "__main__":
    main()
