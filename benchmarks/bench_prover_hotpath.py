"""Prover hot-path benchmark (BENCH_prover.json).

Measures the zero-copy data plane against the allocating implementation
it replaced, at two levels:

* **kernels** -- the paper's three dominant primitives (Section 5):
  Goldilocks mul/add, the batched NTT, the fused Poseidon permutation
  and a Merkle level sweep;
* **end-to-end** -- full STARK proofs of the Fibonacci and MVM AETs at
  scales 6-10 (``FriConfig(rate_bits=1, cap_height=1, num_queries=10,
  proof_of_work_bits=3, final_poly_len=4)``), with the per-shape
  :class:`repro.stark.ProverPlan` warm, the way the proving service
  runs them.

Every end-to-end row also checks that the proof digest and the
operation counters are *unchanged* from the pre-data-plane baseline:
the optimisation is only allowed to change how the work is executed,
never what is proved.

Baselines below were recorded at commit f1e91fc (the PR-1 tree) on the
same container this benchmark runs in.

Usage: PYTHONPATH=src python benchmarks/bench_prover_hotpath.py
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

import numpy as np

from repro import metrics
from repro.field import gl64, goldilocks as gl
from repro.fri.config import FriConfig
from repro.hashing import optimized
from repro.merkle import MerkleTree
from repro.ntt import ntt
from repro.serialize import stark_proof_digest
from repro.stark import plan_for, prove
from repro.workloads import fibonacci, mvm

OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_prover.json"

CONFIG = FriConfig(
    rate_bits=1, cap_height=1, num_queries=10, proof_of_work_bits=3, final_poly_len=4
)
SCALES = [6, 7, 8, 9, 10]
WORKLOADS = [("Fibonacci", fibonacci.SPEC), ("MVM", mvm.SPEC)]

#: Pre-PR kernel timings (seconds), commit f1e91fc.
BASELINE_KERNELS = {
    "gl_mul_64k_s": 0.003631,
    "gl_add_64k_s": 0.000951,
    "ntt_4x4096_s": 0.007516,
    "poseidon_permute_256_s": 0.036914,
    "merkle_512x4_s": 0.110970,
}

#: Pre-PR end-to-end prove times, digests and counters, commit f1e91fc.
BASELINE_PROVE = {
    "Fibonacci/6": {"prove_s": 0.2593, "digest": "111c298a5fab5dd1368bbf070f5c9379ad28c1e1f2a671244cdeeb7d12d2dd22", "counters": {"ntt_butterflies": 3096, "sponge_permutations": 364, "ntt_transforms": 10}},
    "Fibonacci/7": {"prove_s": 0.3624, "digest": "0a9858e29ac1cb76a188161e15e4a85d94fef9a16778a67bf888752b37d0a265", "counters": {"ntt_butterflies": 7064, "sponge_permutations": 746, "ntt_transforms": 10}},
    "Fibonacci/8": {"prove_s": 0.5187, "digest": "4f56af646ae33fc2b9520a64c08a58aee87a56b5e358241c2e08a67a6c7fb11e", "counters": {"ntt_butterflies": 15896, "sponge_permutations": 1512, "ntt_transforms": 10}},
    "Fibonacci/9": {"prove_s": 0.8416, "digest": "db93683921fc03165f2e4070e54d159c3f4eb6b86dbddd9139754015624543b2", "counters": {"ntt_butterflies": 35352, "sponge_permutations": 3046, "ntt_transforms": 10}},
    "Fibonacci/10": {"prove_s": 1.3212, "digest": "0a6eb61bd793fb53839afa236f56de7316c875152653f35338f512750aadb4dc", "counters": {"ntt_butterflies": 77848, "sponge_permutations": 6116, "ntt_transforms": 10}},
    "MVM/6": {"prove_s": 0.2324, "digest": "367b685b336e5cdffe3277dc0ec7a7e0dd9a71e75f17319147706082b5af0632", "counters": {"ntt_butterflies": 3736, "sponge_permutations": 364, "ntt_transforms": 12}},
    "MVM/7": {"prove_s": 0.3364, "digest": "97ca9d1928f8a5bc668e6a9031980fd2f7213b24fd9775d1a5466012676f629a", "counters": {"ntt_butterflies": 8536, "sponge_permutations": 746, "ntt_transforms": 12}},
    "MVM/8": {"prove_s": 0.5130, "digest": "b4ebc0c110d81e76dae475e10b0056b0ac7ba2b8c0f3dd936638fe9a45916292", "counters": {"ntt_butterflies": 19224, "sponge_permutations": 1512, "ntt_transforms": 12}},
    "MVM/9": {"prove_s": 0.8039, "digest": "a6a6f68429044b1dcfa320c104f8ec01af6cc20024274de6bf665e9fc1333774", "counters": {"ntt_butterflies": 42776, "sponge_permutations": 3046, "ntt_transforms": 12}},
    "MVM/10": {"prove_s": 1.4269, "digest": "16ce961be32980f7e5accaec9010fdc8b43375e2ffee44f9a91244ef0e1d989d", "counters": {"ntt_butterflies": 94232, "sponge_permutations": 6116, "ntt_transforms": 12}},
}


def _best_of(fn, repeats=5):
    fn()  # warm caches / workspaces
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_kernels() -> dict:
    rng = np.random.default_rng(42)
    a = rng.integers(0, gl.P, size=65536, dtype=np.uint64)
    b = rng.integers(0, gl.P, size=65536, dtype=np.uint64)
    rows = rng.integers(0, gl.P, size=(4, 4096), dtype=np.uint64)
    states = rng.integers(0, gl.P, size=(256, 12), dtype=np.uint64)
    leaves = rng.integers(0, gl.P, size=(512, 4), dtype=np.uint64)
    ws = gl64.Workspace()
    out = np.empty_like(a)
    buf = states.copy()

    def permute():
        np.copyto(buf, states)
        optimized.permute_into(buf, ws)

    results = {
        "gl_mul_64k_s": _best_of(lambda: gl64.mul_into(a, b, out, ws), 20),
        "gl_add_64k_s": _best_of(lambda: gl64.add_into(a, b, out, ws), 20),
        "ntt_4x4096_s": _best_of(lambda: ntt(rows, ws=ws), 10),
        "poseidon_permute_256_s": _best_of(permute, 10),
        "merkle_512x4_s": _best_of(lambda: MerkleTree(leaves, cap_height=1, ws=ws), 5),
    }
    out_rows = {}
    for name, now in results.items():
        base = BASELINE_KERNELS[name]
        out_rows[name] = {
            "baseline_s": round(base, 6),
            "now_s": round(now, 6),
            "speedup": round(base / now, 2),
        }
        print(f"{name:26s} {base*1e3:8.3f} ms -> {now*1e3:8.3f} ms  (x{base/now:.2f})")
    return out_rows


def bench_prove() -> dict:
    rows = {}
    for name, spec in WORKLOADS:
        for scale in SCALES:
            air, trace, publics = spec.build_air(scale)
            plan = plan_for(trace.shape[0], CONFIG.rate_bits)
            prove(air, trace, publics, CONFIG, plan=plan)  # warm
            best, digest, counters = float("inf"), None, None
            for _ in range(3):
                with metrics.counting() as c:
                    t0 = time.perf_counter()
                    proof = prove(air, trace, publics, CONFIG, plan=plan)
                    dt = time.perf_counter() - t0
                best = min(best, dt)
                digest = stark_proof_digest(proof)
                counters = c.as_dict()
            key = f"{name}/{scale}"
            base = BASELINE_PROVE[key]
            digest_ok = digest == base["digest"]
            counters_ok = all(counters.get(k) == v for k, v in base["counters"].items())
            rows[key] = {
                "baseline_s": base["prove_s"],
                "now_s": round(best, 4),
                "speedup": round(base["prove_s"] / best, 2),
                "digest": digest,
                "digest_unchanged": digest_ok,
                "counters": {k: counters.get(k) for k in base["counters"]},
                "counters_unchanged": counters_ok,
            }
            status = "ok" if digest_ok and counters_ok else "MISMATCH"
            print(
                f"{key:14s} {base['prove_s']:7.4f} s -> {best:7.4f} s  "
                f"(x{base['prove_s']/best:.2f})  [{status}]"
            )
    return rows


def main() -> dict:
    print("== kernels ==")
    kernels = bench_kernels()
    print("== end-to-end STARK prove ==")
    proofs = bench_prove()
    target = proofs["Fibonacci/8"]
    report = {
        "baseline_commit": "f1e91fc",
        "config": {
            "rate_bits": 1, "cap_height": 1, "num_queries": 10,
            "proof_of_work_bits": 3, "final_poly_len": 4,
        },
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels": kernels,
        "prove": proofs,
        "headline_speedup_fibonacci_scale8": target["speedup"],
        "all_digests_unchanged": all(r["digest_unchanged"] for r in proofs.values()),
        "all_counters_unchanged": all(r["counters_unchanged"] for r in proofs.values()),
    }
    OUT.write_text(json.dumps(report, indent=1) + "\n")
    print(f"\nheadline (Fibonacci scale 8): x{target['speedup']:.2f}")
    print(f"wrote {OUT}")
    return report


if __name__ == "__main__":
    report = main()
    assert report["all_digests_unchanged"], "proof digests drifted"
    assert report["all_counters_unchanged"], "operation counters drifted"
