"""Prover hot-path benchmark (BENCH_prover.json).

Measures the zero-copy data plane against the allocating implementation
it replaced, at three levels:

* **kernels** -- the paper's three dominant primitives (Section 5):
  Goldilocks mul/add, the batched NTT, the fused Poseidon permutation
  and a Merkle level sweep;
* **end-to-end STARK** -- full proofs of the Fibonacci and MVM AETs at
  scales 6-10 (``FriConfig(rate_bits=1, cap_height=1, num_queries=10,
  proof_of_work_bits=3, final_poly_len=4)``), with the per-shape
  :class:`repro.stark.ProverPlan` warm, the way the proving service
  runs them;
* **end-to-end Plonk** -- service-path Plonk jobs at scales 6-8 with the
  executor's default config.  The baseline is what a job cost before the
  unified pipeline: ``setup()`` + ``prove()`` per job with no plan and
  no workspace threading into FRI.  "Now" is the cached-setup / warm
  :class:`repro.plonk.PlonkPlan` prove, plus a per-stage span breakdown
  from :mod:`repro.tracing`;
* **stage sharding** -- serial vs 2-shard-worker proves of the largest
  STARK shapes, measured as *interleaved* A/B pairs so machine drift
  cancels, with the bit-identity contract asserted on every pair: the
  sharded proof must match the serial digest and operation counters
  exactly.  On a single effective CPU the row documents overhead, not
  speedup (``effective_cpus`` is recorded);
* **plan tuning** -- the software autotuner
  (:mod:`repro.autotune.plan_tuner`) searches the
  :class:`repro.tunables.PlanTuning` knobs against measured wall-clock
  and the winner is re-measured against the default, digests and
  counters pinned to the same goldens.

Every end-to-end row also checks that the proof digest and the
operation counters are *unchanged* from the pre-refactor baseline:
the optimisation is only allowed to change how the work is executed,
never what is proved.

STARK baselines were recorded at commit f1e91fc (the PR-1 tree), Plonk
baselines at commit 56d0287 (the PR-2 tree), both on the same container
this benchmark runs in.

Usage: PYTHONPATH=src python benchmarks/bench_prover_hotpath.py
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

import numpy as np

from repro import metrics, parallel, tracing
from repro.field import gl64, goldilocks as gl
from repro.fri.config import FriConfig
from repro.hashing import optimized
from repro.merkle import MerkleTree
from repro.ntt import ntt
from repro.plonk import plan_for as plonk_plan_for, prove as plonk_prove, setup
from repro.serialize import plonk_proof_digest, stark_proof_digest
from repro.stark import plan_for, prove
from repro.tunables import DEFAULT_TUNING
from repro.workloads import fibonacci, mvm

OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_prover.json"

CONFIG = FriConfig(
    rate_bits=1, cap_height=1, num_queries=10, proof_of_work_bits=3, final_poly_len=4
)
SCALES = [6, 7, 8, 9, 10]
WORKLOADS = [("Fibonacci", fibonacci.SPEC), ("MVM", mvm.SPEC)]

#: Pre-PR kernel timings (seconds), commit f1e91fc.
BASELINE_KERNELS = {
    "gl_mul_64k_s": 0.003631,
    "gl_add_64k_s": 0.000951,
    "ntt_4x4096_s": 0.007516,
    "poseidon_permute_256_s": 0.036914,
    "merkle_512x4_s": 0.110970,
}

#: Pre-PR end-to-end prove times, digests and counters, commit f1e91fc.
BASELINE_PROVE = {
    "Fibonacci/6": {"prove_s": 0.2593, "digest": "111c298a5fab5dd1368bbf070f5c9379ad28c1e1f2a671244cdeeb7d12d2dd22", "counters": {"ntt_butterflies": 3096, "sponge_permutations": 364, "ntt_transforms": 10}},
    "Fibonacci/7": {"prove_s": 0.3624, "digest": "0a9858e29ac1cb76a188161e15e4a85d94fef9a16778a67bf888752b37d0a265", "counters": {"ntt_butterflies": 7064, "sponge_permutations": 746, "ntt_transforms": 10}},
    "Fibonacci/8": {"prove_s": 0.5187, "digest": "4f56af646ae33fc2b9520a64c08a58aee87a56b5e358241c2e08a67a6c7fb11e", "counters": {"ntt_butterflies": 15896, "sponge_permutations": 1512, "ntt_transforms": 10}},
    "Fibonacci/9": {"prove_s": 0.8416, "digest": "db93683921fc03165f2e4070e54d159c3f4eb6b86dbddd9139754015624543b2", "counters": {"ntt_butterflies": 35352, "sponge_permutations": 3046, "ntt_transforms": 10}},
    "Fibonacci/10": {"prove_s": 1.3212, "digest": "0a6eb61bd793fb53839afa236f56de7316c875152653f35338f512750aadb4dc", "counters": {"ntt_butterflies": 77848, "sponge_permutations": 6116, "ntt_transforms": 10}},
    "MVM/6": {"prove_s": 0.2324, "digest": "367b685b336e5cdffe3277dc0ec7a7e0dd9a71e75f17319147706082b5af0632", "counters": {"ntt_butterflies": 3736, "sponge_permutations": 364, "ntt_transforms": 12}},
    "MVM/7": {"prove_s": 0.3364, "digest": "97ca9d1928f8a5bc668e6a9031980fd2f7213b24fd9775d1a5466012676f629a", "counters": {"ntt_butterflies": 8536, "sponge_permutations": 746, "ntt_transforms": 12}},
    "MVM/8": {"prove_s": 0.5130, "digest": "b4ebc0c110d81e76dae475e10b0056b0ac7ba2b8c0f3dd936638fe9a45916292", "counters": {"ntt_butterflies": 19224, "sponge_permutations": 1512, "ntt_transforms": 12}},
    "MVM/9": {"prove_s": 0.8039, "digest": "a6a6f68429044b1dcfa320c104f8ec01af6cc20024274de6bf665e9fc1333774", "counters": {"ntt_butterflies": 42776, "sponge_permutations": 3046, "ntt_transforms": 12}},
    "MVM/10": {"prove_s": 1.4269, "digest": "16ce961be32980f7e5accaec9010fdc8b43375e2ffee44f9a91244ef0e1d989d", "counters": {"ntt_butterflies": 94232, "sponge_permutations": 6116, "ntt_transforms": 12}},
}

#: Executor-default Plonk parameters (see ``service.executor.DEFAULT_CONFIGS``).
PLONK_CONFIG = FriConfig(
    rate_bits=3, cap_height=1, num_queries=8, proof_of_work_bits=4, final_poly_len=4
)
PLONK_SCALES = [6, 7, 8]

#: Pre-refactor Plonk service-job costs, digests and counters, commit
#: 56d0287.  ``e2e_s`` is setup + prove (what every job paid before the
#: executor cached ``CircuitData``); ``prove_s`` is prove alone.
BASELINE_PLONK = {
    "Fibonacci/6": {"e2e_s": 0.2008, "prove_s": 0.1605, "digest": "96ef6472f512d48f2a64904b7d528ea83ba62f1ca3c5b5fa0eb49a54b65b5a17", "counters": {"sponge_permutations": 598, "challenger_permutations": 33, "ntt_butterflies": 7040, "ntt_transforms": 22}},
    "Fibonacci/7": {"e2e_s": 0.1931, "prove_s": 0.1565, "digest": "450442b6a1164834e272503f451395bd42b4ddc5725e3dd75e282d7352d5adef", "counters": {"sponge_permutations": 598, "challenger_permutations": 28, "ntt_butterflies": 7040, "ntt_transforms": 22}},
    "Fibonacci/8": {"e2e_s": 0.2039, "prove_s": 0.1641, "digest": "c6d690a57b36f4be65dac309002fb9bce4632ee1333f95b7ad2dd5ccbd5aa943", "counters": {"sponge_permutations": 598, "challenger_permutations": 47, "ntt_butterflies": 7040, "ntt_transforms": 22}},
    "MVM/6": {"e2e_s": 0.6825, "prove_s": 0.5223, "digest": "8bfee2a3eebb0e8bc42f60835c4fb4da548559982d7323e35380f036b27c8862", "counters": {"sponge_permutations": 5072, "challenger_permutations": 19, "ntt_butterflies": 79200, "ntt_transforms": 22}},
    "MVM/7": {"e2e_s": 0.6747, "prove_s": 0.5242, "digest": "82593a41f29a034fbefbd6e005025e132180844b0a8e19029e44ebcd650f85fa", "counters": {"sponge_permutations": 5072, "challenger_permutations": 32, "ntt_butterflies": 79200, "ntt_transforms": 22}},
    "MVM/8": {"e2e_s": 1.2521, "prove_s": 0.9227, "digest": "852cfe0977b21a20c5efdedec9585adf38b1c9579904a8ce9175f307bbda0303", "counters": {"sponge_permutations": 10190, "challenger_permutations": 23, "ntt_butterflies": 174240, "ntt_transforms": 22}},
}


def _best_of(fn, repeats=5):
    fn()  # warm caches / workspaces
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_kernels() -> dict:
    rng = np.random.default_rng(42)
    a = rng.integers(0, gl.P, size=65536, dtype=np.uint64)
    b = rng.integers(0, gl.P, size=65536, dtype=np.uint64)
    rows = rng.integers(0, gl.P, size=(4, 4096), dtype=np.uint64)
    states = rng.integers(0, gl.P, size=(256, 12), dtype=np.uint64)
    leaves = rng.integers(0, gl.P, size=(512, 4), dtype=np.uint64)
    ws = gl64.Workspace()
    out = np.empty_like(a)
    buf = states.copy()

    def permute():
        np.copyto(buf, states)
        optimized.permute_into(buf, ws)

    results = {
        "gl_mul_64k_s": _best_of(lambda: gl64.mul_into(a, b, out, ws), 20),
        "gl_add_64k_s": _best_of(lambda: gl64.add_into(a, b, out, ws), 20),
        "ntt_4x4096_s": _best_of(lambda: ntt(rows, ws=ws), 10),
        "poseidon_permute_256_s": _best_of(permute, 10),
        "merkle_512x4_s": _best_of(lambda: MerkleTree(leaves, cap_height=1, ws=ws), 5),
    }
    out_rows = {}
    for name, now in results.items():
        base = BASELINE_KERNELS[name]
        out_rows[name] = {
            "baseline_s": round(base, 6),
            "now_s": round(now, 6),
            "speedup": round(base / now, 2),
        }
        print(f"{name:26s} {base*1e3:8.3f} ms -> {now*1e3:8.3f} ms  (x{base/now:.2f})")
    return out_rows


def bench_prove() -> dict:
    rows = {}
    for name, spec in WORKLOADS:
        for scale in SCALES:
            air, trace, publics = spec.build_air(scale)
            plan = plan_for(trace.shape[0], CONFIG.rate_bits)
            prove(air, trace, publics, CONFIG, plan=plan)  # warm
            best, digest, counters = float("inf"), None, None
            for _ in range(3):
                with metrics.counting() as c:
                    t0 = time.perf_counter()
                    proof = prove(air, trace, publics, CONFIG, plan=plan)
                    dt = time.perf_counter() - t0
                best = min(best, dt)
                digest = stark_proof_digest(proof)
                counters = c.as_dict()
            key = f"{name}/{scale}"
            base = BASELINE_PROVE[key]
            digest_ok = digest == base["digest"]
            counters_ok = all(counters.get(k) == v for k, v in base["counters"].items())
            rows[key] = {
                "baseline_s": base["prove_s"],
                "now_s": round(best, 4),
                "speedup": round(base["prove_s"] / best, 2),
                "digest": digest,
                "digest_unchanged": digest_ok,
                "counters": {k: counters.get(k) for k in base["counters"]},
                "counters_unchanged": counters_ok,
            }
            status = "ok" if digest_ok and counters_ok else "MISMATCH"
            print(
                f"{key:14s} {base['prove_s']:7.4f} s -> {best:7.4f} s  "
                f"(x{base['prove_s']/best:.2f})  [{status}]"
            )
    return rows


def bench_plonk() -> dict:
    """Service-path Plonk jobs: cached setup + warm plan vs per-job setup."""
    rows = {}
    for name, spec in WORKLOADS:
        for scale in PLONK_SCALES:
            circuit, inputs, _ = spec.build_circuit(scale)
            data = setup(circuit, PLONK_CONFIG)  # cached once, as in the executor
            plan = plonk_plan_for(circuit.n, PLONK_CONFIG.rate_bits)
            plonk_prove(data, inputs, plan=plan)  # warm
            best, digest, counters = float("inf"), None, None
            for _ in range(3):
                with metrics.counting() as c:
                    t0 = time.perf_counter()
                    proof = plonk_prove(data, inputs, plan=plan)
                    dt = time.perf_counter() - t0
                best = min(best, dt)
                digest = plonk_proof_digest(proof)
                counters = c.as_dict()
            key = f"{name}/{scale}"
            base = BASELINE_PLONK[key]
            digest_ok = digest == base["digest"]
            counters_ok = all(counters.get(k) == v for k, v in base["counters"].items())
            rows[key] = {
                "baseline_e2e_s": base["e2e_s"],
                "baseline_prove_s": base["prove_s"],
                "now_s": round(best, 4),
                "e2e_speedup": round(base["e2e_s"] / best, 2),
                "prove_speedup": round(base["prove_s"] / best, 2),
                "digest": digest,
                "digest_unchanged": digest_ok,
                "counters": {k: counters.get(k) for k in base["counters"]},
                "counters_unchanged": counters_ok,
            }
            status = "ok" if digest_ok and counters_ok else "MISMATCH"
            print(
                f"{key:14s} {base['e2e_s']:7.4f} s -> {best:7.4f} s  "
                f"(e2e x{base['e2e_s']/best:.2f}, prove x{base['prove_s']/best:.2f})"
                f"  [{status}]"
            )
    return rows


def bench_plan_tuning() -> dict:
    """Software plan tuner: measured default vs tuned wall-clock.

    Runs the wall-clock :class:`repro.autotune.plan_tuner.PlanTuner`
    search for two Plonk shapes -- MVM/8 (the service-path headline) and
    Image Crop/8 (n=2048, LDE length 16384: the Merkle levels are big
    enough that the ``permute_chunk`` knob's cache-blocking pays) --
    then re-measures the default and the winning
    :class:`repro.tunables.PlanTuning` as *interleaved* A/B pairs (best
    of N pairs): the knob effects are percents-to-tens-of-percents, and
    measuring the two arms minutes apart lets machine drift swamp them;
    alternating them in one block cancels it.  The tuned proof digest
    and operation counters must match a same-run default-tuning proof
    bit for bit (and the pre-refactor golden where one is pinned) --
    the knobs may only move time, never the proof.
    """
    from repro.autotune.plan_tuner import tune_plan
    from repro.workloads import image_crop

    rows = {}
    shapes = [
        ("MVM", mvm.SPEC, 8, 3, 7),
        ("Image Crop", image_crop.SPEC, 8, 2, 5),
    ]
    for name, spec, scale, repeats, pairs in shapes:
        search = tune_plan("plonk", name, scale, repeats=repeats, seed=0)
        winner = search.winner
        circuit, inputs, _ = spec.build_circuit(scale)
        data = setup(circuit, PLONK_CONFIG)
        plan = plonk_plan_for(circuit.n, PLONK_CONFIG.rate_bits)
        saved = plan.tuning

        plan.tuning = None
        with metrics.counting() as c:
            ref_digest = plonk_proof_digest(plonk_prove(data, inputs, plan=plan))
            ref_counters = c.as_dict()
        plan.tuning = winner
        with metrics.counting() as c:
            digest = plonk_proof_digest(plonk_prove(data, inputs, plan=plan))
            counters = c.as_dict()

        default_s = tuned_s = float("inf")
        for _ in range(pairs):
            plan.tuning = None
            t0 = time.perf_counter()
            plonk_prove(data, inputs, plan=plan)
            default_s = min(default_s, time.perf_counter() - t0)
            plan.tuning = winner
            t0 = time.perf_counter()
            plonk_prove(data, inputs, plan=plan)
            tuned_s = min(tuned_s, time.perf_counter() - t0)
        plan.tuning = saved

        key = f"{name}/{scale}"
        base = BASELINE_PLONK.get(key)
        digest_ok = digest == ref_digest and (
            base is None or digest == base["digest"]
        )
        counters_ok = counters == ref_counters and (
            base is None
            or all(counters.get(k) == v for k, v in base["counters"].items())
        )
        rows[key] = {
            "winner": winner.to_dict(),
            "default_s": round(default_s, 4),
            "tuned_s": round(tuned_s, 4),
            "speedup": round(default_s / tuned_s, 3),
            # A default winner means the search (correctly) found no knob
            # that helps this shape; don't count A/B noise as a win then.
            "improved": tuned_s < default_s and winner != DEFAULT_TUNING,
            "digest_unchanged": digest_ok,
            "counters_unchanged": counters_ok,
            "search_trials": len(search.trials),
        }
        status = "ok" if digest_ok and counters_ok else "MISMATCH"
        print(
            f"{key:14s} {default_s:7.4f} s -> {tuned_s:7.4f} s  "
            f"(x{default_s/tuned_s:.2f})  winner={winner.to_dict()}  [{status}]"
        )
    return rows


def bench_sharded() -> dict:
    """Serial vs stage-sharded STARK proves, interleaved A/B pairs.

    Uses the default :class:`repro.parallel.ShardPool` thresholds (no
    artificial forcing): at scale 10 the 2048-row LDE clears
    ``min_rows`` and the commit/FRI stages fan out across 2 shard
    workers.  Every pair asserts the contract -- sharded digest and
    counters bit-identical to the serial arm -- before any time is
    recorded; a mismatch aborts the benchmark rather than reporting a
    speedup for a wrong proof.
    """
    rows = {}
    pairs = 3
    for name, spec in WORKLOADS:
        scale = 10
        air, trace, publics = spec.build_air(scale)
        plan = plan_for(trace.shape[0], CONFIG.rate_bits)
        with parallel.ShardPool(2) as pool:
            prove(air, trace, publics, CONFIG, plan=plan)  # warm serial
            prove(air, trace, publics, CONFIG, plan=plan, pool=pool)  # warm + fork
            serial_s = sharded_s = float("inf")
            for _ in range(pairs):
                with metrics.counting() as c:
                    t0 = time.perf_counter()
                    ref = prove(air, trace, publics, CONFIG, plan=plan)
                    serial_s = min(serial_s, time.perf_counter() - t0)
                ref_counters = dict(c.as_dict())
                with metrics.counting() as c:
                    t0 = time.perf_counter()
                    got = prove(air, trace, publics, CONFIG, plan=plan, pool=pool)
                    sharded_s = min(sharded_s, time.perf_counter() - t0)
                got_counters = dict(c.as_dict())
                assert stark_proof_digest(got) == stark_proof_digest(ref), (
                    f"{name}/{scale}: sharded proof digest diverged from serial"
                )
                assert got_counters == ref_counters, (
                    f"{name}/{scale}: sharded op counters diverged from serial"
                )
            shard_stats = dict(pool.stats)
            profile = pool.profile.as_dict()
        key = f"{name}/{scale}"
        rows[key] = {
            "serial_s": round(serial_s, 4),
            "sharded_s": round(sharded_s, 4),
            "speedup": round(serial_s / sharded_s, 2),
            "shard_workers": 2,
            "bit_identical": True,  # asserted above, pair by pair
            "graphs": shard_stats["graphs"],
            "shards": shard_stats["shards"],
            "profile_unit_costs": {
                kind: stat["unit_cost"] for kind, stat in profile.items()
            },
        }
        print(
            f"{key:14s} serial {serial_s:7.4f} s -> sharded {sharded_s:7.4f} s  "
            f"(x{serial_s/sharded_s:.2f}, {shard_stats['shards']} shards)"
        )
    return rows


def bench_plonk_stages() -> dict:
    """Per-stage wall-time breakdown for the largest Plonk config (MVM/8)."""
    circuit, inputs, _ = mvm.SPEC.build_circuit(8)
    data = setup(circuit, PLONK_CONFIG)
    plan = plonk_plan_for(circuit.n, PLONK_CONFIG.rate_bits)
    plonk_prove(data, inputs, plan=plan)  # warm
    with tracing.trace() as session:
        plonk_prove(data, inputs, plan=plan)
    stages = {k: round(v, 4) for k, v in session.stage_seconds().items()}
    total = stages.get("prove:plonk", 0.0) or 1.0
    for name, secs in stages.items():
        print(f"  {name:18s} {secs*1e3:8.1f} ms  ({secs/total*100:5.1f}%)")
    return stages


def main() -> dict:
    print("== kernels ==")
    kernels = bench_kernels()
    print("== end-to-end STARK prove ==")
    proofs = bench_prove()
    print("== end-to-end Plonk prove (service path) ==")
    plonk_rows = bench_plonk()
    print("== Plonk stage breakdown (MVM scale 8) ==")
    plonk_stages = bench_plonk_stages()
    print("== stage-sharded STARK prove (2 shard workers, scale 10) ==")
    sharded = bench_sharded()
    print("== software plan tuning (measured wall-clock) ==")
    plan_tuning = bench_plan_tuning()
    target = proofs["Fibonacci/8"]
    plonk_target = plonk_rows["MVM/8"]
    report = {
        "baseline_commit": "f1e91fc",
        "plonk_baseline_commit": "56d0287",
        "config": {
            "rate_bits": 1, "cap_height": 1, "num_queries": 10,
            "proof_of_work_bits": 3, "final_poly_len": 4,
        },
        "plonk_config": {
            "rate_bits": 3, "cap_height": 1, "num_queries": 8,
            "proof_of_work_bits": 4, "final_poly_len": 4,
        },
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "effective_cpus": parallel.effective_cpus(),
        "kernels": kernels,
        "prove": proofs,
        "plonk": plonk_rows,
        "plonk_stage_seconds_mvm_scale8": plonk_stages,
        "sharded": sharded,
        "plan_tuning": plan_tuning,
        "plan_tuning_improved_workloads": [
            k for k, r in plan_tuning.items() if r["improved"]
        ],
        "headline_speedup_fibonacci_scale8": target["speedup"],
        "headline_plonk_e2e_speedup_mvm_scale8": plonk_target["e2e_speedup"],
        "all_digests_unchanged": all(
            r["digest_unchanged"]
            for r in [*proofs.values(), *plonk_rows.values(), *plan_tuning.values()]
        ),
        "all_counters_unchanged": all(
            r["counters_unchanged"]
            for r in [*proofs.values(), *plonk_rows.values(), *plan_tuning.values()]
        ),
        "all_sharded_bit_identical": all(
            r["bit_identical"] for r in sharded.values()
        ),
    }
    OUT.write_text(json.dumps(report, indent=1) + "\n")
    print(f"\nheadline (STARK Fibonacci scale 8): x{target['speedup']:.2f}")
    print(f"headline (Plonk MVM scale 8 e2e): x{plonk_target['e2e_speedup']:.2f}")
    print(f"wrote {OUT}")
    return report


if __name__ == "__main__":
    report = main()
    assert report["all_digests_unchanged"], "proof digests drifted"
    assert report["all_counters_unchanged"], "operation counters drifted"
    assert report["all_sharded_bit_identical"], "sharded proofs diverged"
    assert report["headline_plonk_e2e_speedup_mvm_scale8"] >= 1.3, (
        "Plonk service-path speedup regressed below 1.3x"
    )
    assert report["plan_tuning_improved_workloads"], (
        "plan tuner found no measured wall-clock improvement"
    )
