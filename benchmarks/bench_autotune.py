"""Mapping-autotuner benchmark (BENCH_autotune.json).

Runs the full tuner loop -- enumerate candidates, reject invalid/unsafe
mappings via the static sanitizer, score survivors on the
cycle-accurate simulator, cache best-per-shape winners -- for the paper
workloads, and records:

* **default vs tuned** simulated cycles per workload (the acceptance
  bar: the tuned mapping must beat the static default on >= 2
  workloads and never lose on any);
* **cache behaviour**: a second run over the same cache must serve
  every shape from the stored winners without re-simulating, and
  reproduce the identical totals;
* **determinism**: two fresh searches with one seed must produce
  identical winners; a different seed may explore in another order but
  converges to the same best cycles (the space is exhaustively small);
* **safety**: every stored winner is structurally valid for the
  hardware point and none of the sanitizer-rejected candidates
  (e.g. the ``sparse-12x3-ii1`` Poseidon scheme) ever wins.

Usage: PYTHONPATH=src python benchmarks/bench_autotune.py
"""

from __future__ import annotations

import json
import pathlib
import platform
import tempfile

import numpy as np

from repro.autotune.cache import TuningCache
from repro.autotune.search import tune_workload
from repro.hw import DEFAULT_CONFIG
from repro.mapping.params import MappingParams
from repro.workloads import PAPER_WORKLOADS

OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_autotune.json"

SEED = 0


def bench_tuning() -> dict:
    rows = {}
    hw = DEFAULT_CONFIG
    for spec in PAPER_WORKLOADS:
        cache = TuningCache()
        first = tune_workload(spec.plonk, hw, cache=cache, seed=SEED)
        second = tune_workload(spec.plonk, hw, cache=cache, seed=SEED)
        repeat = tune_workload(spec.plonk, hw, cache=TuningCache(), seed=SEED)

        # Cached second run: every shape served from the store, same totals.
        assert all(s.cached for s in second.shapes), spec.name
        assert second.tuned_total_cycles == first.tuned_total_cycles, spec.name
        # Deterministic: a fresh search with the same seed reproduces
        # the identical winners.
        assert [s.winner for s in repeat.shapes] == [
            s.winner for s in first.shapes
        ], spec.name
        assert repeat.tuned_total_cycles == first.tuned_total_cycles, spec.name
        # Safety: winners are valid on this hardware point, and no
        # sanitizer-rejected candidate ever won.
        for shape in first.shapes:
            params = MappingParams.from_dict(shape.winner_params)
            assert not params.invalid_reasons(hw), (spec.name, shape.key)
            assert shape.winner not in {
                r["label"] for r in shape.rejected
            }, (spec.name, shape.key)

        rejected = sorted(
            {r["label"] for s in first.shapes for r in s.rejected
             if r["stage"] == "sanitizer"}
        )
        rows[spec.name] = {
            "default_mcycles": round(first.default_total_cycles / 1e6, 3),
            "tuned_mcycles": round(first.tuned_total_cycles / 1e6, 3),
            "speedup": round(first.speedup, 4),
            "improved": first.tuned_total_cycles < first.default_total_cycles,
            "num_shapes": len(first.shapes),
            "num_improved_shapes": sum(1 for s in first.shapes if s.improved),
            "num_rejected_candidates": sum(len(s.rejected) for s in first.shapes),
            "sanitizer_rejected": rejected,
            "winners": {
                s.key: s.winner for s in first.shapes if s.improved
            },
            "search_s": round(first.elapsed_s, 3),
            "cached_rerun_s": round(second.elapsed_s, 3),
        }
        print(
            f"{spec.name:12s} {rows[spec.name]['default_mcycles']:10.2f} -> "
            f"{rows[spec.name]['tuned_mcycles']:10.2f} Mcycles "
            f"(x{first.speedup:.3f}, {rows[spec.name]['num_improved_shapes']}"
            f"/{len(first.shapes)} shapes, "
            f"search {first.elapsed_s:.2f}s, cached rerun {second.elapsed_s:.2f}s)"
        )
    return rows


def bench_cache_persistence() -> dict:
    """Round-trip the winners through disk, the way ``repro tune`` does."""
    hw = DEFAULT_CONFIG
    spec = PAPER_WORKLOADS[0]
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "tuning.json"
        cache = TuningCache()
        tune_workload(spec.plonk, hw, cache=cache, seed=SEED)
        cache.save(path)
        reloaded = TuningCache.load(path)
        rerun = tune_workload(spec.plonk, hw, cache=reloaded, seed=SEED)
        assert all(s.cached for s in rerun.shapes)
        return {
            "entries": len(reloaded),
            "file_bytes": path.stat().st_size,
            "all_served_from_disk": True,
        }


def main() -> dict:
    print("== mapping autotuner: default vs tuned (simulated cycles) ==")
    rows = bench_tuning()
    print("== cache persistence ==")
    persistence = bench_cache_persistence()
    print(f"  {persistence['entries']} entries, {persistence['file_bytes']} bytes")
    improved = [name for name, r in rows.items() if r["improved"]]
    report = {
        "seed": SEED,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workloads": rows,
        "cache_persistence": persistence,
        "num_workloads_improved": len(improved),
        "workloads_improved": improved,
        "no_workload_regressed": all(r["speedup"] >= 1.0 for r in rows.values()),
    }
    OUT.write_text(json.dumps(report, indent=1) + "\n")
    print(f"\nimproved workloads: {', '.join(improved) or 'none'}")
    print(f"wrote {OUT}")
    return report


if __name__ == "__main__":
    report = main()
    assert report["num_workloads_improved"] >= 2, (
        "tuned mappings must beat the static defaults on >= 2 workloads"
    )
    assert report["no_workload_regressed"], "a tuned workload lost to the default"
