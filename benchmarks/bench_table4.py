"""Benchmark: regenerate paper Table 4 (memory and VSA utilisation)."""

from repro.experiments.tables import format_table4, table4


def test_table4(benchmark):
    rows = benchmark(table4)
    print()
    print(format_table4(rows))
    for r in rows:
        assert r["hash_vsa"] > 0.85  # hash compute-bound (paper: 95-97%)
        assert r["ntt_mem"] > r["ntt_vsa"]  # NTT memory-bound
