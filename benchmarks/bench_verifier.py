"""Micro-benchmarks: verification (the paper's premise that verifying
is cheap relative to proving, Section 1)."""

import numpy as np

from repro.field import gl64
from repro.fri import FriConfig
from repro.plonk import CircuitBuilder, prove, setup, verify
from repro.stark import prove as stark_prove, verify as stark_verify
from repro.workloads import by_name

_CFG = FriConfig(rate_bits=3, cap_height=1, num_queries=8,
                 proof_of_work_bits=4, final_poly_len=4)
_SCFG = FriConfig(rate_bits=1, cap_height=1, num_queries=12,
                  proof_of_work_bits=4, final_poly_len=4)


def _plonk_artifacts():
    b = CircuitBuilder()
    x = b.add_variable()
    acc = x
    for _ in range(60):
        acc = b.mul(acc, acc)
    pub = b.public_input()
    b.assert_equal(pub, acc)
    data = setup(b.build(), _CFG)
    from repro.field import goldilocks as gl

    inputs = {x.index: 3, pub.index: gl.pow_mod(3, 1 << 60)}
    return data, prove(data, inputs)


def test_plonk_verify(benchmark):
    data, proof = _plonk_artifacts()
    benchmark(verify, data.verifier_data, proof)


def test_stark_verify(benchmark):
    air, trace, publics = by_name("Fibonacci").build_air(8)
    proof = stark_prove(air, trace, publics, _SCFG)
    benchmark(stark_verify, air, proof, _SCFG)


def test_prove_verify_asymmetry():
    """Verification is much cheaper than proving."""
    import time

    air, trace, publics = by_name("Fibonacci").build_air(8)
    t0 = time.time()
    proof = stark_prove(air, trace, publics, _SCFG)
    t_prove = time.time() - t0
    t0 = time.time()
    stark_verify(air, proof, _SCFG)
    t_verify = time.time() - t0
    print(f"\nprove {t_prove:.2f}s vs verify {t_verify:.2f}s "
          f"({t_prove / t_verify:.1f}x asymmetry)")
    assert t_verify < t_prove
