"""Ablation: unified hardware vs dedicated-per-kernel units (Section 3).

Regenerates the paper's motivating claims: a PipeZK-style top-2
accelerator caps below ~7x end to end (Amdahl + PCIe), and an
equal-area chip with statically partitioned units trails the unified
design on every workload.
"""

from repro.baselines import CpuModel, DedicatedChip, Top2Chip
from repro.compiler import trace_plonky2
from repro.sim import simulate_plonky2
from repro.workloads import PAPER_WORKLOADS


def _sweep():
    cpu = CpuModel()
    rows = []
    for spec in PAPER_WORKLOADS:
        graph = trace_plonky2(spec.plonk)
        unified_s = simulate_plonky2(spec.plonk).total_seconds
        dedicated = DedicatedChip().run(graph)
        top2 = Top2Chip().run(graph)
        cpu_s = cpu.run(graph).total_seconds
        rows.append(
            {
                "app": spec.name,
                "unified_s": unified_s,
                "dedicated_s": dedicated.total_seconds(),
                "dedicated_util": dedicated.average_logic_utilization,
                "top2_s": top2.total_seconds,
                "top2_speedup": cpu_s / top2.total_seconds,
                "unified_speedup": cpu_s / unified_s,
            }
        )
    return rows


def test_ablation_dedicated(benchmark):
    rows = benchmark(_sweep)
    print()
    for r in rows:
        print(
            f"{r['app']:12s} unified {r['unified_s'] * 1e3:7.1f} ms "
            f"({r['unified_speedup']:3.0f}x)   "
            f"dedicated {r['dedicated_s'] * 1e3:7.1f} ms "
            f"(util {r['dedicated_util'] * 100:4.1f}%)   "
            f"top-2-only {r['top2_s']:5.2f} s ({r['top2_speedup']:.1f}x)"
        )
    print("(paper Section 3: top-2 acceleration caps below ~7x; static "
          "partitioning leaves units idle)")
    for r in rows:
        assert r["top2_speedup"] < 7.0  # the Amdahl claim
        assert r["dedicated_s"] > r["unified_s"]  # unified wins at equal area
