"""Benchmark: regenerate paper Table 1 (single-thread CPU breakdown)."""

from repro.experiments.tables import format_table1, table1


def test_table1(benchmark):
    rows = benchmark(table1)
    print()
    print(format_table1(rows))
    assert len(rows) == 6
    for r in rows:
        assert r["merkle"] > 0.5  # Merkle dominates single-thread time
