"""Ablation: NTT decomposition shapes and scratchpad fusion.

DESIGN.md calls out two NTT-mapping choices: the tile size of the MDC
pipelines (2**5 per half-row) and the two-dimensions-per-pass fusion
through the transpose buffer.  This bench sweeps both.
"""

import numpy as np

from repro.field import gl64
from repro.hw import DEFAULT_CONFIG
from repro.mapping.ntt_mapping import ntt_cost
from repro.ntt.decomposition import ntt_multidim

_RNG = np.random.default_rng(4)
_COEFFS = gl64.random(1 << 12, _RNG)


def test_multidim_2x64(benchmark):
    benchmark(ntt_multidim, _COEFFS, [64, 64])


def test_multidim_3d(benchmark):
    benchmark(ntt_multidim, _COEFFS, [16, 16, 16])


def test_multidim_vs_direct(benchmark):
    from repro.ntt import ntt

    out = benchmark(ntt, _COEFFS)
    assert np.array_equal(out, ntt_multidim(_COEFFS, [64, 64]))


def test_tile_size_sweep():
    """Smaller pipeline tiles mean more decomposed dims and more passes."""
    print()
    rows = []
    for tile_log2 in (3, 4, 5, 6):
        hw = DEFAULT_CONFIG.scaled(ntt_tile_log2=tile_log2)
        cost = ntt_cost(20, 135, hw)
        ms = hw.cycles_to_seconds(cost.elapsed_cycles(hw)) * 1e3
        rows.append((tile_log2, cost.detail["passes"], ms))
        print(f"tile 2^{tile_log2}: passes={cost.detail['passes']} "
              f"elapsed={ms:.1f} ms")
    # Bigger tiles -> fewer passes -> never slower.
    times = [r[2] for r in rows]
    assert times == sorted(times, reverse=True)


def test_scratchpad_fusion():
    """Halving scratchpad below 4 MB breaks the 2-dims-per-pass fusion."""
    big = ntt_cost(20, 135, DEFAULT_CONFIG)
    small_hw = DEFAULT_CONFIG.scaled(scratchpad_mb=2.0)
    small = ntt_cost(20, 135, small_hw)
    print(f"\n8 MB: {big.detail['passes']} passes; 2 MB: {small.detail['passes']} passes")
    assert small.detail["passes"] == 2 * big.detail["passes"]
