"""Perf-counter regression gate (CI).

Runs one tiny Fibonacci STARK and asserts the operation counters --
NTT butterflies and Poseidon permutations -- match golden values
recorded on the pre-data-plane prover.  Kernel rewrites may change
*how* the work is executed (in place, fused, batched) but never *how
much* work the protocol does; a drift here means a rewrite silently
changed the algorithm, not just the implementation.

Usage: PYTHONPATH=src python benchmarks/check_perf_counters.py
"""

from __future__ import annotations

import sys

from repro import metrics
from repro.fri.config import FriConfig
from repro.serialize import stark_proof_digest
from repro.stark import prove
from repro.workloads import fibonacci

CONFIG = FriConfig(
    rate_bits=1, cap_height=1, num_queries=10, proof_of_work_bits=3, final_poly_len=4
)
SCALE = 6

#: Recorded at commit f1e91fc (pre-zero-copy prover), Fibonacci scale 6.
GOLDEN = {
    "ntt_butterflies": 3096,
    "sponge_permutations": 364,
    "ntt_transforms": 10,
}
GOLDEN_DIGEST = "111c298a5fab5dd1368bbf070f5c9379ad28c1e1f2a671244cdeeb7d12d2dd22"


def main() -> int:
    air, trace, publics = fibonacci.SPEC.build_air(SCALE)
    with metrics.counting() as counts:
        proof = prove(air, trace, publics, CONFIG)
    got = counts.as_dict()
    failures = []
    for name, want in GOLDEN.items():
        if got.get(name) != want:
            failures.append(f"{name}: expected {want}, got {got.get(name)}")
    digest = stark_proof_digest(proof)
    if digest != GOLDEN_DIGEST:
        failures.append(f"proof digest drifted: {digest}")
    if failures:
        print("PERF-COUNTER REGRESSION:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"perf counters OK: {', '.join(f'{k}={v}' for k, v in GOLDEN.items())}")
    print(f"proof digest OK: {digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
