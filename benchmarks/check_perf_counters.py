"""Perf-counter regression gate (CI).

Runs one tiny Fibonacci proof per registered protocol (STARK, Plonk,
HyperPlonk-lite) and asserts the operation counters -- NTT butterflies
and Poseidon permutations -- match golden values recorded before the
respective optimisation passes.  Kernel and pipeline rewrites may change *how* the
work is executed (in place, fused, batched, shared sequencing) but
never *how much* work the protocol does; a drift here means a rewrite
silently changed the algorithm, not just the implementation.

All proofs then run again under a forced 2-worker
:class:`repro.parallel.ShardPool` against the *same* goldens: stage
sharding redistributes the work across processes but must not change
the digest or a single operation count.

Usage: PYTHONPATH=src python benchmarks/check_perf_counters.py
"""

from __future__ import annotations

import sys

from repro import metrics, parallel
from repro.fri.config import FriConfig
from repro.hyperplonk import HyperPlonkConfig, prove as hp_prove, setup as hp_setup
from repro.plonk import prove as plonk_prove, setup
from repro.serialize import (
    hyperplonk_proof_digest,
    plonk_proof_digest,
    stark_proof_digest,
)
from repro.stark import prove
from repro.workloads import fibonacci

CONFIG = FriConfig(
    rate_bits=1, cap_height=1, num_queries=10, proof_of_work_bits=3, final_poly_len=4
)
SCALE = 6

#: Recorded at commit f1e91fc (pre-zero-copy prover), Fibonacci scale 6.
GOLDEN = {
    "ntt_butterflies": 3096,
    "sponge_permutations": 364,
    "ntt_transforms": 10,
}
GOLDEN_DIGEST = "111c298a5fab5dd1368bbf070f5c9379ad28c1e1f2a671244cdeeb7d12d2dd22"

#: Executor-default Plonk parameters (see ``service.executor.DEFAULT_CONFIGS``).
PLONK_CONFIG = FriConfig(
    rate_bits=3, cap_height=1, num_queries=8, proof_of_work_bits=4, final_poly_len=4
)

#: Recorded at commit 56d0287 (pre-unified-pipeline prover), Fibonacci
#: scale 6, measured around ``prove`` only (setup excluded).
PLONK_GOLDEN = {
    "ntt_butterflies": 7040,
    "sponge_permutations": 598,
    "challenger_permutations": 33,
    "ntt_transforms": 22,
}
PLONK_GOLDEN_DIGEST = (
    "96ef6472f512d48f2a64904b7d528ea83ba62f1ca3c5b5fa0eb49a54b65b5a17"
)

#: Executor-default HyperPlonk-lite parameters.
HYPERPLONK_CONFIG = HyperPlonkConfig(cap_height=1, num_queries=16)

#: Recorded when the sumcheck-native backend landed, Fibonacci scale 6,
#: measured around ``prove`` only (setup excluded).  The zero NTT
#: entries are the point: the sumcheck hot path must never touch the
#: NTT kernels, so any nonzero count is a regression by definition.
#: Digest re-pinned for batched-opening format v2 (queries sampled over
#: ``n // 2``, per-tree multiproofs); the counters were unchanged by
#: that move -- sharding and batching redistribute hashing, they never
#: add any.
HYPERPLONK_GOLDEN = {
    "sponge_permutations": 36,
    "challenger_permutations": 13,
    "ntt_butterflies": 0,
    "ntt_transforms": 0,
}
HYPERPLONK_GOLDEN_DIGEST = (
    "d52bd70ef17c57099b692406f5271cdf364953d3aabbd3e8c06a7336e49a801c"
)


def _check(label: str, got: dict, golden: dict, digest: str, want_digest: str):
    failures = []
    for name, want in golden.items():
        if got.get(name) != want:
            failures.append(f"{label} {name}: expected {want}, got {got.get(name)}")
    if digest != want_digest:
        failures.append(f"{label} proof digest drifted: {digest}")
    return failures


def main() -> int:
    failures = []

    air, trace, publics = fibonacci.SPEC.build_air(SCALE)
    with metrics.counting() as counts:
        proof = prove(air, trace, publics, CONFIG)
    failures += _check(
        "stark", counts.as_dict(), GOLDEN, stark_proof_digest(proof), GOLDEN_DIGEST
    )

    circuit, inputs, _ = fibonacci.SPEC.build_circuit(SCALE)
    data = setup(circuit, PLONK_CONFIG)
    with metrics.counting() as counts:
        pproof = plonk_prove(data, inputs)
    failures += _check(
        "plonk", counts.as_dict(), PLONK_GOLDEN,
        plonk_proof_digest(pproof), PLONK_GOLDEN_DIGEST,
    )

    hp_data = hp_setup(circuit, HYPERPLONK_CONFIG)
    with metrics.counting() as counts:
        hproof = hp_prove(hp_data, inputs)
    failures += _check(
        "hyperplonk", counts.as_dict(), HYPERPLONK_GOLDEN,
        hyperplonk_proof_digest(hproof), HYPERPLONK_GOLDEN_DIGEST,
    )

    # Same proofs, sharded across 2 workers (thresholds forced low so
    # the tiny CI proofs actually fan out) -- same goldens, bit for bit.
    with parallel.ShardPool(
        2, min_rows=1, min_tree_leaves=2, min_queries=1
    ) as pool, parallel.sharding(pool):
        with metrics.counting() as counts:
            proof = prove(air, trace, publics, CONFIG)
        failures += _check(
            "stark[sharded]", dict(counts.as_dict()), GOLDEN,
            stark_proof_digest(proof), GOLDEN_DIGEST,
        )
        with metrics.counting() as counts:
            pproof = plonk_prove(data, inputs)
        failures += _check(
            "plonk[sharded]", dict(counts.as_dict()), PLONK_GOLDEN,
            plonk_proof_digest(pproof), PLONK_GOLDEN_DIGEST,
        )
        # The sumcheck prover shards its hashing-bound stages (wires/Z
        # commits, fused fold+commit rounds, batched openings) through
        # the ambient pool; digest and every counter must still match
        # the serial goldens bit for bit.
        with metrics.counting() as counts:
            hproof = hp_prove(hp_data, inputs)
        failures += _check(
            "hyperplonk[sharded]", dict(counts.as_dict()), HYPERPLONK_GOLDEN,
            hyperplonk_proof_digest(hproof), HYPERPLONK_GOLDEN_DIGEST,
        )

    if failures:
        print("PERF-COUNTER REGRESSION:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"stark counters OK: {', '.join(f'{k}={v}' for k, v in GOLDEN.items())}")
    print(f"plonk counters OK: {', '.join(f'{k}={v}' for k, v in PLONK_GOLDEN.items())}")
    print(
        "hyperplonk counters OK: "
        + ", ".join(f"{k}={v}" for k, v in HYPERPLONK_GOLDEN.items())
    )
    print("proof digests OK (stark + plonk + hyperplonk)")
    print("sharded (2 workers) counters + digests OK (stark + plonk + hyperplonk)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
