"""Micro-benchmarks: hashing, Merkle, FRI, and full protocol proving.

The ``NTT vs sumcheck`` section at the bottom proves the same Fibonacci
circuit at increasing scales through both arithmetisation backends --
Plonk (univariate, NTT/LDE-based commit) and HyperPlonk-lite
(multilinear, sumcheck-native, zero NTTs) -- so ``pytest-benchmark``
group output reads directly as a scaling comparison.
"""

import numpy as np
import pytest

from repro.field import extension as fext, gl64
from repro.fri import FriConfig, PolynomialBatch, fri_prove, open_batches
from repro.hashing import Challenger, hash_batch, permute
from repro.hyperplonk import HyperPlonkConfig
from repro.hyperplonk import prove as hp_prove, setup as hp_setup
from repro.merkle import MerkleTree
from repro.plonk import CircuitBuilder, prove, setup
from repro.stark import prove as stark_prove
from repro.workloads import by_name

_RNG = np.random.default_rng(2)
_STATES = gl64.random((4096, 12), _RNG)
_LEAF_ROWS = gl64.random((1024, 16), _RNG)
_CFG = FriConfig(rate_bits=3, cap_height=1, num_queries=6,
                 proof_of_work_bits=2, final_poly_len=4)
_SCFG = FriConfig(rate_bits=1, cap_height=1, num_queries=8,
                  proof_of_work_bits=2, final_poly_len=4)
_HCFG = HyperPlonkConfig(cap_height=1, num_queries=6)


def test_poseidon_4k_batch(benchmark):
    out = benchmark(permute, _STATES)
    assert out.shape == _STATES.shape


def test_hash_batch_1k_leaves(benchmark):
    benchmark(hash_batch, _LEAF_ROWS)


def test_merkle_tree_1k(benchmark):
    tree = benchmark(MerkleTree, _LEAF_ROWS, 2)
    assert tree.cap.shape == (4, 4)


def test_fri_prove_256(benchmark):
    batch = PolynomialBatch.from_coeffs(
        gl64.random((4, 256), _RNG), _CFG.rate_bits, _CFG.cap_height
    )
    openings = open_batches([batch], [fext.make(3, 5)], [[(0, i) for i in range(4)]])

    def run():
        ch = Challenger()
        ch.observe_cap(batch.cap)
        return fri_prove([batch], openings, ch, _CFG)

    proof = benchmark(run)
    assert proof.size_bytes() > 0


def _fib_circuit():
    b = CircuitBuilder()
    x0, x1 = b.constant(0), b.constant(1)
    for _ in range(60):
        x0, x1 = x1, b.add(x0, x1)
    pub = b.public_input()
    b.assert_equal(pub, x0)
    return b.build(), pub


def test_plonk_prove_128_rows(benchmark):
    from repro.workloads.fibonacci import fibonacci_mod_p

    circuit, pub = _fib_circuit()
    data = setup(circuit, _CFG)
    inputs = {pub.index: fibonacci_mod_p(60)}
    proof = benchmark(prove, data, inputs)
    assert proof.size_bytes() > 0


def test_stark_prove_64_rows(benchmark):
    air, trace, publics = by_name("Fibonacci").build_air(6)
    proof = benchmark(stark_prove, air, trace, publics, _SCFG)
    assert proof.size_bytes() > 0


def test_hyperplonk_prove_64_rows(benchmark):
    circuit, inputs, _ = by_name("Fibonacci").build_circuit(6)
    data = hp_setup(circuit, _HCFG)
    proof = benchmark(hp_prove, data, inputs)
    assert proof.size_bytes() > 0


def test_hyperplonk_batched_openings_shrink_proof():
    # Proof-size regression gate for format v2: each tree's multiproof
    # must stay strictly smaller than the individual per-query
    # authentication paths it replaced (shared sibling nodes are the
    # entire win; equality would mean the dedup stopped deduplicating).
    # The preprocessed tree is in the setup artifact, so it prices the
    # old per-index encoding exactly.
    from repro.merkle.multiproof import individual_paths_bytes

    circuit, inputs, _ = by_name("Fibonacci").build_circuit(8)
    cfg = HyperPlonkConfig(cap_height=1, num_queries=16)
    data = hp_setup(circuit, cfg)
    proof = hp_prove(data, inputs)
    indices = proof.pre_opening.proof.indices
    assert len(indices) > 1  # 16 queries must open more than one leaf
    batched = proof.pre_opening.proof.size_bytes()
    individual = individual_paths_bytes(data.preprocessed, indices)
    assert batched < individual, (
        f"multiproof {batched}B not smaller than per-index paths "
        f"{individual}B"
    )


# --------------------------------------------------------------------
# NTT vs sumcheck: same circuit, both backends, increasing scales.
#
# Plonk commits wires through an LDE (rate 8 here), so its prove cost
# is dominated by NTT butterflies that grow n log n with a constant
# blow-up; the sumcheck prover hashes the subgroup rows directly and
# folds linearly, with zero NTT work.  Query counts are matched so the
# comparison isolates the commit/evaluation argument.
# --------------------------------------------------------------------

_SCALES = [6, 8, 10]


@pytest.mark.parametrize("scale", _SCALES)
def test_scaling_ntt_plonk(benchmark, scale):
    benchmark.group = f"ntt-vs-sumcheck scale={scale}"
    circuit, inputs, _ = by_name("Fibonacci").build_circuit(scale)
    data = setup(circuit, _CFG)
    proof = benchmark(prove, data, inputs)
    assert proof.size_bytes() > 0


@pytest.mark.parametrize("scale", _SCALES)
def test_scaling_sumcheck_hyperplonk(benchmark, scale):
    benchmark.group = f"ntt-vs-sumcheck scale={scale}"
    circuit, inputs, _ = by_name("Fibonacci").build_circuit(scale)
    data = hp_setup(circuit, _HCFG)
    proof = benchmark(hp_prove, data, inputs)
    assert proof.size_bytes() > 0
