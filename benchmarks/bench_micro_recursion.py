"""Micro-benchmarks: the recursion substrate (gadgets, AIRs, transcripts)."""

import numpy as np

from repro.field import gl64
from repro.fri import FriConfig
from repro.hashing import Challenger
from repro.plonk import CircuitBuilder
from repro.plonk.gadgets import poseidon_permutation
from repro.plonk.recursion import (
    build_sumcheck_verifier_circuit,
    sumcheck_proof_inputs,
)
from repro.stark import PoseidonAir
from repro.stark import prove as stark_prove
from repro.stark.poseidon_air import generate_trace, public_values
from repro.sumcheck import prove as sc_prove

_RNG = np.random.default_rng(12)
_SCFG = FriConfig(rate_bits=3, cap_height=1, num_queries=6,
                  proof_of_work_bits=2, final_poly_len=4)


def test_poseidon_gadget_build(benchmark):
    """Constructing the ~5000-gate in-circuit permutation."""

    def build():
        b = CircuitBuilder()
        state = [b.add_variable() for _ in range(12)]
        poseidon_permutation(b, state)
        return b.build()

    circuit = benchmark(build)
    assert circuit.n >= 2048


def test_sumcheck_verifier_witness(benchmark):
    """Witness generation for the full verifier-as-circuit."""
    table = gl64.random(8, _RNG)
    proof = sc_prove(table, Challenger())
    circuit, handles = build_sumcheck_verifier_circuit(3)
    inputs = sumcheck_proof_inputs(handles, proof, table)
    witness = benchmark(circuit.generate_witness, inputs)
    assert circuit.check_gates(witness, [])


def test_poseidon_air_prove(benchmark):
    """Starky proof of one full Poseidon permutation (32-row AET)."""
    state = [int(x) for x in gl64.random(12, _RNG)]
    air = PoseidonAir(num_perms=1)
    trace = generate_trace(state, 1)
    publics = public_values(state, 1)
    proof = benchmark(stark_prove, air, trace, publics, _SCFG)
    assert proof.size_bytes() > 0


def test_poseidon_air_trace_generation(benchmark):
    state = [int(x) for x in gl64.random(12, _RNG)]
    trace = benchmark(generate_trace, state, 4)
    assert trace.shape == (128, 24)
