"""Ablation: naive vs HADES-optimised Poseidon (design choice of
Section 5.2's partial-round mapping).

The sparse decomposition cuts the partial-round multiply count ~5x;
this bench quantifies the software-side effect and sanity-checks the
hardware-side PE-cycle accounting.
"""

import numpy as np

from repro.field import gl64
from repro.hashing import optimized, poseidon
from repro.mapping.poseidon_mapping import PERM_MULTS, PERM_PE_CYCLES

_RNG = np.random.default_rng(3)
_STATES = gl64.random((2048, 12), _RNG)


def test_poseidon_naive_2k(benchmark):
    benchmark(poseidon.permute_naive, _STATES)


def test_poseidon_optimized_2k(benchmark):
    out = benchmark(optimized.permute, _STATES)
    assert np.array_equal(out, poseidon.permute_naive(_STATES))


def test_poseidon_scalar_path(benchmark):
    state = [int(v) for v in _STATES[0]]
    benchmark(optimized.permute_scalar, state)


def test_hardware_occupancy_accounting():
    """The mapped permutation's multiplier utilisation (paper: 95-97%)."""
    util = PERM_MULTS / PERM_PE_CYCLES
    print(f"\nper-permutation PE-cycles={PERM_PE_CYCLES} mults={PERM_MULTS} "
          f"utilisation={util * 100:.1f}%")
    assert util > 0.85
