"""Benchmark: regenerate paper Table 5 (Starky base + Plonky2 recursion)."""

from repro.experiments.tables import format_table5, table5


def test_table5(benchmark):
    rows = benchmark(table5)
    print()
    print(format_table5(rows))
    assert len(rows) == 6
    for r in rows:
        assert 40 <= r["speedup"] <= 350
