"""Benchmark: regenerate paper Table 6 (UniZK vs PipeZK, incl. 840x)."""

from repro.experiments.tables import format_table6, table6, table6_throughput


def test_table6(benchmark):
    rows = benchmark(table6)
    print()
    print(format_table6(rows))
    for r in rows:
        assert r["unizk_speedup"] > 4 * r["pipezk_speedup"]


def test_table6_batched_throughput(benchmark):
    thr = benchmark(table6_throughput)
    print()
    print(f"UniZK {thr['unizk_blocks_per_s']:.0f} blk/s, "
          f"PipeZK {thr['pipezk_blocks_per_s']:.1f} blk/s, "
          f"ratio {thr['throughput_ratio']:.0f}x (paper: 840x)")
    assert 300 <= thr["throughput_ratio"] <= 1500
