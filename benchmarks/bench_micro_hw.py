"""Micro-benchmarks: hardware-model layers (microcode grid, schedules,
multiproofs, simulator throughput)."""

import numpy as np

from repro.compiler import PlonkParams, lower, trace_plonky2
from repro.field import gl64
from repro.hw import DEFAULT_CONFIG
from repro.mapping.microcode_schedules import (
    run_matvec,
    run_reverse_dot,
    run_sbox_pipeline,
)
from repro.merkle import MerkleTree
from repro.merkle.multiproof import individual_paths_bytes, prove_multi
from repro.sim import simulate_plonky2

_RNG = np.random.default_rng(6)
_W12 = gl64.random((12, 12), _RNG)
_STATES = gl64.random((16, 12), _RNG)
_PARAMS = PlonkParams(name="bench", degree_bits=18, width=135)


def test_microcode_matvec_12x12(benchmark):
    out, cycles = benchmark(run_matvec, _W12, _STATES)
    assert out.shape == (16, 12)
    assert cycles <= 16 + 25


def test_microcode_sbox_pipeline(benchmark):
    vals = [int(x) for x in gl64.random(16, _RNG)]
    outs, _ = benchmark(run_sbox_pipeline, vals, 5)
    assert len(outs) == 16


def test_microcode_reverse_dot(benchmark):
    state = [int(x) for x in gl64.random(12, _RNG)]
    coeffs = [int(x) for x in gl64.random(12, _RNG)]
    benchmark(run_reverse_dot, state, coeffs)


def test_simulator_throughput(benchmark):
    """One full proof-generation simulation (27 kernels)."""
    report = benchmark(simulate_plonky2, _PARAMS, DEFAULT_CONFIG)
    assert report.total_cycles > 0


def test_schedule_lowering(benchmark):
    graph = trace_plonky2(_PARAMS)
    sched = benchmark(lower, graph, DEFAULT_CONFIG)
    assert len(sched.kernels) == len(graph)


def test_merkle_multiproof_compression(benchmark):
    leaves = gl64.random((256, 8), _RNG)
    tree = MerkleTree(leaves)
    rng = np.random.default_rng(1)
    indices = sorted(set(int(i) for i in rng.integers(0, 256, size=28)))

    mp = benchmark(prove_multi, tree, indices)
    naive = individual_paths_bytes(tree, indices)
    print(f"\nmultiproof {mp.size_bytes()} B vs {naive} B individual "
          f"({naive / mp.size_bytes():.1f}x compression at FRI query scale)")
    assert mp.size_bytes() < naive
