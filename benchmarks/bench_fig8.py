"""Benchmark: regenerate paper Figure 8 (UniZK breakdown by kernel)."""

from repro.experiments.figures import fig8, format_fig8


def test_fig8(benchmark):
    rows = benchmark(fig8)
    print()
    print(format_fig8(rows))
    for r in rows:
        assert r["poly"] == max(r["poly"], r["ntt"], r["hash"])
