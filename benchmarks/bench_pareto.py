"""Benchmark: full design-space Pareto sweep (extends Figure 10)."""

from repro.experiments.pareto import format_frontier, pareto_frontier, sweep_design_space
from repro.hw import DEFAULT_CONFIG


def test_pareto_sweep(benchmark):
    points = benchmark(sweep_design_space, "MVM")
    frontier = pareto_frontier(points)
    print()
    print(format_frontier(points, frontier))
    assert any(p.hw == DEFAULT_CONFIG for p in frontier)
