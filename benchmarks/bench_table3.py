"""Benchmark: regenerate paper Table 3 (CPU vs GPU vs UniZK)."""

from repro.experiments.tables import format_table3, table3


def test_table3(benchmark):
    rows = benchmark(table3)
    print()
    print(format_table3(rows))
    avg = sum(r["unizk_speedup"] for r in rows) / len(rows)
    assert 70 <= avg <= 130  # paper: 97x average
    for r in rows:
        assert r["unizk_s"] < r["gpu_s"] < r["cpu_s"]
