"""Benchmark: regenerate paper Table 2 (area and power breakdown)."""

from repro.experiments.tables import format_table2, table2


def test_table2(benchmark):
    rows = benchmark(table2)
    print()
    print(format_table2(rows))
    totals = next(r for r in rows if r["component"] == "Total")
    assert abs(totals["area_mm2"] - 57.8) < 0.1
    assert abs(totals["power_w"] - 96.4) < 0.1
