"""Ablation: Ramulator-lite timing model vs the analytic bandwidth model.

The fast cost models use calibrated efficiency constants; this bench
re-derives them from the bank/row timing model to show they are
measurements, not magic numbers.
"""

from repro.hw.memory import (
    DramModel,
    measured_efficiencies,
    random_chunks,
    sequential_stream,
    strided_stream,
)
from repro.mapping.ntt_mapping import NTT_MEM_EFFICIENCY
from repro.mapping.poly_mapping import gate_access_efficiency


def test_measured_efficiencies(benchmark):
    effs = benchmark(measured_efficiencies)
    print()
    for k, v in effs.items():
        print(f"  {k:14s} {v * 100:5.1f}%")
    assert effs["sequential"] > 0.8
    assert effs["strided"] < 0.2


def test_ntt_efficiency_bracketed():
    """The NTT constant sits between pure-sequential and mixed streams."""
    m = DramModel()
    seq = m.efficiency(sequential_stream(1 << 19))
    # Interleave a read stream and a far write stream (per-pass pattern).
    reads = sequential_stream(1 << 18)
    writes = [a + (1 << 28) for a in reads]
    mixed = [a for pair in zip(reads, writes) for a in pair]
    mixed_eff = m.efficiency(mixed)
    print(f"\nsequential {seq:.2f}, mixed read/write {mixed_eff:.2f}, "
          f"model constant {NTT_MEM_EFFICIENCY}")
    assert mixed_eff <= NTT_MEM_EFFICIENCY <= seq


def test_gate_efficiency_matches_table4():
    """Width-dependent random-chunk efficiency reproduces Table 4's poly
    column: ~15% at width 135, ~22-25% at width 400."""
    w135 = gate_access_efficiency(135)
    w400 = gate_access_efficiency(400)
    print(f"\nwidth 135: {w135 * 100:.1f}% (paper ~15.7%), "
          f"width 400: {w400 * 100:.1f}% (paper ~24.5%)")
    assert 0.10 <= w135 <= 0.22
    assert 0.17 <= w400 <= 0.30


def test_dram_service_sequential(benchmark):
    m = DramModel()
    stream = sequential_stream(1 << 18)
    benchmark(m.service, stream)


def test_dram_service_random(benchmark):
    m = DramModel()
    stream = random_chunks(2000, 1080, 1 << 26)
    benchmark(m.service, stream)
