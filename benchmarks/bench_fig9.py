"""Benchmark: regenerate paper Figure 9 (per-kernel speedups)."""

from repro.experiments.figures import fig9, format_fig9


def test_fig9(benchmark):
    rows = benchmark(fig9)
    print()
    print(format_fig9(rows))
    for r in rows:
        assert r["hash"] > r["poly"]  # hash accelerates most, poly least
