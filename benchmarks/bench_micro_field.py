"""Micro-benchmarks: the vectorised field and transform substrates."""

import numpy as np

from repro.field import gl64
from repro.ntt import intt, ntt

_RNG = np.random.default_rng(1)
_A = gl64.random(1 << 16, _RNG)
_B = gl64.random(1 << 16, _RNG)
_POLY = gl64.random(1 << 14, _RNG)
_BATCH = gl64.random((16, 1 << 10), _RNG)


def test_gl64_mul_64k(benchmark):
    benchmark(gl64.mul, _A, _B)


def test_gl64_add_64k(benchmark):
    benchmark(gl64.add, _A, _B)


def test_gl64_pow7_64k(benchmark):
    benchmark(gl64.pow7, _A)


def test_gl64_inv_fast_64k(benchmark):
    benchmark(gl64.inv_fast, _A[: 1 << 12])


def test_ntt_16k(benchmark):
    out = benchmark(ntt, _POLY)
    assert out.shape == _POLY.shape


def test_intt_16k(benchmark):
    benchmark(intt, _POLY)


def test_ntt_batch_16x1k(benchmark):
    benchmark(ntt, _BATCH)
