"""Merkle tree mapping (paper Section 5.3).

UniZK loads one scratchpad-sized subtree at a time and processes it
fully on-chip, level by level; same-level hashes pipeline through the
VSAs.  The level-order memory layout keeps both leaf reads and digest
writes sequential.

The subtree scheduler is emulated functionally (the subtree-built root
must equal the monolithic tree's root) and the cost model counts the
exact permutation total via :func:`repro.merkle.merkle_permutation_count`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hashing import sponge
from ..hw.config import HwConfig
from ..merkle import MerkleTree, merkle_permutation_count
from .base import KernelCost
from .poseidon_mapping import poseidon_cost

#: Bytes per digest in DRAM.
_DIGEST_BYTES = 32


@dataclass(frozen=True)
class SubtreePlan:
    """How the Merkle construction is chunked onto the scratchpad."""

    subtree_leaves: int
    num_subtrees: int
    top_levels: int


def plan_subtrees(
    num_leaves: int, leaf_width: int, hw: HwConfig, subtree_div_log2: int = 0
) -> SubtreePlan:
    """Choose the largest subtree whose leaves fit half the scratchpad.

    ``subtree_div_log2`` shrinks that subtree by a power of two (the
    autotuner's tiling knob; 0 reproduces the static default).
    """
    usable = hw.scratchpad_bytes // 2  # double buffered
    leaf_bytes = max(1, leaf_width) * 8
    max_leaves = max(2, usable // (leaf_bytes + 2 * _DIGEST_BYTES))
    subtree = 1
    while subtree * 2 <= min(max_leaves, num_leaves):
        subtree *= 2
    subtree = max(2, subtree >> max(0, subtree_div_log2))
    num_subtrees = max(1, num_leaves // subtree)
    top_levels = max(0, num_subtrees.bit_length() - 1)
    return SubtreePlan(
        subtree_leaves=subtree, num_subtrees=num_subtrees, top_levels=top_levels
    )


def emulate_subtree_construction(
    leaves: np.ndarray, subtree_leaves: int
) -> np.ndarray:
    """Build the root by fully processing one subtree at a time.

    Returns the root digest; must equal ``MerkleTree(leaves).root``.
    """
    num = leaves.shape[0]
    if num % subtree_leaves:
        raise ValueError("leaf count must divide into whole subtrees")
    roots = []
    for start in range(0, num, subtree_leaves):
        sub = MerkleTree(leaves[start : start + subtree_leaves])
        roots.append(sub.root)
    level = np.stack(roots)
    while level.shape[0] > 1:
        level = sponge.two_to_one(level[0::2], level[1::2])
    return level[0]


def merkle_cost(
    num_leaves: int,
    leaf_width: int,
    hw: HwConfig,
    cap_height: int = 0,
    name: str = "merkle",
    subtree_div_log2: int = 0,
    scheme: str = "sparse-12x3",
) -> KernelCost:
    """Cost of building a Merkle tree over (num_leaves, leaf_width) data.

    Traffic: read every leaf element once (subtree at a time), write
    every digest (level-order layout, ~2 digests per leaf).  Compute:
    the exact permutation count through the Poseidon throughput model.
    ``subtree_div_log2`` / ``scheme`` are the autotuner's knobs; the
    defaults reproduce the static mapping bit for bit.
    """
    perms = merkle_permutation_count(num_leaves, leaf_width, cap_height)
    read_bytes = num_leaves * leaf_width * 8
    write_bytes = 2 * num_leaves * _DIGEST_BYTES
    # Shrinking the subtree multiplies the drain/reload boundaries: the
    # extra subtree roots must round-trip DRAM before the top levels.
    base_plan = plan_subtrees(num_leaves, leaf_width, hw)
    plan = plan_subtrees(num_leaves, leaf_width, hw, subtree_div_log2)
    extra_root_bytes = 2 * _DIGEST_BYTES * max(
        0, plan.num_subtrees - base_plan.num_subtrees
    )
    cost = poseidon_cost(
        perms,
        hw,
        input_bytes=read_bytes,
        output_bytes=write_bytes + extra_root_bytes,
        name=name,
        scheme=scheme,
    )
    return KernelCost(
        name=name,
        kind=cost.kind,
        compute_cycles=cost.compute_cycles,
        mem_bytes=cost.mem_bytes,
        mem_efficiency=cost.mem_efficiency,
        mult_ops=cost.mult_ops,
        detail={
            "perms": perms,
            "leaves": num_leaves,
            "leaf_width": leaf_width,
            "subtree_leaves": plan.subtree_leaves,
            "scheme": scheme,
        },
    )
