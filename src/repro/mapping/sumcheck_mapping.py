"""Sum-check kernel mapping (paper Section 8.1, Algorithm 2).

The paper sketches how UniZK generalises to sum-check-based protocols:
the per-round vector update ``A[j] = A[j](1-r) + A[j+m/2] r`` is an
element-wise kernel in vector mode, and the two half-sums ride the
systolic accumulation links like matmul partial sums.  We emulate one
round on the VSA model and provide the whole-protocol cost.
"""

from __future__ import annotations

import numpy as np

from ..field import gl64, goldilocks as gl
from ..hw.config import HwConfig
from ..hw.vsa import Vsa
from ..sumcheck import fold_table
from .base import KIND_POLY, KernelCost
from .poly_mapping import STREAM_MEM_EFFICIENCY


def emulate_sumcheck_round(table: np.ndarray, r: int, vsa: Vsa | None = None):
    """One sum-check round on the VSA: sums via links, update in vector mode.

    Returns ``(y0, y1, folded_table)``; validated against the protocol's
    reference implementation in the tests.
    """
    vsa = vsa or Vsa()
    table = np.asarray(table, dtype=np.uint64)
    half = table.shape[0] // 2
    lo, hi = table[:half], table[half:]
    # Systolic accumulation: vector elements stream through a column and
    # fold pairwise along the links (log-depth tree, same as matmul sums).
    y0 = int(gl64.sum_array(lo))
    y1 = int(gl64.sum_array(hi))
    res = vsa.vector_mode(
        lambda ops: fold_table(np.concatenate(ops), r), [lo, hi], ops_per_element=3
    )
    return y0, y1, res.values


def sumcheck_cost(log_n: int, hw: HwConfig, name: str = "sumcheck") -> KernelCost:
    """Cost of a full n-round sum-check prover pass.

    Round ``i`` touches ``2**(n-i)`` elements (3 ops each: two multiplies
    and an add, plus the tree sums); the table streams from DRAM only
    while it exceeds the scratchpad, after which rounds are on-chip.
    """
    total_elems = float((1 << (log_n + 1)) - 2)  # sum of 2^n + 2^(n-1) + ...
    ops = 3.0 * total_elems
    spad_elems = hw.scratchpad_bytes // 16  # double-buffered halves
    dram_elems = 0.0
    m = 1 << log_n
    while m > spad_elems:
        dram_elems += 1.5 * m  # read m, write m/2
        m //= 2
    return KernelCost(
        name=name,
        kind=KIND_POLY,
        compute_cycles=ops / hw.total_pes,
        mem_bytes=dram_elems * 8,
        mem_efficiency=STREAM_MEM_EFFICIENCY,
        mult_ops=2.0 * total_elems,
        detail={"log_n": log_n},
    )
