"""NTT kernel mapping (paper Section 5.1, Figure 4).

Two layers:

* :class:`MdcPipeline` -- a functional emulation of the multi-path delay
  commutator pipeline that maps one fixed-size DIF NTT onto a linear
  sequence of PEs.  Each stage is one PE: it pairs elements at the
  stage's stride using its register file as the delay buffer and applies
  the butterfly with on-PE twiddles.  Validated against the reference
  NTT; sustains 2 elements/cycle like the hardware.
* :func:`ntt_cost` -- the cycle/traffic model for variable-length batched
  NTTs built from the SAM multi-dimensional decomposition: two decomposed
  dimensions per memory pass (two half-row pipelines chained through the
  transpose buffer), inter-dimension twiddles from the on-chip generator,
  and the final constant multiply fused into otherwise-idle PEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

import numpy as np

from ..field import gl64, goldilocks as gl
from ..hw.config import HwConfig
from ..ntt import bit_reverse, ntt_nr
from .base import KIND_NTT, KernelCost

#: Effective DRAM efficiency of the NTT's read+write streams.  Derived
#: from the Ramulator-lite model: pure sequential streams reach ~0.94,
#: but each pass interleaves a read stream and a write stream and the
#: last pass shuffles bit-reversed groups, landing around 0.55 -- which
#: reproduces the ~50% NTT memory utilisation of paper Table 4.
NTT_MEM_EFFICIENCY = 0.55


@dataclass
class StageState:
    """One MDC pipeline stage: its stride and delay buffer."""

    stride: int
    buffer: list


class MdcPipeline:
    """Functional model of a size-``n`` DIF NTT as a PE pipeline.

    ``log n`` butterfly stages plus one twiddle stage, each claiming one
    PE.  Stage ``s`` (stride ``n/2^(s+1)``) delays the first half of
    each block in its PE register file so butterflies pair elements
    ``stride`` apart while input arrives 2 elements per cycle.
    """

    def __init__(self, n: int) -> None:
        if n & (n - 1) or n < 2:
            raise ValueError("pipeline size must be a power of two >= 2")
        self.n = n
        self.log_n = n.bit_length() - 1

    def required_registers_per_pe(self) -> int:
        """Peak delay-buffer elements any stage holds (bounded by n/2)."""
        return self.n // 2

    def run(self, coeffs: np.ndarray) -> tuple[np.ndarray, int]:
        """Push one size-``n`` block through; returns (NR-order NTT, cycles).

        The emulation processes stage by stage but respects each stage's
        streaming discipline (delay buffers of exactly ``stride``
        elements); cycles = ``n/2`` beats plus pipeline fill.
        """
        coeffs = np.asarray(coeffs, dtype=np.uint64)
        if coeffs.shape != (self.n,):
            raise ValueError(f"expected a size-{self.n} block")
        omega = gl.primitive_root_of_unity(self.log_n)
        data = [int(v) for v in coeffs]
        stride = self.n // 2
        stage = 0
        while stride >= 1:
            out = [0] * self.n
            # Twiddles for this stage live in the stage PE's register file.
            tw_base = gl.pow_mod(omega, self.n // (2 * stride))
            for block_start in range(0, self.n, 2 * stride):
                tw = 1
                for j in range(stride):
                    a = data[block_start + j]
                    b = data[block_start + j + stride]
                    out[block_start + j] = gl.add(a, b)
                    out[block_start + j + stride] = gl.mul(gl.sub(a, b), tw)
                    tw = gl.mul(tw, tw_base)
            data = out
            stride //= 2
            stage += 1
        # Throughput: 2 elements/cycle; fill: one beat per stage (+1 twiddle PE).
        cycles = self.n // 2 + (self.log_n + 1)
        return np.array(data, dtype=np.uint64), cycles


def emulate_pipeline_matches_reference(coeffs: np.ndarray) -> bool:
    """The MDC pipeline output equals ``NTT^NR`` of the input."""
    pipe = MdcPipeline(len(coeffs))
    out, _ = pipe.run(coeffs)
    return bool(np.array_equal(out, ntt_nr(coeffs)))


def batched_ntt_index_major(matrix: np.ndarray, hw: HwConfig):
    """Batched NTTs over index-major data via the transpose buffer.

    Implements Section 5.1's "Data layouts": ``matrix`` is (N, B) with
    the elements at the same position of all ``B`` polynomials stored
    contiguously (index-major).  The hardware fetches ``b`` consecutive
    elements at a time, transposes ``b x b`` blocks on the fly to
    polynomial-major for the MDC pipelines, and writes results back the
    same way -- keeping every DRAM access a long consecutive burst.

    Returns ``(out_matrix, transpose_blocks)`` where ``out_matrix`` is
    index-major NTT results (column ``j`` is the NTT of polynomial
    ``j``) and ``transpose_blocks`` counts buffer round trips.
    Functional model: the batch width must divide into ``b`` blocks and
    ``N`` into ``b`` rows.
    """
    from ..hw.transpose import TransposeBuffer
    from ..ntt import ntt as _ntt_fn

    b = hw.transpose_dim
    n, batch = matrix.shape
    if n % b or batch % b:
        raise ValueError(f"matrix dims must be multiples of the buffer dim {b}")
    buf = TransposeBuffer(b)
    # Ingest: transpose b x b blocks to assemble polynomial-major rows.
    poly_major = np.empty((batch, n), dtype=np.uint64)
    for col_blk in range(0, batch, b):
        for row_blk in range(0, n, b):
            block = matrix[row_blk : row_blk + b, col_blk : col_blk + b]
            poly_major[col_blk : col_blk + b, row_blk : row_blk + b] = (
                buf.transpose_block(block)
            )
    transformed = _ntt_fn(poly_major)
    # Writeback: transpose back to index-major.
    out = np.empty_like(matrix)
    for col_blk in range(0, batch, b):
        for row_blk in range(0, n, b):
            block = transformed[col_blk : col_blk + b, row_blk : row_blk + b]
            out[row_blk : row_blk + b, col_blk : col_blk + b] = buf.transpose_block(
                block
            )
    return out, buf.blocks_processed


def ntt_dims(log_n: int, hw: HwConfig, tile_log2: int | None = None) -> list[int]:
    """Decomposed dimension sizes for a size-``2**log_n`` NTT.

    ``tile_log2`` overrides the per-dimension tile exponent (the
    autotuner's SAM-shape knob); ``None`` uses ``hw.ntt_tile_log2``.
    """
    tile = hw.ntt_tile_log2 if tile_log2 is None else tile_log2
    if tile < 1:
        raise ValueError(f"NTT tile exponent must be >= 1, got {tile}")
    if (1 << tile) // 2 > hw.pe_registers:
        raise ValueError(
            f"tile_log2={tile} exceeds the PE delay-register capacity "
            f"({hw.pe_registers} words)"
        )
    dims = []
    remaining = log_n
    while remaining > 0:
        take = min(tile, remaining)
        dims.append(take)
        remaining -= take
    return dims


def ntt_cost(
    log_n: int,
    batch: int,
    hw: HwConfig,
    name: str = "ntt",
    output_scale: float = 1.0,
    index_major: bool = False,
    tile_log2: int | None = None,
    dims_per_pass: int | None = None,
) -> KernelCost:
    """Cost of ``batch`` size-``2**log_n`` NTTs (forward or inverse).

    ``output_scale`` < 1 models iNTT-then-truncate patterns; LDE is
    modelled as an NTT at the *output* size (zero-padded input reads
    less, so traffic uses the true input/output sizes).  ``index_major``
    layouts route through the transpose buffer, which runs in parallel
    and does not change elapsed time (paper Section 5.1 "Data layouts").
    ``tile_log2`` / ``dims_per_pass`` are the autotuner's mapping knobs;
    ``None`` keeps the static defaults.
    """
    n = 1 << log_n
    dims = ntt_dims(log_n, hw, tile_log2)
    # Fusing two decomposed dimensions per memory pass (the two chained
    # half-row pipelines of Figure 4b) needs scratchpad room for the
    # inter-dimension tiles; below ~4 MB the fusion degrades to one
    # dimension per pass and traffic doubles (the scratchpad leg of the
    # paper's Figure 10).
    if dims_per_pass is None:
        dims_per_pass = 2 if hw.scratchpad_bytes >= (4 << 20) else 1
    elif dims_per_pass == 2 and hw.scratchpad_bytes < (4 << 20):
        raise ValueError("dims_per_pass=2 needs >= 4 MB of scratchpad")
    elif dims_per_pass not in (1, 2):
        raise ValueError(f"dims_per_pass must be 1 or 2, got {dims_per_pass}")
    passes = ceil(len(dims) / dims_per_pass)
    elems = n * batch
    # One read + one write of the whole batch per pass.
    mem_bytes = passes * 2 * elems * 8 * ((1 + output_scale) / 2)
    # Each row chains two half-pipelines (2 dims) at 2 elements/cycle.
    compute_cycles = passes * elems / (hw.ntt_pipelines * 2)
    # Butterfly multiplies: n/2 log n, plus inter-dimension twiddles and
    # coset constants fused into otherwise-idle pipeline slots.
    mult_ops = batch * (n / 2 * log_n + n * max(0, len(dims) - 1) + n)
    return KernelCost(
        name=name,
        kind=KIND_NTT,
        compute_cycles=compute_cycles,
        mem_bytes=mem_bytes,
        mem_efficiency=NTT_MEM_EFFICIENCY,
        mult_ops=mult_ops,
        detail={
            "log_n": log_n,
            "batch": batch,
            "passes": passes,
            "dims": dims,
            "index_major": index_major,
        },
    )


def lde_cost(
    log_n_in: int,
    rate_bits: int,
    batch: int,
    hw: HwConfig,
    name: str = "lde",
    tile_log2: int | None = None,
    dims_per_pass: int | None = None,
) -> KernelCost:
    """Cost of low-degree extension: iNTT at ``n`` then NTT^NR at ``kn``."""
    intt_part = ntt_cost(
        log_n_in, batch, hw, name=f"{name}.intt",
        tile_log2=tile_log2, dims_per_pass=dims_per_pass,
    )
    ntt_part = ntt_cost(
        log_n_in + rate_bits, batch, hw, name=f"{name}.ntt",
        tile_log2=tile_log2, dims_per_pass=dims_per_pass,
    )
    return KernelCost(
        name=name,
        kind=KIND_NTT,
        compute_cycles=intt_part.compute_cycles + ntt_part.compute_cycles,
        mem_bytes=intt_part.mem_bytes + ntt_part.mem_bytes,
        mem_efficiency=NTT_MEM_EFFICIENCY,
        mult_ops=intt_part.mult_ops + ntt_part.mult_ops,
        detail={"log_n_in": log_n_in, "rate_bits": rate_bits, "batch": batch},
    )


def bit_reverse_shuffle_groups(log_n: int, hw: HwConfig) -> int:
    """Elements per on-chip shuffle group for NTT^NR writeback.

    The decomposition's outermost dimension owns the high index bits, so
    after bit reversal those become the low bits: a local shuffle of
    ``2**(outermost dim)`` elements in the scratchpad restores long
    sequential write bursts (paper Section 5.1 "NTT variants").
    """
    dims = ntt_dims(log_n, hw)
    return 1 << dims[-1]
