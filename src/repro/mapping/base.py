"""Common cost abstraction for kernel mappings.

Every mapping strategy reduces to a :class:`KernelCost`: how many
cycles the mapped kernel needs on the VSAs (compute bound), how many
DRAM bytes it moves and at what efficiency (memory bound), and how many
modular multiplications it performs (for utilisation accounting).

The double-buffered scratchpad overlaps transfers with compute, so a
kernel's elapsed time is ``max(compute_cycles, memory_cycles)`` -- the
same first-order model a cycle-accurate simulator converges to for
streaming kernels, and the mechanism behind every number in the paper's
Tables 3-4 and Figures 8-10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import HwConfig

#: Kernel classes used in the paper's breakdowns.
KIND_NTT = "ntt"
KIND_HASH = "hash"
KIND_POLY = "poly"
KIND_TRANSFORM = "transform"
ALL_KINDS = (KIND_NTT, KIND_HASH, KIND_POLY, KIND_TRANSFORM)


@dataclass(frozen=True)
class KernelCost:
    """Resource demand of one mapped kernel instance."""

    name: str
    kind: str
    #: Cycles the VSAs are busy if memory were infinitely fast.
    compute_cycles: float
    #: Total DRAM traffic in bytes (reads + writes).
    mem_bytes: float
    #: Achievable fraction of peak bandwidth for this access pattern.
    mem_efficiency: float
    #: Total 64-bit modular multiplications (for VSA utilisation).
    mult_ops: float
    #: Extra metadata for reports.
    detail: dict = field(default_factory=dict)

    def memory_cycles(self, hw: HwConfig) -> float:
        """Cycles the DRAM needs at the kernel's effective bandwidth."""
        if self.mem_bytes <= 0:
            return 0.0
        eff = max(1e-6, min(1.0, self.mem_efficiency))
        return self.mem_bytes / (hw.bytes_per_cycle * eff)

    def elapsed_cycles(self, hw: HwConfig) -> float:
        """Elapsed cycles with double-buffered compute/memory overlap."""
        return max(self.compute_cycles, self.memory_cycles(hw), 1.0)

    def memory_utilization(self, hw: HwConfig) -> float:
        """Achieved / peak DRAM bandwidth while this kernel runs."""
        elapsed = self.elapsed_cycles(hw)
        return min(1.0, self.mem_bytes / (elapsed * hw.bytes_per_cycle))

    def vsa_utilization(self, hw: HwConfig) -> float:
        """Fraction of PE multiplier slots doing useful work."""
        elapsed = self.elapsed_cycles(hw)
        return min(1.0, self.mult_ops / (elapsed * hw.total_pes))

    def is_memory_bound(self, hw: HwConfig) -> bool:
        """Whether DRAM, not the VSAs, limits this kernel."""
        return self.memory_cycles(hw) > self.compute_cycles
