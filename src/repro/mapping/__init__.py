"""Kernel mapping strategies: functional emulators + cycle models."""

from .base import (
    ALL_KINDS,
    KIND_HASH,
    KIND_NTT,
    KIND_POLY,
    KIND_TRANSFORM,
    KernelCost,
)
from .merkle_mapping import emulate_subtree_construction, merkle_cost, plan_subtrees
from .params import (
    DEFAULT_MAPPING,
    MappingParams,
    MerkleMapping,
    NttMapping,
    PolyMapping,
    PoseidonMapping,
)
from .ntt_mapping import (
    MdcPipeline,
    NTT_MEM_EFFICIENCY,
    emulate_pipeline_matches_reference,
    lde_cost,
    ntt_cost,
    ntt_dims,
)
from .poly_mapping import (
    elementwise_cost,
    emulate_partial_products_3step,
    gate_access_efficiency,
    gate_eval_cost,
    partial_products_cost,
    partial_products_reference,
)
from .poseidon_mapping import (
    PERM_MULTS,
    PERM_PE_CYCLES,
    ROUND_SCHEMES,
    RoundScheme,
    chip_perm_throughput,
    emulate_full_round_matches,
    emulate_partial_rounds_match,
    poseidon_cost,
)
from .sumcheck_mapping import emulate_sumcheck_round, sumcheck_cost

__all__ = [
    "KernelCost",
    "ALL_KINDS",
    "MappingParams",
    "NttMapping",
    "PoseidonMapping",
    "MerkleMapping",
    "PolyMapping",
    "DEFAULT_MAPPING",
    "ROUND_SCHEMES",
    "RoundScheme",
    "KIND_NTT",
    "KIND_HASH",
    "KIND_POLY",
    "KIND_TRANSFORM",
    "MdcPipeline",
    "ntt_cost",
    "lde_cost",
    "ntt_dims",
    "NTT_MEM_EFFICIENCY",
    "emulate_pipeline_matches_reference",
    "poseidon_cost",
    "chip_perm_throughput",
    "PERM_PE_CYCLES",
    "PERM_MULTS",
    "emulate_full_round_matches",
    "emulate_partial_rounds_match",
    "merkle_cost",
    "plan_subtrees",
    "emulate_subtree_construction",
    "elementwise_cost",
    "gate_eval_cost",
    "gate_access_efficiency",
    "partial_products_cost",
    "emulate_partial_products_3step",
    "partial_products_reference",
    "sumcheck_cost",
    "emulate_sumcheck_round",
]
