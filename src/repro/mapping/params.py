"""Mapping parameters: the per-kernel knobs the autotuner searches.

The paper's core claim (Sections 4-5) is that kernel *mappings* -- how
an NTT decomposes over the MDC pipelines, which Poseidon round scheme
the PE grid runs, how Merkle subtrees and polynomial op-chains tile onto
the scratchpad -- are flexible, not baked into the hardware.  This
module gives every such choice an explicit, serialisable value so the
compiler can be steered by the autotuner (:mod:`repro.autotune`) instead
of hard-coded defaults.

A ``None`` field (or the family default) always reproduces the static
mapping the compiler shipped before the autotuner existed, bit for bit:
:data:`DEFAULT_MAPPING` is the identity point of the search space.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from ..hw.config import HwConfig

#: Poseidon round schemes the mapper understands (see
#: :data:`repro.mapping.poseidon_mapping.ROUND_SCHEMES`).
POSEIDON_SCHEME_DEFAULT = "sparse-12x3"


@dataclass(frozen=True)
class NttMapping:
    """SAM decomposition knobs for the batched NTT (Section 5.1).

    ``tile_log2`` overrides the per-dimension tile exponent (``None``
    uses ``hw.ntt_tile_log2``); ``dims_per_pass`` overrides how many
    decomposed dimensions one memory pass fuses (``None`` uses the
    scratchpad heuristic: 2 at >= 4 MB, else 1).
    """

    tile_log2: Optional[int] = None
    dims_per_pass: Optional[int] = None

    def invalid_reasons(self, hw: HwConfig) -> List[str]:
        """Cheap validity predicates, checked before any simulation."""
        reasons = []
        if self.tile_log2 is not None:
            if self.tile_log2 < 1:
                reasons.append("ntt.tile_log2 must be >= 1")
            # Each MDC stage delays up to 2**tile / 2 elements in one
            # PE's register file (see MdcPipeline.required_registers_per_pe).
            elif (1 << self.tile_log2) // 2 > hw.pe_registers:
                reasons.append(
                    f"ntt.tile_log2={self.tile_log2} needs "
                    f"{(1 << self.tile_log2) // 2} delay registers per PE, "
                    f"register file holds {hw.pe_registers}"
                )
        if self.dims_per_pass is not None:
            if self.dims_per_pass not in (1, 2):
                reasons.append("ntt.dims_per_pass must be 1 or 2")
            elif self.dims_per_pass == 2 and hw.scratchpad_bytes < (4 << 20):
                reasons.append(
                    "ntt.dims_per_pass=2 needs >= 4 MB scratchpad for the "
                    "inter-dimension tiles"
                )
        return reasons


@dataclass(frozen=True)
class PoseidonMapping:
    """Which round scheme the hash kernels run (Section 5.2)."""

    scheme: str = POSEIDON_SCHEME_DEFAULT


@dataclass(frozen=True)
class MerkleMapping:
    """Merkle subtree tiling (Section 5.3).

    ``subtree_div_log2`` shrinks the scratchpad-sized subtree by that
    power of two; smaller subtrees mean more root-level DRAM round
    trips (0 = the largest subtree that fits, the static default).
    """

    subtree_div_log2: int = 0

    def invalid_reasons(self, hw: HwConfig) -> List[str]:
        """Cheap validity predicates, checked before any simulation."""
        if self.subtree_div_log2 < 0 or self.subtree_div_log2 > 8:
            return ["merkle.subtree_div_log2 must be in 0..8"]
        return []


@dataclass(frozen=True)
class PolyMapping:
    """Element-wise chain tiling (Section 5.4).

    ``chain_split`` breaks one fused operand chain into that many
    segments, spilling one intermediate vector between segments but
    shrinking the per-tile operand set (pays off only when the full set
    starves the scratchpad; 1 = fully fused, the static default).
    """

    chain_split: int = 1

    def invalid_reasons(self, hw: HwConfig) -> List[str]:
        """Cheap validity predicates, checked before any simulation."""
        if self.chain_split < 1 or self.chain_split > 16:
            return ["poly.chain_split must be in 1..16"]
        return []


@dataclass(frozen=True)
class MappingParams:
    """One point in the full kernel-mapping space."""

    ntt: NttMapping = field(default_factory=NttMapping)
    poseidon: PoseidonMapping = field(default_factory=PoseidonMapping)
    merkle: MerkleMapping = field(default_factory=MerkleMapping)
    poly: PolyMapping = field(default_factory=PolyMapping)

    def with_family(self, family: str, params) -> "MappingParams":
        """A copy with one kernel family's knobs replaced."""
        if family not in ("ntt", "poseidon", "merkle", "poly"):
            raise ValueError(f"unknown mapping family {family!r}")
        return replace(self, **{family: params})

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (stored in the tuning cache)."""
        return {
            "ntt": {
                "tile_log2": self.ntt.tile_log2,
                "dims_per_pass": self.ntt.dims_per_pass,
            },
            "poseidon": {"scheme": self.poseidon.scheme},
            "merkle": {"subtree_div_log2": self.merkle.subtree_div_log2},
            "poly": {"chain_split": self.poly.chain_split},
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "MappingParams":
        """Inverse of :meth:`to_dict`; missing families take defaults."""
        ntt = d.get("ntt", {})
        return cls(
            ntt=NttMapping(
                tile_log2=ntt.get("tile_log2"),
                dims_per_pass=ntt.get("dims_per_pass"),
            ),
            poseidon=PoseidonMapping(
                scheme=d.get("poseidon", {}).get("scheme", POSEIDON_SCHEME_DEFAULT)
            ),
            merkle=MerkleMapping(
                subtree_div_log2=int(d.get("merkle", {}).get("subtree_div_log2", 0))
            ),
            poly=PolyMapping(
                chain_split=int(d.get("poly", {}).get("chain_split", 1))
            ),
        )

    def invalid_reasons(self, hw: HwConfig) -> List[str]:
        """All validity violations of this point on ``hw``."""
        reasons = list(self.ntt.invalid_reasons(hw))
        reasons += self.merkle.invalid_reasons(hw)
        reasons += self.poly.invalid_reasons(hw)
        return reasons


#: The static mappings the compiler shipped before the autotuner: the
#: identity point every search starts from and must never regress.
DEFAULT_MAPPING = MappingParams()
