"""Poseidon hash mapping (paper Section 5.2, Figure 5).

Functional emulators for the three round schemes -- validated against
the reference permutation -- plus the per-permutation cost constants the
hash/Merkle cycle models use.

Region budget per permutation (grid cells are PE-cycles at one state
per cycle):

* **full round**: a 4-PE S-box chain per lane (``x^7`` in 4 multiplies)
  plus the 12x12 weight-stationary MDS multiply = 12x16 PEs, folded
  onto a 12x8 region by running two consecutive operations per PE
  (2 cycles/state) -> 192 PE-cycles per round, 8 rounds;
* **pre-partial round**: constant add fused into the adders of the
  12x12 matrix multiply -> 144 PE-cycles;
* **partial round**: the 12x3 scheme of Figure 5b (S-box column,
  reverse-link distribute/accumulate column, scalar-vector column),
  four consecutive rounds per 12x12 array -> 36 PE-cycles per round,
  22 rounds, 145-cycle latency per 4-round block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..field import gl64, goldilocks as gl
from ..hashing.constants import WIDTH, mds_matrix, round_constants
from ..hashing.optimized import SparseRound, optimized_params, sparse_round_apply
from ..hashing.poseidon import full_round
from ..hw.config import HwConfig
from .base import KIND_HASH, KernelCost

#: PE-cycles one permutation occupies on the VSAs.
PERM_PE_CYCLES = 8 * 192 + 144 + 22 * 36  # = 2472
#: Modular multiplies per permutation (S-boxes, MDS, sparse rounds).
PERM_MULTS = 8 * 192 + 144 + 22 * 27  # = 2274
#: Pipeline latency of one 4-partial-round block (paper Section 5.2).
PARTIAL_BLOCK_LATENCY = 145


@dataclass(frozen=True)
class RoundScheme:
    """One way of laying the permutation's rounds onto the PE grid."""

    name: str
    #: PE-cycles one permutation occupies on the VSAs under this scheme.
    pe_cycles: int
    #: Modular multiplies per permutation.
    mults: int
    #: ``ii`` of the S-box pipeline microcode this scheme assumes
    #: (:func:`repro.mapping.microcode_schedules.build_sbox_pipeline`).
    sbox_ii: int = 2


#: Round schemes the mapper understands, keyed by name.
#:
#: * ``sparse-12x3`` -- the paper's Figure 5b scheme (the default):
#:   sparse partial rounds on a 12x3 region, S-box pipeline at
#:   initiation interval 2.
#: * ``dense-partial`` -- the naive scheme: every partial round pays a
#:   full 12x12 dense MDS multiply (144 PE-cycles) plus a 4-PE S-box
#:   chain; no pre-matrix.  Always valid, always slower -- the point the
#:   paper's Section 5.2 optimisation beats.
#: * ``sparse-12x3-ii1`` -- a hypothetical Figure 5b variant running the
#:   S-box pipeline at initiation interval 1 (half the partial-round
#:   cycles on paper).  Its microcode double-drives the down links, so
#:   the schedule sanitizer rejects it before it ever reaches the
#:   simulator -- the autotuner's cheap-rejection path.
ROUND_SCHEMES = {
    "sparse-12x3": RoundScheme("sparse-12x3", PERM_PE_CYCLES, PERM_MULTS, sbox_ii=2),
    "dense-partial": RoundScheme(
        "dense-partial", 8 * 192 + 22 * (144 + 4), 8 * 192 + 22 * (144 + 4)
    ),
    "sparse-12x3-ii1": RoundScheme(
        "sparse-12x3-ii1", 8 * 192 + 144 + 22 * 18, PERM_MULTS, sbox_ii=1
    ),
}

#: Sequential efficiency of level-order Merkle traffic.
HASH_MEM_EFFICIENCY = 0.85


def emulate_sbox_chain(x: int) -> int:
    """The 4-PE S-box chain: ``a=x^2; b=a^2; c=b*a; out=c*x``.

    Each step is one PE's multiplier; ``x`` rides the systolic link
    alongside the partials.  Equals ``x**7``.
    """
    a = gl.mul(x, x)
    b = gl.mul(a, a)
    c = gl.mul(b, a)
    return gl.mul(c, x)


def emulate_full_round_region(states: np.ndarray, round_index: int) -> np.ndarray:
    """Emulate the 12x8 folded full-round region on a batch of states.

    Stage 1 (rows of S-box chains): add the round constant and run the
    4-PE chain per lane.  Stage 2 (12x12 systolic, weight-stationary):
    multiply by the MDS matrix with partial sums accumulating down the
    columns.  Matches :func:`repro.hashing.poseidon.full_round`.
    """
    full_rc, _ = round_constants()
    rc = full_rc[round_index]
    states = np.atleast_2d(np.asarray(states, dtype=np.uint64))
    after_sbox = np.empty_like(states)
    for lane in range(WIDTH):
        for s in range(states.shape[0]):
            val = gl.add(int(states[s, lane]), int(rc[lane]))
            after_sbox[s, lane] = emulate_sbox_chain(val)
    # Weight-stationary systolic MDS: column j accumulates row partials.
    mds = mds_matrix()
    out = gl64.zeros(states.shape)
    for j in range(WIDTH):
        acc = gl64.zeros(states.shape[0])
        for i in range(WIDTH):
            acc = gl64.add(acc, gl64.mul(after_sbox[:, i], mds[i, j]))
        out[:, j] = acc
    return out


def emulate_partial_round_region(state: np.ndarray, rnd: SparseRound) -> np.ndarray:
    """Emulate the 12x3 partial-round scheme of Figure 5b for one state.

    Column 1 (top-down pipeline): S-box ``state[0]`` and add the round
    constant.  Column 2: the reverse links distribute the result to all
    rows while the ``v`` (col_hat) dot product accumulates bottom-up to
    the top PE, forming output lane 0.  Column 3: each row computes the
    scalar-vector multiply-add ``state[0] * u[j] + state[j]``.
    """
    state = np.asarray(state, dtype=np.uint64).reshape(WIDTH)
    # Column 1: scalar pipeline on lane 0.
    lane0 = gl.add(emulate_sbox_chain(int(state[0])), rnd.post_constant)
    # Column 2a: reverse links broadcast lane0 to every row.
    distributed = [lane0] * (WIDTH - 1)
    # Column 2b: dot product v . state[1:] accumulated bottom-up.
    acc = 0
    for i in range(WIDTH - 2, -1, -1):  # bottom row first, climbing up
        acc = gl.add(acc, gl.mul(int(state[i + 1]), int(rnd.col_hat[i])))
    out0 = gl.add(gl.mul(lane0, rnd.m00), acc)
    # Column 3: scalar-vector multiply-add per row.
    rest = [
        gl.add(gl.mul(distributed[j], int(rnd.row[j])), int(state[j + 1]))
        for j in range(WIDTH - 1)
    ]
    return np.array([out0] + rest, dtype=np.uint64)


def emulate_partial_rounds_match(state: np.ndarray) -> bool:
    """All 22 emulated partial rounds equal the optimised sparse rounds."""
    params = optimized_params()
    a = np.asarray(state, dtype=np.uint64).reshape(WIDTH).copy()
    b = a.copy()
    for rnd in params.rounds:
        a = emulate_partial_round_region(a, rnd)
        b = sparse_round_apply(b[None, :], rnd)[0]
        if not np.array_equal(a, b):
            return False
    return True


def emulate_full_round_matches(states: np.ndarray, round_index: int) -> bool:
    """The emulated full-round region equals the reference full round."""
    full_rc, _ = round_constants()
    ref = full_round(np.atleast_2d(np.asarray(states, dtype=np.uint64)), full_rc[round_index])
    return bool(np.array_equal(emulate_full_round_region(states, round_index), ref))


def chip_perm_throughput(hw: HwConfig) -> float:
    """Sustained permutations per cycle across all VSAs."""
    return hw.total_pes / PERM_PE_CYCLES


def poseidon_cost(
    num_perms: float,
    hw: HwConfig,
    input_bytes: float = 0.0,
    output_bytes: float = 0.0,
    name: str = "poseidon",
    scheme: str = "sparse-12x3",
) -> KernelCost:
    """Cost of a batch of permutations plus its DRAM traffic.

    ``scheme`` names a :data:`ROUND_SCHEMES` entry (the autotuner's
    round-scheme knob); the default reproduces the static mapping.
    """
    try:
        sc = ROUND_SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown Poseidon round scheme {scheme!r} "
            f"(choose from: {', '.join(sorted(ROUND_SCHEMES))})"
        ) from None
    return KernelCost(
        name=name,
        kind=KIND_HASH,
        compute_cycles=num_perms * sc.pe_cycles / hw.total_pes,
        mem_bytes=input_bytes + output_bytes,
        mem_efficiency=HASH_MEM_EFFICIENCY,
        mult_ops=num_perms * sc.mults,
        detail={"perms": num_perms, "scheme": sc.name},
    )
