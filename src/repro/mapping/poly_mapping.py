"""Polynomial-operation mapping (paper Section 5.4, Figure 6).

Three sub-kernels:

* **element-wise chains** -- vector mode across all VSA columns, with
  compiler tiling collapsing DRAM traffic to one read per operand and
  one result write (:func:`repro.hw.scratchpad.tile_plan`);
* **gate-constraint evaluation** -- element-wise compute but with short
  pseudo-random accesses whose efficiency is *measured* on the
  Ramulator-lite model as a function of the circuit width (this is the
  mechanism behind the paper's "MVM's width-400 circuit lifts poly
  bandwidth utilisation" observation, Section 7.1);
* **partial products** (Equations (1)-(2)) -- the three-step group
  scheme of Figure 6b, emulated functionally and validated against the
  direct prefix product.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..field import gl64, goldilocks as gl
from ..hw.config import HwConfig
from ..hw.memory import DramModel, random_chunks
from ..hw.scratchpad import tile_plan
from .base import KIND_POLY, KernelCost

#: Efficiency of long streaming vector operands (tiled, double buffered;
#: interleaved multi-operand read streams plus the result write stream
#: land close to the NTT's read/write-turnaround efficiency).
STREAM_MEM_EFFICIENCY = 0.5

#: Chunks each PE accumulates locally in the partial-product scheme.
PP_GROUP_SIZE = 32


@lru_cache(maxsize=64)
def gate_access_efficiency(width: int) -> float:
    """DRAM efficiency for width-``width``-element pseudo-random chunks.

    Measured on the Ramulator-lite model; memoised per width.  Short
    chunks (a few elements) land near 0.1, a 135-wide circuit near 0.16,
    MVM's 400-wide circuit near 0.22 -- reproducing the poly column of
    paper Table 4.
    """
    chunk_bytes = max(16, width * 8)
    model = DramModel()
    return max(
        0.05, model.efficiency(random_chunks(2000, chunk_bytes, 1 << 26, seed=1))
    )


def elementwise_cost(
    vector_len: int,
    num_ops: int,
    num_operands: int,
    hw: HwConfig,
    mult_fraction: float = 0.5,
    name: str = "poly.elementwise",
    chain_split: int = 1,
) -> KernelCost:
    """Cost of a fused chain of element-wise vector operations.

    ``num_ops`` operations over vectors of ``vector_len`` touching
    ``num_operands`` distinct operand vectors.  ``chain_split`` breaks
    the chain into that many segments (the autotuner's tiling knob):
    each segment resident-sets fewer operands -- bigger tiles -- but one
    intermediate vector spills to DRAM between segments.  1 is the fully
    fused static default.
    """
    total_ops = num_ops * vector_len
    compute_cycles = total_ops / hw.total_pes
    min_tile = 512

    def _segment_bytes(operands: int, ops: int) -> float:
        plan = tile_plan(vector_len, operands, ops, hw.scratchpad_bytes)
        spill_factor = 1.0
        # If tiles shrink below the DRAM-friendly minimum, the operand
        # set no longer fits on-chip at once: the compiler splits the op
        # chain and spills intermediates, multiplying traffic
        # (scratchpad sensitivity).
        if plan.tile_elems < min_tile:
            spill_factor = min(4.0, min_tile / max(1, plan.tile_elems))
        return plan.dram_bytes * spill_factor, plan.tile_elems

    if chain_split <= 1:
        mem_bytes, tile_elems = _segment_bytes(num_operands, num_ops)
    else:
        k = min(chain_split, max(1, num_operands))
        seg_operands = -(-num_operands // k) + 1  # carried intermediate
        seg_ops = max(1, -(-num_ops // k))
        seg_bytes, tile_elems = _segment_bytes(seg_operands, seg_ops)
        # k segments plus (k-1) intermediate spill round trips.
        mem_bytes = k * seg_bytes + (k - 1) * 2 * vector_len * 8
    return KernelCost(
        name=name,
        kind=KIND_POLY,
        compute_cycles=compute_cycles,
        mem_bytes=mem_bytes,
        mem_efficiency=STREAM_MEM_EFFICIENCY,
        mult_ops=total_ops * mult_fraction,
        detail={
            "vector_len": vector_len,
            "num_ops": num_ops,
            "tile": tile_elems,
            "chain_split": chain_split,
        },
    )


#: How many times each row's wire data is re-fetched across gate types.
#: Plonky2 evaluates every gate's constraints over all rows; even with
#: the compiler pinning wire data on-chip, distinct gate evaluators
#: re-touch overlapping wire subsets several times.
GATE_REREAD_FACTOR = 3.5


def gate_eval_cost(
    lde_size: int,
    ops_per_row: int,
    width: int,
    hw: HwConfig,
    name: str = "poly.gate_eval",
) -> KernelCost:
    """Cost of evaluating gate constraints over the LDE domain.

    Reads the ``width`` wire values of each row (pseudo-randomly placed
    due to bit-reversed orders, re-read across gate types), evaluates
    ``ops_per_row`` field operations, writes one constraint-blend value
    per row.  A larger scratchpad pins more wire data on-chip (the
    compiler's hand-crafted replacement policy, Section 5.4) and lowers
    the re-read factor; a smaller one raises it.
    """
    spad_scale = min(2.5, max(0.5, ((8 << 20) / hw.scratchpad_bytes) ** 0.5))
    mem_bytes = lde_size * (width * 8 * GATE_REREAD_FACTOR * spad_scale + 16)
    total_ops = lde_size * ops_per_row
    return KernelCost(
        name=name,
        kind=KIND_POLY,
        compute_cycles=total_ops / hw.total_pes,
        mem_bytes=mem_bytes,
        mem_efficiency=gate_access_efficiency(width),
        mult_ops=total_ops * 0.5,
        detail={"lde_size": lde_size, "ops_per_row": ops_per_row, "width": width},
    )


# -- partial products (Figure 6) -----------------------------------------------


def emulate_partial_products_3step(h: np.ndarray, num_pes: int | None = None) -> np.ndarray:
    """The three-step group scheme for prefix products (Figure 6b).

    Groups of ``PP_GROUP_SIZE`` chunk-products live in each PE's register
    file.  Step 1: each PE computes its local prefix products.  Step 2:
    the PEs' last products propagate through neighbour links, each PE
    multiplying in everything before it.  Step 3: each PE scales its
    local prefixes by the incoming product.  Matches the sequential
    definition ``PP[i] = PP[i-1] * h[i]`` exactly.
    """
    h = np.asarray(h, dtype=np.uint64)
    n = h.shape[0]
    if n % PP_GROUP_SIZE:
        raise ValueError("chunk count must divide into whole PE groups")
    groups = h.reshape(-1, PP_GROUP_SIZE)
    # Step 1: local prefix products inside every PE (parallel across PEs).
    local = groups.copy()
    for j in range(1, PP_GROUP_SIZE):
        local[:, j] = gl64.mul(local[:, j - 1], groups[:, j])
    # Step 2: propagate each PE's last product along the neighbour chain.
    carry_in = np.ones(groups.shape[0], dtype=np.uint64)
    carry = 1
    for k in range(groups.shape[0]):
        carry_in[k] = carry
        carry = gl.mul(carry, int(local[k, -1]))
    # Step 3: scale local prefixes by the received carry.
    return gl64.mul(local, carry_in[:, None]).reshape(n)


def partial_products_reference(h: np.ndarray) -> np.ndarray:
    """Direct sequential prefix product (Equation (2))."""
    out = np.empty_like(h)
    acc = 1
    for i, v in enumerate(np.asarray(h, dtype=np.uint64).tolist()):
        acc = gl.mul(acc, v)
        out[i] = acc
    return out


def partial_products_cost(
    n_rows: int, num_wires: int, hw: HwConfig, name: str = "poly.partial_products"
) -> KernelCost:
    """Cost of the full Z computation over ``n_rows`` rows.

    Per row: blend ``f`` and ``g`` (2 * 3 wires: one multiply and two
    adds each, then chain products), one inversion-by-multiplication
    amortised via batch inversion (~3 multiplies), quotient chunking and
    the three-step prefix scheme.
    """
    ops_per_row = num_wires * 6 + 8
    total_ops = n_rows * ops_per_row
    # Traffic: read wires + sigma labels, write z.
    mem_bytes = n_rows * (2 * num_wires * 8 + 16)
    # Step 2's neighbour chain serialises across PE groups.
    chain_cycles = n_rows / PP_GROUP_SIZE
    return KernelCost(
        name=name,
        kind=KIND_POLY,
        compute_cycles=max(total_ops / hw.total_pes, chain_cycles),
        mem_bytes=mem_bytes,
        mem_efficiency=STREAM_MEM_EFFICIENCY,
        mult_ops=total_ops * 0.7,
        detail={"rows": n_rows},
    )
