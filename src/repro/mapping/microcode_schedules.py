"""PE-grid schedules for the mapped kernels (compiler backend output).

These are the static per-PE instruction schedules a UniZK compiler
backend emits, executed on the cycle-stepped
:class:`repro.hw.microcode.GridEmulator` and validated against the
reference mathematics in the tests:

* :func:`run_matvec` -- the weight-stationary systolic matrix-vector
  product behind every Poseidon MDS multiply (Figure 5a's second
  stage; Section 4's "standard matrix multiplications");
* :func:`run_sbox_pipeline` -- the pipelined ``x^7`` scalar chain of
  the partial round's first PE column (Figure 5b), initiation
  interval 2 (the down link carries the partial and the original ``x``
  in alternate slots);
* :func:`run_reverse_dot` -- the bottom-up dot-product accumulation
  over the reverse links (Figure 5b's ``v`` column);
* :func:`run_vector_mac` -- vector mode: each column as an independent
  vector unit running fused multiply-adds.

Each kernel is split into a ``build_*`` function producing a
:class:`BuiltSchedule` (emulator + programs + boundary feeds, with
stationary operands seeded through :meth:`GridEmulator.preload` so the
sanitizer's use-before-def rule is armed) and a thin ``run_*`` wrapper
that executes it and extracts the results.  The static-analysis runner
sanitizes every built schedule without executing a cycle
(:mod:`repro.analysis.schedules`).

All schedules are accumulator-clean: chains that start from nothing use
an explicit ``zero`` source rather than reading an undriven latch (the
architectural "reads as zero" default), so the sanitizer's
``sched.latch-use-before-def`` rule holds with no suppressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..field import goldilocks as gl
from ..hw.microcode import (
    IN_BOTTOM,
    IN_LEFT,
    IN_TOP,
    NOP,
    ZERO,
    GridEmulator,
    Instr,
    imm,
    reg,
)

Programs = Dict[Tuple[int, int], list]


@dataclass
class BuiltSchedule:
    """A schedule ready to execute (or to sanitize without executing)."""

    name: str
    emu: GridEmulator
    programs: Programs
    left_inputs: Dict[int, List[int]] = field(default_factory=dict)
    top_inputs: Dict[int, List[int]] = field(default_factory=dict)
    num_cycles: int = 0

    def run(self) -> int:
        """Execute on the grid; returns cycles run."""
        return self.emu.run(
            self.programs,
            left_inputs=self.left_inputs,
            top_inputs=self.top_inputs,
            num_cycles=self.num_cycles,
        )


def _pad(program: list, start: int) -> list:
    """Prefix a per-cycle program with idle cycles."""
    return [NOP] * start + program


# ---------------------------------------------------------------------------
# Weight-stationary systolic matvec
# ---------------------------------------------------------------------------


def build_matvec(weights: np.ndarray, states: np.ndarray) -> BuiltSchedule:
    """Build the weight-stationary matvec schedule (see :func:`run_matvec`)."""
    n = weights.shape[0]
    t_count = states.shape[0]
    emu = GridEmulator(rows=n, cols=n, register_words=max(64, t_count + 2))
    for i in range(n):
        for j in range(n):
            emu.preload((i, j), 0, int(weights[i, j]))
    total = t_count + 2 * n + 1
    programs: Programs = {}
    for i in range(n):
        for j in range(n):
            prog = []
            # Row 0 starts each column's accumulation from an explicit
            # zero; rows below chain on the partial arriving from above.
            acc = ZERO if i == 0 else IN_TOP
            for cycle in range(total):
                s = cycle - i - j
                if 0 <= s < t_count:
                    compute = Instr(
                        "mac",
                        IN_LEFT,
                        reg(0),
                        acc,
                        dst_reg=(1 + s) if i == n - 1 else None,
                        out_down=True,
                    )
                    prog.append((compute, Instr("mov", IN_LEFT, out_right=True)))
                else:
                    prog.append(NOP)
            programs[(i, j)] = prog
    feeds = {
        i: [0] * i + [int(states[s, i]) for s in range(t_count)] for i in range(n)
    }
    return BuiltSchedule(
        name="matvec",
        emu=emu,
        programs=programs,
        left_inputs=feeds,
        num_cycles=total,
    )


def run_matvec(weights: np.ndarray, states: np.ndarray) -> Tuple[np.ndarray, int]:
    """Stream row-vector x matrix products through an ``n x n`` grid.

    PE ``(i, j)`` holds ``W[i][j]`` stationary in register 0; state
    element ``i`` of state ``s`` enters row ``i`` at cycle ``s + i``
    (the classic input skew).  Each active PE fires one
    ``mac(in_left, W, acc)`` down its column and forwards the state
    element right -- exactly one multiplier and one adder-slot per
    cycle.  Column ``j`` finishes state ``s`` at the bottom row on
    cycle ``s + (n - 1) + j``.

    Returns ``(outputs, cycles)`` with
    ``out[s][j] = sum_i states[s][i] * W[i][j]``.
    """
    n = weights.shape[0]
    t_count = states.shape[0]
    built = build_matvec(weights, states)
    cycles = built.run()
    out = np.zeros((t_count, n), dtype=np.uint64)
    for j in range(n):
        for s in range(t_count):
            out[s, j] = built.emu.regs[(n - 1, j)][1 + s]
    return out, cycles


# ---------------------------------------------------------------------------
# S-box pipeline (partial round, first PE column of Figure 5b)
# ---------------------------------------------------------------------------


def build_sbox_pipeline(
    values: List[int], post_constant: int = 0, ii: int = 2
) -> BuiltSchedule:
    """Build the pipelined S-box schedule (see :func:`run_sbox_pipeline`).

    ``ii`` is the initiation interval between consecutive elements.  The
    shipped schedule uses ``ii=2`` (the down link carries the partial
    and the original ``x`` in alternate slots).  ``ii=1`` is the
    candidate the autotuner enumerates for the ``sparse-12x3-ii1``
    round scheme: element ``s``'s compute cycle then coincides with
    element ``s+1``'s transport cycle, and both drive the down latch --
    a genuine ``sched.latch-double-drive`` hazard the sanitizer rejects
    before the candidate ever reaches the simulator.
    """
    if ii < 1:
        raise ValueError("initiation interval must be >= 1")
    t_count = len(values)
    rows = 5
    emu = GridEmulator(rows=rows, cols=1, register_words=max(64, t_count + 12))
    total = ii * t_count + rows + 2
    programs: Programs = {}

    computes = {
        0: Instr("mul", reg(2), reg(2), out_down=True),  # a = x^2
        1: Instr("mul", IN_TOP, reg(2), out_down=True),  # b = a * x
        2: Instr("mul", IN_TOP, IN_TOP, out_down=True),  # c = b^2
        3: Instr("mul", IN_TOP, reg(2), out_down=True),  # t = c * x
    }
    for r in range(4):
        slots: Dict[int, List[Instr]] = {}
        for s in range(t_count):
            transport_cycle = ii * s + r
            compute_cycle = transport_cycle + 1
            slots.setdefault(transport_cycle, []).extend(
                [
                    Instr("mov", IN_TOP, out_down=True),  # forward x downward
                    Instr("mov", IN_TOP, dst_reg=2),  # stash x locally
                ]
            )
            slots.setdefault(compute_cycle, []).append(computes[r])
        prog = [NOP] * total
        for cycle, ops in slots.items():
            prog[cycle] = ops[0] if len(ops) == 1 else tuple(ops)
        programs[(r, 0)] = prog
    # Row 4: the partial arrives on cycle ii*s + 5; add the constant.
    prog4 = [NOP] * total
    for s in range(t_count):
        prog4[ii * s + 5] = Instr("add", IN_TOP, imm(post_constant), dst_reg=10 + s)
    programs[(4, 0)] = prog4

    # Feed x_s at the top on cycle ii*s (row 0's transport slot).
    feed = [0] * total
    for s, v in enumerate(values):
        feed[ii * s] = gl.canonical(int(v))
    return BuiltSchedule(
        name="sbox_pipeline" if ii == 2 else f"sbox_pipeline_ii{ii}",
        emu=emu,
        programs=programs,
        top_inputs={0: feed},
        num_cycles=total,
    )


def run_sbox_pipeline(values: List[int], post_constant: int = 0) -> Tuple[List[int], int]:
    """Pipelined ``x^7 + post_constant`` on a 5-PE column.

    Chain: ``a = x^2``, ``b = a*x``, ``c = b^2``, ``t = c*x``,
    ``t + const`` -- four multiplies plus a constant add, one PE each
    (the paper's "row of 4 PEs" plus the fused constant adder).

    The single down link per PE carries two values per element (the
    running partial and the original ``x`` needed again at stages 2 and
    4), so the pipeline runs at initiation interval 2: even slot of
    element ``s`` at row ``r`` (cycle ``2s + r``) transports/stashes
    ``x``, the odd slot (cycle ``2s + r + 1``) computes.

    Returns ``(outputs, cycles)``.
    """
    t_count = len(values)
    built = build_sbox_pipeline(values, post_constant)
    cycles = built.run()
    outputs = [built.emu.regs[(4, 0)][10 + s] for s in range(t_count)]
    return outputs, cycles


# ---------------------------------------------------------------------------
# Reverse-link dot-product accumulation (Figure 5b's `v` column)
# ---------------------------------------------------------------------------


def build_reverse_dot(state: List[int], coeffs: List[int]) -> BuiltSchedule:
    """Build the reverse-link dot schedule (see :func:`run_reverse_dot`)."""
    n = len(state)
    emu = GridEmulator(rows=n, cols=1, reverse_link_cols=(0,))
    for r in range(n):
        emu.preload((r, 0), 0, int(coeffs[r]))
        emu.preload((r, 0), 1, int(state[r]))
    programs: Programs = {}
    for r in range(n):
        fire_cycle = n - 1 - r  # bottom row first
        # The bottom row starts the accumulation from an explicit zero;
        # rows above chain on the partial arriving over the up link.
        acc = ZERO if r == n - 1 else IN_BOTTOM
        programs[(r, 0)] = _pad(
            [Instr("mac", reg(1), reg(0), acc, out_up=True)], fire_cycle
        )
    return BuiltSchedule(
        name="reverse_dot", emu=emu, programs=programs, num_cycles=n + 1
    )


def run_reverse_dot(state: List[int], coeffs: List[int]) -> Tuple[int, int]:
    """Accumulate ``sum_r state[r] * coeffs[r]`` bottom-up via up links.

    Row ``r`` holds ``coeffs[r]`` in register 0 and ``state[r]`` in
    register 1; starting from the bottom row, each PE fires one
    ``mac(state, coeff, acc)`` upward; the total exits at the top
    boundary after ``n`` cycles.  Returns ``(dot_value, cycles)``.
    """
    built = build_reverse_dot(state, coeffs)
    cycles = built.run()
    if not built.emu.top_outputs:
        raise RuntimeError("dot product never reached the top boundary")
    _, _, value = built.emu.top_outputs[-1]
    return value, cycles


# ---------------------------------------------------------------------------
# Vector mode: one column as a vector unit
# ---------------------------------------------------------------------------


def build_vector_mac(
    xs: List[int], ys: List[int], zs: List[int]
) -> BuiltSchedule:
    """Build the vector-mode mac schedule (see :func:`run_vector_mac`)."""
    n = len(xs)
    if not (len(ys) == len(zs) == n):
        raise ValueError("operand vectors must have equal length")
    rows = 12
    per_lane = -(-n // rows) if n else 0
    emu = GridEmulator(rows=rows, cols=1, register_words=max(64, per_lane + 12))
    programs: Programs = {}
    feeds: Dict[int, List[int]] = {}
    for r in range(rows):
        lane_elems = [e for e in range(n) if e % rows == r]
        prog = []
        stream: List[int] = []
        for k, e in enumerate(lane_elems):
            stream.extend([int(xs[e]), int(ys[e]), int(zs[e])])
            prog.append(Instr("mov", IN_LEFT, dst_reg=0))
            prog.append(Instr("mov", IN_LEFT, dst_reg=1))
            prog.append(Instr("mac", reg(0), reg(1), IN_LEFT, dst_reg=10 + k))
        if prog:
            programs[(r, 0)] = prog
            feeds[r] = stream
    total = max((len(p) for p in programs.values()), default=0)
    return BuiltSchedule(
        name="vector_mac",
        emu=emu,
        programs=programs,
        left_inputs=feeds,
        num_cycles=total,
    )


def run_vector_mac(
    xs: List[int], ys: List[int], zs: List[int]
) -> Tuple[List[int], int]:
    """Element-wise ``x*y + z`` across a 12-PE column in vector mode.

    Elements strip-mine across rows (element ``e`` to lane ``e % 12``);
    each lane streams its operands from the left boundary over three
    cycles (x, y, z) and fires a fused ``mac`` on the third -- the
    chained-operation pattern of Section 5.4.

    Returns ``(outputs, cycles)``.
    """
    n = len(xs)
    built = build_vector_mac(xs, ys, zs)
    if not built.programs:
        return [], 0
    cycles = built.run()
    rows = built.emu.rows
    out = [0] * n
    counts = [0] * rows
    for e in range(n):
        r = e % rows
        out[e] = built.emu.regs[(r, 0)][10 + counts[r]]
        counts[r] += 1
    return out, cycles
