"""Sum-check protocol (the paper's generality extension, Algorithm 2)."""

from .protocol import (
    SumcheckError,
    SumcheckProof,
    fold_table,
    multilinear_eval,
    prove,
    verify,
)

__all__ = [
    "SumcheckProof",
    "SumcheckError",
    "prove",
    "verify",
    "fold_table",
    "multilinear_eval",
]
