"""The sum-check protocol (paper Section 8.1, Algorithm 2).

Newer hash-based protocols (Spartan, Binius, Basefold) rely on
sum-check; the paper argues UniZK's architecture generalises to it:
the per-round vector update is an element-wise kernel and the sum is a
systolic reduction.  This module implements the protocol itself --
Algorithm 2 verbatim as the prover's computation -- and a Fiat-Shamir
driven prover/verifier pair for multilinear claims.

The prover claims ``sum_{x in {0,1}^n} A~(x) = S`` where ``A~`` is the
multilinear extension of the table ``A``.  Each round sends the
restriction to the current variable (its values at 0 and 1); the
verifier checks consistency and folds with a random challenge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..field import gl64, goldilocks as gl
from ..hashing import Challenger


def fold_table(table: np.ndarray, r: int) -> np.ndarray:
    """One Algorithm-2 vector update:
    ``A[j] <- A[j] * (1 - r) + A[j + m/2] * r``."""
    half = table.shape[0] // 2
    lo = table[:half]
    hi = table[half:]
    one_minus_r = np.uint64(gl.sub(1, r))
    return gl64.add(
        gl64.mul(lo, one_minus_r), gl64.mul(hi, np.uint64(gl.canonical(r)))
    )


def multilinear_eval(table: np.ndarray, point: List[int]) -> int:
    """Evaluate the multilinear extension of ``table`` at ``point``.

    Variable 0 is the *most significant* index bit, matching the
    high/low-half split of Algorithm 2.
    """
    table = np.asarray(table, dtype=np.uint64)
    if table.shape[0] != 1 << len(point):
        raise ValueError("table size must be 2**len(point)")
    for r in point:
        table = fold_table(table, r)
    return int(table[0])


@dataclass
class SumcheckProof:
    """Transcript of the sum-check rounds (Algorithm 2's ``y[n][2]``)."""

    claimed_sum: int
    round_values: List[Tuple[int, int]]  # (y0, y1) per round
    final_value: int


def prove(
    table: np.ndarray,
    challenger: Challenger | None = None,
    on_fold: Optional[Callable[[int, np.ndarray], None]] = None,
) -> SumcheckProof:
    """Run the prover; returns the proof (Algorithm 2 with Fiat-Shamir).

    Each round reports ``y0 = sum(A[:m/2])`` and ``y1 = sum(A[m/2:])``,
    then folds with the transcript challenge.

    ``on_fold(round_index, folded_table)`` is called right after each
    fold, *before* the next round's values join the transcript.  A
    committed-sumcheck caller (the HyperPlonk-lite backend) uses it to
    Merkle-commit each folded level and absorb the cap into the shared
    challenger; the verifier mirrors the absorption through
    :func:`verify`'s ``on_challenge`` hook at the same transcript
    position.
    """
    table = np.asarray(table, dtype=np.uint64).copy()
    n = table.shape[0]
    if n == 0 or n & (n - 1):
        raise ValueError("table size must be a power of two")
    challenger = challenger or Challenger()
    claimed = int(gl64.sum_array(table))
    challenger.observe_element(claimed)
    rounds = []
    while table.shape[0] > 1:
        half = table.shape[0] // 2
        y0 = int(gl64.sum_array(table[:half]))
        y1 = int(gl64.sum_array(table[half:]))
        rounds.append((y0, y1))
        challenger.observe_element(y0)
        challenger.observe_element(y1)
        r = challenger.get_challenge()
        table = fold_table(table, r)
        if on_fold is not None:
            on_fold(len(rounds) - 1, table)
    return SumcheckProof(
        claimed_sum=claimed, round_values=rounds, final_value=int(table[0])
    )


class SumcheckError(Exception):
    """Raised when a sum-check transcript is inconsistent."""


def verify(
    proof: SumcheckProof,
    num_vars: int,
    challenger: Challenger | None = None,
    on_challenge: Optional[Callable[[int, int], None]] = None,
) -> List[int]:
    """Verify the round consistency; returns the challenge point.

    The caller must separately check ``proof.final_value`` against an
    oracle for the multilinear extension at the returned point (e.g. a
    polynomial-commitment opening, or direct evaluation in tests).

    ``on_challenge(round_index, r)`` is called right after each round's
    challenge is squeezed -- the mirror of :func:`prove`'s ``on_fold``
    hook, where a committed-sumcheck verifier absorbs the prover's
    per-level commitment caps at the identical transcript position.
    """
    if len(proof.round_values) != num_vars:
        raise SumcheckError("wrong number of rounds")
    challenger = challenger or Challenger()
    challenger.observe_element(proof.claimed_sum)
    expected = proof.claimed_sum
    point: List[int] = []
    for k, (y0, y1) in enumerate(proof.round_values):
        if gl.add(y0, y1) != expected:
            raise SumcheckError("round sum does not match the running claim")
        challenger.observe_element(y0)
        challenger.observe_element(y1)
        r = challenger.get_challenge()
        point.append(r)
        if on_challenge is not None:
            on_challenge(k, r)
        # Restriction is linear in the variable: g(r) = y0 (1 - r) + y1 r.
        expected = gl.add(gl.mul(y0, gl.sub(1, r)), gl.mul(y1, r))
    if proof.final_value != expected:
        raise SumcheckError("final value does not match the last claim")
    return point
