"""HyperPlonk-lite proof containers and setup artifacts.

Mirrors :mod:`repro.plonk.proof` for the sumcheck-native backend: the
setup output pairs the circuit with its Merkle-committed preprocessed
table, and the proof carries caps, the sumcheck transcript, the
per-round folded-level caps, and the query-time spot-check openings.
There is no FRI proof and no quotient commitment -- the evaluation
argument is the committed sumcheck itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..merkle import MerkleProof, MerkleTree
from ..plonk.circuit import Circuit
from ..sumcheck import SumcheckProof

#: Serialized size of one Poseidon digest / one field element.
DIGEST_BYTES = 32
ELEM_BYTES = 8


@dataclass(frozen=True)
class HyperPlonkConfig:
    """Knobs of the sumcheck-native prover.

    Deliberately tiny compared to :class:`~repro.fri.FriConfig`: with no
    low-degree extension there is no rate, no final polynomial, and no
    proof-of-work grinding -- just the Merkle cap height and how many
    fold-consistency spot checks the verifier demands.
    """

    cap_height: int = 1
    num_queries: int = 16


@dataclass
class HyperPlonkData:
    """Setup output: the circuit plus its preprocessed commitment.

    ``preprocessed`` Merkle-commits one row per gate holding the 5
    selector values followed by the 3 sigma labels (no LDE -- the leaves
    are the subgroup rows themselves).  ``sigmas``/``ids`` cache the
    (3, n) permutation label matrices so proving never re-derives them.
    """

    circuit: Circuit
    preprocessed: MerkleTree
    sigmas: np.ndarray
    ids: np.ndarray
    config: HyperPlonkConfig

    @property
    def verifier_data(self) -> "HyperPlonkVerifierData":
        """The subset of setup data the verifier needs."""
        return HyperPlonkVerifierData(
            preprocessed_cap=self.preprocessed.cap.copy(),
            n=self.circuit.n,
            num_public_inputs=len(self.circuit.public_input_rows),
            public_input_rows=list(self.circuit.public_input_rows),
            config=self.config,
        )


@dataclass
class HyperPlonkVerifierData:
    """Everything the verifier must know about a circuit."""

    preprocessed_cap: np.ndarray
    n: int
    num_public_inputs: int
    public_input_rows: List[int]
    config: HyperPlonkConfig


def _path_bytes(proof: MerkleProof) -> int:
    return int(proof.siblings.shape[0]) * DIGEST_BYTES


@dataclass
class HyperPlonkBaseOpening:
    """Openings of the base commitments at one hypercube row.

    ``z_next`` opens row ``(pos + 1) % n`` of the Z commitment so the
    verifier can recompute the wrap-around permutation constraint.
    """

    pre_row: np.ndarray  # (8,): 5 selectors + 3 sigma labels
    pre_proof: MerkleProof
    wires_row: np.ndarray  # (3,)
    wires_proof: MerkleProof
    z_value: int
    z_proof: MerkleProof
    z_next_value: int
    z_next_proof: MerkleProof

    def size_bytes(self) -> int:
        """Payload bytes: opened rows/values plus four Merkle paths."""
        total = (8 + 3 + 2) * ELEM_BYTES
        for proof in (self.pre_proof, self.wires_proof, self.z_proof, self.z_next_proof):
            total += _path_bytes(proof)
        return total


@dataclass
class HyperPlonkLevelOpening:
    """One folded level's spot check: the fold pair and its paths."""

    low_value: int
    high_value: int
    low_proof: MerkleProof
    high_proof: MerkleProof

    def size_bytes(self) -> int:
        """Payload bytes: the low/high pair plus both Merkle paths."""
        return 2 * ELEM_BYTES + _path_bytes(self.low_proof) + _path_bytes(self.high_proof)


@dataclass
class HyperPlonkQueryRound:
    """One fold-consistency query: base rows plus every committed level."""

    index: int
    base: List[HyperPlonkBaseOpening]  # the two base rows j, j + n/2
    levels: List[HyperPlonkLevelOpening]  # one per committed folded level

    def size_bytes(self) -> int:
        """Payload bytes: query index plus base and level openings."""
        total = 4  # the u32 query index
        total += sum(b.size_bytes() for b in self.base)
        total += sum(lv.size_bytes() for lv in self.levels)
        return total


@dataclass
class HyperPlonkProof:
    """A complete sumcheck-native proof."""

    wires_cap: np.ndarray
    z_cap: np.ndarray
    public_inputs: List[int]
    sumcheck: SumcheckProof
    level_caps: List[np.ndarray]
    query_rounds: List[HyperPlonkQueryRound]

    def size_bytes(self) -> int:
        """Serialized proof size (caps + sumcheck rounds + queries)."""
        total = 0
        for cap in (self.wires_cap, self.z_cap, *self.level_caps):
            total += int(np.atleast_2d(cap).shape[0]) * DIGEST_BYTES
        total += len(self.public_inputs) * ELEM_BYTES
        total += (2 + 2 * len(self.sumcheck.round_values)) * ELEM_BYTES
        total += sum(qr.size_bytes() for qr in self.query_rounds)
        return total
