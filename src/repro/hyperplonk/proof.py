"""HyperPlonk-lite proof containers and setup artifacts.

Mirrors :mod:`repro.plonk.proof` for the sumcheck-native backend: the
setup output pairs the circuit with its Merkle-committed preprocessed
table, and the proof carries caps, the sumcheck transcript, the
per-round folded-level caps, and the query-time spot-check openings.
There is no FRI proof and no quotient commitment -- the evaluation
argument is the committed sumcheck itself.

Query openings are *batched per tree* (format v2): instead of one
authentication path per opened leaf per query, each committed tree
ships a single :class:`HyperPlonkTreeOpening` -- the deduplicated
sorted index set, the opened leaf rows, and one
:class:`~repro.merkle.MerkleMultiProof` whose sibling nodes are shared
across every query that touches the tree.  The verifier re-derives the
expected index set from the transcript, so the indices carried here are
purely structural (they pin the row order) and any divergence rejects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from ..merkle import MerkleMultiProof, MerkleTree
from ..plonk.circuit import Circuit
from ..sumcheck import SumcheckProof

#: Serialized size of one Poseidon digest / one field element.
DIGEST_BYTES = 32
ELEM_BYTES = 8


@dataclass(frozen=True)
class HyperPlonkConfig:
    """Knobs of the sumcheck-native prover.

    Deliberately tiny compared to :class:`~repro.fri.FriConfig`: with no
    low-degree extension there is no rate, no final polynomial, and no
    proof-of-work grinding -- just the Merkle cap height and how many
    fold-consistency spot checks the verifier demands.
    """

    cap_height: int = 1
    num_queries: int = 16


@dataclass
class HyperPlonkData:
    """Setup output: the circuit plus its preprocessed commitment.

    ``preprocessed`` Merkle-commits one row per gate holding the 5
    selector values followed by the 3 sigma labels (no LDE -- the leaves
    are the subgroup rows themselves).  ``sigmas``/``ids`` cache the
    (3, n) permutation label matrices so proving never re-derives them.
    """

    circuit: Circuit
    preprocessed: MerkleTree
    sigmas: np.ndarray
    ids: np.ndarray
    config: HyperPlonkConfig

    @property
    def verifier_data(self) -> "HyperPlonkVerifierData":
        """The subset of setup data the verifier needs."""
        return HyperPlonkVerifierData(
            preprocessed_cap=self.preprocessed.cap.copy(),
            n=self.circuit.n,
            num_public_inputs=len(self.circuit.public_input_rows),
            public_input_rows=list(self.circuit.public_input_rows),
            config=self.config,
        )


@dataclass
class HyperPlonkVerifierData:
    """Everything the verifier must know about a circuit."""

    preprocessed_cap: np.ndarray
    n: int
    num_public_inputs: int
    public_input_rows: List[int]
    config: HyperPlonkConfig


def query_index_sets(
    indices: Sequence[int], n: int, num_levels: int
) -> Tuple[Set[int], Set[int], List[Set[int]]]:
    """The deduplicated index sets every query touches, per tree.

    Both the prover (to gather the batched openings) and the verifier
    (to re-derive the expected sets from the transcript) walk the same
    fold chains: query ``j`` (sampled over ``[0, n/2)``) opens the base
    pair ``(j, j + n/2)`` of the preprocessed / wires trees, the Z tree
    additionally at both next-row positions, and level ``k``'s pair
    ``(p, p + half_k)`` where ``p = j mod half_k``.

    Returns ``(base_set, z_set, level_sets)`` -- the preprocessed and
    wires trees share ``base_set``.
    """
    base: Set[int] = set()
    z: Set[int] = set()
    levels: List[Set[int]] = [set() for _ in range(num_levels)]
    for j in indices:
        j = int(j)
        lo, hi = j, j + n // 2
        base.update((lo, hi))
        z.update((lo, (lo + 1) % n, hi, (hi + 1) % n))
        pos = j
        for k in range(num_levels):
            half = (n // 4) >> k
            p = pos % half
            levels[k].update((p, p + half))
            pos = p
    return base, z, levels


@dataclass
class HyperPlonkTreeOpening:
    """All of one tree's query openings, batched into a multiproof.

    ``rows`` holds the opened leaf rows in ascending index order --
    row ``k`` is the leaf at ``proof.indices[k]``.  The multiproof's
    sibling nodes are deduplicated across the whole index set, which is
    where the v2 format's proof-size win over per-query individual
    paths comes from.
    """

    rows: np.ndarray  # (k, leaf_width), ascending proof.indices order
    proof: MerkleMultiProof

    def size_bytes(self) -> int:
        """Payload bytes: indices, opened rows, and shared path nodes."""
        return (
            4 * len(self.proof.indices)
            + int(self.rows.size) * ELEM_BYTES
            + self.proof.size_bytes()
        )


@dataclass
class HyperPlonkProof:
    """A complete sumcheck-native proof (batched-opening format v2)."""

    wires_cap: np.ndarray
    z_cap: np.ndarray
    public_inputs: List[int]
    sumcheck: SumcheckProof
    level_caps: List[np.ndarray]
    #: Batched openings: preprocessed / wires / Z base trees, then one
    #: entry per committed fold level (same order as ``level_caps``).
    pre_opening: HyperPlonkTreeOpening
    wires_opening: HyperPlonkTreeOpening
    z_opening: HyperPlonkTreeOpening
    level_openings: List[HyperPlonkTreeOpening]

    def tree_openings(self) -> List[HyperPlonkTreeOpening]:
        """Every tree opening, base trees first then fold levels.

        (Named ``tree_openings`` rather than ``openings`` because the
        FRI-family proofs carry an ``openings`` *attribute* the fuzzer
        duck-types on.)
        """
        return [
            self.pre_opening,
            self.wires_opening,
            self.z_opening,
            *self.level_openings,
        ]

    def size_bytes(self) -> int:
        """Serialized proof size (caps + sumcheck rounds + openings)."""
        total = 0
        for cap in (self.wires_cap, self.z_cap, *self.level_caps):
            total += int(np.atleast_2d(cap).shape[0]) * DIGEST_BYTES
        total += len(self.public_inputs) * ELEM_BYTES
        total += (2 + 2 * len(self.sumcheck.round_values)) * ELEM_BYTES
        total += sum(op.size_bytes() for op in self.tree_openings())
        return total
