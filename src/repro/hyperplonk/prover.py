"""Sumcheck-native HyperPlonk-lite prover (paper Section 8.1).

Proves the same gate + copy constraints as :mod:`repro.plonk`, but over
the *boolean hypercube* instead of a multiplicative subgroup's LDE
coset: the witness tables are treated as multilinear extensions and the
"everything vanishes" claim becomes a zerocheck run through the
sum-check protocol (Algorithm 2).  The paper argues UniZK's unified
hardware covers exactly this newer protocol family (Spartan, Binius,
Basefold); this backend is the repo's concrete instance.

The hot path executes **zero NTT butterflies** (asserted in CI):

1. witness generation, then a row-wise Merkle commitment of the wire
   table through :class:`~repro.pcs.MultilinearPCS` -- pure Poseidon
   hashing, no LDE;
2. Fiat-Shamir ``beta``/``gamma`` and the permutation accumulator ``Z``
   via the same chunked partial-product kernel Plonk uses, committed
   row-wise;
3. ``alpha`` batches the gate / permutation / Z-start constraints into
   one table ``C``; zerocheck multiplies by the ``eq(tau, x)``
   indicator so ``sum_x eq(tau, x) C(x) = 0`` implies ``C == 0`` whp
   (Schwartz-Zippel over the random ``tau``);
4. a *committed* sumcheck over ``Q = eq(tau, .) * C``: every folded
   level is Merkle-committed so the verifier can spot-check fold
   consistency, Basefold-style, tying the final value to the base
   commitments;
5. batched query openings: the transcript pins random positions, and
   every committed tree ships one deduplicated multiproof covering all
   the rows those positions touch.

With a shard pool active (:func:`repro.parallel.current_pool`, or the
``pool`` argument), the hashing-bound stages fan out: the wires / Z
commitments run as ``merkle_subtree``/``merkle_top`` shard graphs, and
each sumcheck round's fold + fold-level commit is one fused graph
(``sumcheck_fold`` row shards feeding Merkle shards).  Fiat-Shamir
stays pinned in the coordinator between graph runs -- challenges are
squeezed before a graph is built and caps observed after it runs -- so
sharded proofs are bit-identical to serial (same digests, same op
counters).

No quotient polynomial, no coset division, no FRI -- proof size is
traded for a prover that is all element-wise kernels, sums, and
hashing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from .. import parallel, tracing
from ..field import gl64, goldilocks as gl
from ..hashing import Challenger
from ..merkle import MerkleTree, prove_multi
from ..pcs import MultilinearPCS, eq_table
from ..plonk.circuit import Circuit
from ..plonk.permutation import compute_z, id_values, sigma_values
from ..sumcheck import SumcheckProof, fold_table, prove as sumcheck_prove
from .proof import (
    HyperPlonkConfig,
    HyperPlonkData,
    HyperPlonkProof,
    HyperPlonkTreeOpening,
    query_index_sets,
)


def setup(circuit: Circuit, config: HyperPlonkConfig) -> HyperPlonkData:
    """Preprocess a circuit: Merkle-commit selectors + sigmas row-wise.

    Unlike the univariate setup there is no low-degree extension -- the
    leaves are the ``(n, 8)`` subgroup rows themselves, so even setup
    runs NTT-free.  The commitment deliberately stays serial (no
    ``slot``): setup artifacts outlive any one proof, and a shard-arena
    slot would be recycled by the next same-shape commit.
    """
    sigmas = sigma_values(circuit)
    ids = id_values(circuit.n)
    pre_rows = np.ascontiguousarray(
        np.concatenate([circuit.selectors, sigmas]).T
    )  # (n, 8): one leaf per gate row
    pcs = MultilinearPCS(config.cap_height)
    preprocessed = pcs.commit(pre_rows, "preprocessed")
    return HyperPlonkData(
        circuit=circuit,
        preprocessed=preprocessed,
        sigmas=sigmas,
        ids=ids,
        config=config,
    )


def _constraint_table(
    circuit: Circuit,
    wires: np.ndarray,
    z: np.ndarray,
    f: np.ndarray,
    g: np.ndarray,
    public_values: List[int],
    alpha: int,
) -> np.ndarray:
    """The alpha-batched constraint table ``C`` over the subgroup rows.

    ``C[i] = gate[i] + alpha * perm[i] + alpha^2 * l0[i]`` where

    * ``gate`` is the Plonk row constraint including the public-input
      term ``PI(row) = -v_k`` at public rows;
    * ``perm[i] = Z[i] f[i] - Z[i+1 mod n] g[i]`` (the running-product
      step, wrapping at the last row exactly like the subgroup version);
    * ``l0`` pins ``Z[0] = 1`` at row 0.

    An honest witness makes every entry zero.
    """
    n = circuit.n
    sel = circuit.selectors
    w = wires
    pi = np.zeros(n, dtype=np.uint64)
    for row, val in zip(circuit.public_input_rows, public_values):
        pi[row] = np.uint64(gl.neg(val))
    gate = gl64.add(
        gl64.add(
            gl64.add(gl64.mul(sel[0], w[0]), gl64.mul(sel[1], w[1])),
            gl64.mul(sel[2], gl64.mul(w[0], w[1])),
        ),
        gl64.add(gl64.add(gl64.mul(sel[3], w[2]), sel[4]), pi),
    )
    z_next = np.roll(z, -1)
    perm = gl64.sub(gl64.mul(z, f), gl64.mul(z_next, g))
    l0 = np.zeros(n, dtype=np.uint64)
    l0[0] = np.uint64(gl.sub(int(z[0]), 1))
    alpha_sq = np.uint64(gl.mul(alpha, alpha))
    return gl64.add(
        gl64.add(gate, gl64.mul(perm, np.uint64(gl.canonical(alpha)))),
        gl64.mul(l0, alpha_sq),
    )


def _sharded_committed_sumcheck(
    pool,
    pcs: MultilinearPCS,
    q_table: np.ndarray,
    challenger: Challenger,
    cap_height: int,
) -> Tuple[SumcheckProof, List[MerkleTree]]:
    """The committed sumcheck with each round's fold + commit sharded.

    Mirrors :func:`repro.sumcheck.prove` round by round -- same sums,
    same transcript order -- but runs each fold and its fold-level
    Merkle commit as one fused shard graph
    (:func:`repro.parallel.ops.sharded_sumcheck_round`).  The
    challenger never leaves the coordinator: ``r`` is squeezed before
    the round's graph is built, the finished cap observed after it
    runs.  Rounds below the pool's sharding threshold take the serial
    tail (``fold_table`` + :meth:`MultilinearPCS.commit`), which is
    bit-identical by construction.
    """
    from ..parallel import ops as par_ops

    claimed = int(gl64.sum_array(q_table))
    challenger.observe_element(claimed)
    rounds: List[Tuple[int, int]] = []
    level_trees: List[MerkleTree] = []
    table = par_ops.sumcheck_table_buffer(pool, q_table)
    level = 0
    while table.shape[0] > 1:
        half = table.shape[0] // 2
        y0 = int(gl64.sum_array(table[:half]))
        y1 = int(gl64.sum_array(table[half:]))
        rounds.append((y0, y1))
        challenger.observe_element(y0)
        challenger.observe_element(y1)
        r = challenger.get_challenge()
        if half >= max(2, pool.min_rows):
            with tracing.span(
                "pcs:commit", category="commit", label="fold", rows=half
            ):
                table, tree = par_ops.sharded_sumcheck_round(
                    pool, table, r, level, cap_height
                )
        else:
            table = fold_table(np.asarray(table), r)
            tree = pcs.commit(table, "fold") if table.shape[0] > 1 else None
        if tree is not None:
            level_trees.append(tree)
            challenger.observe_cap(tree.cap)
        level += 1
    final = int(np.asarray(table).reshape(-1)[0])
    return (
        SumcheckProof(claimed_sum=claimed, round_values=rounds, final_value=final),
        level_trees,
    )


def _tree_opening(tree: MerkleTree, indices: Iterable[int]) -> HyperPlonkTreeOpening:
    """Batch-open one tree at a deduplicated index set (pure reads)."""
    idx = sorted({int(i) for i in indices})
    rows = np.stack([tree.leaves[i] for i in idx])
    return HyperPlonkTreeOpening(rows=rows, proof=prove_multi(tree, idx))


def prove(
    data: HyperPlonkData,
    inputs: Dict[int, int],
    challenger: Challenger | None = None,
    pool=None,
) -> HyperPlonkProof:
    """Generate a HyperPlonk-lite proof for the given input assignment.

    ``inputs`` maps variable indices to values, exactly as
    :func:`repro.plonk.prove` -- the two backends prove the same
    circuits.  ``pool`` scopes a shard pool for the duration of the
    proof (``None`` inherits the ambient
    :func:`repro.parallel.current_pool`, so ``prove --workers`` callers
    that set the context variable need not pass it).
    """
    circuit = data.circuit
    config = data.config
    n = circuit.n
    v = circuit.log_n
    challenger = challenger or Challenger()
    pcs = MultilinearPCS(config.cap_height)

    with parallel.maybe_sharding(pool) as eff, tracing.span(
        "prove:hyperplonk", category="prove", n=n
    ):
        with tracing.span("witness", category="witness"):
            witness = circuit.generate_witness(inputs)
            wires = circuit.wire_values(witness)  # (3, n)
            public_values = [int(wires[0, row]) for row in circuit.public_input_rows]

        challenger.observe_cap(data.preprocessed.cap)
        challenger.observe_elements(np.asarray(public_values, dtype=np.uint64))

        with tracing.span("commit:wires", category="commit"):
            wires_tree = pcs.commit(
                np.ascontiguousarray(wires.T), "wires", slot="hp:wires"
            )
        challenger.observe_cap(wires_tree.cap)

        beta = challenger.get_challenge()
        gamma = challenger.get_challenge()
        with tracing.span("permutation", category="permutation"):
            z, f, g = compute_z(wires, data.ids, data.sigmas, beta, gamma)
        with tracing.span("commit:z", category="commit"):
            z_tree = pcs.commit(z, "z", slot="hp:z")
        challenger.observe_cap(z_tree.cap)

        alpha = challenger.get_challenge()
        tau = challenger.get_n_challenges(v)

        with tracing.span("zerocheck", category="quotient"):
            c_table = _constraint_table(circuit, wires, z, f, g, public_values, alpha)
            q_table = gl64.mul(eq_table(tau), c_table)

        # Committed sumcheck: Merkle-commit every folded level (down to
        # size 2) and bind its cap before the next round's values.
        with tracing.span("sumcheck", category="sumcheck"):
            if eff is not None and eff.parallel and n // 2 >= max(2, eff.min_rows):
                sc_proof, level_trees = _sharded_committed_sumcheck(
                    eff, pcs, q_table, challenger, config.cap_height
                )
            else:
                level_trees = []

                def commit_level(_round: int, folded: np.ndarray) -> None:
                    if folded.shape[0] > 1:
                        tree = pcs.commit(folded, "fold")
                        level_trees.append(tree)
                        challenger.observe_cap(tree.cap)

                sc_proof = sumcheck_prove(q_table, challenger, on_fold=commit_level)

        with tracing.span("queries", category="open"):
            # Queries sample the pair index j directly: position pairs
            # (j, j + n/2) are what the fold walk consumes, so the
            # transcript draws over [0, n/2) instead of folding a
            # [0, n) sample down.
            indices = challenger.get_indices(config.num_queries, n // 2)
            base_set, z_set, level_sets = query_index_sets(
                indices, n, len(level_trees)
            )
            pre_opening = _tree_opening(data.preprocessed, base_set)
            wires_opening = _tree_opening(wires_tree, base_set)
            z_opening = _tree_opening(z_tree, z_set)
            level_openings = [
                _tree_opening(tree, s) for tree, s in zip(level_trees, level_sets)
            ]

    return HyperPlonkProof(
        wires_cap=wires_tree.cap.copy(),
        z_cap=z_tree.cap.copy(),
        public_inputs=public_values,
        sumcheck=sc_proof,
        level_caps=[t.cap.copy() for t in level_trees],
        pre_opening=pre_opening,
        wires_opening=wires_opening,
        z_opening=z_opening,
        level_openings=level_openings,
    )
