"""Sumcheck-native HyperPlonk-lite prover (paper Section 8.1).

Proves the same gate + copy constraints as :mod:`repro.plonk`, but over
the *boolean hypercube* instead of a multiplicative subgroup's LDE
coset: the witness tables are treated as multilinear extensions and the
"everything vanishes" claim becomes a zerocheck run through the
sum-check protocol (Algorithm 2).  The paper argues UniZK's unified
hardware covers exactly this newer protocol family (Spartan, Binius,
Basefold); this backend is the repo's concrete instance.

The hot path executes **zero NTT butterflies** (asserted in CI):

1. witness generation, then a row-wise Merkle commitment of the wire
   table through :class:`~repro.pcs.MultilinearPCS` -- pure Poseidon
   hashing, no LDE;
2. Fiat-Shamir ``beta``/``gamma`` and the permutation accumulator ``Z``
   via the same chunked partial-product kernel Plonk uses, committed
   row-wise;
3. ``alpha`` batches the gate / permutation / Z-start constraints into
   one table ``C``; zerocheck multiplies by the ``eq(tau, x)``
   indicator so ``sum_x eq(tau, x) C(x) = 0`` implies ``C == 0`` whp
   (Schwartz-Zippel over the random ``tau``);
4. a *committed* sumcheck over ``Q = eq(tau, .) * C``: every folded
   level is Merkle-committed (``on_fold`` hook) so the verifier can
   spot-check fold consistency, Basefold-style, tying the final value
   to the base commitments;
5. query rounds: random positions where the verifier recomputes ``Q``
   from openings of the preprocessed / wires / Z commitments and walks
   the fold chain down the committed levels.

No quotient polynomial, no coset division, no FRI -- proof size is
traded for a prover that is all element-wise kernels, sums, and
hashing.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .. import tracing
from ..field import gl64, goldilocks as gl
from ..hashing import Challenger
from ..merkle import MerkleTree
from ..pcs import MultilinearPCS, eq_table
from ..plonk.circuit import Circuit
from ..plonk.permutation import compute_z, id_values, sigma_values
from ..sumcheck import prove as sumcheck_prove
from .proof import (
    HyperPlonkBaseOpening,
    HyperPlonkConfig,
    HyperPlonkData,
    HyperPlonkLevelOpening,
    HyperPlonkProof,
    HyperPlonkQueryRound,
)


def setup(circuit: Circuit, config: HyperPlonkConfig) -> HyperPlonkData:
    """Preprocess a circuit: Merkle-commit selectors + sigmas row-wise.

    Unlike the univariate setup there is no low-degree extension -- the
    leaves are the ``(n, 8)`` subgroup rows themselves, so even setup
    runs NTT-free.
    """
    sigmas = sigma_values(circuit)
    ids = id_values(circuit.n)
    pre_rows = np.ascontiguousarray(
        np.concatenate([circuit.selectors, sigmas]).T
    )  # (n, 8): one leaf per gate row
    pcs = MultilinearPCS(config.cap_height)
    preprocessed = pcs.commit(pre_rows, "preprocessed")
    return HyperPlonkData(
        circuit=circuit,
        preprocessed=preprocessed,
        sigmas=sigmas,
        ids=ids,
        config=config,
    )


def _constraint_table(
    circuit: Circuit,
    wires: np.ndarray,
    z: np.ndarray,
    f: np.ndarray,
    g: np.ndarray,
    public_values: List[int],
    alpha: int,
) -> np.ndarray:
    """The alpha-batched constraint table ``C`` over the subgroup rows.

    ``C[i] = gate[i] + alpha * perm[i] + alpha^2 * l0[i]`` where

    * ``gate`` is the Plonk row constraint including the public-input
      term ``PI(row) = -v_k`` at public rows;
    * ``perm[i] = Z[i] f[i] - Z[i+1 mod n] g[i]`` (the running-product
      step, wrapping at the last row exactly like the subgroup version);
    * ``l0`` pins ``Z[0] = 1`` at row 0.

    An honest witness makes every entry zero.
    """
    n = circuit.n
    sel = circuit.selectors
    w = wires
    pi = np.zeros(n, dtype=np.uint64)
    for row, val in zip(circuit.public_input_rows, public_values):
        pi[row] = np.uint64(gl.neg(val))
    gate = gl64.add(
        gl64.add(
            gl64.add(gl64.mul(sel[0], w[0]), gl64.mul(sel[1], w[1])),
            gl64.mul(sel[2], gl64.mul(w[0], w[1])),
        ),
        gl64.add(gl64.add(gl64.mul(sel[3], w[2]), sel[4]), pi),
    )
    z_next = np.roll(z, -1)
    perm = gl64.sub(gl64.mul(z, f), gl64.mul(z_next, g))
    l0 = np.zeros(n, dtype=np.uint64)
    l0[0] = np.uint64(gl.sub(int(z[0]), 1))
    alpha_sq = np.uint64(gl.mul(alpha, alpha))
    return gl64.add(
        gl64.add(gate, gl64.mul(perm, np.uint64(gl.canonical(alpha)))),
        gl64.mul(l0, alpha_sq),
    )


def _base_opening(
    data: HyperPlonkData,
    wires_tree: MerkleTree,
    z_tree: MerkleTree,
    pos: int,
    n: int,
) -> HyperPlonkBaseOpening:
    """Open every base commitment at row ``pos`` (plus Z at ``pos+1``)."""
    nxt = (pos + 1) % n
    return HyperPlonkBaseOpening(
        pre_row=data.preprocessed.leaves[pos].copy(),
        pre_proof=data.preprocessed.prove(pos),
        wires_row=wires_tree.leaves[pos].copy(),
        wires_proof=wires_tree.prove(pos),
        z_value=int(z_tree.leaves[pos][0]),
        z_proof=z_tree.prove(pos),
        z_next_value=int(z_tree.leaves[nxt][0]),
        z_next_proof=z_tree.prove(nxt),
    )


def _query_round(
    data: HyperPlonkData,
    wires_tree: MerkleTree,
    z_tree: MerkleTree,
    level_trees: List[MerkleTree],
    index: int,
    n: int,
) -> HyperPlonkQueryRound:
    """Assemble one fold-consistency query at transcript index ``index``.

    The base pair ``(j, j + n/2)`` determines ``T1[j]`` after the first
    fold; each committed level then opens the pair that folds into the
    next level's checked position, mirroring a FRI query walk.
    """
    j = index % (n // 2)
    base = [
        _base_opening(data, wires_tree, z_tree, j, n),
        _base_opening(data, wires_tree, z_tree, j + n // 2, n),
    ]
    levels = []
    pos = j
    for tree in level_trees:
        half = tree.num_leaves() // 2
        p = pos % half
        levels.append(
            HyperPlonkLevelOpening(
                low_value=int(tree.leaves[p][0]),
                high_value=int(tree.leaves[p + half][0]),
                low_proof=tree.prove(p),
                high_proof=tree.prove(p + half),
            )
        )
        pos = p
    return HyperPlonkQueryRound(index=index, base=base, levels=levels)


def prove(
    data: HyperPlonkData,
    inputs: Dict[int, int],
    challenger: Challenger | None = None,
) -> HyperPlonkProof:
    """Generate a HyperPlonk-lite proof for the given input assignment.

    ``inputs`` maps variable indices to values, exactly as
    :func:`repro.plonk.prove` -- the two backends prove the same
    circuits.
    """
    circuit = data.circuit
    config = data.config
    n = circuit.n
    v = circuit.log_n
    challenger = challenger or Challenger()
    pcs = MultilinearPCS(config.cap_height)

    with tracing.span("prove:hyperplonk", category="prove", n=n):
        with tracing.span("witness", category="witness"):
            witness = circuit.generate_witness(inputs)
            wires = circuit.wire_values(witness)  # (3, n)
            public_values = [int(wires[0, row]) for row in circuit.public_input_rows]

        challenger.observe_cap(data.preprocessed.cap)
        challenger.observe_elements(np.asarray(public_values, dtype=np.uint64))

        with tracing.span("commit:wires", category="commit"):
            wires_tree = pcs.commit(np.ascontiguousarray(wires.T), "wires")
        challenger.observe_cap(wires_tree.cap)

        beta = challenger.get_challenge()
        gamma = challenger.get_challenge()
        with tracing.span("permutation", category="permutation"):
            z, f, g = compute_z(wires, data.ids, data.sigmas, beta, gamma)
        with tracing.span("commit:z", category="commit"):
            z_tree = pcs.commit(z, "z")
        challenger.observe_cap(z_tree.cap)

        alpha = challenger.get_challenge()
        tau = challenger.get_n_challenges(v)

        with tracing.span("zerocheck", category="quotient"):
            c_table = _constraint_table(circuit, wires, z, f, g, public_values, alpha)
            q_table = gl64.mul(eq_table(tau), c_table)

        # Committed sumcheck: Merkle-commit every folded level (down to
        # size 2) and bind its cap before the next round's values.
        level_trees: List[MerkleTree] = []

        def commit_level(_round: int, folded: np.ndarray) -> None:
            if folded.shape[0] > 1:
                tree = pcs.commit(folded, "fold")
                level_trees.append(tree)
                challenger.observe_cap(tree.cap)

        with tracing.span("sumcheck", category="sumcheck"):
            sc_proof = sumcheck_prove(q_table, challenger, on_fold=commit_level)

        with tracing.span("queries", category="open"):
            indices = challenger.get_indices(config.num_queries, n)
            query_rounds = [
                _query_round(data, wires_tree, z_tree, level_trees, idx, n)
                for idx in indices
            ]

    return HyperPlonkProof(
        wires_cap=wires_tree.cap.copy(),
        z_cap=z_tree.cap.copy(),
        public_inputs=public_values,
        sumcheck=sc_proof,
        level_caps=[t.cap.copy() for t in level_trees],
        query_rounds=query_rounds,
    )
