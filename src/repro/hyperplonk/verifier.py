"""HyperPlonk-lite verifier.

Replays the Fiat-Shamir transcript, checks the sumcheck rounds, then
spends its queries on *fold-consistency* spot checks: at each random
position the batched constraint value ``Q`` is recomputed from scratch
out of openings of the preprocessed / wires / Z commitments, and the
chain ``Q -> T1 -> T2 -> ... -> final_value`` is walked down the
committed folded levels with the sumcheck challenges.  Any tampering
with the round polynomials, the committed tables, or the openings
breaks either the running-claim check (in :func:`repro.sumcheck.verify`)
or one of the Merkle / fold-consistency checks here.

All rejection paths raise :class:`HyperPlonkError` (or a ``ValueError``
subclass from a decoder) -- the typed-rejection contract the fuzzer
enforces across every registered protocol.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..field import goldilocks as gl
from ..hashing import Challenger
from ..merkle import verify_proof
from ..pcs import eq_at
from ..plonk.permutation import coset_representatives
from ..sumcheck import SumcheckError, verify as sumcheck_verify
from .proof import HyperPlonkProof, HyperPlonkQueryRound, HyperPlonkVerifierData


class HyperPlonkError(Exception):
    """Raised when a HyperPlonk-lite proof fails verification."""


_U64_LIMIT = 1 << 64


def _check_elem(value: object, what: str) -> int:
    """A proof scalar must be a u64-representable integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise HyperPlonkError(f"{what} is not a field element")
    value = int(value)
    if not 0 <= value < _U64_LIMIT:
        raise HyperPlonkError(f"{what} out of range")
    return value


def _check_cap(cap: np.ndarray, what: str) -> np.ndarray:
    try:
        cap = np.atleast_2d(np.asarray(cap, dtype=np.uint64))
    except (TypeError, ValueError, OverflowError) as exc:
        raise HyperPlonkError(f"malformed {what}") from exc
    c = cap.shape[0]
    if cap.ndim != 2 or cap.shape[1] != 4 or c == 0 or c & (c - 1):
        raise HyperPlonkError(f"malformed {what}")
    return cap


def _check_row(values: np.ndarray, width: int, what: str) -> np.ndarray:
    try:
        row = np.asarray(values, dtype=np.uint64).reshape(-1)
    except (TypeError, ValueError, OverflowError) as exc:
        raise HyperPlonkError(f"malformed {what}") from exc
    if row.size != width:
        raise HyperPlonkError(f"{what} has wrong width")
    return row


def _base_q_value(
    vdata: HyperPlonkVerifierData,
    proof: HyperPlonkProof,
    opening,
    pos: int,
    pi_map: dict,
    beta: int,
    gamma: int,
    alpha: int,
    tau: Sequence[int],
) -> int:
    """Recompute ``Q[pos] = eq(tau, pos) * C[pos]`` from base openings."""
    n = vdata.n
    pre_row = _check_row(opening.pre_row, 8, "preprocessed opening")
    wires_row = _check_row(opening.wires_row, 3, "wires opening")
    z_val = _check_elem(opening.z_value, "Z opening")
    z_next = _check_elem(opening.z_next_value, "Z-next opening")
    if not verify_proof(pre_row, pos, opening.pre_proof, vdata.preprocessed_cap):
        raise HyperPlonkError("preprocessed opening fails its Merkle check")
    if not verify_proof(wires_row, pos, opening.wires_proof, proof.wires_cap):
        raise HyperPlonkError("wires opening fails its Merkle check")
    if not verify_proof(
        np.array([z_val], dtype=np.uint64), pos, opening.z_proof, proof.z_cap
    ):
        raise HyperPlonkError("Z opening fails its Merkle check")
    if not verify_proof(
        np.array([z_next], dtype=np.uint64),
        (pos + 1) % n,
        opening.z_next_proof,
        proof.z_cap,
    ):
        raise HyperPlonkError("Z-next opening fails its Merkle check")

    sel = [int(x) for x in pre_row[:5]]
    sig = [int(x) for x in pre_row[5:8]]
    w = [int(x) for x in wires_row]

    gate = gl.add(
        gl.add(
            gl.add(gl.mul(sel[0], w[0]), gl.mul(sel[1], w[1])),
            gl.mul(sel[2], gl.mul(w[0], w[1])),
        ),
        gl.add(gl.add(gl.mul(sel[3], w[2]), sel[4]), pi_map.get(pos, 0)),
    )

    omega = gl.primitive_root_of_unity(n.bit_length() - 1)
    x = gl.pow_mod(omega, pos)
    f_val = 1
    g_val = 1
    for j, k in enumerate(coset_representatives()):
        f_val = gl.mul(
            f_val, gl.add(gl.add(w[j], gl.mul(gl.mul(k, x), beta)), gamma)
        )
        g_val = gl.mul(g_val, gl.add(gl.add(w[j], gl.mul(sig[j], beta)), gamma))
    perm = gl.sub(gl.mul(z_val, f_val), gl.mul(z_next, g_val))
    l0 = gl.sub(z_val, 1) if pos == 0 else 0

    c_val = gl.add(
        gl.add(gate, gl.mul(alpha, perm)),
        gl.mul(gl.mul(alpha, alpha), l0),
    )
    return gl.mul(eq_at(tau, pos), c_val)


def _check_query_round(
    vdata: HyperPlonkVerifierData,
    proof: HyperPlonkProof,
    qr: HyperPlonkQueryRound,
    rs: List[int],
    pi_map: dict,
    beta: int,
    gamma: int,
    alpha: int,
    tau: Sequence[int],
    level_caps: List[np.ndarray],
) -> None:
    """Walk one query's fold chain from the base tables to the final value."""
    n = vdata.n
    j = qr.index % (n // 2)
    if len(qr.base) != 2:
        raise HyperPlonkError("query round must open exactly two base rows")
    q_lo = _base_q_value(vdata, proof, qr.base[0], j, pi_map, beta, gamma, alpha, tau)
    q_hi = _base_q_value(
        vdata, proof, qr.base[1], j + n // 2, pi_map, beta, gamma, alpha, tau
    )
    cur = gl.add(gl.mul(q_lo, gl.sub(1, rs[0])), gl.mul(q_hi, rs[0]))
    if len(qr.levels) != len(level_caps):
        raise HyperPlonkError("query round has the wrong number of levels")
    pos = j
    for k, (lvl, cap) in enumerate(zip(qr.levels, level_caps)):
        m = (n // 2) >> k  # committed table size at this level
        half = m // 2
        p = pos % half
        lo = _check_elem(lvl.low_value, "fold-level opening")
        hi = _check_elem(lvl.high_value, "fold-level opening")
        if not verify_proof(np.array([lo], dtype=np.uint64), p, lvl.low_proof, cap):
            raise HyperPlonkError("fold-level opening fails its Merkle check")
        if not verify_proof(
            np.array([hi], dtype=np.uint64), p + half, lvl.high_proof, cap
        ):
            raise HyperPlonkError("fold-level opening fails its Merkle check")
        mine = lo if pos == p else hi
        if gl.canonical(mine) != cur:
            raise HyperPlonkError("fold consistency check failed")
        cur = gl.add(gl.mul(lo, gl.sub(1, rs[k + 1])), gl.mul(hi, rs[k + 1]))
        pos = p
    if cur != gl.canonical(proof.sumcheck.final_value):
        raise HyperPlonkError("fold chain does not reach the sumcheck final value")


def verify(
    vdata: HyperPlonkVerifierData,
    proof: HyperPlonkProof,
    challenger: Challenger | None = None,
) -> bool:
    """Verify a HyperPlonk-lite proof; raises :class:`HyperPlonkError`."""
    n = vdata.n
    v = n.bit_length() - 1
    config = vdata.config
    challenger = challenger or Challenger()

    publics = list(proof.public_inputs)
    if len(publics) != vdata.num_public_inputs:
        raise HyperPlonkError("wrong number of public inputs")
    publics = [_check_elem(p, "public input") for p in publics]
    pi_map = {
        row: gl.neg(val) for row, val in zip(vdata.public_input_rows, publics)
    }
    wires_cap = _check_cap(proof.wires_cap, "wires cap")
    z_cap = _check_cap(proof.z_cap, "Z cap")

    challenger.observe_cap(vdata.preprocessed_cap)
    challenger.observe_elements(np.asarray(publics, dtype=np.uint64))
    challenger.observe_cap(wires_cap)
    beta = challenger.get_challenge()
    gamma = challenger.get_challenge()
    challenger.observe_cap(z_cap)
    alpha = challenger.get_challenge()
    tau = challenger.get_n_challenges(v)

    sc = proof.sumcheck
    if gl.canonical(_check_elem(sc.claimed_sum, "claimed sum")) != 0:
        raise HyperPlonkError("zerocheck claims a nonzero sum")
    if len(proof.level_caps) != v - 1:
        raise HyperPlonkError("wrong number of fold-level caps")
    level_caps = [
        _check_cap(cap, "fold-level cap") for cap in proof.level_caps
    ]

    def absorb_level(k: int, _r: int) -> None:
        # Mirror of the prover's on_fold commitment: levels of size > 1
        # exist for every round but the last.
        if k < v - 1:
            challenger.observe_cap(level_caps[k])

    try:
        rs = sumcheck_verify(sc, v, challenger, on_challenge=absorb_level)
    except SumcheckError as exc:
        raise HyperPlonkError(f"sumcheck transcript rejected: {exc}") from exc

    indices = challenger.get_indices(config.num_queries, n)
    if len(proof.query_rounds) != config.num_queries:
        raise HyperPlonkError("wrong number of query rounds")
    for expected, qr in zip(indices, proof.query_rounds):
        if qr.index != expected:
            raise HyperPlonkError("query index does not match the transcript")
        _check_query_round(
            vdata, proof, qr, rs, pi_map, beta, gamma, alpha, tau, level_caps
        )
    return True
