"""HyperPlonk-lite verifier.

Replays the Fiat-Shamir transcript, checks the sumcheck rounds, then
spends its queries on *fold-consistency* spot checks: at each random
position the batched constraint value ``Q`` is recomputed from scratch
out of openings of the preprocessed / wires / Z commitments, and the
chain ``Q -> T1 -> T2 -> ... -> final_value`` is walked down the
committed folded levels with the sumcheck challenges.

Openings arrive batched per tree (format v2): the verifier re-derives
every index each query touches from the transcript
(:func:`~repro.hyperplonk.proof.query_index_sets`), demands that each
tree's multiproof covers exactly that sorted set, and checks the whole
set against the cap in one :func:`repro.merkle.verify_multi` pass.  Any
tampering with the round polynomials, the committed tables, or the
openings breaks either the running-claim check (in
:func:`repro.sumcheck.verify`) or one of the Merkle /
fold-consistency checks here.

All rejection paths raise :class:`HyperPlonkError` (or a ``ValueError``
subclass from a decoder) -- the typed-rejection contract the fuzzer
enforces across every registered protocol.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from ..field import goldilocks as gl
from ..hashing import Challenger
from ..merkle import MerkleMultiProof, verify_multi
from ..pcs import eq_at
from ..plonk.permutation import coset_representatives
from ..sumcheck import SumcheckError, verify as sumcheck_verify
from .proof import (
    HyperPlonkProof,
    HyperPlonkTreeOpening,
    HyperPlonkVerifierData,
    query_index_sets,
)


class HyperPlonkError(Exception):
    """Raised when a HyperPlonk-lite proof fails verification."""


_U64_LIMIT = 1 << 64


def _check_elem(value: object, what: str) -> int:
    """A proof scalar must be a u64-representable integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise HyperPlonkError(f"{what} is not a field element")
    value = int(value)
    if not 0 <= value < _U64_LIMIT:
        raise HyperPlonkError(f"{what} out of range")
    return value


def _check_cap(cap: np.ndarray, what: str) -> np.ndarray:
    try:
        cap = np.atleast_2d(np.asarray(cap, dtype=np.uint64))
    except (TypeError, ValueError, OverflowError) as exc:
        raise HyperPlonkError(f"malformed {what}") from exc
    c = cap.shape[0]
    if cap.ndim != 2 or cap.shape[1] != 4 or c == 0 or c & (c - 1):
        raise HyperPlonkError(f"malformed {what}")
    return cap


def _check_opening(
    opening: HyperPlonkTreeOpening,
    expected: Iterable[int],
    width: int,
    cap: np.ndarray,
    num_leaves: int,
    cap_height: int,
    what: str,
) -> Dict[int, np.ndarray]:
    """Validate one tree's batched opening; returns ``index -> row``.

    The index set is *derived*, never trusted: the multiproof must open
    exactly the sorted positions the transcript's queries touch, with
    one ``width``-wide row per position, and the whole set must
    authenticate against the tree's cap.
    """
    expected_idx = tuple(sorted({int(i) for i in expected}))
    try:
        indices = tuple(int(i) for i in opening.proof.indices)
        rows = np.asarray(opening.rows, dtype=np.uint64)
        nodes = np.asarray(opening.proof.nodes, dtype=np.uint64)
    except (TypeError, ValueError, OverflowError) as exc:
        raise HyperPlonkError(f"malformed {what}") from exc
    if indices != expected_idx:
        raise HyperPlonkError(f"{what} does not open the queried indices")
    if rows.ndim != 2 or rows.shape != (len(expected_idx), width):
        raise HyperPlonkError(f"{what} has wrong shape")
    if nodes.ndim != 2 or nodes.shape[1] != 4:
        raise HyperPlonkError(f"malformed {what}")
    depth = num_leaves.bit_length() - 1
    if cap.shape[0] != 1 << min(cap_height, depth):
        raise HyperPlonkError(f"{what} cap has the wrong height")
    leaves = {idx: rows[k] for k, idx in enumerate(expected_idx)}
    clean = MerkleMultiProof(indices=expected_idx, nodes=nodes)
    if not verify_multi(leaves, clean, cap, depth, min(cap_height, depth)):
        raise HyperPlonkError(f"{what} fails its Merkle check")
    return leaves


def _base_q_value(
    vdata: HyperPlonkVerifierData,
    pre_row: np.ndarray,
    wires_row: np.ndarray,
    z_val: int,
    z_next: int,
    pos: int,
    pi_map: dict,
    beta: int,
    gamma: int,
    alpha: int,
    tau: Sequence[int],
) -> int:
    """Recompute ``Q[pos] = eq(tau, pos) * C[pos]`` from opened rows."""
    n = vdata.n
    sel = [int(x) for x in pre_row[:5]]
    sig = [int(x) for x in pre_row[5:8]]
    w = [int(x) for x in wires_row]

    gate = gl.add(
        gl.add(
            gl.add(gl.mul(sel[0], w[0]), gl.mul(sel[1], w[1])),
            gl.mul(sel[2], gl.mul(w[0], w[1])),
        ),
        gl.add(gl.add(gl.mul(sel[3], w[2]), sel[4]), pi_map.get(pos, 0)),
    )

    omega = gl.primitive_root_of_unity(n.bit_length() - 1)
    x = gl.pow_mod(omega, pos)
    f_val = 1
    g_val = 1
    for j, k in enumerate(coset_representatives()):
        f_val = gl.mul(
            f_val, gl.add(gl.add(w[j], gl.mul(gl.mul(k, x), beta)), gamma)
        )
        g_val = gl.mul(g_val, gl.add(gl.add(w[j], gl.mul(sig[j], beta)), gamma))
    perm = gl.sub(gl.mul(z_val, f_val), gl.mul(z_next, g_val))
    l0 = gl.sub(z_val, 1) if pos == 0 else 0

    c_val = gl.add(
        gl.add(gate, gl.mul(alpha, perm)),
        gl.mul(gl.mul(alpha, alpha), l0),
    )
    return gl.mul(eq_at(tau, pos), c_val)


def verify(
    vdata: HyperPlonkVerifierData,
    proof: HyperPlonkProof,
    challenger: Challenger | None = None,
) -> bool:
    """Verify a HyperPlonk-lite proof; raises :class:`HyperPlonkError`."""
    n = vdata.n
    v = n.bit_length() - 1
    config = vdata.config
    challenger = challenger or Challenger()

    publics = list(proof.public_inputs)
    if len(publics) != vdata.num_public_inputs:
        raise HyperPlonkError("wrong number of public inputs")
    publics = [_check_elem(p, "public input") for p in publics]
    pi_map = {
        row: gl.neg(val) for row, val in zip(vdata.public_input_rows, publics)
    }
    wires_cap = _check_cap(proof.wires_cap, "wires cap")
    z_cap = _check_cap(proof.z_cap, "Z cap")

    challenger.observe_cap(vdata.preprocessed_cap)
    challenger.observe_elements(np.asarray(publics, dtype=np.uint64))
    challenger.observe_cap(wires_cap)
    beta = challenger.get_challenge()
    gamma = challenger.get_challenge()
    challenger.observe_cap(z_cap)
    alpha = challenger.get_challenge()
    tau = challenger.get_n_challenges(v)

    sc = proof.sumcheck
    if gl.canonical(_check_elem(sc.claimed_sum, "claimed sum")) != 0:
        raise HyperPlonkError("zerocheck claims a nonzero sum")
    if len(proof.level_caps) != v - 1:
        raise HyperPlonkError("wrong number of fold-level caps")
    level_caps = [
        _check_cap(cap, "fold-level cap") for cap in proof.level_caps
    ]

    def absorb_level(k: int, _r: int) -> None:
        # Mirror of the prover's per-fold commitment: levels of size > 1
        # exist for every round but the last.
        if k < v - 1:
            challenger.observe_cap(level_caps[k])

    try:
        rs = sumcheck_verify(sc, v, challenger, on_challenge=absorb_level)
    except SumcheckError as exc:
        raise HyperPlonkError(f"sumcheck transcript rejected: {exc}") from exc

    # Queries sample the pair index j in [0, n/2) directly (the fold
    # walk only ever consumes the pair (j, j + n/2)).
    indices = challenger.get_indices(config.num_queries, n // 2)
    num_levels = v - 1
    if len(proof.level_openings) != num_levels:
        raise HyperPlonkError("wrong number of fold-level openings")
    base_set, z_set, level_sets = query_index_sets(indices, n, num_levels)

    ch = config.cap_height
    pre_map = _check_opening(
        proof.pre_opening, base_set, 8, vdata.preprocessed_cap, n, ch,
        "preprocessed opening",
    )
    wires_map = _check_opening(
        proof.wires_opening, base_set, 3, wires_cap, n, ch, "wires opening"
    )
    z_map = _check_opening(proof.z_opening, z_set, 1, z_cap, n, ch, "Z opening")
    level_maps = []
    for k, (op, cap, s) in enumerate(
        zip(proof.level_openings, level_caps, level_sets)
    ):
        level_maps.append(
            _check_opening(op, s, 1, cap, (n // 2) >> k, ch, "fold-level opening")
        )

    for j in indices:
        lo_pos, hi_pos = j, j + n // 2
        q_lo = _base_q_value(
            vdata, pre_map[lo_pos], wires_map[lo_pos],
            int(z_map[lo_pos][0]), int(z_map[(lo_pos + 1) % n][0]),
            lo_pos, pi_map, beta, gamma, alpha, tau,
        )
        q_hi = _base_q_value(
            vdata, pre_map[hi_pos], wires_map[hi_pos],
            int(z_map[hi_pos][0]), int(z_map[(hi_pos + 1) % n][0]),
            hi_pos, pi_map, beta, gamma, alpha, tau,
        )
        cur = gl.add(gl.mul(q_lo, gl.sub(1, rs[0])), gl.mul(q_hi, rs[0]))
        pos = j
        for k in range(num_levels):
            half = (n // 4) >> k
            p = pos % half
            lo = int(level_maps[k][p][0])
            hi = int(level_maps[k][p + half][0])
            mine = lo if pos == p else hi
            if gl.canonical(mine) != cur:
                raise HyperPlonkError("fold consistency check failed")
            cur = gl.add(gl.mul(lo, gl.sub(1, rs[k + 1])), gl.mul(hi, rs[k + 1]))
            pos = p
        if cur != gl.canonical(proof.sumcheck.final_value):
            raise HyperPlonkError(
                "fold chain does not reach the sumcheck final value"
            )
    return True
