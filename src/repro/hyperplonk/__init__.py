"""Sumcheck-native HyperPlonk-lite backend (no NTT on the hot path).

Proves the same circuits as :mod:`repro.plonk` but replaces the
LDE/quotient/FRI machinery with a committed zerocheck: multilinear
Merkle commitments (:class:`repro.pcs.MultilinearPCS`), the sum-check
protocol (:mod:`repro.sumcheck`), and FRI-style fold-consistency
queries over the committed sumcheck levels.
"""

from .proof import (
    HyperPlonkConfig,
    HyperPlonkData,
    HyperPlonkProof,
    HyperPlonkTreeOpening,
    HyperPlonkVerifierData,
)
from .prover import prove, setup
from .verifier import HyperPlonkError, verify

__all__ = [
    "HyperPlonkConfig",
    "HyperPlonkData",
    "HyperPlonkVerifierData",
    "HyperPlonkProof",
    "HyperPlonkTreeOpening",
    "HyperPlonkError",
    "setup",
    "prove",
    "verify",
]
