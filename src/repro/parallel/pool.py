"""The intra-proof shard pool: persistent workers over shared memory.

A :class:`ShardPool` owns a :class:`~repro.parallel.shm.SharedArena`
(the cross-process zero-copy plane) and a set of persistent forked
worker processes.  Provers hand it :class:`~repro.parallel.scheduler.ShardGraph`
instances; the pool dispatches ready shards longest-path-first (the
:class:`~repro.parallel.scheduler.CriticalPathScheduler`), collects
results, and folds each shard's operation counters and trace spans
back into the coordinator's context -- so a sharded proof reports the
same counter totals, and a traced proof shows ``shard:*`` spans nested
under the stage that spawned them.

With ``workers=1`` (the serial fallback -- also what
:func:`~repro.parallel.resolve_workers` produces when CPU affinity
reports a single core) no processes are spawned: graphs execute inline
in critical-path order through the exact same kernels, and counters
accumulate directly.

Determinism: shard completion order is non-deterministic, but every
kernel writes a disjoint region of a shared buffer and the coordinator
assembles gather results by shard id, so proofs are bit-identical to
the serial path regardless of scheduling.  Fiat-Shamir interaction
stays entirely in the coordinator (workers never touch a challenger).
"""

from __future__ import annotations

import itertools
import os
import queue as queue_mod
import signal
import time
from typing import Any, Dict, List, Optional

import multiprocessing as mp

from .. import tracing, tunables
from ..metrics import counting, merge_counts
from . import shm as shm_mod
from .kernels import run_kernel
from .scheduler import CriticalPathScheduler, ShardGraph, StageProfile
from .shm import SharedArena

_POOL_SEQ = itertools.count()


class ShardError(RuntimeError):
    """A shard failed in a worker (the proof cannot be assembled)."""


class GraphRaceError(ShardError):
    """A shard graph was rejected at submission by the race analyzer.

    ``findings`` carries the structured ``race.*``
    :class:`~repro.analysis.findings.Finding` records -- the same
    objects ``repro analyze`` reports -- so callers and tests can
    assert on specific rules.
    """

    def __init__(self, graph_name: str, findings) -> None:
        self.findings = list(findings)
        lines = "; ".join(f.format() for f in self.findings[:4])
        more = len(self.findings) - 4
        if more > 0:
            lines += f"; ... {more} more"
        super().__init__(
            f"shard graph {graph_name or '<unnamed>'!r} rejected by race "
            f"analysis ({len(self.findings)} finding(s)): {lines}"
        )


def _shard_worker_main(
    worker_id: int, task_q, result_q, unregister_on_attach: bool = False
) -> None:
    """Worker loop: run one kernel per task, ship result + counters + spans.

    Mirrors the service worker's shutdown discipline: SIGINT is ignored
    (sentinels drive shutdown), and exceptions are reported, never
    fatal.  Each task runs under the coordinator's plan tuning and a
    local trace session whose spans ride back for re-attachment.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    shm_mod.UNREGISTER_ON_ATTACH = unregister_on_attach
    while True:
        task = task_q.get()
        if task is None:
            break
        t0 = time.perf_counter()
        base = {"worker_id": worker_id, "run": task["run"], "shard_id": task["shard_id"]}
        try:
            tuning = tunables.PlanTuning.from_dict(task.get("tuning") or {})
            with counting() as counters, tracing.trace() as session:
                with tunables.applied(tuning), tracing.span(
                    f"shard:{task['kind']}",
                    category="shard",
                    shard=task["shard_id"],
                    units=task["units"],
                    worker=worker_id,
                ):
                    result = run_kernel(task["kind"], task["args"])
            result_q.put(
                {
                    **base,
                    "ok": True,
                    "result": result,
                    "counters": counters.as_dict(),
                    "spans": [s.as_dict() for s in session.spans],
                    "wall_s": time.perf_counter() - t0,
                }
            )
        except Exception as exc:  # noqa: BLE001 - report, don't die
            result_q.put(
                {
                    **base,
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "wall_s": time.perf_counter() - t0,
                }
            )


class ShardPool:
    """Persistent shard workers + shared arena + critical-path dispatch.

    ``workers`` defaults to the effective CPU count; validation mirrors
    the :class:`~repro.hw.HwConfig` style (typed errors, fail fast).
    The ``min_*`` thresholds gate when provers bother sharding a stage
    (below them, per-shard IPC overhead exceeds the kernel work; tests
    and CI force them low to exercise the parallel path on small
    proofs).  Construction is cheap: worker processes fork lazily on
    the first parallel :meth:`run`.

    With ``validate=True`` (the default -- mirroring how the schedule
    sanitizer arms :class:`repro.hw.GridEmulator`) every submitted
    graph is checked by the race analyzer
    (:func:`repro.analysis.races.graph_findings`) before any shard
    dispatches: unordered overlapping accesses, undeclared kernels and
    challenger-carrying args raise :class:`GraphRaceError` instead of
    racing.  ``validate=False`` opts out (the graphs are tiny, but the
    check is pure Python bookkeeping on the coordinator).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        start_method: str = "fork",
        min_rows: int = 1024,
        min_tree_leaves: int = 1024,
        min_queries: int = 8,
        profile: Optional[StageProfile] = None,
        validate: bool = True,
    ) -> None:
        if workers is None:
            from . import effective_cpus

            workers = effective_cpus()
        if isinstance(workers, bool) or not isinstance(workers, int):
            raise TypeError(f"workers must be an int, got {type(workers).__name__}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        for name, value in (
            ("min_rows", min_rows),
            ("min_tree_leaves", min_tree_leaves),
            ("min_queries", min_queries),
        ):
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError(f"{name} must be an int, got {type(value).__name__}")
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        self.workers = workers
        self.validate = bool(validate)
        self.min_rows = min_rows
        self.min_tree_leaves = min_tree_leaves
        self.min_queries = min_queries
        self.uid = f"{os.getpid()}-{next(_POOL_SEQ)}"
        self.arena = SharedArena(self.uid)
        self.profile = profile if profile is not None else StageProfile()
        self._ctx = mp.get_context(start_method)
        self._procs: List[Any] = []
        self._task_qs: List[Any] = []
        self._result_q = None
        self._run_seq = itertools.count()
        self._adopt_seq = itertools.count()
        self._closed = False
        #: Lifetime stats (exported through service stats / benches).
        self.stats: Dict[str, int] = {"graphs": 0, "shards": 0, "inline_shards": 0}

    @property
    def parallel(self) -> bool:
        """Whether this pool shards at all (more than one worker)."""
        return self.workers > 1

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ShardPool":
        """Fork the worker processes (idempotent; implied by ``run``)."""
        if self._closed:
            raise RuntimeError("shard pool is closed")
        if self._procs or not self.parallel:
            return self
        self._result_q = self._ctx.Queue()
        for wid in range(self.workers):
            task_q = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_shard_worker_main,
                args=(
                    wid,
                    task_q,
                    self._result_q,
                    self._ctx.get_start_method() != "fork",
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
            self._task_qs.append(task_q)
        return self

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop workers (sentinel, then terminate) and unlink the arena."""
        if self._closed:
            return
        self._closed = True
        for task_q in self._task_qs:
            try:
                task_q.put_nowait(None)
            except Exception:
                pass
        deadline = time.monotonic() + timeout_s
        for proc in self._procs:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        self._procs.clear()
        self._task_qs.clear()
        self.arena.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- thresholds ------------------------------------------------------

    def wants_commit(self, n_lde: int) -> bool:
        """Whether a batch commit of ``n_lde`` LDE rows is worth sharding."""
        return self.parallel and n_lde >= self.min_rows

    def wants_tree(self, num_leaves: int) -> bool:
        """Whether a bare Merkle commit (no LDE stage -- the multilinear
        PCS path) of ``num_leaves`` leaves is worth sharding."""
        return self.parallel and num_leaves >= self.min_tree_leaves

    def adopt_slot(self) -> str:
        """A fresh arena slot prefix for adopting an external buffer."""
        return f"adopt{next(self._adopt_seq)}"

    # -- execution -------------------------------------------------------

    def run(self, graph: ShardGraph) -> Dict[str, Any]:
        """Execute a shard graph; returns ``{shard_id: result}``.

        Counters and trace spans from worker shards are merged into the
        calling context, so totals match a serial execution exactly.
        Raises :class:`ShardError` if any shard fails or a worker dies.
        """
        if self._closed:
            raise RuntimeError("shard pool is closed")
        if len(graph) == 0:
            return {}
        if self.validate:
            # Lazy import: repro.analysis imports this package for the
            # shipped-graph pass; the deferred import breaks the cycle.
            from ..analysis.races import graph_findings

            findings = graph_findings(graph)
            if findings:
                raise GraphRaceError(graph.name, findings)
        sched = CriticalPathScheduler(graph, self.profile)
        self.stats["graphs"] += 1
        self.stats["shards"] += len(graph)
        if not self.parallel:
            return self._run_inline(sched)
        self.start()
        return self._run_parallel(sched)

    def _run_inline(self, sched: CriticalPathScheduler) -> Dict[str, Any]:
        """Serial fallback: same kernels, critical-path order, in-process."""
        results: Dict[str, Any] = {}
        while not sched.done:
            shard = sched.pop_ready()
            assert shard is not None, "shard graph has unreachable shards"
            t0 = time.perf_counter()
            with tracing.span(
                f"shard:{shard.kind}",
                category="shard",
                shard=shard.id,
                units=shard.units,
                worker=-1,
            ):
                results[shard.id] = run_kernel(shard.kind, shard.args)
            self.profile.observe(shard.kind, shard.units, time.perf_counter() - t0)
            self.stats["inline_shards"] += 1
            sched.complete(shard.id)
        return results

    def _run_parallel(self, sched: CriticalPathScheduler) -> Dict[str, Any]:
        run_id = next(self._run_seq)
        tuning = tunables.current().to_dict()
        idle = list(range(self.workers))
        inflight: Dict[str, tuple] = {}  # shard_id -> (worker, shard, dispatch_s)
        results: Dict[str, Any] = {}
        total = len(sched.graph)
        while len(results) < total:
            while idle:
                shard = sched.pop_ready()
                if shard is None:
                    break
                wid = idle.pop()
                self._task_qs[wid].put(
                    {
                        "run": run_id,
                        "shard_id": shard.id,
                        "kind": shard.kind,
                        "args": shard.args,
                        "units": shard.units,
                        "tuning": tuning,
                    }
                )
                inflight[shard.id] = (wid, shard, time.perf_counter())
            try:
                msg = self._result_q.get(timeout=0.5)
            except queue_mod.Empty:
                self._check_liveness(inflight)
                continue
            if msg.get("run") != run_id:
                continue  # stale result from an aborted earlier run
            entry = inflight.pop(msg["shard_id"], None)
            if entry is None:
                continue
            wid, shard, dispatched = entry
            idle.append(wid)
            if not msg.get("ok"):
                raise ShardError(
                    f"shard {shard.id!r} ({shard.kind}) failed in worker "
                    f"{msg.get('worker_id')}: {msg.get('error')}"
                )
            merge_counts(msg.get("counters", {}))
            tracing.attach_spans(msg.get("spans", []), base_s=dispatched)
            self.profile.observe(shard.kind, shard.units, msg.get("wall_s", 0.0))
            results[shard.id] = msg.get("result")
            sched.complete(shard.id)
        return results

    def _check_liveness(self, inflight: Dict[str, tuple]) -> None:
        """Fail loudly if a worker died with a shard in flight."""
        if not inflight:
            return
        for proc in self._procs:
            if not proc.is_alive():
                lost = sorted(sid for sid, (w, _, _) in inflight.items())
                raise ShardError(
                    f"shard worker died (exitcode {proc.exitcode}) with "
                    f"shards in flight: {lost}"
                )
