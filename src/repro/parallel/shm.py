"""Shared-memory Goldilocks arrays: the zero-copy plane across processes.

The in-process data plane keys reusable scratch buffers by ``(slot,
shape)`` in a :class:`repro.field.gl64.Workspace`.  :class:`SharedArena`
is the cross-process twin: the same keying discipline, but every buffer
is backed by a named POSIX shared-memory segment
(:class:`multiprocessing.shared_memory.SharedMemory`), so a shard
worker can map the *same* physical pages the coordinator writes --
polynomial values, Merkle level arenas and FRI layer values cross the
process boundary as a 16-byte :class:`ShmRef` instead of a pickle of
the array.

Workers resolve refs through a process-local attach cache
(:func:`resolve`): the first touch of a segment maps it, later touches
are dictionary hits.  Attaching defensively unregisters the segment
from the worker's ``resource_tracker`` (bpo-38119: the tracker would
otherwise unlink segments it never owned when the worker exits).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

_SEGMENT_SEQ = itertools.count()


@dataclass(frozen=True)
class ShmRef:
    """A picklable handle to one shared ``uint64`` array.

    ``name`` is the OS-level shared-memory segment name; ``shape`` is
    the array's shape.  The dtype is always ``uint64`` (the Goldilocks
    element type), so a ref plus :func:`resolve` fully reconstructs the
    array view in any process.
    """

    name: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Segment payload size in bytes."""
        n = 8
        for dim in self.shape:
            n *= int(dim)
        return n


class SharedArena:
    """A ``(slot, shape)``-keyed pool of shared-memory uint64 arrays.

    The coordinator-side analogue of :class:`repro.field.gl64.Workspace`:
    ``temp`` returns stable storage per key so repeated proofs of one
    shape reuse their segments, and :meth:`ref_of` maps a handed-out
    array back to the :class:`ShmRef` a shard task ships to workers.
    Segment names embed the owning pid and an arena uid, so two pools
    (or two processes) never collide.
    """

    def __init__(self, uid: str) -> None:
        self.uid = uid
        self._segments: Dict[Tuple[str, Tuple[int, ...]], shared_memory.SharedMemory] = {}
        self._arrays: Dict[Tuple[str, Tuple[int, ...]], np.ndarray] = {}
        self._refs_by_id: Dict[int, ShmRef] = {}
        self._closed = False

    def temp(self, shape, slot: str) -> np.ndarray:
        """Return a reusable shared uint64 array of ``shape``.

        Contents are unspecified; the same ``(slot, shape)`` always
        returns the same storage (and the same underlying segment).
        """
        if self._closed:
            raise RuntimeError("shared arena is closed")
        shape = tuple(int(d) for d in shape)
        key = (slot, shape)
        arr = self._arrays.get(key)
        if arr is None:
            nbytes = 8
            for dim in shape:
                nbytes *= dim
            name = f"repro-{os.getpid()}-{self.uid}-{next(_SEGMENT_SEQ)}"
            seg = shared_memory.SharedMemory(name=name, create=True, size=max(8, nbytes))
            arr = np.ndarray(shape, dtype=np.uint64, buffer=seg.buf)
            self._segments[key] = seg
            self._arrays[key] = arr
            self._refs_by_id[id(arr)] = ShmRef(name=name, shape=shape)
        return arr

    def ref_of(self, arr: np.ndarray) -> Optional[ShmRef]:
        """The :class:`ShmRef` for an array handed out by :meth:`temp`.

        Returns ``None`` for arrays this arena does not own (the caller
        then copies the data in via a fresh ``temp`` buffer).
        """
        return self._refs_by_id.get(id(arr))

    def nbytes(self) -> int:
        """Total shared bytes currently held (for introspection)."""
        return sum(seg.size for seg in self._segments.values())

    def close(self) -> None:
        """Unlink every segment.  Idempotent.

        Arrays already handed out keep their mappings alive until they
        are garbage collected (``SharedMemory.close`` refuses to unmap
        under exported buffers); unlinking here guarantees the names are
        reclaimed once the last reference drops.
        """
        if self._closed:
            return
        self._closed = True
        self._arrays.clear()
        self._refs_by_id.clear()
        for seg in self._segments.values():
            try:
                seg.close()
            except BufferError:
                pass  # a live ndarray still exports the buffer
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()


#: Process-local cache of attached segments: name -> (segment, base array).
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}

#: Whether attaching should unregister from this process's resource
#: tracker.  Needed under ``spawn`` (bpo-38119: the child's private
#: tracker would unlink segments the coordinator still owns when the
#: child exits).  Harmful under ``fork``, where children inherit the
#: coordinator's tracker: a child-side unregister would make the
#: owner's later ``unlink`` a double-unregister.  The pool sets this in
#: each worker according to its start method.
UNREGISTER_ON_ATTACH = False


def _attach(ref: ShmRef) -> np.ndarray:
    """Map a segment by name (cached per process)."""
    hit = _ATTACHED.get(ref.name)
    if hit is None:
        seg = shared_memory.SharedMemory(name=ref.name)
        if UNREGISTER_ON_ATTACH:
            try:
                resource_tracker.unregister(seg._name, "shared_memory")  # noqa: SLF001
            except Exception:  # pragma: no cover - tracker internals vary
                pass
        arr = np.ndarray(ref.shape, dtype=np.uint64, buffer=seg.buf)
        _ATTACHED[ref.name] = hit = (seg, arr)
    seg, arr = hit
    if arr.shape != ref.shape:
        arr = np.ndarray(ref.shape, dtype=np.uint64, buffer=seg.buf)
    return arr


def resolve(obj):
    """Turn a kernel argument into a live array.

    :class:`ShmRef` values are attached (any process); plain arrays and
    other values pass through, which is what makes the same kernels run
    inline in the coordinator for the serial fallback.
    """
    if isinstance(obj, ShmRef):
        return _attach(obj)
    return obj
