"""Intra-proof parallel execution: shard graphs over a worker pool.

This package is the single-node half of the roadmap's "distributed,
stage-sharded proving" item: one proof's independent work -- per-batch
iNTT/LDE/Merkle commits, Merkle leaf ranges, FRI combine rows and query
chunks -- fans out across persistent shared-memory workers, scheduled
longest-path-first from measured stage costs.

Provers discover the active pool through a context variable
(:func:`sharding` / :func:`current_pool`), mirroring how
:mod:`repro.tunables` scopes plan tuning and :mod:`repro.metrics`
scopes counters: no prover signature carries a pool, and nested proofs
inherit the enclosing pool.  With no pool active (or ``workers=1``)
every prover takes its serial path unchanged.

Correctness contract: sharded and serial proofs are bit-identical --
same digests, same operation counters.  Fiat-Shamir order is pinned by
the provers (caps observed in batch-index order between graph runs);
shards only ever compute.  Every kernel declares its read/write
footprint (:mod:`repro.parallel.footprints`) and the pool race-checks
each graph at submission (``validate=True``, raising
:class:`~repro.parallel.pool.GraphRaceError`), so a missing dependency
edge fails deterministically instead of corrupting an unlucky run.
"""

from __future__ import annotations

import contextlib
import contextvars
import logging
import os
from typing import Iterator, Optional

from .footprints import FOOTPRINTS, Access, buffer_key, footprint
from .pool import GraphRaceError, ShardError, ShardPool
from .scheduler import CriticalPathScheduler, Shard, ShardGraph, StageProfile, static_order
from .shm import SharedArena, ShmRef, resolve

__all__ = [
    "Access",
    "CriticalPathScheduler",
    "FOOTPRINTS",
    "GraphRaceError",
    "Shard",
    "ShardError",
    "ShardGraph",
    "ShardPool",
    "SharedArena",
    "ShmRef",
    "StageProfile",
    "buffer_key",
    "current_pool",
    "effective_cpus",
    "footprint",
    "maybe_sharding",
    "resolve",
    "resolve_workers",
    "sharding",
    "static_order",
]

logger = logging.getLogger("repro.parallel")

_ACTIVE: contextvars.ContextVar[Optional[ShardPool]] = contextvars.ContextVar(
    "repro_shard_pool", default=None
)


def current_pool() -> Optional[ShardPool]:
    """The shard pool provers should use, or ``None`` (serial)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def sharding(pool: Optional[ShardPool]) -> Iterator[Optional[ShardPool]]:
    """Scope a shard pool: provers inside the block shard through it.

    ``sharding(None)`` explicitly forces the serial path (useful to
    exclude sharding from a region inside a sharded caller).
    """
    token = _ACTIVE.set(pool)
    try:
        yield pool
    finally:
        _ACTIVE.reset(token)


@contextlib.contextmanager
def maybe_sharding(pool: Optional[ShardPool]) -> Iterator[Optional[ShardPool]]:
    """Like :func:`sharding`, but ``None`` inherits the enclosing pool."""
    if pool is None:
        yield current_pool()
        return
    with sharding(pool) as p:
        yield p


def effective_cpus() -> int:
    """CPUs this process may actually run on.

    Uses the scheduler affinity mask (cgroup/container limits show up
    here) and falls back to ``os.cpu_count`` where affinity is not
    exposed.  This is the honest parallelism bound BENCH_service runs
    must report: ``os.cpu_count`` alone overstates it inside containers.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(requested: Optional[int], flag: str = "workers") -> int:
    """Validate and clamp a worker-count flag (HwConfig-style).

    ``None`` means "use every effective CPU".  Non-integers raise
    ``TypeError`` and values below 1 raise ``ValueError`` (typed, fail
    fast); values above the effective CPU count are clamped with a
    logged warning, since extra processes past the affinity mask only
    add context-switch overhead.
    """
    cpus = effective_cpus()
    if requested is None:
        return cpus
    if isinstance(requested, bool) or not isinstance(requested, int):
        raise TypeError(f"--{flag} must be an int, got {type(requested).__name__}")
    if requested < 1:
        raise ValueError(f"--{flag} must be >= 1, got {requested}")
    if requested > cpus:
        logger.warning(
            "--%s=%d exceeds effective CPUs (%d); clamping", flag, requested, cpus
        )
        return cpus
    return requested
