"""Shard graphs and the critical-path scheduler.

A proof stage decomposes into a :class:`ShardGraph`: independent units
of kernel work (:class:`Shard`) with explicit dependencies (LDE row
shards feed Merkle subtree shards feed the cap compression).  The
:class:`CriticalPathScheduler` decides dispatch order: each shard's
priority is its own estimated cost plus the most expensive chain of
work that depends on it (longest-path-first), so the chain that gates
the proof's end-to-end latency starts first -- not whatever happened to
be inserted first (FIFO).

Costs come from a :class:`StageProfile`: measured wall seconds per work
unit per shard kind, fed by the pool from completed shard results (the
same ``shard:*`` spans that ride back through ``JobResult.spans``), so
the schedule adapts to the machine it is running on.  With no
observations yet every kind costs the same per unit and the scheduler
degrades to largest-work-first, which is still a sound default.

Determinism: priorities only affect *dispatch order*, never results --
every shard writes a disjoint region and the coordinator assembles
results by shard id, so any execution order yields bit-identical
proofs.  Ties break on insertion order to keep schedules reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Shard:
    """One schedulable unit of kernel work.

    ``kind`` names a kernel in :mod:`repro.parallel.kernels`; ``args``
    is its (picklable) argument dict; ``deps`` are shard ids that must
    complete first; ``units`` is the shard's abstract work size (rows
    hashed, butterflies, queries), the quantity a
    :class:`StageProfile` converts to seconds.
    """

    id: str
    kind: str
    args: Dict[str, Any]
    deps: Tuple[str, ...] = ()
    units: float = 1.0


class ShardGraph:
    """A DAG of shards, acyclic by construction (deps must pre-exist).

    ``name`` labels the graph in race-analysis findings and pool
    errors (e.g. ``commit:wires``); it has no scheduling effect.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.shards: Dict[str, Shard] = {}
        self.order: List[str] = []  # insertion order == a topological order

    def add(
        self,
        shard_id: str,
        kind: str,
        args: Dict[str, Any],
        deps: Tuple[str, ...] | List[str] = (),
        units: float = 1.0,
    ) -> str:
        """Add a shard; returns its id.

        Raises ``ValueError`` on duplicate ids or dependencies on
        shards that have not been added yet (which also rules out
        cycles).
        """
        if shard_id in self.shards:
            raise ValueError(f"duplicate shard id {shard_id!r}")
        deps = tuple(deps)
        for dep in deps:
            if dep not in self.shards:
                raise ValueError(f"shard {shard_id!r} depends on unknown {dep!r}")
        self.shards[shard_id] = Shard(
            id=shard_id, kind=kind, args=args, deps=deps, units=float(units)
        )
        self.order.append(shard_id)
        return shard_id

    def __len__(self) -> int:
        return len(self.shards)

    def dependents(self) -> Dict[str, List[str]]:
        """Reverse edges: shard id -> ids that depend on it."""
        out: Dict[str, List[str]] = {sid: [] for sid in self.order}
        for sid in self.order:
            for dep in self.shards[sid].deps:
                out[dep].append(sid)
        return out


class StageProfile:
    """Measured seconds-per-unit by shard kind (the scheduler's costs).

    Fed by the pool from completed shard wall times; optionally fed
    from serialized span forests (``shard:*`` spans carry their
    ``units`` in span args), so a service coordinator can warm a
    profile from ``JobResult.spans``.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, List[float]] = {}  # kind -> [units, seconds]

    def observe(self, kind: str, units: float, seconds: float) -> None:
        """Record one completed shard of ``kind``."""
        stat = self._stats.setdefault(kind, [0.0, 0.0])
        stat[0] += max(0.0, float(units))
        stat[1] += max(0.0, float(seconds))

    def observe_spans(self, spans: List[Dict[str, Any]]) -> int:
        """Feed ``shard:<kind>`` spans from a serialized span forest.

        Walks the nested dicts (``Span.as_dict`` form), records every
        span named ``shard:*`` whose args carry ``units``; returns the
        number of observations made.
        """
        seen = 0
        stack = list(spans)
        while stack:
            s = stack.pop()
            name = s.get("name", "")
            args = s.get("args", {}) or {}
            if name.startswith("shard:") and "units" in args:
                self.observe(name[len("shard:"):], args["units"], s.get("elapsed_s", 0.0))
                seen += 1
            stack.extend(s.get("children", []) or [])
        return seen

    def unit_cost(self, kind: str, default: float = 1.0) -> float:
        """Seconds per work unit for ``kind`` (``default`` if unseen)."""
        stat = self._stats.get(kind)
        if not stat or stat[0] <= 0.0:
            return default
        return stat[1] / stat[0]

    def cost(self, kind: str, units: float) -> float:
        """Estimated seconds for a shard of ``kind`` with ``units`` work."""
        return self.unit_cost(kind) * float(units)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe snapshot: kind -> {units, seconds, unit_cost}."""
        return {
            kind: {
                "units": stat[0],
                "seconds": stat[1],
                "unit_cost": self.unit_cost(kind),
            }
            for kind, stat in sorted(self._stats.items())
        }


class CriticalPathScheduler:
    """Longest-path-first dispatch over one :class:`ShardGraph`.

    ``priority(s) = cost(s) + max(priority(d) for dependents d)`` --
    the classic critical-path ("upward rank") heuristic.  The ready set
    is a max-heap on priority with insertion-order tie-break; callers
    drive it with :meth:`pop_ready` / :meth:`complete`.
    """

    def __init__(self, graph: ShardGraph, profile: Optional[StageProfile] = None) -> None:
        self.graph = graph
        self.profile = profile or StageProfile()
        self._dependents = graph.dependents()
        self.priorities: Dict[str, float] = {}
        # Insertion order is topological (deps precede), so one reverse
        # sweep computes every upward rank.
        for sid in reversed(graph.order):
            shard = graph.shards[sid]
            own = self.profile.cost(shard.kind, shard.units)
            down = max(
                (self.priorities[d] for d in self._dependents[sid]), default=0.0
            )
            self.priorities[sid] = own + down
        self._seq = {sid: i for i, sid in enumerate(graph.order)}
        self._waiting = {
            sid: len(graph.shards[sid].deps) for sid in graph.order
        }
        self._heap: List[Tuple[float, int, str]] = []
        self._pending = len(graph.order)
        for sid in graph.order:
            if self._waiting[sid] == 0:
                heapq.heappush(self._heap, (-self.priorities[sid], self._seq[sid], sid))

    def pop_ready(self) -> Optional[Shard]:
        """The highest-priority ready shard, or ``None`` if none is ready."""
        if not self._heap:
            return None
        _, _, sid = heapq.heappop(self._heap)
        return self.graph.shards[sid]

    def complete(self, shard_id: str) -> None:
        """Mark a shard done, releasing dependents into the ready set."""
        self._pending -= 1
        for dep in self._dependents[shard_id]:
            self._waiting[dep] -= 1
            if self._waiting[dep] == 0:
                heapq.heappush(
                    self._heap, (-self.priorities[dep], self._seq[dep], dep)
                )

    @property
    def done(self) -> bool:
        """True once every shard has been completed."""
        return self._pending == 0


def static_order(graph: ShardGraph, profile: Optional[StageProfile] = None) -> List[str]:
    """The serial (one-worker) critical-path execution order."""
    sched = CriticalPathScheduler(graph, profile)
    out: List[str] = []
    while not sched.done:
        shard = sched.pop_ready()
        assert shard is not None, "graph has unreachable shards"
        out.append(shard.id)
        sched.complete(shard.id)
    return out
