"""Shard-graph builders: prover stages decomposed for the pool.

Each ``sharded_*`` function is the parallel twin of one serial prover
stage -- same inputs, same outputs, bit-identical results:

* :func:`sharded_from_coeffs` / :func:`sharded_from_values` mirror
  :meth:`repro.fri.prover.PolynomialBatch.from_coeffs` /
  ``from_values`` (iNTT rows -> LDE rows -> Merkle subtrees -> cap);
* :func:`sharded_commit_quotient` fuses the per-limb coset iNTT of
  :meth:`repro.pipeline.commitment.CommitmentPipeline.commit_quotient`
  with the chunk commit into one graph (the iNTT shards feed the LDE
  shards with no barrier in between);
* :func:`sharded_combine` / :func:`sharded_layer_tree` /
  :func:`sharded_query_rounds` cover the FRI combine, layer commits and
  query gathers of :func:`repro.fri.prover.fri_prove`.

The transcript-order invariant lives one level up: these builders never
touch a challenger.  A prover calls them *between* Fiat-Shamir
interactions, so caps are observed in exactly the serial order no
matter how shards were scheduled.

Buffers follow the arena discipline: slots are derived from the commit
label (unique within a proof), so repeated proofs of one shape reuse
their segments -- and like workspace Merkle arenas, a slot belongs to
exactly one live batch per proof.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .scheduler import ShardGraph
from .shm import ShmRef


def _split(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into at most ``parts`` contiguous ranges."""
    parts = max(1, min(int(parts), int(total)))
    per = -(-total // parts)  # ceil
    out = []
    lo = 0
    while lo < total:
        hi = min(total, lo + per)
        out.append((lo, hi))
        lo = hi
    return out


def _pow2_subtrees(workers: int, num_leaves: int) -> int:
    """Number of Merkle subtree shards: workers rounded up to a power of
    two (alignment: every shard must cover a power-of-two leaf range so
    sibling pairs never straddle shards), clamped to the leaf count."""
    sub = 1 << max(0, workers - 1).bit_length()
    return min(sub, num_leaves)


def _ref_or_copy(pool, arr: np.ndarray, slot: str):
    """Ship an array to workers: its existing arena ref, or a shm copy.

    Inline pools (``workers=1``) skip shm entirely -- kernels accept the
    array itself.
    """
    if not pool.parallel:
        return arr
    ref = pool.arena.ref_of(arr)
    if ref is not None:
        return ref
    buf = pool.arena.temp(arr.shape, slot)
    buf[:] = arr
    return pool.arena.ref_of(buf)


def _buf(pool, shape, slot: str) -> np.ndarray:
    """A shard-visible output buffer (shm when parallel, heap inline)."""
    if pool.parallel:
        return pool.arena.temp(shape, slot)
    return np.empty(tuple(int(d) for d in shape), dtype=np.uint64)


def _out_ref(pool, arr: np.ndarray):
    """The kernel-args form of a ``_buf`` array."""
    if pool.parallel:
        ref = pool.arena.ref_of(arr)
        assert ref is not None, "output buffer must come from the pool arena"
        return ref
    return arr


def _add_merkle_shards(
    pool,
    graph: ShardGraph,
    prefix: str,
    arena_args: Dict[str, Any],
    num_leaves: int,
    leaf_width: int,
    deps: Sequence[str],
) -> None:
    """Add the subtree + cap-climb shards for one Merkle tree."""
    sizes = arena_args["sizes"]
    sub = _pow2_subtrees(pool.workers, num_leaves)
    leaves_per = num_leaves // sub
    sub_depth = leaves_per.bit_length() - 1
    sub_ids = []
    for j in range(sub):
        sub_ids.append(
            graph.add(
                f"{prefix}:sub{j}",
                "merkle_subtree",
                {**arena_args, "start": j * leaves_per, "count": leaves_per},
                deps=tuple(deps),
                units=leaves_per * leaf_width,
            )
        )
    if len(sizes) > sub_depth + 1:
        graph.add(
            f"{prefix}:top",
            "merkle_top",
            {
                "arena": arena_args["arena"],
                "sizes": sizes,
                "sub_depth": sub_depth,
            },
            deps=tuple(sub_ids),
            units=sum(sizes[sub_depth + 1 :]),
        )


def _assemble_batch(pool, coeffs, values, arena, sizes, cap_height, rate_bits):
    """Wrap shard-filled buffers into a PolynomialBatch + tree."""
    from ..fri.prover import PolynomialBatch
    from ..merkle.tree import MerkleTree

    tree = MerkleTree.from_levels(values, cap_height, arena, sizes)
    batch = PolynomialBatch(
        coeffs=coeffs, values=values, tree=tree, rate_bits=rate_bits
    )
    refs = {
        "values": _out_ref(pool, values),
        "arena": _out_ref(pool, arena),
        "sizes": list(sizes),
    }
    batch._shard_refs = (pool.uid, refs)  # noqa: SLF001 - adoption cache
    return batch


def _commit_graph(
    pool,
    slot: str,
    *,
    mode: str,
    src,
    num_polys: int,
    n: int,
    rate_bits: int,
    cap_height: int,
    chunks: int = 0,
    extra_deps: Sequence[str] = (),
    graph: Optional[ShardGraph] = None,
):
    """Build the iNTT/LDE/Merkle graph for one batch commit.

    Returns ``(graph, finish)`` where ``finish()`` (called after the
    pool ran the graph) assembles the :class:`PolynomialBatch`.
    """
    from ..merkle.tree import level_sizes
    from ..hashing import sponge

    n_lde = n << rate_bits
    graph = graph if graph is not None else ShardGraph(f"commit:{slot}")
    coeffs_out = _buf(pool, (num_polys, n), f"{slot}:coeffs")
    values_out = _buf(pool, (n_lde, num_polys), f"{slot}:values")
    if mode == "direct":
        coeffs_out[:] = src
        src_arg = None
    else:
        src_arg = src
    sizes = level_sizes(n_lde, cap_height)
    arena = _buf(pool, (sum(sizes), sponge.DIGEST_LEN), f"{slot}:tree")
    lde_ids = []
    base_args = {
        "mode": mode,
        "coeffs_out": _out_ref(pool, coeffs_out),
        "values_out": _out_ref(pool, values_out),
        "rate_bits": rate_bits,
    }
    if src_arg is not None:
        base_args["src"] = src_arg
    if mode == "chunks":
        base_args["n"] = n
        base_args["chunks"] = chunks
    for i, (lo, hi) in enumerate(_split(num_polys, pool.workers)):
        lde_ids.append(
            graph.add(
                f"{slot}:lde{i}",
                "lde_rows",
                {**base_args, "lo": lo, "hi": hi},
                deps=tuple(extra_deps),
                units=(hi - lo) * n_lde,
            )
        )
    _add_merkle_shards(
        pool,
        graph,
        slot,
        {"arena": _out_ref(pool, arena), "sizes": sizes, "leaves": _out_ref(pool, values_out)},
        n_lde,
        num_polys,
        deps=lde_ids,
    )

    def finish():
        return _assemble_batch(
            pool, coeffs_out, values_out, arena, sizes, cap_height, rate_bits
        )

    return graph, finish


def from_coeffs_graph(pool, coeffs: np.ndarray, rate_bits: int, cap_height: int, slot: str):
    """Build (don't run) the ``from_coeffs`` commit graph.

    Returns ``(graph, finish)``; run the graph through the pool, then
    call ``finish()`` to assemble the batch.  The build/run split lets
    the race analyzer inspect the exact shipped graph shapes without
    executing any kernel.
    """
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=np.uint64))
    return _commit_graph(
        pool,
        slot,
        mode="direct",
        src=coeffs,
        num_polys=coeffs.shape[0],
        n=coeffs.shape[1],
        rate_bits=rate_bits,
        cap_height=cap_height,
    )


def sharded_from_coeffs(pool, coeffs: np.ndarray, rate_bits: int, cap_height: int, slot: str):
    """Sharded ``PolynomialBatch.from_coeffs`` (bit-identical result)."""
    graph, finish = from_coeffs_graph(pool, coeffs, rate_bits, cap_height, slot)
    pool.run(graph)
    return finish()


def from_values_graph(pool, rows: np.ndarray, rate_bits: int, cap_height: int, slot: str):
    """Build (don't run) the ``from_values`` commit graph."""
    rows = np.atleast_2d(np.asarray(rows, dtype=np.uint64))
    src = _buf(pool, rows.shape, f"{slot}:src")
    src[:] = rows
    return _commit_graph(
        pool,
        slot,
        mode="intt",
        src=_out_ref(pool, src),
        num_polys=rows.shape[0],
        n=rows.shape[1],
        rate_bits=rate_bits,
        cap_height=cap_height,
    )


def sharded_from_values(pool, rows: np.ndarray, rate_bits: int, cap_height: int, slot: str):
    """Sharded ``PolynomialBatch.from_values``: iNTT folded into the
    LDE shards (each row shard interpolates its own rows first)."""
    graph, finish = from_values_graph(pool, rows, rate_bits, cap_height, slot)
    pool.run(graph)
    return finish()


def quotient_commit_graph(
    pool,
    ext_values: np.ndarray,
    n: int,
    chunks: int,
    rate_bits: int,
    cap_height: int,
    slot: str,
):
    """Build (don't run) the fused quotient-commit graph."""
    ext_values = np.asarray(ext_values, dtype=np.uint64)
    big_n = ext_values.shape[0]
    src = _buf(pool, ext_values.shape, f"{slot}:ext")
    src[:] = ext_values
    limbs = _buf(pool, (2, big_n), f"{slot}:limbs")
    graph = ShardGraph(f"commit:{slot}")
    intt_ids = [
        graph.add(
            f"{slot}:intt{limb}",
            "intt_limb",
            {
                "src": _out_ref(pool, src),
                "out": _out_ref(pool, limbs),
                "limb": limb,
            },
            units=big_n,
        )
        for limb in range(2)
    ]
    return _commit_graph(
        pool,
        slot,
        mode="chunks",
        src=_out_ref(pool, limbs),
        num_polys=2 * chunks,
        n=n,
        rate_bits=rate_bits,
        cap_height=cap_height,
        chunks=chunks,
        extra_deps=intt_ids,
        graph=graph,
    )


def sharded_commit_quotient(
    pool,
    ext_values: np.ndarray,
    n: int,
    chunks: int,
    rate_bits: int,
    cap_height: int,
    slot: str,
):
    """Sharded quotient commit: one fused graph for both coset-iNTT
    limbs and the chunk LDE/Merkle, so the second limb's interpolation
    overlaps the first limb's extensions."""
    graph, finish = quotient_commit_graph(
        pool, ext_values, n, chunks, rate_bits, cap_height, slot
    )
    pool.run(graph)
    return finish()


def multilinear_commit_graph(pool, rows: np.ndarray, cap_height: int, slot: str):
    """Build (don't run) a multilinear-PCS commit graph.

    The hypercube evaluation rows *are* the leaves (no LDE stage, the
    whole point of the sumcheck-native path), so the graph is pure
    Merkle work: aligned ``merkle_subtree`` shards plus the
    ``merkle_top`` cap climb.  Returns ``(graph, finish)``;
    ``finish()`` wraps the shard-filled arena into a
    :class:`~repro.merkle.MerkleTree` without re-hashing.
    """
    from ..hashing import sponge
    from ..merkle.tree import MerkleTree, level_sizes

    rows = np.atleast_2d(np.asarray(rows, dtype=np.uint64))
    n = rows.shape[0]
    leaves = _buf(pool, rows.shape, f"{slot}:leaves")
    leaves[:] = rows
    sizes = level_sizes(n, cap_height)
    arena = _buf(pool, (sum(sizes), sponge.DIGEST_LEN), f"{slot}:tree")
    graph = ShardGraph(f"mlpcs:{slot}")
    _add_merkle_shards(
        pool,
        graph,
        slot,
        {"arena": _out_ref(pool, arena), "sizes": sizes, "leaves": _out_ref(pool, leaves)},
        n,
        rows.shape[1],
        deps=(),
    )

    def finish():
        return MerkleTree.from_levels(leaves, cap_height, arena, sizes)

    return graph, finish


def sharded_multilinear_commit(pool, rows: np.ndarray, cap_height: int, slot: str):
    """Sharded :meth:`repro.pcs.MultilinearPCS.commit` (bit-identical)."""
    graph, finish = multilinear_commit_graph(pool, rows, cap_height, slot)
    pool.run(graph)
    return finish()


def sumcheck_table_buffer(pool, table: np.ndarray, slot: str = "sumcheck:q") -> np.ndarray:
    """Copy a sumcheck table into a shard-visible ``(n, 1)`` buffer.

    The column shape matches what the fold-level Merkle commits expect
    as leaves, so each round's output buffer doubles as the committed
    level's leaf matrix with no reshuffling.
    """
    table = np.asarray(table, dtype=np.uint64)
    buf = _buf(pool, (table.shape[0], 1), slot)
    buf[:] = table.reshape(-1, 1)
    return buf


def sumcheck_fold_graph(pool, table: np.ndarray, r: int, level: int, cap_height: int):
    """Build (don't run) one sumcheck fold + fold-level commit graph.

    ``table`` is the current ``(2m, 1)`` round table in a shard-visible
    buffer; the graph fans the fold ``out[j] = table[j] (1-r) +
    table[j+m] r`` across ``sumcheck_fold`` row-range shards, and --
    when the folded level has more than one row -- feeds the fold
    shards straight into the level's Merkle subtree shards (the fused
    per-round pipeline; no barrier between fold and hash).  Returns
    ``(graph, out, finish)`` where ``finish()`` is the committed
    :class:`~repro.merkle.MerkleTree`, or ``None`` for the final
    single-row level.

    Fiat-Shamir discipline: ``r`` was squeezed by the coordinator
    *before* this graph is built, and the coordinator observes the
    finished cap after the run -- workers never see a challenger.
    """
    from ..hashing import sponge
    from ..merkle.tree import MerkleTree, level_sizes

    half = table.shape[0] // 2
    out = _buf(pool, (half, 1), f"sumcheck:lvl{level}")
    graph = ShardGraph(f"sumcheck:round{level}")
    fold_ids = []
    for i, (lo, hi) in enumerate(_split(half, pool.workers)):
        fold_ids.append(
            graph.add(
                f"sc:fold{i}",
                "sumcheck_fold",
                {
                    "src": _out_ref(pool, table),
                    "out": _out_ref(pool, out),
                    "lo": lo,
                    "hi": hi,
                    "r": int(r),
                },
                units=hi - lo,
            )
        )
    if half <= 1:
        return graph, out, (lambda: None)
    cap = min(cap_height, half.bit_length() - 1)
    sizes = level_sizes(half, cap)
    arena = _buf(pool, (sum(sizes), sponge.DIGEST_LEN), f"sumcheck:tree{level}")
    _add_merkle_shards(
        pool,
        graph,
        f"sc:tree{level}",
        {"arena": _out_ref(pool, arena), "sizes": sizes, "leaves": _out_ref(pool, out)},
        half,
        1,
        deps=fold_ids,
    )

    def finish():
        return MerkleTree.from_levels(out, cap, arena, sizes)

    return graph, out, finish


def sharded_sumcheck_round(pool, table: np.ndarray, r: int, level: int, cap_height: int):
    """Run one fused fold+commit sumcheck round; returns ``(out, tree)``."""
    graph, out, finish = sumcheck_fold_graph(pool, table, r, level, cap_height)
    pool.run(graph)
    return out, finish()


def adopt_batch(pool, batch) -> Dict[str, Any]:
    """Worker-visible refs for a batch's values + tree arena.

    Batches committed through this pool already carry refs; foreign
    batches (e.g. a preprocessed setup commitment built serially) are
    copied into fresh adoption slots once and cached on the batch.  The
    originals are never mutated.
    """
    cached = getattr(batch, "_shard_refs", None)
    if cached is not None and cached[0] == pool.uid:
        return cached[1]
    aslot = pool.adopt_slot()
    refs = {
        "values": _ref_or_copy(pool, np.ascontiguousarray(batch.values), f"{aslot}:values"),
        "arena": _ref_or_copy(pool, np.ascontiguousarray(batch.tree.arena), f"{aslot}:tree"),
        "sizes": [len(level) for level in batch.tree.levels],
    }
    batch._shard_refs = (pool.uid, refs)  # noqa: SLF001 - adoption cache
    return refs


def combine_graph(pool, batches: Sequence, openings, alpha: np.ndarray):
    """Build (don't run) the FRI combine graph; returns ``(graph, out)``."""
    n_lde = batches[0].values.shape[0]
    out = _buf(pool, (n_lde, 2), "fri:vals0")
    refs = [adopt_batch(pool, b) for b in batches]
    args_common = {
        "out": _out_ref(pool, out),
        "values": [r["values"] for r in refs],
        "alpha": np.asarray(alpha, dtype=np.uint64).reshape(2),
        "log_lde": n_lde.bit_length() - 1,
        "points": [np.asarray(p, dtype=np.uint64).reshape(2) for p in openings.points],
        "columns": [list(c) for c in openings.columns],
        "opening_values": [np.atleast_2d(v) for v in openings.values],
    }
    graph = ShardGraph("fri:combine")
    for i, (lo, hi) in enumerate(_split(n_lde, pool.workers)):
        graph.add(
            f"fri:combine{i}",
            "fri_combine",
            {**args_common, "lo": lo, "hi": hi},
            units=hi - lo,
        )
    return graph, out


def sharded_combine(pool, batches: Sequence, openings, alpha: np.ndarray) -> np.ndarray:
    """Sharded ``combine_openings``: row ranges of the LDE domain.

    The alpha-power ladder is a scalar recurrence independent of the
    row, so each shard replays it locally; rows compose bit-exactly.
    """
    graph, out = combine_graph(pool, batches, openings, alpha)
    pool.run(graph)
    return out


def layer_tree_graph(pool, values: np.ndarray, cap_height: int, layer: int):
    """Build (don't run) one FRI layer-commit graph.

    Returns ``(graph, finish)``; ``finish()`` wraps the shard-filled
    arena into the :class:`MerkleTree` once the graph ran.
    """
    from ..hashing import sponge
    from ..merkle.tree import MerkleTree, level_sizes

    n = values.shape[0]
    half = n // 2
    vals = values
    if pool.parallel and pool.arena.ref_of(values) is None:
        vals = _buf(pool, values.shape, f"fri:vals{layer}")
        vals[:] = values
    cap = min(cap_height, half.bit_length() - 1)
    sizes = level_sizes(half, cap)
    arena = _buf(pool, (sum(sizes), sponge.DIGEST_LEN), f"fri:tree{layer}")
    graph = ShardGraph(f"fri:tree{layer}")
    _add_merkle_shards(
        pool,
        graph,
        f"fri:tree{layer}",
        {
            "arena": _out_ref(pool, arena),
            "sizes": sizes,
            "pair_from": _out_ref(pool, vals),
        },
        half,
        2 * values.shape[1],
        deps=(),
    )

    def finish():
        leaves = np.concatenate([vals[:half], vals[half:]], axis=1)
        return MerkleTree.from_levels(leaves, cap, arena, sizes)

    return graph, finish


def sharded_layer_tree(pool, values: np.ndarray, cap_height: int, layer: int):
    """Sharded ``_layer_tree``: commit one FRI fold layer.

    The layer values land in the ``fri:vals{layer}`` arena slot and the
    digests in ``fri:tree{layer}``, where :func:`layer_ref_args` finds
    them again at query time without copying.
    """
    graph, finish = layer_tree_graph(pool, values, cap_height, layer)
    pool.run(graph)
    return finish()


def layer_ref_args(pool, tree, values: np.ndarray, layer: int) -> Dict[str, Any]:
    """Worker-visible refs for one FRI layer (values + tree arena).

    Layers committed through :func:`sharded_layer_tree` resolve to their
    existing segments; serially-built small tail layers are copied into
    the same slots once.
    """
    return {
        "values": _ref_or_copy(pool, np.ascontiguousarray(values), f"fri:vals{layer}"),
        "arena": _ref_or_copy(pool, np.ascontiguousarray(tree.arena), f"fri:tree{layer}"),
        "sizes": [len(level) for level in tree.levels],
    }


def query_rounds_graph(
    pool,
    batches: Sequence,
    layer_args: List[Dict[str, Any]],
    indices: Sequence[int],
):
    """Build (don't run) the query-gather graph; returns ``(graph, chunks)``."""
    batch_refs = [adopt_batch(pool, b) for b in batches]
    chunks = _split(len(indices), pool.workers)
    graph = ShardGraph("fri:queries")
    for i, (lo, hi) in enumerate(chunks):
        graph.add(
            f"fri:queries{i}",
            "fri_queries",
            {
                "indices": [int(x) for x in indices[lo:hi]],
                "batches": batch_refs,
                "layers": layer_args,
            },
            units=hi - lo,
        )
    return graph, chunks


def sharded_query_rounds(
    pool,
    batches: Sequence,
    layer_args: List[Dict[str, Any]],
    indices: Sequence[int],
) -> List:
    """Sharded FRI query phase: chunks of query indices fan out.

    Queries are pure reads (no hashing, no transcript), so any split is
    exact; rounds are assembled in the transcript-pinned index order.
    """
    from ..fri.proof import FriInitialOpening, FriLayerOpening, FriQueryRound
    from ..merkle.tree import MerkleProof

    graph, chunks = query_rounds_graph(pool, batches, layer_args, indices)
    results = pool.run(graph)
    rounds: List = []
    for i, (lo, hi) in enumerate(chunks):
        payloads = results[f"fri:queries{i}"]
        for offset, payload in enumerate(payloads):
            idx = int(indices[lo + offset])
            initial = FriInitialOpening(
                leaves=payload["leaves"],
                proofs=[MerkleProof(siblings=p) for p in payload["paths"]],
            )
            layers = [
                FriLayerOpening(pair_leaf=leaf, proof=MerkleProof(siblings=path))
                for leaf, path in payload["layers"]
            ]
            rounds.append(FriQueryRound(index=idx, initial=initial, layers=layers))
    return rounds
