"""Declared read/write footprints of the shard kernels.

Every kernel in :mod:`repro.parallel.kernels` is a *range restriction*
of a serial prover kernel: it reads and writes statically-describable
regions of shared buffers.  This module makes those regions explicit --
:func:`footprint` maps a shard's ``(kind, args)`` to a list of
:class:`Access` records over the buffers the args reference -- so the
race analyzer (:mod:`repro.analysis.races`) can verify that every
overlapping access pair in a :class:`~repro.parallel.scheduler.ShardGraph`
is ordered by a dependency path *before* the graph runs, instead of
relying on the bit-identity tests to catch an unlucky interleaving.

The region model is one interval along one axis:

* ``axis=None`` means the whole buffer (a conservative summary for
  gather-style reads);
* otherwise ``[lo, hi)`` along ``axis`` with every other axis full
  (``hi=None`` meaning "to the end").

Two accesses to the same buffer overlap unless they restrict the *same*
axis to *disjoint* intervals -- restrictions along different axes
always intersect (a row band crosses every column band), which errs on
the safe side.  Buffer identity is the shared-memory segment name for
:class:`~repro.parallel.shm.ShmRef` args and object identity for
inline ndarrays, matching what the kernels actually dereference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from .shm import ShmRef


@dataclass(frozen=True)
class Access:
    """One declared kernel access: a region of one shared buffer."""

    buffer: str
    mode: str  # "r" or "w"
    axis: Optional[int] = None  # None = the whole buffer
    lo: int = 0
    hi: Optional[int] = None  # None = to the end of the axis

    def overlaps(self, other: "Access") -> bool:
        """Do the two regions intersect?  (Same buffer assumed.)"""
        if self.axis is None or other.axis is None:
            return True
        if self.axis != other.axis:
            return True  # row band x column band always intersect
        self_hi = float("inf") if self.hi is None else self.hi
        other_hi = float("inf") if other.hi is None else other.hi
        return self.lo < other_hi and other.lo < self_hi

    def describe(self) -> str:
        """Short human label for race-finding messages (mode + region)."""
        region = (
            "whole"
            if self.axis is None
            else f"axis{self.axis}[{self.lo}:{'' if self.hi is None else self.hi}]"
        )
        return f"{'write' if self.mode == 'w' else 'read'} {self.buffer} {region}"


def buffer_key(obj: Any) -> Optional[str]:
    """Stable identity for a kernel buffer argument.

    ``ShmRef`` args key by segment name (what every process attaches);
    inline ndarrays key by object identity (what the inline fallback
    dereferences).  Non-buffer values return ``None``.
    """
    if isinstance(obj, ShmRef):
        return f"shm:{obj.name}"
    if isinstance(obj, np.ndarray):
        return f"mem:{id(obj)}"
    return None


def _shape(obj: Any) -> Optional[tuple]:
    if isinstance(obj, (ShmRef, np.ndarray)):
        return tuple(int(d) for d in obj.shape)
    return None


def _acc(obj: Any, mode: str, axis: Optional[int] = None, lo: int = 0,
         hi: Optional[int] = None) -> List[Access]:
    key = buffer_key(obj)
    if key is None:
        return []
    return [Access(buffer=key, mode=mode, axis=axis, lo=lo, hi=hi)]


def _level_offsets(sizes) -> List[int]:
    """Flat arena row offset of each Merkle level."""
    offsets = []
    offset = 0
    for size in sizes:
        offsets.append(offset)
        offset += int(size)
    return offsets


# ---------------------------------------------------------------------------
# Per-kernel footprints (mirror the kernels in .kernels, region by region)
# ---------------------------------------------------------------------------


def _fp_lde_rows(args: Dict[str, Any]) -> List[Access]:
    lo, hi = int(args["lo"]), int(args["hi"])
    mode = args["mode"]
    out: List[Access] = []
    if mode == "direct":
        # Coefficient rows were filled by the coordinator before submit.
        out += _acc(args["coeffs_out"], "r", axis=0, lo=lo, hi=hi)
    elif mode == "intt":
        out += _acc(args["src"], "r", axis=0, lo=lo, hi=hi)
        out += _acc(args["coeffs_out"], "w", axis=0, lo=lo, hi=hi)
    elif mode == "chunks":
        # Rows gather strided slices from both limb rows: whole-buffer read.
        out += _acc(args["src"], "r")
        out += _acc(args["coeffs_out"], "w", axis=0, lo=lo, hi=hi)
    else:
        raise ValueError(f"unknown lde_rows mode {mode!r}")
    out += _acc(args["values_out"], "w", axis=1, lo=lo, hi=hi)
    return out


def _fp_intt_limb(args: Dict[str, Any]) -> List[Access]:
    limb = int(args["limb"])
    return _acc(args["src"], "r", axis=1, lo=limb, hi=limb + 1) + _acc(
        args["out"], "w", axis=0, lo=limb, hi=limb + 1
    )


def _fp_merkle_subtree(args: Dict[str, Any]) -> List[Access]:
    start, count = int(args["start"]), int(args["count"])
    sizes = [int(s) for s in args["sizes"]]
    offsets = _level_offsets(sizes)
    out: List[Access] = []
    pair_from = args.get("pair_from")
    if pair_from is not None:
        shape = _shape(pair_from)
        half = (shape[0] // 2) if shape else 0
        out += _acc(pair_from, "r", axis=0, lo=start, hi=start + count)
        out += _acc(pair_from, "r", axis=0, lo=half + start, hi=half + start + count)
    else:
        out += _acc(args["leaves"], "r", axis=0, lo=start, hi=start + count)
    # Aligned level ranges: the subtree fully owns rows [start>>i,
    # (start+count)>>i) of every level it covers (count >> i >= 1).
    arena = args["arena"]
    for i in range(len(sizes)):
        if (count >> i) < 1:
            break
        out += _acc(
            arena,
            "w",
            axis=0,
            lo=offsets[i] + (start >> i),
            hi=offsets[i] + ((start + count) >> i),
        )
    return out


def _fp_merkle_top(args: Dict[str, Any]) -> List[Access]:
    sizes = [int(s) for s in args["sizes"]]
    offsets = _level_offsets(sizes)
    sub_depth = int(args["sub_depth"])
    arena = args["arena"]
    total = sum(sizes)
    out = _acc(
        arena, "r", axis=0, lo=offsets[sub_depth], hi=offsets[sub_depth] + sizes[sub_depth]
    )
    if sub_depth + 1 < len(sizes):
        out += _acc(arena, "w", axis=0, lo=offsets[sub_depth + 1], hi=total)
    return out


def _fp_sumcheck_fold(args: Dict[str, Any]) -> List[Access]:
    lo, hi = int(args["lo"]), int(args["hi"])
    shape = _shape(args["src"])
    half = (shape[0] // 2) if shape else 0
    return (
        _acc(args["src"], "r", axis=0, lo=lo, hi=hi)
        + _acc(args["src"], "r", axis=0, lo=half + lo, hi=half + hi)
        + _acc(args["out"], "w", axis=0, lo=lo, hi=hi)
    )


def _fp_fri_combine(args: Dict[str, Any]) -> List[Access]:
    lo, hi = int(args["lo"]), int(args["hi"])
    out = _acc(args["out"], "w", axis=0, lo=lo, hi=hi)
    for values in args["values"]:
        out += _acc(values, "r", axis=0, lo=lo, hi=hi)
    return out


def _fp_fri_queries(args: Dict[str, Any]) -> List[Access]:
    # Pure gather over transcript-pinned indices: whole-buffer reads of
    # every batch/layer values matrix and tree arena.
    out: List[Access] = []
    for batch in args["batches"]:
        out += _acc(batch["values"], "r")
        out += _acc(batch["arena"], "r")
    for layer in args["layers"]:
        out += _acc(layer["values"], "r")
        out += _acc(layer["arena"], "r")
    return out


#: Footprint registry: shard ``kind`` -> args -> accesses.  Covers every
#: kernel in :data:`repro.parallel.kernels.KERNELS` (asserted by tests);
#: a kind missing here is reported as ``race.no-footprint``.
FOOTPRINTS: Dict[str, Callable[[Dict[str, Any]], List[Access]]] = {
    "lde_rows": _fp_lde_rows,
    "intt_limb": _fp_intt_limb,
    "merkle_subtree": _fp_merkle_subtree,
    "merkle_top": _fp_merkle_top,
    "sumcheck_fold": _fp_sumcheck_fold,
    "fri_combine": _fp_fri_combine,
    "fri_queries": _fp_fri_queries,
}


def footprint(kind: str, args: Dict[str, Any]) -> Optional[List[Access]]:
    """The declared accesses of one shard, or ``None`` for unknown kinds."""
    fn = FOOTPRINTS.get(kind)
    if fn is None:
        return None
    return fn(args)
