"""Shard kernels: the work units executed by shard workers.

Each kernel takes one picklable ``args`` dict whose array-valued
entries are either :class:`~repro.parallel.shm.ShmRef` handles (worker
execution -- the arrays live in shared memory) or plain ndarrays
(inline execution in the coordinator, the ``workers=1`` fallback);
:func:`repro.parallel.shm.resolve` makes both look the same.

Every kernel is a *row-range restriction* of an existing serial prover
kernel: iNTT/LDE rows, Merkle leaf/compress ranges, FRI combine rows
and query index chunks are all independent across rows, so a sharded
run produces bit-identical field elements, digests and operation
counters to the serial path (the counters charge per row/leaf, so
disjoint ranges sum to exactly the serial totals).  Kernels write their
outputs into disjoint regions of shared buffers and return only small
gather results, keeping IPC off the data path.

Imports from the proving modules happen lazily inside the kernels:
those modules import :mod:`repro.parallel` to reach the active pool,
and the lazy imports break the cycle.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

import numpy as np

from .shm import resolve


def _levels(arena: np.ndarray, sizes) -> List[np.ndarray]:
    """Split a level-order Merkle arena into per-level views."""
    views: List[np.ndarray] = []
    offset = 0
    for size in sizes:
        views.append(arena[offset : offset + int(size)])
        offset += int(size)
    return views


def _merkle_path(arena: np.ndarray, sizes, index: int) -> np.ndarray:
    """Gather the sibling path for a leaf (mirrors ``MerkleTree.prove``)."""
    sibs = []
    for level in _levels(arena, sizes)[:-1]:
        sibs.append(level[index ^ 1])
        index >>= 1
    if sibs:
        return np.stack(sibs)
    return np.zeros((0, 4), dtype=np.uint64)


def lde_commit_rows(args: Dict[str, Any]):
    """LDE a row range of one batch into the shared values matrix.

    Modes select where the coefficient rows come from:

    * ``direct`` -- rows already sit in ``coeffs_out``;
    * ``intt``   -- rows are subgroup evaluations in ``src``; iNTT them
      and store the coefficients into ``coeffs_out`` first;
    * ``chunks`` -- rows are degree-``n`` slices of per-limb quotient
      coefficients in ``src`` (shape ``(2, n_lde)``), gathered into
      ``coeffs_out`` first.

    Then every row is low-degree-extended and transposed into columns
    ``[lo, hi)`` of ``values_out`` (shape ``(n_lde, k)``).  Rows are
    independent under both transforms, so any row split is bit-exact.
    """
    from ..ntt import intt, lde_coeffs

    lo, hi = int(args["lo"]), int(args["hi"])
    coeffs_out = resolve(args["coeffs_out"])
    values_out = resolve(args["values_out"])
    mode = args["mode"]
    if mode == "direct":
        pass
    elif mode == "intt":
        src = resolve(args["src"])
        coeffs_out[lo:hi] = intt(np.ascontiguousarray(src[lo:hi]))
    elif mode == "chunks":
        src = resolve(args["src"])
        n = int(args["n"])
        chunks = int(args["chunks"])
        for r in range(lo, hi):
            limb, k = divmod(r, chunks)
            coeffs_out[r] = src[limb, k * n : (k + 1) * n]
    else:
        raise ValueError(f"unknown lde_commit_rows mode {mode!r}")
    rows = np.ascontiguousarray(coeffs_out[lo:hi])
    ldes = lde_coeffs(rows, int(args["rate_bits"]))
    values_out[:, lo:hi] = ldes.T
    return None


def coset_intt_limb(args: Dict[str, Any]):
    """Coset-iNTT one extension limb of the quotient evaluation.

    Reads column ``limb`` of the ``(n_lde, 2)`` extension values in
    ``src`` and writes the coefficient row ``out[limb]``.
    """
    from ..ntt import coset_intt

    src = resolve(args["src"])
    out = resolve(args["out"])
    limb = int(args["limb"])
    out[limb] = coset_intt(np.ascontiguousarray(src[:, limb]))
    return None


def merkle_subtree(args: Dict[str, Any]):
    """Hash one aligned leaf range and compress its subtree levels.

    Fills rows ``[start, start + count)`` of level 0 (leaf digests) and
    the corresponding aligned ranges of every level the subtree fully
    covers (``count >> i >= 1``).  ``count`` and ``start`` are both
    powers-of-two-aligned, so sibling pairs never straddle a shard
    boundary and each level range is written by exactly one shard.

    Leaves come either from rows of a ``leaves`` matrix, or -- for FRI
    layer trees -- from ``pair_from`` values ``v`` where leaf ``i``
    packs ``(v[i], v[i + half])``, exactly the serial layer-leaf
    layout.
    """
    from ..field import gl64
    from ..hashing import sponge

    arena = resolve(args["arena"])
    levels = _levels(arena, args["sizes"])
    start, count = int(args["start"]), int(args["count"])
    ws = gl64.default_workspace()
    pair_from = args.get("pair_from")
    if pair_from is not None:
        vals = resolve(pair_from)
        half = vals.shape[0] // 2
        leaf_rows = np.concatenate(
            [vals[start : start + count], vals[half + start : half + start + count]],
            axis=1,
        )
    else:
        leaf_rows = resolve(args["leaves"])[start : start + count]
    sponge.hash_leaves_into(leaf_rows, levels[0][start : start + count], ws)
    for i in range(1, len(levels)):
        if (count >> i) < 1:
            break
        prev = levels[i - 1][start >> (i - 1) : (start + count) >> (i - 1)]
        sponge.compress_level_into(prev, levels[i][start >> i : (start + count) >> i], ws)
    return None


def merkle_top(args: Dict[str, Any]):
    """Compress the levels above the subtree roots down to the cap.

    Runs after every ``merkle_subtree`` shard of the tree: levels up to
    ``sub_depth`` (the per-subtree height) are already filled, the rest
    of the climb is a small serial tail.
    """
    from ..field import gl64
    from ..hashing import sponge

    arena = resolve(args["arena"])
    levels = _levels(arena, args["sizes"])
    ws = gl64.default_workspace()
    for i in range(int(args["sub_depth"]) + 1, len(levels)):
        sponge.compress_level_into(levels[i - 1], levels[i], ws)
    return None


def sumcheck_fold_range(args: Dict[str, Any]):
    """Fold rows ``[lo, hi)`` of one sumcheck round into ``out``.

    A row-range restriction of :func:`repro.sumcheck.fold_table`:
    output row ``j`` depends only on source rows ``j`` and
    ``j + half``, so a shard reads the aligned pair of source ranges
    and writes its own disjoint output range.  The fold is pure
    ``gl64`` element-wise arithmetic (never counted by the op
    counters), so sharding perturbs neither digests nor counter
    goldens -- the folded table is bit-identical to the serial fold.
    """
    from ..sumcheck import fold_table

    src = resolve(args["src"])
    out = resolve(args["out"])
    lo, hi = int(args["lo"]), int(args["hi"])
    half = src.shape[0] // 2
    block = np.concatenate([src[lo:hi], src[half + lo : half + hi]])
    out[lo:hi] = fold_table(block, int(args["r"]))
    return None


def fri_combine_range(args: Dict[str, Any]):
    """Rows ``[lo, hi)`` of the combined FRI quotient values.

    A row-range restriction of
    :func:`repro.fri.prover.combine_openings`: every operation there is
    element-wise over the LDE domain (the alpha-power ladder is a pure
    scalar recurrence replayed identically in each shard), so disjoint
    row ranges compose to the bit-identical full array.
    """
    from ..field import extension as fext, gl64
    from ..fri.prover import lde_points

    lo, hi = int(args["lo"]), int(args["hi"])
    m = hi - lo
    out = resolve(args["out"])
    batch_values = [resolve(r) for r in args["values"]]
    alpha = np.asarray(args["alpha"], dtype=np.uint64).reshape(2)
    xs = lde_points(int(args["log_lde"]))[lo:hi]
    total = fext.from_base(gl64.zeros(m))
    alpha_t = fext.one()
    for point, cols, vals in zip(args["points"], args["columns"], args["opening_values"]):
        num = fext.from_base(gl64.zeros(m))
        const = fext.zero()
        for (b, c), y in zip(cols, vals):
            f_vals = batch_values[b][lo:hi, c]
            num = fext.add(num, fext.scalar_mul(np.broadcast_to(alpha_t, (m, 2)), f_vals))
            const = fext.add(const, fext.mul(alpha_t, y))
            alpha_t = fext.mul(alpha_t, alpha)
        num = fext.sub(num, np.broadcast_to(const, (m, 2)))
        denom = fext.sub(
            fext.from_base(xs),
            np.broadcast_to(np.asarray(point, dtype=np.uint64).reshape(2), (m, 2)),
        )
        total = fext.add(total, fext.mul(num, fext.inv(denom)))
    out[lo:hi] = total
    return None


def fri_query_chunk(args: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Gather the openings for a chunk of FRI query indices.

    Pure reads: initial leaves and Merkle paths from every batch, then
    pair leaves and paths down the layer trees -- no hashing, exactly
    like the serial query loop.  Returns one payload per index, in the
    chunk's (transcript-pinned) index order.
    """
    batches = args["batches"]
    layers = args["layers"]
    out: List[Dict[str, Any]] = []
    for idx in args["indices"]:
        idx = int(idx)
        leaves = [resolve(b["values"])[idx].copy() for b in batches]
        paths = [_merkle_path(resolve(b["arena"]), b["sizes"], idx) for b in batches]
        layer_rows = []
        cur = idx
        for layer in layers:
            vals = resolve(layer["values"])
            half = vals.shape[0] // 2
            pair = cur % half
            leaf = np.concatenate([vals[pair], vals[pair + half]])
            layer_rows.append(
                (leaf, _merkle_path(resolve(layer["arena"]), layer["sizes"], pair))
            )
            cur = pair
        out.append({"leaves": leaves, "paths": paths, "layers": layer_rows})
    return out


#: Kernel registry: shard ``kind`` -> callable.
KERNELS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "lde_rows": lde_commit_rows,
    "intt_limb": coset_intt_limb,
    "merkle_subtree": merkle_subtree,
    "merkle_top": merkle_top,
    "sumcheck_fold": sumcheck_fold_range,
    "fri_combine": fri_combine_range,
    "fri_queries": fri_query_chunk,
}


def run_kernel(kind: str, args: Dict[str, Any]):
    """Dispatch one shard to its kernel (raises ``KeyError`` on unknown)."""
    return KERNELS[kind](args)
