"""A Starky AIR for the Poseidon permutation itself.

Hashing dominates proof generation (paper Table 1), and production
Starky deployments prove hash chains with exactly this kind of AIR.
One permutation occupies a 32-row block: row ``r`` holds the state
*before* step ``r`` (steps: 4 full rounds, the pre-partial linear
round, 22 sparse partial rounds, 4 full rounds = 31 transitions), and
row 31 holds the output.  ``num_perms`` blocks chain head-to-tail
(``state_{k+1}(0) = state_k(31)``), proving an iterated permutation --
the hash-chain/VDF-style statement.

Row-dependent behaviour (round constants, round types, per-round sparse
matrices) comes from *constant columns*: public periodic polynomials
that are never committed (see :class:`repro.stark.Air`).

Degree management: the ``x^7`` S-box is split with an auxiliary cube
column (``aux_i = (s_i + rc_i)^3``), keeping every transition
constraint at degree <= 4 (selector x cube), so the quotient needs 3
chunks and a blowup of at least 8 (``rate_bits >= 2``... we use the
Plonky2-style ``rate_bits = 3``).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..field import gl64, goldilocks as gl
from ..hashing.constants import WIDTH, mds_matrix, round_constants
from ..hashing.optimized import optimized_params
from .air import Air, BoundaryConstraint

#: Rows per permutation block (31 steps + output row).
BLOCK_ROWS = 32
#: Step indices within a block.
_FULL_FIRST = range(0, 4)
_PRE_ROW = 4
_PARTIAL = range(5, 27)
_FULL_SECOND = range(27, 31)


class PoseidonAir(Air):
    """AET proving ``num_perms`` chained Poseidon permutations."""

    constraint_degree = 4

    def __init__(self, num_perms: int = 1) -> None:
        if num_perms < 1 or num_perms & (num_perms - 1):
            raise ValueError("num_perms must be a power of two")
        self.num_perms = num_perms
        self.width = 2 * WIDTH  # 12 state + 12 aux cube columns

    # -- constant columns -----------------------------------------------------

    def constant_columns(self, n: int) -> np.ndarray:
        """Selectors, round constants, and sparse-matrix columns.

        Layout: [sel_full, sel_pre, sel_partial, sel_copy,
        rc[12], m00, row[11], col_hat[11]] = 40 columns.
        """
        if n != self.num_perms * BLOCK_ROWS:
            raise ValueError(
                f"trace length {n} != {self.num_perms} x {BLOCK_ROWS} rows"
            )
        params = optimized_params()
        full_rc, _ = round_constants()
        cols = np.zeros((40, n), dtype=np.uint64)
        sel_full, sel_pre, sel_partial, sel_copy = 0, 1, 2, 3
        rc0 = 4
        m00_col = 16
        row0 = 17
        ch0 = 28
        for blk in range(self.num_perms):
            base = blk * BLOCK_ROWS
            for i, r in enumerate(_FULL_FIRST):
                cols[sel_full, base + r] = 1
                cols[rc0 : rc0 + WIDTH, base + r] = full_rc[i]
            cols[sel_pre, base + _PRE_ROW] = 1
            cols[rc0 : rc0 + WIDTH, base + _PRE_ROW] = params.pre_constants
            for i, r in enumerate(_PARTIAL):
                rnd = params.rounds[i]
                cols[sel_partial, base + r] = 1
                cols[rc0, base + r] = rnd.post_constant
                cols[m00_col, base + r] = rnd.m00
                cols[row0 : row0 + 11, base + r] = rnd.row
                cols[ch0 : ch0 + 11, base + r] = rnd.col_hat
            for i, r in enumerate(_FULL_SECOND):
                cols[sel_full, base + r] = 1
                cols[rc0 : rc0 + WIDTH, base + r] = full_rc[4 + i]
            if blk + 1 < self.num_perms:
                cols[sel_copy, base + BLOCK_ROWS - 1] = 1
        return cols

    # -- constraints ------------------------------------------------------------

    def eval_transition_with_constants(
        self, local: Sequence, next_row: Sequence, constants: Sequence, alg
    ) -> List:
        s = local[:WIDTH]
        aux = local[WIDTH:]
        nxt = next_row[:WIDTH]
        sel_full, sel_pre, sel_partial, sel_copy = constants[0:4]
        rc = constants[4:16]
        m00 = constants[16]
        row_c = constants[17:28]
        ch_c = constants[28:39]
        mds = mds_matrix()
        pre = optimized_params().pre_matrix

        def cube(x):
            return alg.mul(alg.mul(x, x), x)

        constraints = []
        # Aux definitions.  Full rounds: aux_i = (s_i + rc_i)^3 for all i.
        shifted = [alg.add(s[i], rc[i]) for i in range(WIDTH)]
        for i in range(WIDTH):
            constraints.append(alg.mul(sel_full, alg.sub(aux[i], cube(shifted[i]))))
        # Partial rounds: aux_0 = s_0^3 (the S-box acts before the constant).
        constraints.append(alg.mul(sel_partial, alg.sub(aux[0], cube(s[0]))))

        # Full-round next state: next_j = sum_i MDS[i][j] * sbox_i where
        # sbox_i = aux_i^2 * shifted_i (degree 3 thanks to the aux column).
        sbox = [alg.mul(alg.mul(aux[i], aux[i]), shifted[i]) for i in range(WIDTH)]
        for j in range(WIDTH):
            acc = alg.constant(0)
            for i in range(WIDTH):
                acc = alg.add(acc, alg.mul_const(sbox[i], int(mds[i, j])))
            constraints.append(alg.mul(sel_full, alg.sub(nxt[j], acc)))

        # Pre-partial next state: next_j = sum_i Pre[i][j] * (s_i + rc_i).
        for j in range(WIDTH):
            acc = alg.constant(0)
            for i in range(WIDTH):
                acc = alg.add(acc, alg.mul_const(shifted[i], int(pre[i, j])))
            constraints.append(alg.mul(sel_pre, alg.sub(nxt[j], acc)))

        # Partial next state.  L = sbox(s_0) + post_const; the sparse
        # matrix columns are zero outside partial rows, so they self-gate.
        lane0 = alg.add(alg.mul(alg.mul(aux[0], aux[0]), s[0]), rc[0])
        # lane 0: sel * next_0 = m00 * L + sum ch_i * s_{i+1}
        rhs0 = alg.mul(m00, lane0)
        for i in range(WIDTH - 1):
            rhs0 = alg.add(rhs0, alg.mul(ch_c[i], s[i + 1]))
        constraints.append(alg.sub(alg.mul(sel_partial, nxt[0]), rhs0))
        # lanes j >= 1: sel * next_j = row_j * L + sel * s_j
        for j in range(WIDTH - 1):
            rhs = alg.add(alg.mul(row_c[j], lane0), alg.mul(sel_partial, s[j + 1]))
            constraints.append(alg.sub(alg.mul(sel_partial, nxt[j + 1]), rhs))

        # Block chaining: output row copies into the next block's input.
        for j in range(WIDTH):
            constraints.append(alg.mul(sel_copy, alg.sub(nxt[j], s[j])))
        return constraints

    # -- boundaries ----------------------------------------------------------------

    def boundary_constraints(self, public_inputs: Sequence[int]) -> List[BoundaryConstraint]:
        """Pin the first block's input and the last block's output."""
        if len(public_inputs) != 2 * WIDTH:
            raise ValueError("publics are [input state (12), output state (12)]")
        out_row = self.num_perms * BLOCK_ROWS - 1
        bcs = [
            BoundaryConstraint(0, i, int(public_inputs[i])) for i in range(WIDTH)
        ]
        bcs += [
            BoundaryConstraint(out_row, i, int(public_inputs[WIDTH + i]))
            for i in range(WIDTH)
        ]
        return bcs


def generate_trace(input_state: Sequence[int], num_perms: int = 1) -> np.ndarray:
    """Build the execution trace for ``num_perms`` chained permutations.

    Returns (num_perms * 32, 24); the final state equals
    ``permute^num_perms(input_state)``.
    """
    params = optimized_params()
    full_rc, _ = round_constants()
    mds = [[int(v) for v in r] for r in mds_matrix().tolist()]
    pre = [[int(v) for v in r] for r in optimized_params().pre_matrix.tolist()]
    n = num_perms * BLOCK_ROWS
    trace = np.zeros((n, 2 * WIDTH), dtype=np.uint64)
    state = [int(v) % gl.P for v in input_state]

    def row_vec_mat(vec, mat):
        return [
            sum(vec[i] * mat[i][j] for i in range(WIDTH)) % gl.P for j in range(WIDTH)
        ]

    for blk in range(num_perms):
        base = blk * BLOCK_ROWS
        for step in range(BLOCK_ROWS - 1):
            row = base + step
            trace[row, :WIDTH] = state
            if step in _FULL_FIRST or step in _FULL_SECOND:
                r = step if step in _FULL_FIRST else 4 + (step - 27)
                shifted = [(state[i] + int(full_rc[r][i])) % gl.P for i in range(WIDTH)]
                for i in range(WIDTH):
                    trace[row, WIDTH + i] = pow(shifted[i], 3, gl.P)
                sboxed = [pow(v, 7, gl.P) for v in shifted]
                state = row_vec_mat(sboxed, mds)
            elif step == _PRE_ROW:
                shifted = [
                    (state[i] + int(params.pre_constants[i])) % gl.P
                    for i in range(WIDTH)
                ]
                state = row_vec_mat(shifted, pre)
            else:  # partial
                rnd = params.rounds[step - 5]
                trace[row, WIDTH] = pow(state[0], 3, gl.P)
                lane0 = (pow(state[0], 7, gl.P) + rnd.post_constant) % gl.P
                out0 = (
                    lane0 * rnd.m00
                    + sum(int(rnd.col_hat[i]) * state[i + 1] for i in range(WIDTH - 1))
                ) % gl.P
                rest = [
                    (lane0 * int(rnd.row[j]) + state[j + 1]) % gl.P
                    for j in range(WIDTH - 1)
                ]
                state = [out0] + rest
        trace[base + BLOCK_ROWS - 1, :WIDTH] = state
    return trace


def public_values(input_state: Sequence[int], num_perms: int = 1) -> List[int]:
    """The AIR's public inputs: input state + final chained output."""
    from ..hashing import permute

    state = np.asarray(input_state, dtype=np.uint64)
    for _ in range(num_perms):
        state = permute(state)
    return [int(v) % gl.P for v in input_state] + [int(v) for v in state]
