"""Starky-style STARK: AIR definitions, prover, verifier."""

from . import poseidon_air
from .air import Air, BaseVecAlgebra, BoundaryConstraint, ExtAlgebra
from .plan import ProverPlan, plan_for
from .poseidon_air import PoseidonAir
from .proof import StarkProof
from .prover import prove, prove_batch, quotient_chunk_count
from .verifier import StarkError, verify

__all__ = [
    "Air",
    "BoundaryConstraint",
    "BaseVecAlgebra",
    "ExtAlgebra",
    "StarkProof",
    "ProverPlan",
    "plan_for",
    "PoseidonAir",
    "poseidon_air",
    "prove",
    "prove_batch",
    "verify",
    "StarkError",
    "quotient_chunk_count",
]
