"""STARK verifier: transcript replay, constraint identity at zeta, FRI."""

from __future__ import annotations

import numpy as np

from ..field import extension as fext, goldilocks as gl
from ..fri import fri_verify
from ..fri.verifier import FriError
from ..hashing import Challenger
from .air import Air, ExtAlgebra
from .proof import StarkProof
from .prover import quotient_chunk_count


class StarkError(Exception):
    """Raised when a STARK proof fails verification."""


def verify(
    air: Air,
    proof: StarkProof,
    config,
    challenger: Challenger | None = None,
) -> None:
    """Verify a STARK proof; raises :class:`StarkError` on any failure."""
    challenger = challenger or Challenger()
    # Bound the claimed degree before ``1 << degree_bits`` can build a
    # multi-gigabyte integer from a hostile 32-bit value.
    if not 0 < proof.degree_bits <= gl.TWO_ADICITY:
        raise StarkError("degree bits out of range")
    n = 1 << proof.degree_bits
    width = air.width
    chunks = quotient_chunk_count(air)

    challenger.observe_elements(np.asarray(proof.public_inputs, dtype=np.uint64))
    challenger.observe_cap(proof.trace_cap)
    alpha = challenger.get_ext_challenge()
    challenger.observe_cap(proof.quotient_cap)
    zeta = challenger.get_ext_challenge()

    omega = gl.primitive_root_of_unity(proof.degree_bits)
    zeta_next = fext.scalar_mul(zeta, np.uint64(omega))

    op = proof.openings
    expected_cols_zeta = [(0, c) for c in range(width)] + [
        (1, c) for c in range(2 * chunks)
    ]
    expected_cols_next = [(0, c) for c in range(width)]
    if len(op.points) != 2 or len(op.columns) != 2 or len(op.values) != 2:
        raise StarkError("malformed opening set (points)")
    if op.points[0].size != 2 or op.points[1].size != 2:
        raise StarkError("malformed opening set (points)")
    if not (
        np.array_equal(op.points[0].reshape(2), zeta.reshape(2))
        and np.array_equal(op.points[1].reshape(2), zeta_next.reshape(2))
    ):
        raise StarkError("openings are not at the transcript's zeta")
    if op.columns[0] != expected_cols_zeta or op.columns[1] != expected_cols_next:
        raise StarkError("malformed opening set (columns)")

    vals0 = np.atleast_2d(op.values[0])
    vals1 = np.atleast_2d(op.values[1])
    if vals0.shape != (len(expected_cols_zeta), 2) or vals1.shape != (
        len(expected_cols_next),
        2,
    ):
        raise StarkError("malformed opening set (values)")
    local = [vals0[c] for c in range(width)]
    t_chunks = [vals0[width + i] for i in range(2 * chunks)]
    next_row = [vals1[c] for c in range(width)]

    zeta_n = fext.pow_scalar(zeta.reshape(2), n)
    zh = fext.sub(zeta_n, fext.one())
    if bool(fext.is_zero(zh)):
        raise StarkError("zeta landed inside the subgroup (reject)")

    # Recompute the composition value at zeta.
    alg = ExtAlgebra()
    last_point = gl.pow_mod(omega, n - 1)
    # transition divisor inverse at zeta: (zeta - w^(n-1)) / Z_H(zeta)
    trans_div_inv = fext.mul(
        fext.sub(zeta.reshape(2), fext.from_base(np.uint64(last_point))),
        fext.inv(zh),
    )
    # Public constant columns: the verifier evaluates their interpolants
    # at zeta itself (they are public data, never committed).
    const_cols = air.constant_columns(n)
    consts = []
    if const_cols.shape[0]:
        from ..ntt import intt

        coeffs = intt(const_cols)
        consts = [
            fext.eval_poly_base(coeffs[k], zeta.reshape(2))
            for k in range(const_cols.shape[0])
        ]
    total = fext.zero()
    alpha_t = fext.one()
    for con in air.eval_transition_with_constants(local, next_row, consts, alg):
        total = fext.add(total, fext.mul(alpha_t, fext.mul(con, trans_div_inv)))
        alpha_t = fext.mul(alpha_t, alpha.reshape(2))
    for bc in air.boundary_constraints(proof.public_inputs):
        point = gl.pow_mod(omega, bc.row)
        numer = fext.sub(local[bc.column], fext.from_base(np.uint64(gl.canonical(bc.value))))
        div_inv = fext.inv(fext.sub(zeta.reshape(2), fext.from_base(np.uint64(point))))
        total = fext.add(total, fext.mul(alpha_t, fext.mul(numer, div_inv)))
        alpha_t = fext.mul(alpha_t, alpha.reshape(2))

    # Reassemble the committed composition at zeta.
    phi = fext.make(0, 1)
    t_eval = fext.zero()
    for limb in range(2):
        limb_val = fext.zero()
        for k in range(chunks - 1, -1, -1):
            limb_val = fext.add(fext.mul(limb_val, zeta_n), t_chunks[limb * chunks + k])
        if limb == 1:
            limb_val = fext.mul(limb_val, phi)
        t_eval = fext.add(t_eval, limb_val)

    if not np.array_equal(total.reshape(2), t_eval.reshape(2)):
        raise StarkError("constraint identity fails at zeta")

    caps = [proof.trace_cap, proof.quotient_cap]
    try:
        fri_verify(
            caps,
            op,
            proof.fri_proof,
            challenger,
            config,
            n,
            leaf_widths=[width, 2 * chunks],
        )
    except FriError as exc:
        raise StarkError(f"FRI verification failed: {exc}") from exc
