"""Per-shape prover plans: precomputed tables + reusable workspaces.

A :class:`ProverPlan` gathers everything the STARK + FRI provers would
otherwise re-derive on every proof of a ``(n, rate_bits)`` trace shape:

* the coset evaluation points and vanishing-polynomial inverses;
* the transition-divisor inverse and per-row boundary-divisor inverses;
* low-degree extensions of public constant columns (keyed by content);
* the NTT twiddle/bit-reverse tables, fused Poseidon matrices and FRI
  fold weights (touched once by :meth:`ProverPlan.warm`);
* one :class:`repro.field.gl64.Workspace` arena holding the NTT scratch,
  sponge states and Merkle level arenas for the whole proof.

This is the software analogue of UniZK's kernel-mapping preparation:
the plan is built once per shape and then shared by every job the
service batches onto it (paper Sections 4-5).  Plans are NOT
thread-safe -- the workspace arena is reused mutably per proof -- so
:func:`plan_for` hands out thread-local instances.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..field import gl64, goldilocks as gl
from ..fri import prover as fri_prover
from ..hashing import optimized
from ..metrics import GLOBAL as _METRICS
from ..ntt import transforms
from ..tunables import PlanTuning


class ProverPlan:
    """Precomputed state for proving traces of one shape."""

    def __init__(self, n: int, rate_bits: int) -> None:
        if n & (n - 1) or n <= 0:
            raise ValueError("trace length must be a power of two")
        self.n = n
        self.rate_bits = rate_bits
        self.n_lde = n << rate_bits
        self.log_lde = self.n_lde.bit_length() - 1
        self.ws = gl64.Workspace()
        #: Coset points g * omega^i over the LDE domain (read-only).
        self.xs = fri_prover.lde_points(self.log_lde)
        blowup = 1 << rate_bits
        omega_lde = gl.primitive_root_of_unity(self.log_lde)
        cycle = gl64.mul(
            gl64.powers(gl.pow_mod(omega_lde, n), blowup),
            np.uint64(gl.pow_mod(gl.coset_shift(), n)),
        )
        #: 1 / Z_H(x) on the LDE coset (read-only).
        self.zh_inv = gl64.inv_fast(np.tile(gl64.sub(cycle, np.uint64(1)), n))
        self.zh_inv.flags.writeable = False
        self.omega = gl.primitive_root_of_unity(n.bit_length() - 1)
        #: Z_H(x)^-1 * (x - omega^(n-1)): the transition divisor inverse.
        self.transition_div_inv = gl64.mul(
            self.zh_inv, gl64.sub(self.xs, np.uint64(gl.pow_mod(self.omega, n - 1)))
        )
        self.transition_div_inv.flags.writeable = False
        self._boundary_inv: Dict[int, np.ndarray] = {}
        self._const_ldes: Dict[bytes, np.ndarray] = {}
        #: Software tuning the prover applies for this shape (``None``
        #: = heuristic defaults; filled in by :func:`plan_for` from the
        #: tuning cache when the plan tuner has a stored winner).
        self.tuning: Optional[PlanTuning] = None

    def boundary_inverse(self, row: int) -> np.ndarray:
        """Cached ``1 / (x - omega^row)`` over the LDE coset (read-only)."""
        row = row % self.n
        cached = self._boundary_inv.get(row)
        if cached is None:
            point = gl.pow_mod(self.omega, row)
            cached = gl64.inv_fast(gl64.sub(self.xs, np.uint64(point)))
            cached.flags.writeable = False
            self._boundary_inv[row] = cached
        return cached

    def const_lde(self, const_cols: np.ndarray) -> np.ndarray:
        """Cached LDE of public constant columns, keyed by content."""
        key = const_cols.tobytes()
        cached = self._const_ldes.get(key)
        if cached is None:
            cached = transforms.lde(const_cols, self.rate_bits)
            cached.flags.writeable = False
            self._const_ldes[key] = cached
        return cached

    def warm(self) -> "ProverPlan":
        """Touch every lazily-built table the hot path will need.

        Builds the NTT stage twiddles and bit-reverse permutations for
        the trace and LDE domains, the fused Poseidon round tensors, and
        the FRI fold weights for every fold the config could run, so the
        first proof through the plan pays no one-time costs.
        """
        for log_n in (self.n.bit_length() - 1, self.log_lde):
            transforms.bit_reverse_indices(log_n)
            transforms._stage_twiddles(log_n, False)
            transforms._stage_twiddles(log_n, True)
        optimized._fused_tables()
        optimized._scalar_tables()
        shift = gl.coset_shift()
        for log_n in range(self.log_lde, 1, -1):
            fri_prover._fold_weights(log_n, int(shift))
            shift = gl.mul(shift, shift)
        return self

    def workspace_bytes(self) -> int:
        """Current size of the plan's scratch arena, in bytes."""
        return self.ws.nbytes()


_LOCAL = threading.local()

#: Per-thread plan-cache capacity.  Plans pin multi-megabyte workspace
#: arenas, so the cache is LRU-bounded; evictions are counted in
#: :data:`repro.metrics.GLOBAL` (``plan_evictions``).
PLAN_CACHE_CAP = 8


def plan_for(n: int, rate_bits: int) -> ProverPlan:
    """Return this thread's (warmed) plan for a trace shape.

    Keyed on ``(n, rate_bits)``; repeated proofs of one shape -- the
    service's batch path in particular -- share tables and workspaces.
    The cache holds at most :data:`PLAN_CACHE_CAP` plans per thread,
    evicting least-recently-used shapes.
    """
    cache: OrderedDict[Tuple[int, int], ProverPlan] = getattr(_LOCAL, "plans", None)
    if cache is None:
        cache = OrderedDict()
        _LOCAL.plans = cache
    key = (n, rate_bits)
    plan = cache.get(key)
    if plan is None:
        plan = ProverPlan(n, rate_bits).warm()
        plan.tuning = _cached_tuning(n, rate_bits)
        cache[key] = plan
        while len(cache) > PLAN_CACHE_CAP:
            cache.popitem(last=False)
            _METRICS.plan_evictions += 1
    else:
        cache.move_to_end(key)
    return plan


def _cached_tuning(n: int, rate_bits: int) -> Optional[PlanTuning]:
    """Stored plan-tuner winner for this shape, or ``None``.

    Imported lazily: the plan tuner drives the provers, which in turn
    build plans through this module.
    """
    try:
        from ..autotune.plan_tuner import cached_tuning

        return cached_tuning("stark", n, rate_bits)
    except Exception:
        return None
