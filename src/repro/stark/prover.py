"""Starky-style STARK prover.

Same FRI machinery as Plonk but with AET arithmetisation (paper
Section 2.2): commit the trace columns, blend all transition and
boundary constraints with ``alpha`` powers, divide each by its vanishing
divisor on the LDE coset, commit the composition quotient, and open
everything at ``zeta`` / ``zeta * omega``.

Starky runs with blowup 2 (``rate_bits = 1``), which is what makes its
base proofs so much cheaper than Plonky2's (Table 5) at the cost of
larger proofs.

The commit / challenge / quotient / open sequencing lives in
:class:`repro.pipeline.CommitmentPipeline` (shared with the Plonk
prover); this module only defines the STARK-specific stages: the
constraint blend over the LDE coset and the opening layout.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .. import parallel, tracing, tunables
from ..field import extension as fext, gl64, goldilocks as gl
from ..fri import FriConfig
from ..hashing import Challenger
from ..pipeline import CommitmentPipeline
from .air import Air, BaseVecAlgebra
from .plan import ProverPlan, plan_for
from .proof import StarkProof


def quotient_chunk_count(air: Air) -> int:
    """Number of degree-n quotient chunks per extension limb."""
    return max(1, air.constraint_degree - 1)


def prove(
    air: Air,
    trace: np.ndarray,
    public_inputs: Sequence[int],
    config: FriConfig,
    challenger: Challenger | None = None,
    plan: ProverPlan | None = None,
    pool: "parallel.ShardPool | None" = None,
) -> StarkProof:
    """Prove that ``trace`` satisfies ``air`` with the given public values.

    ``trace`` is (n, width) with ``n`` a power of two.  ``plan`` carries
    the per-shape precomputed tables and the workspace arena; one is
    looked up (and cached thread-locally) when not supplied.

    ``pool`` shards the commit/FRI stages across worker processes
    (:mod:`repro.parallel`); ``None`` inherits any pool scoped by
    :func:`repro.parallel.sharding`.  Sharded proofs are bit-identical
    to serial ones.
    """
    trace = gl64.asarray(trace)  # untrusted caller input: full canonical scan
    n, width = trace.shape
    if n & (n - 1):
        raise ValueError("trace length must be a power of two")
    if width != air.width:
        raise ValueError("trace width does not match the AIR")
    chunks = quotient_chunk_count(air)
    if chunks > (1 << config.rate_bits):
        raise ValueError(
            "constraint degree too high for the blowup factor "
            f"(need {chunks} chunks, blowup {1 << config.rate_bits})"
        )
    challenger = challenger or Challenger()
    rate_bits = config.rate_bits
    blowup = 1 << rate_bits
    n_lde = n * blowup
    if plan is None:
        plan = plan_for(n, rate_bits)
    elif plan.n != n or plan.rate_bits != rate_bits:
        raise ValueError("plan shape does not match the trace/config")

    with parallel.maybe_sharding(pool), tunables.applied(plan.tuning), tracing.span(
        "prove:stark", category="prove", n=n, width=width
    ):
        pipe = CommitmentPipeline(config, challenger, ws=plan.ws)

        # Commit the trace.
        pipe.observe_publics(public_inputs)
        trace_batch = pipe.commit_values(trace.T, "trace")
        alpha = pipe.ext_challenge()

        # Constraint evaluations on the LDE coset.
        with tracing.span("constraints", category="quotient"):
            xs = plan.xs
            locals_ = [trace_batch.values[:, c] for c in range(width)]
            nexts = [np.roll(col, -blowup) for col in locals_]
            alg = BaseVecAlgebra(n_lde)
            # Public constant columns (periodic-style): LDE without commitment.
            const_cols = air.constant_columns(n)
            if const_cols.shape[0]:
                const_ldes = plan.const_lde(const_cols)
                consts = [const_ldes[k] for k in range(const_cols.shape[0])]
            else:
                consts = []
            transition_vals = air.eval_transition_with_constants(
                locals_, nexts, consts, alg
            )

            omega = plan.omega
            # Transition divisor: Z_H(x) / (x - w^(n-1)).
            transition_div_inv = plan.transition_div_inv

            combined = fext.from_base(gl64.zeros(n_lde))
            alpha_t = fext.one()
            for con in transition_vals:
                term = gl64.mul(np.broadcast_to(con, (n_lde,)), transition_div_inv)
                combined = fext.add(
                    combined,
                    fext.scalar_mul(np.broadcast_to(alpha_t, (n_lde, 2)), term),
                )
                alpha_t = fext.mul(alpha_t, alpha.reshape(2))
            for bc in air.boundary_constraints(public_inputs):
                numer = gl64.sub(locals_[bc.column], np.uint64(gl.canonical(bc.value)))
                div_inv = plan.boundary_inverse(bc.row)
                term = gl64.mul(numer, div_inv)
                combined = fext.add(
                    combined,
                    fext.scalar_mul(np.broadcast_to(alpha_t, (n_lde, 2)), term),
                )
                alpha_t = fext.mul(alpha_t, alpha.reshape(2))

        # Commit the composition quotient (2 limbs x `chunks` degree-n chunks).
        quotient_batch = pipe.commit_quotient(combined, n, chunks)

        # Openings at zeta and zeta * omega.
        zeta = pipe.ext_challenge()
        zeta_next = fext.scalar_mul(zeta, np.uint64(omega))
        cols_zeta = [(0, c) for c in range(width)] + [
            (1, c) for c in range(2 * chunks)
        ]
        cols_next = [(0, c) for c in range(width)]
        openings, fri_proof = pipe.open_and_prove(
            [zeta, zeta_next], [cols_zeta, cols_next]
        )

    return StarkProof(
        trace_cap=trace_batch.cap.copy(),
        quotient_cap=quotient_batch.cap.copy(),
        public_inputs=[gl.canonical(int(v)) for v in public_inputs],
        degree_bits=n.bit_length() - 1,
        openings=openings,
        fri_proof=fri_proof,
    )


def prove_batch(
    air: Air,
    jobs: Sequence[Tuple[np.ndarray, Sequence[int]]],
    config: FriConfig,
) -> List[StarkProof]:
    """Prove several ``(trace, public_inputs)`` instances of one AIR.

    Each proof uses a fresh transcript (they verify independently), but
    every job shares one warm :class:`ProverPlan` -- tables, twiddles and
    workspace arena -- the service-level analogue of the paper's
    batched-NTT/Merkle amortisation.
    """
    plan: ProverPlan | None = None
    proofs = []
    for trace, publics in jobs:
        n = np.asarray(trace).shape[0]
        if plan is None or plan.n != n:
            plan = plan_for(n, config.rate_bits)
        proofs.append(prove(air, trace, publics, config, plan=plan))
    return proofs
