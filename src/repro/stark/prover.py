"""Starky-style STARK prover.

Same FRI machinery as Plonk but with AET arithmetisation (paper
Section 2.2): commit the trace columns, blend all transition and
boundary constraints with ``alpha`` powers, divide each by its vanishing
divisor on the LDE coset, commit the composition quotient, and open
everything at ``zeta`` / ``zeta * omega``.

Starky runs with blowup 2 (``rate_bits = 1``), which is what makes its
base proofs so much cheaper than Plonky2's (Table 5) at the cost of
larger proofs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from ..field import extension as fext, gl64, goldilocks as gl
from ..fri import FriConfig, PolynomialBatch, fri_prove, open_batches
from ..hashing import Challenger
from ..ntt import coset_intt
from .air import Air, BaseVecAlgebra
from .plan import ProverPlan, plan_for
from .proof import StarkProof


# The coset evaluation points and vanishing-polynomial inverses depend
# only on (n, rate_bits), so a service proving many traces of the same
# shape -- the batched-amortisation the paper gets from fused NTT/Merkle
# kernels -- computes them once.  Cached arrays are frozen read-only;
# every consumer allocates fresh outputs.


@lru_cache(maxsize=16)
def _coset_points(n_lde: int) -> np.ndarray:
    out = gl64.mul(
        gl64.powers(gl.primitive_root_of_unity(n_lde.bit_length() - 1), n_lde),
        np.uint64(gl.coset_shift()),
    )
    out.flags.writeable = False
    return out


@lru_cache(maxsize=16)
def _zh_inverse(n: int, rate_bits: int) -> np.ndarray:
    blowup = 1 << rate_bits
    n_lde = n * blowup
    omega_lde = gl.primitive_root_of_unity(n_lde.bit_length() - 1)
    cycle = gl64.mul(
        gl64.powers(gl.pow_mod(omega_lde, n), blowup),
        np.uint64(gl.pow_mod(gl.coset_shift(), n)),
    )
    zh_cycle = gl64.sub(cycle, np.uint64(1))
    out = gl64.inv_fast(np.tile(zh_cycle, n))
    out.flags.writeable = False
    return out


def quotient_chunk_count(air: Air) -> int:
    """Number of degree-n quotient chunks per extension limb."""
    return max(1, air.constraint_degree - 1)


def prove(
    air: Air,
    trace: np.ndarray,
    public_inputs: Sequence[int],
    config: FriConfig,
    challenger: Challenger | None = None,
    plan: ProverPlan | None = None,
) -> StarkProof:
    """Prove that ``trace`` satisfies ``air`` with the given public values.

    ``trace`` is (n, width) with ``n`` a power of two.  ``plan`` carries
    the per-shape precomputed tables and the workspace arena; one is
    looked up (and cached thread-locally) when not supplied.
    """
    trace = gl64.asarray(trace)  # untrusted caller input: full canonical scan
    n, width = trace.shape
    if n & (n - 1):
        raise ValueError("trace length must be a power of two")
    if width != air.width:
        raise ValueError("trace width does not match the AIR")
    chunks = quotient_chunk_count(air)
    if chunks > (1 << config.rate_bits):
        raise ValueError(
            "constraint degree too high for the blowup factor "
            f"(need {chunks} chunks, blowup {1 << config.rate_bits})"
        )
    challenger = challenger or Challenger()
    rate_bits = config.rate_bits
    blowup = 1 << rate_bits
    n_lde = n * blowup
    if plan is None:
        plan = plan_for(n, rate_bits)
    elif plan.n != n or plan.rate_bits != rate_bits:
        raise ValueError("plan shape does not match the trace/config")
    ws = plan.ws

    # Commit the trace.
    trace_batch = PolynomialBatch.from_values(
        trace.T, rate_bits, config.cap_height, ws=ws, slot="trace"
    )
    challenger.observe_elements(np.asarray(public_inputs, dtype=np.uint64))
    challenger.observe_cap(trace_batch.cap)
    alpha = challenger.get_ext_challenge()

    # Constraint evaluations on the LDE coset.
    xs = plan.xs
    locals_ = [trace_batch.values[:, c] for c in range(width)]
    nexts = [np.roll(col, -blowup) for col in locals_]
    alg = BaseVecAlgebra(n_lde)
    # Public constant columns (periodic-style): LDE without commitment.
    const_cols = air.constant_columns(n)
    if const_cols.shape[0]:
        const_ldes = plan.const_lde(const_cols)
        consts = [const_ldes[k] for k in range(const_cols.shape[0])]
    else:
        consts = []
    transition_vals = air.eval_transition_with_constants(locals_, nexts, consts, alg)

    omega = plan.omega
    # Transition divisor: Z_H(x) / (x - w^(n-1)).
    transition_div_inv = plan.transition_div_inv

    combined = fext.from_base(gl64.zeros(n_lde))
    alpha_t = fext.one()
    for con in transition_vals:
        term = gl64.mul(np.broadcast_to(con, (n_lde,)), transition_div_inv)
        combined = fext.add(
            combined, fext.scalar_mul(np.broadcast_to(alpha_t, (n_lde, 2)), term)
        )
        alpha_t = fext.mul(alpha_t, alpha.reshape(2))
    for bc in air.boundary_constraints(public_inputs):
        numer = gl64.sub(locals_[bc.column], np.uint64(bc.value % gl.P))
        div_inv = plan.boundary_inverse(bc.row)
        term = gl64.mul(numer, div_inv)
        combined = fext.add(
            combined, fext.scalar_mul(np.broadcast_to(alpha_t, (n_lde, 2)), term)
        )
        alpha_t = fext.mul(alpha_t, alpha.reshape(2))

    # Commit the composition quotient (2 limbs x `chunks` degree-n chunks).
    chunk_rows = []
    for limb in range(2):
        coeffs = coset_intt(combined[:, limb], ws=ws)
        for k in range(chunks):
            chunk_rows.append(coeffs[k * n : (k + 1) * n])
    quotient_batch = PolynomialBatch.from_coeffs(
        np.stack(chunk_rows), rate_bits, config.cap_height, ws=ws, slot="quotient"
    )
    challenger.observe_cap(quotient_batch.cap)

    # Openings at zeta and zeta * omega.
    zeta = challenger.get_ext_challenge()
    zeta_next = fext.scalar_mul(zeta, np.uint64(omega))
    batches = [trace_batch, quotient_batch]
    cols_zeta = [(0, c) for c in range(width)] + [
        (1, c) for c in range(2 * chunks)
    ]
    cols_next = [(0, c) for c in range(width)]
    openings = open_batches(batches, [zeta, zeta_next], [cols_zeta, cols_next])
    fri_proof = fri_prove(batches, openings, challenger, config, ws=ws)

    return StarkProof(
        trace_cap=trace_batch.cap.copy(),
        quotient_cap=quotient_batch.cap.copy(),
        public_inputs=[int(v) % gl.P for v in public_inputs],
        degree_bits=n.bit_length() - 1,
        openings=openings,
        fri_proof=fri_proof,
    )


def prove_batch(
    air: Air,
    jobs: Sequence[Tuple[np.ndarray, Sequence[int]]],
    config: FriConfig,
) -> List[StarkProof]:
    """Prove several ``(trace, public_inputs)`` instances of one AIR.

    Each proof uses a fresh transcript (they verify independently), but
    every job shares one warm :class:`ProverPlan` -- tables, twiddles and
    workspace arena -- the service-level analogue of the paper's
    batched-NTT/Merkle amortisation.
    """
    plan: ProverPlan | None = None
    proofs = []
    for trace, publics in jobs:
        n = np.asarray(trace).shape[0]
        if plan is None or plan.n != n:
            plan = plan_for(n, config.rate_bits)
        proofs.append(prove(air, trace, publics, config, plan=plan))
    return proofs
