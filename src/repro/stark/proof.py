"""STARK proof container."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..fri import FriOpenings, FriProof
from ..fri.proof import DIGEST_BYTES, ELEM_BYTES


@dataclass
class StarkProof:
    """A complete Starky-style proof with FRI openings."""

    trace_cap: np.ndarray
    quotient_cap: np.ndarray
    public_inputs: List[int]
    degree_bits: int
    openings: FriOpenings
    fri_proof: FriProof

    def size_bytes(self) -> int:
        """Serialized proof size."""
        total = self.trace_cap.shape[0] * DIGEST_BYTES
        total += self.quotient_cap.shape[0] * DIGEST_BYTES
        total += len(self.public_inputs) * ELEM_BYTES
        total += int(self.openings.flat_values().size) * ELEM_BYTES
        total += self.fri_proof.size_bytes()
        return total
