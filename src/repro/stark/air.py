"""Algebraic Intermediate Representation (AIR) for Starky-style proofs.

A computation is an *Algebraic Execution Trace* (paper Figure 2): a
table with one row per time step and one column per register.  The AIR
declares:

* **transition constraints** -- polynomial relations between each row and
  the next (they must vanish on every row but the last);
* **boundary constraints** -- pinned cell values (inputs/outputs), e.g.
  ``x0[0] = 0`` and ``x1[0] = 1`` for Fibonacci.

Constraints are written once against an abstract *algebra* so the same
definition evaluates vectorised over the whole LDE coset (prover side,
base field) and at a single extension point ``zeta`` (verifier side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..field import extension as fext, gl64, goldilocks as gl


class BaseVecAlgebra:
    """Vectorised base-field algebra over (N,) uint64 arrays."""

    def __init__(self, n: int) -> None:
        self.n = n

    def constant(self, c: int):
        """Broadcast a constant over the domain."""
        return np.broadcast_to(np.uint64(gl.canonical(c)), (self.n,))

    def add(self, a, b):
        """Field addition."""
        return gl64.add(a, b)

    def sub(self, a, b):
        """Field subtraction."""
        return gl64.sub(a, b)

    def mul(self, a, b):
        """Field multiplication."""
        return gl64.mul(a, b)

    def mul_const(self, a, c: int):
        """Multiply by a Python-int constant."""
        return gl64.mul(a, np.uint64(gl.canonical(c)))


class ExtAlgebra:
    """Extension-field algebra over (2,) arrays (verifier at zeta)."""

    def constant(self, c: int):
        """Embed a constant into the extension."""
        return fext.from_base(np.uint64(gl.canonical(c)))

    def add(self, a, b):
        """Extension addition."""
        return fext.add(a, b)

    def sub(self, a, b):
        """Extension subtraction."""
        return fext.sub(a, b)

    def mul(self, a, b):
        """Extension multiplication."""
        return fext.mul(a, b)

    def mul_const(self, a, c: int):
        """Multiply by a base-field constant."""
        return fext.scalar_mul(a, np.uint64(gl.canonical(c)))


@dataclass(frozen=True)
class BoundaryConstraint:
    """Pin ``column`` at ``row`` to ``value`` (Figure 2's I/O constraints)."""

    row: int
    column: int
    value: int


class Air:
    """Base class for AIR definitions.

    Subclasses set :attr:`width` and :attr:`constraint_degree`, implement
    :meth:`eval_transition`, and usually :meth:`boundary_constraints`.

    AIRs whose transition rules vary by row (round constants, round-type
    selectors -- e.g. a Poseidon AIR) additionally override
    :meth:`constant_columns` and :meth:`eval_transition_with_constants`:
    constant columns are *public* periodic-style polynomials (ethSTARK's
    periodic columns) interpolated over the trace domain; the prover
    evaluates their LDE, the verifier evaluates their interpolants at
    ``zeta`` directly -- they are never committed.
    """

    #: Number of trace columns.
    width: int = 0
    #: Maximum algebraic degree of any transition constraint (counting
    #: constant columns as degree-1 factors).
    constraint_degree: int = 1

    def eval_transition(self, local: Sequence, next_row: Sequence, alg) -> List:
        """Return the transition constraint values.

        ``local``/``next_row`` hold one algebra value per column; every
        returned expression must evaluate to zero on consecutive trace
        rows.
        """
        raise NotImplementedError

    def constant_columns(self, n: int) -> np.ndarray:
        """Public per-row constants, shape (k, n); default: none."""
        return np.zeros((0, n), dtype=np.uint64)

    def eval_transition_with_constants(
        self, local: Sequence, next_row: Sequence, constants: Sequence, alg
    ) -> List:
        """Transition constraints with constant-column values in scope.

        Default delegates to :meth:`eval_transition` (constant-free AIRs
        need not override).
        """
        return self.eval_transition(local, next_row, alg)

    def boundary_constraints(self, public_inputs: Sequence[int]) -> List[BoundaryConstraint]:
        """Return the boundary constraints for the given public values."""
        return []

    def num_transition_constraints(self) -> int:
        """Count transition constraints (probes with a dummy algebra)."""
        alg = ExtAlgebra()
        dummy = [alg.constant(0) for _ in range(self.width)]
        consts = [alg.constant(0) for _ in range(self.constant_columns(4).shape[0])]
        return len(self.eval_transition_with_constants(dummy, dummy, consts, alg))

    def check_trace(self, trace: np.ndarray, public_inputs: Sequence[int]) -> bool:
        """Directly validate a trace against all constraints (test helper)."""
        trace = np.asarray(trace, dtype=np.uint64)
        n = trace.shape[0]
        alg = BaseVecAlgebra(n - 1)
        local = [trace[:-1, c] for c in range(self.width)]
        nxt = [trace[1:, c] for c in range(self.width)]
        const_cols = self.constant_columns(n)
        consts = [const_cols[k, :-1] for k in range(const_cols.shape[0])]
        for con in self.eval_transition_with_constants(local, nxt, consts, alg):
            if bool(np.asarray(con).any()):
                return False
        for bc in self.boundary_constraints(public_inputs):
            if int(trace[bc.row, bc.column]) != gl.canonical(bc.value):
                return False
        return True
