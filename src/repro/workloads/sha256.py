"""SHA-256 workload (paper apps 4 / Table 6): hash-preimage circuit.

The paper proves possession of a message for a given SHA-256 digest
(126 blocks of an 8000 B message for Table 3; one block for Table 6),
and uses a Starky version for Tables 5/6.

Substitution: a bit-decomposed SHA-256 gadget is thousands of lines of
plumbing orthogonal to the accelerator; we build a sponge-style
*algebraic* compression function with the same round structure (message
absorption, nonlinear mixing per round, chained across blocks):
``s' = (s + m)^2 * alpha + s + rc_r`` per round -- the MiMC-style shape
used by real ZK-friendly hashes.  The dataflow (per-block rounds with a
sequential chain across blocks) matches SHA-256's in-circuit layout.
"""

from __future__ import annotations

from ..compiler import PlonkParams, StarkParams
from ..field import goldilocks as gl
from ..plonk import CircuitBuilder
from ..stark import Air
from .base import WorkloadSpec

#: Rounds per block in the stand-in compression function.
ROUNDS_PER_BLOCK = 8
_ALPHA = 5
_RC = [gl.pow_mod(3, 41 * (r + 1)) for r in range(ROUNDS_PER_BLOCK)]


def compress_reference(state: int, message_words: list[int]) -> int:
    """Reference (non-circuit) compression of one block."""
    s = state
    for r in range(ROUNDS_PER_BLOCK):
        m = message_words[r % len(message_words)]
        t = gl.add(s, m)
        s = gl.add(gl.add(gl.mul(gl.mul(t, t), _ALPHA), s), _RC[r])
    return s


def hash_reference(message_words: list[int], words_per_block: int = 4) -> int:
    """Chain compressions across blocks (Merkle-Damgard shape)."""
    state = 0
    for start in range(0, len(message_words), words_per_block):
        state = compress_reference(state, message_words[start : start + words_per_block])
    return state


def build_circuit(scale: int):
    """Prove knowledge of a ``scale``-block preimage of a public digest."""
    words_per_block = 4
    b = CircuitBuilder()
    msg_vars = [b.add_variable() for _ in range(scale * words_per_block)]
    state = b.constant(0)
    alpha = b.constant(_ALPHA)
    for blk in range(scale):
        block = msg_vars[blk * words_per_block : (blk + 1) * words_per_block]
        for r in range(ROUNDS_PER_BLOCK):
            m = block[r % words_per_block]
            t = b.add(state, m)
            t2 = b.mul(t, t)
            mixed = b.mul(t2, alpha)
            state = b.add(b.add(mixed, state), b.constant(_RC[r]))
    digest = b.public_input()
    b.assert_equal(digest, state)
    circuit = b.build()

    message = [gl.pow_mod(11, i + 1) for i in range(scale * words_per_block)]
    expected = hash_reference(message, words_per_block)
    inputs = {v.index: m for v, m in zip(msg_vars, message)}
    inputs[digest.index] = expected
    return circuit, inputs, [expected]


class CompressionAir(Air):
    """AET for the stand-in compression chain (one row per round).

    Columns ``(s, m)``: running state and the message word consumed this
    round.  Transition: ``s' = alpha * (s + m)^2 + s + RC[row mod R]``
    with the per-row round constant supplied as a constant column;
    message words are free witness values.  Boundary: ``s[0] = 0`` and
    the final state equals the public digest.
    """

    width = 2
    constraint_degree = 2

    def eval_transition(self, local, nxt, alg):  # pragma: no cover - unused
        raise NotImplementedError("uses constant columns")

    def eval_transition_with_constants(self, local, nxt, constants, alg):
        s, m = local
        rc = constants[0]
        t = alg.add(s, m)
        mixed = alg.mul_const(alg.mul(t, t), _ALPHA)
        return [alg.sub(nxt[0], alg.add(alg.add(mixed, s), rc))]

    def constant_columns(self, n):
        import numpy as np

        col = np.array([_RC[r % ROUNDS_PER_BLOCK] for r in range(n)], dtype=np.uint64)
        # The last transition (row n-2 -> n-1) still applies; the final
        # row holds the digest and has no outgoing transition.
        return col[None, :]

    def boundary_constraints(self, publics):
        from ..stark import BoundaryConstraint

        last_row, digest = publics
        return [
            BoundaryConstraint(0, 0, 0),
            BoundaryConstraint(int(last_row), 0, int(digest)),
        ]


def build_air(log_rows: int):
    """Trace of ``2**log_rows - 1`` compression rounds plus the digest row."""
    import numpy as np

    n = 1 << log_rows
    rng = np.random.default_rng(17)
    msgs = rng.integers(0, gl.P, size=n, dtype=np.uint64)
    trace = np.zeros((n, 2), dtype=np.uint64)
    s = 0
    for r in range(n - 1):
        trace[r] = (s, msgs[r])
        t = gl.add(s, int(msgs[r]))
        s = gl.add(gl.add(gl.mul(gl.mul(t, t), _ALPHA), s), _RC[r % ROUNDS_PER_BLOCK])
    trace[n - 1] = (s, 0)
    publics = [n - 1, s]
    return CompressionAir(), trace, publics


SPEC = WorkloadSpec(
    name="SHA-256",
    plonk=PlonkParams(name="SHA-256", degree_bits=20, width=155),
    stark=StarkParams(name="SHA-256", degree_bits=14, width=700, constraint_ops_factor=8),
    build_circuit=build_circuit,
    build_air=build_air,
    repro_note=(
        "Paper: SHA-256 preimage of an 8000 B / 126-block message "
        "(plonky2-sha256, sha256-starky). Ours: an algebraic "
        "Merkle-Damgard compression chain with per-round nonlinear "
        "mixing -- same block/round structure without the bit-"
        "decomposition gadget."
    ),
)
