"""Fibonacci workload: prove the ``2**20``-th Fibonacci number (app 2).

The AET matches the paper's Figure 2 exactly: columns ``(x0, x1)`` with
transitions ``x0' = x1`` and ``x1' = x0 + x1``, plus input/output
boundary constraints.
"""

from __future__ import annotations

import numpy as np

from ..compiler import PlonkParams, StarkParams
from ..field import goldilocks as gl
from ..plonk import CircuitBuilder
from ..stark import Air, BoundaryConstraint
from .base import WorkloadSpec


def fibonacci_mod_p(k: int) -> int:
    """``F_k mod p`` with ``F_0 = 0, F_1 = 1``."""
    a, b = 0, 1
    for _ in range(k):
        a, b = b, gl.add(a, b)
    return a


def build_circuit(scale: int):
    """Circuit iterating ``scale`` Fibonacci additions."""
    b = CircuitBuilder()
    x0 = b.constant(0)
    x1 = b.constant(1)
    for _ in range(scale):
        x0, x1 = x1, b.add(x0, x1)
    out = b.public_input()
    b.assert_equal(out, x0)
    circuit = b.build()
    expected = fibonacci_mod_p(scale)
    return circuit, {out.index: expected}, [expected]


class FibonacciAir(Air):
    """Paper Figure 2: ``x0' = x1``, ``x1' = x0 + x1``."""

    width = 2
    constraint_degree = 1

    def eval_transition(self, local, nxt, alg):
        return [
            alg.sub(nxt[0], local[1]),
            alg.sub(nxt[1], alg.add(local[0], local[1])),
        ]

    def boundary_constraints(self, publics):
        last_row, result = publics
        return [
            BoundaryConstraint(0, 0, 0),
            BoundaryConstraint(0, 1, 1),
            BoundaryConstraint(int(last_row), 0, int(result)),
        ]


def build_air(log_rows: int):
    """Trace of ``2**log_rows`` Fibonacci steps starting (0, 1)."""
    n = 1 << log_rows
    trace = np.zeros((n, 2), dtype=np.uint64)
    a, b = 0, 1
    for row in range(n):
        trace[row] = (a, b)
        a, b = b, gl.add(a, b)
    publics = [n - 1, int(trace[n - 1, 0])]
    return FibonacciAir(), trace, publics


SPEC = WorkloadSpec(
    name="Fibonacci",
    plonk=PlonkParams(name="Fibonacci", degree_bits=16, width=135),
    stark=StarkParams(name="Fibonacci", degree_bits=20, width=40),
    build_circuit=build_circuit,
    build_air=build_air,
    repro_note=(
        "Paper: the 2**20-th Fibonacci number (Plonky2 + Starky). "
        "Ours: the same recurrence as circuit and Figure-2 AET."
    ),
)
