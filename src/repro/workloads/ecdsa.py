"""ECDSA workload (paper app 3): signature-verification-shaped circuit.

The paper proves knowledge of a valid ECDSA signature over secp256k1,
whose in-circuit cost is dominated by a double-and-add scalar
multiplication: ~256 iterations of "square/double, then conditionally
combine, driven by a secret bit".

Substitution: implementing non-native 256-bit secp256k1 arithmetic is a
gadget-library effort orthogonal to this paper; we build a circuit with
the same *shape* -- a square-and-multiply modular exponentiation
``y = g**k`` in the Goldilocks field with the secret exponent ``k``
bit-decomposed in-circuit (booleanity constraints on every bit,
conditional multiplies per step).  Same dependency chain, same
secret-bit-driven dataflow; the performance models use the paper-scale
circuit size.
"""

from __future__ import annotations

from ..compiler import PlonkParams
from ..field import goldilocks as gl
from ..plonk import CircuitBuilder
from .base import WorkloadSpec

#: Fixed base point stand-in (a generator of the field).
GENERATOR = 7


def build_circuit(scale: int):
    """Prove knowledge of ``k`` with ``g**k = y`` (``scale`` secret bits).

    Per bit (MSB first): ``acc = acc^2``, then ``acc *= g`` gated by the
    bit: ``factor = 1 + bit * (g - 1)`` keeps everything quadratic.
    """
    b = CircuitBuilder()
    bits = [b.add_variable() for _ in range(scale)]
    one = b.constant(1)
    zero = b.constant(0)
    for bit in bits:
        # booleanity: bit * bit - bit == 0
        sq = b.mul(bit, bit)
        diff = b.sub(sq, bit)
        b.assert_equal(diff, zero)
    acc = one
    g_minus_1 = b.constant(gl.sub(GENERATOR, 1))
    for bit in bits:
        acc = b.mul(acc, acc)
        gated = b.mul_add(bit, g_minus_1, one)  # 1 or g
        acc = b.mul(acc, gated)
    out = b.public_input()
    b.assert_equal(out, acc)
    circuit = b.build()

    secret_k = 0b1011 % (1 << scale) or 1
    bit_vals = [(secret_k >> (scale - 1 - i)) & 1 for i in range(scale)]
    expected = gl.pow_mod(GENERATOR, secret_k)
    inputs = {bit.index: v for bit, v in zip(bits, bit_vals)}
    inputs[out.index] = expected
    return circuit, inputs, [expected]


SPEC = WorkloadSpec(
    name="ECDSA",
    plonk=PlonkParams(name="ECDSA", degree_bits=17, width=170),
    build_circuit=build_circuit,
    repro_note=(
        "Paper: secp256k1 ECDSA verification of a 256-bit file-hash "
        "signature. Ours: secret-bit-driven square-and-multiply "
        "exponentiation with in-circuit bit decomposition -- the same "
        "double-and-add dataflow without non-native field gadgets."
    ),
)
