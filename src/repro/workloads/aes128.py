"""AES-128 workload (paper Table 6): one-block SPN circuit.

Used only for the PipeZK comparison.  Substitution: the byte-level AES
S-box needs lookup gadgets; we build an SPN with the same 10-round
structure using the field-native ``x^7`` S-box and a small MDS mixing
layer -- the standard "AES-shaped" ZK benchmark construction.
"""

from __future__ import annotations

from ..compiler import PlonkParams, StarkParams
from ..field import goldilocks as gl, matrix as fm
from ..plonk import CircuitBuilder
from .base import WorkloadSpec

#: SPN geometry: 4 field elements wide, 10 rounds like AES-128.
STATE_WIDTH = 4
NUM_ROUNDS = 10
_MIX = fm.cauchy_mds(STATE_WIDTH)
_RC = [[gl.pow_mod(5, 17 * (r * STATE_WIDTH + i + 1)) for i in range(STATE_WIDTH)]
       for r in range(NUM_ROUNDS)]


def encrypt_reference(block: list[int], key: list[int]) -> list[int]:
    """Reference SPN encryption of one block."""
    state = [gl.add(b, k) for b, k in zip(block, key)]
    for r in range(NUM_ROUNDS):
        state = [gl.add(s, c) for s, c in zip(state, _RC[r])]
        state = [gl.pow_mod(s, 7) for s in state]
        state = fm.matvec(_MIX, state)
        state = [gl.add(s, k) for s, k in zip(state, key)]
    return state


def build_circuit(scale: int = 1):
    """Prove knowledge of a key encrypting a public block to a public
    ciphertext (``scale`` sequential blocks)."""
    b = CircuitBuilder()
    key_vars = [b.add_variable() for _ in range(STATE_WIDTH)]
    block = [gl.pow_mod(9, i + 1) for i in range(STATE_WIDTH)]
    key = [gl.pow_mod(13, i + 1) for i in range(STATE_WIDTH)]

    state = [b.add(b.constant(blk), kv) for blk, kv in zip(block, key_vars)]
    for _ in range(scale):
        for r in range(NUM_ROUNDS):
            state = [b.add(s, b.constant(c)) for s, c in zip(state, _RC[r])]
            # x^7 via three multiplies.
            new_state = []
            for s in state:
                s2 = b.mul(s, s)
                s4 = b.mul(s2, s2)
                s6 = b.mul(s4, s2)
                new_state.append(b.mul(s6, s))
            state = new_state
            mixed = []
            for i in range(STATE_WIDTH):
                acc = b.constant(0)
                for j in range(STATE_WIDTH):
                    term = b.mul(state[j], b.constant(int(_MIX[i][j])))
                    acc = b.add(acc, term)
                mixed.append(acc)
            state = [b.add(m, kv) for m, kv in zip(mixed, key_vars)]
    pubs = []
    for s in state:
        pub = b.public_input()
        b.assert_equal(pub, s)
        pubs.append(pub)
    circuit = b.build()

    expected = [int(v) for v in encrypt_reference(block, key)]
    for _ in range(scale - 1):
        expected = [int(v) for v in _next_block(expected, key)]
    inputs = {kv.index: k for kv, k in zip(key_vars, key)}
    for pub, val in zip(pubs, expected):
        inputs[pub.index] = val
    return circuit, inputs, expected


def _next_block(state: list[int], key: list[int]) -> list[int]:
    for r in range(NUM_ROUNDS):
        state = [gl.add(s, c) for s, c in zip(state, _RC[r])]
        state = [gl.pow_mod(s, 7) for s in state]
        state = fm.matvec(_MIX, state)
        state = [gl.add(s, k) for s, k in zip(state, key)]
    return state


SPEC = WorkloadSpec(
    name="AES-128",
    plonk=PlonkParams(name="AES-128", degree_bits=13, width=135),
    stark=StarkParams(name="AES-128", degree_bits=10, width=60),
    build_circuit=build_circuit,
    repro_note=(
        "Paper: one AES-128 block (Table 6, matching PipeZK's benchmark). "
        "Ours: a 10-round SPN with field-native S-boxes -- the standard "
        "AES-shaped ZK stand-in without byte-lookup gadgets."
    ),
)
