"""MVM workload (paper app 6): matrix-vector multiplication (ZKML).

The paper proves a 3000x3000 16-bit matrix-vector product
(proto-neural-zkp); its circuit is wide (width ~400) because each row
packs many multiply-accumulate lanes -- which is why MVM gets the best
polynomial-kernel bandwidth utilisation in Table 4.

Ours is the same statement at reduced size: ``y = M x`` with private
``M`` and ``x`` and a public digest of ``y`` -- every entry is a real
multiply-accumulate gate.
"""

from __future__ import annotations

import numpy as np

from ..compiler import PlonkParams, StarkParams
from ..field import goldilocks as gl
from ..plonk import CircuitBuilder
from ..stark import Air, BoundaryConstraint
from .base import WorkloadSpec


def build_circuit(scale: int):
    """Prove ``y = M x`` for a private ``scale x scale`` matrix."""
    b = CircuitBuilder()
    m_vars = [[b.add_variable() for _ in range(scale)] for _ in range(scale)]
    x_vars = [b.add_variable() for _ in range(scale)]
    y_pubs = []
    for r in range(scale):
        acc = b.constant(0)
        for c in range(scale):
            acc = b.mul_add(m_vars[r][c], x_vars[c], acc)
        pub = b.public_input()
        b.assert_equal(pub, acc)
        y_pubs.append(pub)
    circuit = b.build()

    rng = np.random.default_rng(99)
    m_vals = rng.integers(0, 1 << 16, size=(scale, scale))
    x_vals = rng.integers(0, 1 << 16, size=scale)
    inputs = {}
    for r in range(scale):
        for c in range(scale):
            inputs[m_vars[r][c].index] = int(m_vals[r, c])
    for c in range(scale):
        inputs[x_vars[c].index] = int(x_vals[c])
    publics = []
    for r in range(scale):
        acc = 0
        for c in range(scale):
            acc = gl.add(acc, gl.mul(int(m_vals[r, c]), int(x_vals[c])))
        inputs[y_pubs[r].index] = acc
        publics.append(acc)
    return circuit, inputs, publics


class MvmAir(Air):
    """Running dot product: columns ``(m, x, acc)``, ``acc' = acc + m*x``."""

    width = 3
    constraint_degree = 2

    def eval_transition(self, local, nxt, alg):
        return [alg.sub(nxt[2], alg.add(local[2], alg.mul(local[0], local[1])))]

    def boundary_constraints(self, publics):
        last_row, result = publics
        return [
            BoundaryConstraint(0, 2, 0),
            BoundaryConstraint(int(last_row), 2, int(result)),
        ]


def build_air(log_rows: int):
    """Trace accumulating a ``2**log_rows``-element dot product."""
    n = 1 << log_rows
    rng = np.random.default_rng(7)
    m = rng.integers(0, 1 << 16, size=n).astype(np.uint64)
    x = rng.integers(0, 1 << 16, size=n).astype(np.uint64)
    trace = np.zeros((n, 3), dtype=np.uint64)
    acc = 0
    for row in range(n):
        trace[row] = (m[row], x[row], acc)
        acc = gl.add(acc, gl.mul(int(m[row]), int(x[row])))
    # The last row's acc excludes its own product; constrain the stored one.
    publics = [n - 1, int(trace[n - 1, 2])]
    return MvmAir(), trace, publics


SPEC = WorkloadSpec(
    name="MVM",
    plonk=PlonkParams(name="MVM", degree_bits=18, width=400, gate_ops_factor=16),
    stark=StarkParams(name="MVM", degree_bits=20, width=3),
    build_circuit=build_circuit,
    build_air=build_air,
    repro_note=(
        "Paper: 3000x3000 16-bit matrix-vector product "
        "(proto-neural-zkp). Ours: the same multiply-accumulate circuit "
        "at reduced size; paper-scale width 400 drives the models."
    ),
)
