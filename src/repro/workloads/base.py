"""Workload definitions: paper-scale parameters + functional circuits.

Each of the paper's six applications (Section 6, "Applications") is a
:class:`WorkloadSpec` with two faces:

* **paper-scale parameters** (:class:`repro.compiler.PlonkParams` /
  :class:`repro.compiler.StarkParams`) consumed by the performance
  models -- degree and width chosen to reproduce the paper's measured
  CPU times (Tables 1 and 3);
* a **functional builder** that constructs a scaled-down but *real*
  circuit (or AET) our Plonk/STARK provers prove and verify end to end
  in the tests and examples.

Where the original gadget is out of scope (secp256k1 arithmetic, SHA-256
bit decomposition, PNG decoding), the builder substitutes a circuit with
the same computational *shape*; each substitution is documented in the
spec's ``repro_note`` and in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..compiler import PlonkParams, StarkParams
from ..plonk import Circuit
from ..stark import Air

#: (circuit, inputs dict, expected public values)
CircuitBuild = Tuple[Circuit, Dict[int, int], list]
#: (air, trace, public values)
AirBuild = Tuple[Air, np.ndarray, list]


@dataclass(frozen=True)
class WorkloadSpec:
    """One evaluation application."""

    name: str
    #: Paper-scale Plonky2 parameters (Tables 1, 3, 4; Figures 8-10).
    plonk: PlonkParams
    #: Builds a functional scaled-down circuit; ``scale`` controls size.
    build_circuit: Callable[[int], CircuitBuild]
    #: Paper-scale Starky parameters (Tables 5, 6), when applicable.
    stark: Optional[StarkParams] = None
    #: Builds a functional scaled-down AET, when applicable.
    build_air: Optional[Callable[[int], AirBuild]] = None
    #: What the paper used vs what we build (substitution record).
    repro_note: str = ""
