"""Evaluation workloads (paper Section 6): paper-scale parameters plus
functional scaled-down circuits and AETs."""

from . import aes128, ecdsa, factorial, fibonacci, image_crop, mvm, sha256
from ..errors import UnknownWorkloadError
from .base import WorkloadSpec

#: The six Plonky2 applications of Tables 1, 3, 4 and Figures 8-9.
PAPER_WORKLOADS = [
    factorial.SPEC,
    fibonacci.SPEC,
    ecdsa.SPEC,
    sha256.SPEC,
    image_crop.SPEC,
    mvm.SPEC,
]

#: Applications with Starky variants (Table 5).
STARKY_WORKLOADS = [factorial.SPEC, fibonacci.SPEC, sha256.SPEC]

#: Applications for the PipeZK comparison (Table 6).
PIPEZK_WORKLOADS = [sha256.SPEC, aes128.SPEC]


def workload_names() -> list:
    """Every registered workload name, paper order."""
    return [spec.name for spec in PAPER_WORKLOADS + [aes128.SPEC]]


def by_name(name: str) -> WorkloadSpec:
    """Look up a workload spec by its display name.

    Raises :class:`repro.errors.UnknownWorkloadError` (a ``KeyError``
    and ``ValueError`` subclass) listing the valid names.
    """
    for spec in PAPER_WORKLOADS + [aes128.SPEC]:
        if spec.name == name:
            return spec
    raise UnknownWorkloadError(name, workload_names())


__all__ = [
    "WorkloadSpec",
    "PAPER_WORKLOADS",
    "STARKY_WORKLOADS",
    "PIPEZK_WORKLOADS",
    "by_name",
    "workload_names",
    "UnknownWorkloadError",
    "factorial",
    "fibonacci",
    "ecdsa",
    "sha256",
    "image_crop",
    "mvm",
    "aes128",
]
