"""Image Crop workload (paper app 5): authenticated image editing.

The paper proves that a 512x512 block was cropped from the top-left of
a 1024x1024 RGBA PNG (plonky2-zkedit).  The in-circuit work is a
selection proof: the published crop equals the corresponding region of
a privately-held image whose digest is public.

Substitution: PNG decoding stays outside the circuit (it does in
zkedit, too); we prove the selection over raw pixel values, binding the
private image with the same algebraic digest used by the SHA-256
workload, and exposing the crop through public inputs.
"""

from __future__ import annotations

from ..compiler import PlonkParams
from ..field import goldilocks as gl
from ..plonk import CircuitBuilder
from .base import WorkloadSpec
from .sha256 import hash_reference


def build_circuit(scale: int):
    """Prove a ``scale x scale`` crop of a private ``2*scale x 2*scale``
    image, binding the image with a public digest."""
    size = 2 * scale
    b = CircuitBuilder()
    image_vars = [[b.add_variable() for _ in range(size)] for _ in range(size)]
    # Bind the whole private image to a public digest.
    flat = [image_vars[r][c] for r in range(size) for c in range(size)]
    state = b.constant(0)
    alpha = b.constant(5)
    for v in flat:
        t = b.add(state, v)
        t2 = b.mul(t, t)
        state = b.add(b.mul(t2, alpha), state)
    digest = b.public_input()
    b.assert_equal(digest, state)
    # The crop (top-left scale x scale) is public.
    crop_pubs = []
    for r in range(scale):
        for c in range(scale):
            pub = b.public_input()
            b.assert_equal(pub, image_vars[r][c])
            crop_pubs.append(pub)
    circuit = b.build()

    # Witness: a deterministic "image".
    pixels = [[(r * 31 + c * 7 + 13) % 251 for c in range(size)] for r in range(size)]
    inputs = {}
    for r in range(size):
        for c in range(size):
            inputs[image_vars[r][c].index] = pixels[r][c]
    state_val = 0
    for r in range(size):
        for c in range(size):
            t = gl.add(state_val, pixels[r][c])
            state_val = gl.add(gl.mul(gl.mul(t, t), 5), state_val)
    publics = [state_val]
    inputs[digest.index] = state_val
    for pub, (r, c) in zip(
        crop_pubs, [(r, c) for r in range(scale) for c in range(scale)]
    ):
        inputs[pub.index] = pixels[r][c]
        publics.append(pixels[r][c])
    return circuit, inputs, publics


SPEC = WorkloadSpec(
    name="Image Crop",
    plonk=PlonkParams(name="Image Crop", degree_bits=19, width=160),
    build_circuit=build_circuit,
    repro_note=(
        "Paper: crop a 512x512 block from a 1024x1024 RGBA PNG "
        "(plonky2-zkedit). Ours: the same select-and-bind proof over raw "
        "pixels with an algebraic image digest; PNG decoding is outside "
        "the circuit in both."
    ),
)
