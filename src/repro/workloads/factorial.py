"""Factorial workload: prove knowledge of ``n!`` (paper app 1).

The paper proves the factorial of ``2**20`` with Plonky2; functionally
we build the same iterated-product circuit at reduced length, and a
Starky AET with columns ``(i, f)`` and transitions ``i' = i + 1``,
``f' = f * i'`` for Table 5.
"""

from __future__ import annotations

from math import factorial as _py_factorial

import numpy as np

from ..compiler import PlonkParams, StarkParams
from ..field import goldilocks as gl
from ..plonk import CircuitBuilder
from ..stark import Air, BoundaryConstraint
from .base import WorkloadSpec


def factorial_mod_p(k: int) -> int:
    """``k! mod p`` (reference value for assertions)."""
    return gl.canonical(_py_factorial(k))


def build_circuit(scale: int):
    """Circuit computing ``scale!`` with one multiply gate per step."""
    b = CircuitBuilder()
    acc = b.constant(1)
    for i in range(2, scale + 1):
        acc = b.mul(acc, b.constant(i))
    out = b.public_input()
    b.assert_equal(out, acc)
    circuit = b.build()
    inputs = {out.index: factorial_mod_p(scale)}
    return circuit, inputs, [factorial_mod_p(scale)]


class FactorialAir(Air):
    """AET columns ``(i, f)``: ``i' = i + 1`` and ``f' = f * i'``."""

    width = 2
    constraint_degree = 2

    def eval_transition(self, local, nxt, alg):
        one = alg.constant(1)
        c1 = alg.sub(nxt[0], alg.add(local[0], one))
        c2 = alg.sub(nxt[1], alg.mul(local[1], nxt[0]))
        return [c1, c2]

    def boundary_constraints(self, publics):
        last_row, result = publics
        return [
            BoundaryConstraint(0, 0, 1),
            BoundaryConstraint(0, 1, 1),
            BoundaryConstraint(int(last_row), 1, int(result)),
        ]


def build_air(log_rows: int):
    """Trace of ``2**log_rows`` factorial steps."""
    n = 1 << log_rows
    trace = np.zeros((n, 2), dtype=np.uint64)
    i, f = 1, 1
    for row in range(n):
        trace[row] = (i, f)
        i += 1
        f = gl.mul(f, i)
    publics = [n - 1, int(trace[n - 1, 1])]
    return FactorialAir(), trace, publics


SPEC = WorkloadSpec(
    name="Factorial",
    plonk=PlonkParams(name="Factorial", degree_bits=20, width=135),
    stark=StarkParams(name="Factorial", degree_bits=20, width=48),
    build_circuit=build_circuit,
    build_air=build_air,
    repro_note=(
        "Paper: factorial of 2**20 via Plonky2 (and Starky in Table 5). "
        "Ours: identical iterated-product circuit/AET at reduced length "
        "for functional runs; paper-scale degree 2**20 for the models."
    ),
)
