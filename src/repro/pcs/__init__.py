"""Polynomial commitment schemes (the pluggable commitment plane).

Splits the FRI-specific commit/open sequencing out of the proof
pipeline so univariate-FRI and multilinear commitment backends are
interchangeable behind protocol backends (see :mod:`repro.protocols`).
"""

from .base import PCS
from .fri import FriPCS
from .multilinear import MultilinearPCS, eq_at, eq_table

__all__ = [
    "PCS",
    "FriPCS",
    "MultilinearPCS",
    "eq_at",
    "eq_table",
]
