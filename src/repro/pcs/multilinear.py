"""Merkle-committed multilinear polynomial commitment scheme.

Commits a table of evaluations over the boolean hypercube -- one leaf
per hypercube point, each leaf a row of column values -- as a capped
Merkle tree.  No low-degree extension, no NTT: commitment cost is pure
Poseidon hashing, which is the whole point of the sumcheck-native
proving path (Need-for-zkSpeed / zkPHIRE argue this is where
accelerator-era proving is heading).

Openings are plain index openings (leaf row + authentication path).
The HyperPlonk-lite backend builds its *evaluation* argument on top:
each sumcheck round's folded table is re-committed through this scheme
(via :func:`repro.sumcheck.prove`'s ``on_fold`` hook) and query-time
spot checks enforce fold consistency between adjacent levels, tying the
sumcheck's final value to the base-table commitments -- a
Basefold-flavoured construction.

Also home to the ``eq`` equality polynomial helpers shared by the
multilinear prover and verifier.  Index bit 0 is the *most significant*
bit, matching :func:`repro.sumcheck.fold_table`'s high/low-half split.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .. import parallel, tracing
from ..field import gl64, goldilocks as gl
from ..merkle import MerkleProof, MerkleTree, verify_proof
from .base import PCS


def eq_table(point: Sequence[int]) -> np.ndarray:
    """Evaluations of ``eq(point, x)`` over the whole hypercube.

    ``eq(t, x) = prod_j (t_j x_j + (1 - t_j)(1 - x_j))`` -- the
    multilinear indicator used by zerocheck.  Variable 0 is the most
    significant index bit.
    """
    out = gl64.ones(1)
    for t in point:
        t_u = np.uint64(gl.canonical(t))
        lo = gl64.mul(out, np.uint64(gl.sub(1, t)))
        hi = gl64.mul(out, t_u)
        out = np.concatenate([lo[:, None], hi[:, None]], axis=1).reshape(-1)
    return out


def eq_at(point: Sequence[int], index: int) -> int:
    """``eq(point, bits(index))`` at one hypercube position."""
    v = len(point)
    acc = 1
    for j, t in enumerate(point):
        bit = (index >> (v - 1 - j)) & 1
        acc = gl.mul(acc, t if bit else gl.sub(1, t))
    return acc


class MultilinearPCS(PCS):
    """Capped Merkle commitments over hypercube evaluation tables."""

    name = "multilinear"

    def __init__(self, cap_height: int = 1) -> None:
        self.cap_height = cap_height

    def commit(
        self, rows: np.ndarray, label: str = "pcs", *, slot: str | None = None
    ) -> MerkleTree:
        """Commit a table: rows are leaves, one per hypercube point.

        1-d tables commit as single-element leaves.  The cap height is
        clamped to the tree depth so tiny folded levels stay valid.

        ``label`` tags the tracing span, so commit:wires / commit:z /
        commit:fold stages are distinguishable in ``--trace-out``
        traces.  With ``slot`` set and a shard pool active
        (:func:`repro.parallel.current_pool`), large tables commit
        through ``merkle_subtree``/``merkle_top`` shard graphs instead
        of hashing serially -- bit-identical digests, same sponge
        counters.  Callers only pass a slot for proof-lifetime trees
        (the arena slot is reused across proofs, so a setup-lifetime
        commitment must stay serial and heap-backed).
        """
        rows = np.asarray(rows, dtype=np.uint64)
        if rows.ndim == 1:
            rows = rows[:, None]
        n = rows.shape[0]
        if n == 0 or n & (n - 1):
            raise ValueError("table length must be a non-zero power of two")
        cap_height = min(self.cap_height, n.bit_length() - 1)
        with tracing.span("pcs:commit", category="commit", label=label, rows=n):
            if slot is not None:
                pool = parallel.current_pool()
                if pool is not None and pool.wants_tree(n):
                    from ..parallel import ops as par_ops

                    return par_ops.sharded_multilinear_commit(
                        pool, rows, cap_height, slot
                    )
            return MerkleTree(rows, cap_height)

    def open(self, commitment: MerkleTree, index: int) -> Tuple[np.ndarray, MerkleProof]:
        """Open one hypercube position: the leaf row plus its path."""
        return commitment.leaves[index].copy(), commitment.prove(index)

    @staticmethod
    def verify_opening(
        values: np.ndarray, index: int, proof: MerkleProof, cap: np.ndarray
    ) -> bool:
        """Check a leaf-row opening against a commitment cap."""
        return verify_proof(values, index, proof, cap)

    def commit_fold_levels(
        self, tables: List[np.ndarray]
    ) -> List[MerkleTree]:
        """Commit each folded sumcheck level (size > 1) of a table run."""
        return [self.commit(t, "fold") for t in tables if t.shape[0] > 1]
