"""Univariate FRI polynomial commitment scheme.

The commit / quotient-interpolate / open-and-FRI sequencing that used to
live inside :class:`repro.pipeline.CommitmentPipeline`, split out as a
PCS backend.  The pipeline still owns the transcript (challenger,
cap observation order); this class owns the data plane:

* :meth:`commit_values` / :meth:`commit_coeffs` build a
  :class:`~repro.fri.prover.PolynomialBatch` (iNTT -> LDE -> Merkle);
* :meth:`commit_quotient` interpolates an extension-field coset
  evaluation back to coefficients and commits the degree-``n`` chunks;
* :meth:`open_and_prove` evaluates the requested openings and runs the
  batch FRI opening proof over every batch committed so far.

This is pure code motion: the kernels invoked, their order, the tracing
spans, and therefore the operation counters and proof bytes are
bit-identical to the pre-split pipeline (enforced by the perf-counter
CI gate).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .. import parallel, tracing
from ..field import gl64
from ..fri import (
    FriConfig,
    FriOpenings,
    FriProof,
    PolynomialBatch,
    fri_prove,
    open_batches,
)
from ..hashing import Challenger
from ..merkle.tree import verify_proof
from ..ntt import coset_intt
from .base import PCS


class FriPCS(PCS):
    """Batch commitments on the LDE domain with a FRI opening proof."""

    name = "fri"

    def __init__(self, config: FriConfig, ws: gl64.Workspace | None = None) -> None:
        self.config = config
        self.ws = ws
        #: Batches in commitment order == FRI opening batch indices.
        self.batches: List[PolynomialBatch] = []

    # -- commitments -----------------------------------------------------

    def add_batch(self, batch: PolynomialBatch) -> PolynomialBatch:
        """Register a pre-built batch (e.g. a setup-time commitment)."""
        self.batches.append(batch)
        return batch

    def commit(self, rows: np.ndarray, label: str = "pcs") -> PolynomialBatch:
        """PCS interface alias for :meth:`commit_values`."""
        return self.commit_values(rows, label)

    def commit_values(self, rows: np.ndarray, label: str) -> PolynomialBatch:
        """Commit polynomials given by subgroup evaluations (rows)."""
        with tracing.span(f"commit:{label}", category="commit"):
            batch = PolynomialBatch.from_values(
                rows,
                self.config.rate_bits,
                self.config.cap_height,
                ws=self.ws,
                slot=label,
            )
        return self.add_batch(batch)

    def commit_coeffs(self, rows: np.ndarray, label: str) -> PolynomialBatch:
        """Commit polynomials given by coefficient rows."""
        with tracing.span(f"commit:{label}", category="commit"):
            batch = PolynomialBatch.from_coeffs(
                rows,
                self.config.rate_bits,
                self.config.cap_height,
                ws=self.ws,
                slot=label,
            )
        return self.add_batch(batch)

    def commit_quotient(
        self,
        ext_values: np.ndarray,
        n: int,
        chunks: int,
        label: str = "quotient",
    ) -> PolynomialBatch:
        """Interpolate and commit a quotient evaluated on the LDE coset.

        ``ext_values`` is the (N_lde, 2) extension-field evaluation of
        the (already divisor-divided) constraint blend; each limb is
        coset-iNTT'd and split into ``chunks`` degree-``n`` coefficient
        chunks, giving a ``2 * chunks``-polynomial batch -- the quotient
        layout both STARK and Plonk use.

        Under an active shard pool the limb iNTTs, chunk LDEs and the
        Merkle build fuse into one shard graph (no barrier between the
        interpolation and the extensions); the resulting batch, cap and
        counters are bit-identical to the serial path.
        """
        pool = parallel.current_pool()
        if pool is not None and pool.wants_commit(n << self.config.rate_bits):
            from ..parallel import ops as par_ops

            with tracing.span(f"commit:{label}", category="commit"):
                batch = par_ops.sharded_commit_quotient(
                    pool,
                    ext_values,
                    n,
                    chunks,
                    self.config.rate_bits,
                    self.config.cap_height,
                    f"commit:{label}",
                )
            return self.add_batch(batch)
        with tracing.span("quotient:intt", category="quotient"):
            chunk_rows = []
            for limb in range(2):
                coeffs = coset_intt(ext_values[:, limb], ws=self.ws)
                for k in range(chunks):
                    chunk_rows.append(coeffs[k * n : (k + 1) * n])
            stacked = np.stack(chunk_rows)
        return self.commit_coeffs(stacked, label)

    # -- openings + FRI --------------------------------------------------

    def open(self, commitment: PolynomialBatch, index: int):
        """Open one LDE row of a batch (single-position spot check)."""
        return commitment.values[index], commitment.tree.prove(index)

    @staticmethod
    def verify_opening(
        values: np.ndarray, index: int, proof, cap: np.ndarray
    ) -> bool:
        """Check one row opening against a batch cap."""
        return verify_proof(values, index, proof, cap)

    def open_and_prove(
        self,
        points: Sequence[np.ndarray],
        columns: Sequence[Sequence[Tuple[int, int]]],
        challenger: Challenger,
    ) -> Tuple[FriOpenings, FriProof]:
        """Open the committed batches and produce the FRI proof.

        ``columns[k]`` lists the ``(batch_index, poly_index)`` pairs
        opened at ``points[k]``; batch indices are commitment order.
        """
        with tracing.span("open", category="open"):
            openings = open_batches(self.batches, points, columns)
        with tracing.span("fri", category="fri"):
            proof = fri_prove(
                self.batches, openings, challenger, self.config, ws=self.ws
            )
        return openings, proof
