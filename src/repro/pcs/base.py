"""Polynomial-commitment-scheme (PCS) interface.

The proof pipeline used to hard-wire the univariate FRI sequencing
(iNTT -> LDE -> Merkle -> batch FRI opening) into
:class:`repro.pipeline.CommitmentPipeline`.  This package splits that
sequencing out behind a small interface so protocol backends choose
their commitment plane:

* :class:`repro.pcs.fri.FriPCS` -- the univariate scheme both the STARK
  and Plonk backends run on (low-degree extension + Merkle caps + batch
  FRI opening proof);
* :class:`repro.pcs.multilinear.MultilinearPCS` -- a Merkle-committed
  multilinear scheme with *no NTT anywhere*: tables over the boolean
  hypercube commit row-wise, and openings are plain authentication
  paths.  The sumcheck-native HyperPlonk-lite backend commits its wire
  /permutation tables and its per-round folded sumcheck levels through
  it.

The two schemes open differently (a batch evaluation proof at
out-of-domain points vs. index openings plus fold-consistency spot
checks), so the shared surface is deliberately small: *commit* rows to
a cap, *open* a position, *verify* an opening.  Everything
opening-protocol-specific stays on the concrete class.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class PCS(ABC):
    """Minimal common surface of a polynomial commitment scheme."""

    #: Registry-facing scheme name ("fri", "multilinear").
    name: str = "?"

    @abstractmethod
    def commit(self, rows: np.ndarray, label: str = "pcs") -> object:
        """Commit a batch of rows; returns a commitment with a ``cap``."""

    @abstractmethod
    def open(self, commitment: object, index: int):
        """Open one committed position; returns ``(values, proof)``."""

    @staticmethod
    @abstractmethod
    def verify_opening(
        values: np.ndarray, index: int, proof: object, cap: np.ndarray
    ) -> bool:
        """Check one opening against a commitment cap."""
