"""Plonk verifier: transcript replay and the opening identity at zeta.

The verifier re-derives every challenge, evaluates the gate/copy
constraint blend from the *opened* polynomial values at ``zeta``, checks
it against ``Z_H(zeta) * t(zeta)``, and then verifies the batch FRI
proof that ties the opened values to the commitments.
"""

from __future__ import annotations

import numpy as np

from ..field import extension as fext, goldilocks as gl
from ..fri import fri_verify
from ..fri.verifier import FriError
from ..hashing import Challenger
from .permutation import coset_representatives
from .proof import PlonkProof, VerifierData
from .prover import QUOTIENT_CHUNKS, ZK_SALT_COLUMNS


class PlonkError(Exception):
    """Raised when a Plonk proof fails verification."""


def _ext_pow(base: np.ndarray, e: int) -> np.ndarray:
    return fext.pow_scalar(base.reshape(2), e)


def verify(
    vdata: VerifierData, proof: PlonkProof, challenger: Challenger | None = None
) -> None:
    """Verify a Plonk proof; raises :class:`PlonkError` on any failure."""
    n = vdata.n
    config = vdata.config
    challenger = challenger or Challenger()

    if len(proof.public_inputs) != vdata.num_public_inputs:
        raise PlonkError("wrong number of public inputs")

    challenger.observe_cap(vdata.preprocessed_cap)
    challenger.observe_elements(np.array(proof.public_inputs, dtype=np.uint64))
    challenger.observe_cap(proof.wires_cap)
    beta = challenger.get_challenge()
    gamma = challenger.get_challenge()
    challenger.observe_cap(proof.z_cap)
    alpha = challenger.get_ext_challenge()
    challenger.observe_cap(proof.quotient_cap)
    zeta = challenger.get_ext_challenge()

    # --- structural checks on the opening set -------------------------------
    omega = gl.primitive_root_of_unity(n.bit_length() - 1)
    zeta_next = fext.scalar_mul(zeta, np.uint64(omega))
    expected_cols_zeta = (
        [(0, c) for c in range(8)]
        + [(1, c) for c in range(3)]
        + [(2, 0)]
        + [(3, c) for c in range(2 * QUOTIENT_CHUNKS)]
    )
    op = proof.openings
    if len(op.points) != 2 or len(op.columns) != 2 or len(op.values) != 2:
        raise PlonkError("malformed opening set (points)")
    if op.points[0].size != 2 or op.points[1].size != 2:
        raise PlonkError("malformed opening set (points)")
    if not (
        np.array_equal(op.points[0].reshape(2), zeta.reshape(2))
        and np.array_equal(op.points[1].reshape(2), zeta_next.reshape(2))
    ):
        raise PlonkError("openings are not at the transcript's zeta")
    if op.columns[0] != expected_cols_zeta or op.columns[1] != [(2, 0)]:
        raise PlonkError("malformed opening set (columns)")

    vals0 = np.atleast_2d(op.values[0])
    vals1 = np.atleast_2d(op.values[1])
    if vals0.shape != (len(expected_cols_zeta), 2) or vals1.shape != (1, 2):
        raise PlonkError("malformed opening set (values)")
    sel = [vals0[i] for i in range(5)]
    sig = [vals0[5 + i] for i in range(3)]
    wire = [vals0[8 + i] for i in range(3)]
    z_zeta = vals0[11]
    t_chunks = [vals0[12 + i] for i in range(2 * QUOTIENT_CHUNKS)]
    z_next = vals1[0]

    # --- the polynomial identity at zeta -------------------------------------
    zeta_n = _ext_pow(zeta, n)
    zh = fext.sub(zeta_n, fext.one())
    if bool(fext.is_zero(zh)):
        raise PlonkError("zeta landed inside the subgroup (reject)")

    # Gate constraint with the public-input polynomial.
    gate = fext.add(
        fext.add(fext.mul(sel[0], wire[0]), fext.mul(sel[1], wire[1])),
        fext.add(
            fext.mul(sel[2], fext.mul(wire[0], wire[1])),
            fext.add(fext.mul(sel[3], wire[2]), sel[4]),
        ),
    )
    pi_eval = fext.zero()
    n_inv = gl.inverse(n)
    for row, value in zip(vdata.public_input_rows, proof.public_inputs):
        omega_row = gl.pow_mod(omega, row)
        denom = fext.sub(zeta.reshape(2), fext.from_base(np.uint64(omega_row)))
        lag = fext.mul(
            fext.scalar_mul(zh, np.uint64(gl.mul(omega_row, n_inv))), fext.inv(denom)
        )
        pi_eval = fext.sub(pi_eval, fext.scalar_mul(lag, np.uint64(value)))
    gate = fext.add(gate, pi_eval)

    # Copy constraints.
    ks = coset_representatives()
    f_eval = fext.one()
    g_eval = fext.one()
    beta_u = np.uint64(beta)
    gamma_e = fext.from_base(np.uint64(gamma))
    for j in range(3):
        id_j = fext.scalar_mul(zeta.reshape(2), np.uint64(gl.mul(ks[j], beta)))
        f_eval = fext.mul(f_eval, fext.add(fext.add(wire[j], id_j), gamma_e))
        sig_j = fext.scalar_mul(sig[j], beta_u)
        g_eval = fext.mul(g_eval, fext.add(fext.add(wire[j], sig_j), gamma_e))
    copy1 = fext.sub(fext.mul(z_zeta, f_eval), fext.mul(z_next, g_eval))

    l1_denom = fext.scalar_mul(fext.sub(zeta.reshape(2), fext.one()), np.uint64(n))
    l1 = fext.mul(zh, fext.inv(l1_denom))
    copy2 = fext.mul(l1, fext.sub(z_zeta, fext.one()))

    lhs = fext.add(
        gate,
        fext.add(
            fext.mul(alpha, copy1), fext.mul(fext.mul(alpha, alpha), copy2)
        ),
    )

    # Reassemble t(zeta) from limb chunks.
    phi = fext.make(0, 1)  # the extension basis element X
    t_eval = fext.zero()
    for limb in range(2):
        limb_val = fext.zero()
        for k in range(QUOTIENT_CHUNKS - 1, -1, -1):
            limb_val = fext.add(
                fext.mul(limb_val, zeta_n), t_chunks[limb * QUOTIENT_CHUNKS + k]
            )
        if limb == 1:
            limb_val = fext.mul(limb_val, phi)
        t_eval = fext.add(t_eval, limb_val)
    rhs = fext.mul(zh, t_eval)

    if not np.array_equal(lhs.reshape(2), rhs.reshape(2)):
        raise PlonkError("constraint identity fails at zeta")

    # --- FRI opening proof ----------------------------------------------------
    caps = [vdata.preprocessed_cap, proof.wires_cap, proof.z_cap, proof.quotient_cap]
    try:
        fri_verify(
            caps,
            op,
            proof.fri_proof,
            challenger,
            config,
            n,
            # The wires batch admits two widths: 3 bare columns, or
            # 3 + ZK_SALT_COLUMNS when the prover committed with
            # blinding salts.  Width 4 stays rejected -- that is the
            # hash_or_noop zero-pad malleability the pin exists for.
            leaf_widths=[8, (3, 3 + ZK_SALT_COLUMNS), 1, 2 * QUOTIENT_CHUNKS],
        )
    except FriError as exc:
        raise PlonkError(f"FRI verification failed: {exc}") from exc
