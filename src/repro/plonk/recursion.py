"""Recursive verification building blocks.

Recursive aggregation (paper Sections 2.2, 7.4) expresses a verifier as
a circuit.  Two pieces make that possible and both live here:

* :class:`CircuitChallenger` -- the duplex Fiat-Shamir transcript as a
  circuit gadget, mirroring :class:`repro.hashing.Challenger` exactly:
  with the same observations, the squeezed in-circuit challenge's
  witness value equals the native challenge.  This is what lets a
  circuit re-derive an inner proof's randomness.
* :func:`verify_sumcheck_in_circuit` -- a complete in-circuit verifier
  for the sum-check protocol (Algorithm 2), including the final
  multilinear-extension evaluation when the table is public.  Sum-check
  is the verification core of the Spartan/Binius/Basefold family the
  paper's Section 8.1 targets, and its verifier is small enough to
  recurse exactly.

A full in-circuit FRI verifier composes these same pieces (transcript +
Merkle gadgets from :mod:`repro.plonk.gadgets` + field arithmetic) and
is a matter of circuit size, not new machinery; the fixed-shape
recursion circuit of the performance model (``RECURSION_PARAMS``)
accounts for it with Plonky2's wide custom gates.
"""

from __future__ import annotations

from typing import List, Sequence

from ..field import goldilocks as gl
from ..hashing.constants import WIDTH
from ..hashing.sponge import RATE
from .circuit import CircuitBuilder, Variable
from .gadgets import poseidon_permutation


class CircuitChallenger:
    """The duplex challenger as a circuit gadget.

    Mirrors :class:`repro.hashing.Challenger` operation for operation:
    observations buffer until a full rate chunk (or a squeeze) forces a
    permutation; challenges pop from the rate lanes in the same order.
    """

    def __init__(self, builder: CircuitBuilder, **round_kwargs) -> None:
        self._builder = builder
        self._round_kwargs = round_kwargs
        zero = builder.constant(0)
        self._state: List[Variable] = [zero] * WIDTH
        self._input_buffer: List[Variable] = []
        self._output_buffer: List[Variable] = []

    def observe(self, value: Variable) -> None:
        """Absorb one circuit variable."""
        self._output_buffer.clear()
        self._input_buffer.append(value)
        if len(self._input_buffer) == RATE:
            self._duplex()

    def observe_many(self, values: Sequence[Variable]) -> None:
        """Absorb several variables in order."""
        for v in values:
            self.observe(v)

    def get_challenge(self) -> Variable:
        """Squeeze one challenge variable."""
        if self._input_buffer or not self._output_buffer:
            self._duplex()
        return self._output_buffer.pop()

    def _duplex(self) -> None:
        for i, v in enumerate(self._input_buffer):
            self._state[i] = v
        self._input_buffer.clear()
        self._state = poseidon_permutation(
            self._builder, self._state, **self._round_kwargs
        )
        self._output_buffer = list(self._state[:RATE])[::-1]


def verify_sumcheck_in_circuit(
    builder: CircuitBuilder,
    claimed_sum: Variable,
    round_values: Sequence[Sequence[Variable]],
    final_value: Variable,
    table: Sequence[Variable] | None = None,
    **round_kwargs,
) -> List[Variable]:
    """Constrain a complete sum-check verification inside a circuit.

    ``round_values[k] = (y0, y1)`` are the prover's per-round messages;
    the gadget re-derives every Fiat-Shamir challenge with
    :class:`CircuitChallenger`, enforces the running-claim consistency
    ``y0 + y1 == expected`` each round, folds
    ``expected' = y0 (1 - r) + y1 r``, and pins the last claim to
    ``final_value``.  If ``table`` (the public multilinear table,
    ``2**rounds`` variables) is given, the gadget additionally evaluates
    the multilinear extension at the challenge point in-circuit and
    constrains it to equal ``final_value`` -- making the verification
    complete with no outside oracle.

    Returns the challenge-point variables.
    """
    challenger = CircuitChallenger(builder, **round_kwargs)
    challenger.observe(claimed_sum)
    expected = claimed_sum
    one = builder.constant(1)
    point: List[Variable] = []
    for y0, y1 in round_values:
        total = builder.add(y0, y1)
        builder.assert_equal(total, expected)
        challenger.observe(y0)
        challenger.observe(y1)
        r = challenger.get_challenge()
        point.append(r)
        one_minus_r = builder.sub(one, r)
        left = builder.mul(y0, one_minus_r)
        right = builder.mul(y1, r)
        expected = builder.add(left, right)
    builder.assert_equal(expected, final_value)

    if table is not None:
        if len(table) != 1 << len(round_values):
            raise ValueError("table size must be 2**rounds")
        folded = list(table)
        for r in point:
            one_minus_r = builder.sub(one, r)
            half = len(folded) // 2
            folded = [
                builder.add(
                    builder.mul(folded[i], one_minus_r),
                    builder.mul(folded[half + i], r),
                )
                for i in range(half)
            ]
        builder.assert_equal(folded[0], final_value)
    return point


def build_sumcheck_verifier_circuit(num_vars: int, **round_kwargs):
    """Build a circuit verifying a sum-check proof over a public table.

    Returns ``(circuit, handles)`` where ``handles`` maps the proof
    fields to input variables: fill them from a
    :class:`repro.sumcheck.SumcheckProof` plus the table values, and the
    witness satisfies the circuit iff the proof verifies.
    """
    builder = CircuitBuilder()
    claimed = builder.add_variable()
    rounds = [(builder.add_variable(), builder.add_variable()) for _ in range(num_vars)]
    final = builder.add_variable()
    table = [builder.add_variable() for _ in range(1 << num_vars)]
    verify_sumcheck_in_circuit(
        builder, claimed, rounds, final, table=table, **round_kwargs
    )
    circuit = builder.build()
    handles = {
        "claimed": claimed,
        "rounds": rounds,
        "final": final,
        "table": table,
    }
    return circuit, handles


def sumcheck_proof_inputs(handles, proof, table_values) -> dict:
    """Map a native sum-check proof onto the verifier circuit's inputs."""
    inputs = {handles["claimed"].index: proof.claimed_sum}
    for (y0v, y1v), (y0, y1) in zip(handles["rounds"], proof.round_values):
        inputs[y0v.index] = y0
        inputs[y1v.index] = y1
    inputs[handles["final"].index] = proof.final_value
    for var, val in zip(handles["table"], table_values):
        inputs[var.index] = gl.canonical(int(val))
    return inputs
