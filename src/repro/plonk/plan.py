"""Per-shape Plonk prover plans: precomputed tables + reusable workspaces.

The Plonk analogue of :mod:`repro.stark.plan`: a :class:`PlonkPlan`
gathers everything the prover would otherwise re-derive on every proof
of an ``(n, rate_bits)`` circuit shape:

* the coset evaluation points over the LDE domain;
* the vanishing-polynomial inverses ``1 / Z_H(x)`` and the first
  Lagrange basis polynomial ``L_1(x)`` on the coset;
* the permutation-argument position labels ``k_j * omega^i``;
* the NTT twiddles, fused Poseidon tensors and FRI fold weights
  (touched once by :meth:`PlonkPlan.warm`);
* one :class:`repro.field.gl64.Workspace` arena threaded through every
  commitment and the FRI call.

Plans are keyed on the domain shape only, so every circuit of one size
shares a plan -- the service batches many circuits of one workload onto
one warm plan, mirroring the paper's batched-kernel amortisation.
Plans are NOT thread-safe (the arena is reused mutably per proof);
:func:`plan_for` hands out thread-local instances.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from ..field import gl64, goldilocks as gl
from ..fri import prover as fri_prover
from ..hashing import optimized
from ..metrics import GLOBAL as _METRICS
from ..ntt import transforms
from ..tunables import PlanTuning
from .permutation import id_values


class PlonkPlan:
    """Precomputed state for proving circuits of one domain shape."""

    def __init__(self, n: int, rate_bits: int) -> None:
        if n & (n - 1) or n <= 0:
            raise ValueError("circuit size must be a power of two")
        self.n = n
        self.rate_bits = rate_bits
        self.n_lde = n << rate_bits
        self.log_lde = self.n_lde.bit_length() - 1
        self.ws = gl64.Workspace()
        #: Coset points g * omega^i over the LDE domain (read-only).
        self.xs = fri_prover.lde_points(self.log_lde)
        blowup = 1 << rate_bits
        omega_lde = gl.primitive_root_of_unity(self.log_lde)
        # x^n on the coset cycles with period `blowup`.
        cycle = gl64.mul(
            gl64.powers(gl.pow_mod(omega_lde, n), blowup),
            np.uint64(gl.pow_mod(gl.coset_shift(), n)),
        )
        zh = np.tile(gl64.sub(cycle, np.uint64(1)), n)
        #: 1 / Z_H(x) on the LDE coset (read-only).
        self.zh_inv = gl64.inv_fast(zh)
        self.zh_inv.flags.writeable = False
        #: L_1(x) = (x^n - 1) / (n (x - 1)) on the LDE coset (read-only).
        denom = gl64.mul(gl64.sub(self.xs, np.uint64(1)), np.uint64(n))
        self.lagrange_first = gl64.mul(zh, gl64.inv_fast(denom))
        self.lagrange_first.flags.writeable = False
        #: Permutation position labels k_j * omega^i, shape (3, n)
        #: (read-only).
        self.ids = id_values(n)
        self.ids.flags.writeable = False
        self.omega = gl.primitive_root_of_unity(n.bit_length() - 1)
        #: Software tuning the prover applies for this shape (``None``
        #: = heuristic defaults; filled in by :func:`plan_for` from the
        #: tuning cache when the plan tuner has a stored winner).
        self.tuning: Optional[PlanTuning] = None

    def warm(self) -> "PlonkPlan":
        """Touch every lazily-built table the hot path will need.

        Builds the NTT stage twiddles and bit-reverse permutations for
        the subgroup and LDE domains, the fused Poseidon round tensors,
        and the FRI fold weights for every fold the config could run.
        """
        for log_n in (self.n.bit_length() - 1, self.log_lde):
            transforms.bit_reverse_indices(log_n)
            transforms._stage_twiddles(log_n, False)
            transforms._stage_twiddles(log_n, True)
        optimized._fused_tables()
        optimized._scalar_tables()
        shift = gl.coset_shift()
        for log_n in range(self.log_lde, 1, -1):
            fri_prover._fold_weights(log_n, int(shift))
            shift = gl.mul(shift, shift)
        return self

    def workspace_bytes(self) -> int:
        """Current size of the plan's scratch arena, in bytes."""
        return self.ws.nbytes()


_LOCAL = threading.local()

#: Per-thread plan-cache capacity (see :mod:`repro.stark.plan`).
PLAN_CACHE_CAP = 8


def plan_for(n: int, rate_bits: int) -> PlonkPlan:
    """Return this thread's (warmed) plan for a circuit shape.

    Keyed on ``(n, rate_bits)``; repeated proofs of one shape -- the
    service's cached-circuit path in particular -- share tables and
    workspaces.  The cache holds at most :data:`PLAN_CACHE_CAP` plans
    per thread, evicting least-recently-used shapes (counted in
    ``metrics.GLOBAL.plan_evictions``).
    """
    cache: OrderedDict[Tuple[int, int], PlonkPlan] = getattr(_LOCAL, "plans", None)
    if cache is None:
        cache = OrderedDict()
        _LOCAL.plans = cache
    key = (n, rate_bits)
    plan = cache.get(key)
    if plan is None:
        plan = PlonkPlan(n, rate_bits).warm()
        plan.tuning = _cached_tuning(n, rate_bits)
        cache[key] = plan
        while len(cache) > PLAN_CACHE_CAP:
            cache.popitem(last=False)
            _METRICS.plan_evictions += 1
    else:
        cache.move_to_end(key)
    return plan


def _cached_tuning(n: int, rate_bits: int) -> Optional[PlanTuning]:
    """Stored plan-tuner winner for this shape, or ``None`` (lazy
    import: the plan tuner drives the prover, which builds plans here).
    """
    try:
        from ..autotune.plan_tuner import cached_tuning

        return cached_tuning("plonk", n, rate_bits)
    except Exception:
        return None
