"""Extension-field and FRI-arithmetic circuit gadgets.

The FRI verifier's non-hash work is extension-field arithmetic: fold
consistency checks, domain-point reconstruction from query-index bits,
and the final-polynomial evaluation.  These gadgets provide it
in-circuit, completing (with :mod:`repro.plonk.gadgets`'s Merkle/
Poseidon gadgets and :mod:`repro.plonk.recursion`'s transcript) the
toolkit a recursive FRI verifier composes.

An extension element in-circuit is an :class:`ExtVar` -- a pair of
base-field variables, mirroring how UniZK executes GF(p^2) on
base-field PEs (paper Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..field import extension as fext, goldilocks as gl
from .circuit import CircuitBuilder, Variable
from .gadgets import select


@dataclass(frozen=True)
class ExtVar:
    """An extension-field element as two circuit variables."""

    c0: Variable
    c1: Variable


def ext_input(builder: CircuitBuilder) -> ExtVar:
    """Declare an extension-field input."""
    return ExtVar(builder.add_variable(), builder.add_variable())


def ext_constant(builder: CircuitBuilder, value) -> ExtVar:
    """An extension constant (accepts an (2,) array or int pair)."""
    pair = fext.to_pair(value) if hasattr(value, "reshape") else tuple(value)
    return ExtVar(builder.constant(pair[0]), builder.constant(pair[1]))


def ext_from_base(builder: CircuitBuilder, v: Variable) -> ExtVar:
    """Embed a base-field variable."""
    return ExtVar(v, builder.constant(0))


def ext_add(builder: CircuitBuilder, a: ExtVar, b: ExtVar) -> ExtVar:
    """Limb-wise addition."""
    return ExtVar(builder.add(a.c0, b.c0), builder.add(a.c1, b.c1))


def ext_sub(builder: CircuitBuilder, a: ExtVar, b: ExtVar) -> ExtVar:
    """Limb-wise subtraction."""
    return ExtVar(builder.sub(a.c0, b.c0), builder.sub(a.c1, b.c1))


def ext_mul(builder: CircuitBuilder, a: ExtVar, b: ExtVar) -> ExtVar:
    """Karatsuba extension multiply: 3 base multiplies + linear gates."""
    w = builder.constant(fext.non_residue())
    t0 = builder.mul(a.c0, b.c0)
    t1 = builder.mul(a.c1, b.c1)
    sa = builder.add(a.c0, a.c1)
    sb = builder.add(b.c0, b.c1)
    cross = builder.sub(builder.sub(builder.mul(sa, sb), t0), t1)
    c0 = builder.add(t0, builder.mul(t1, w))
    return ExtVar(c0, cross)


def ext_scalar_mul(builder: CircuitBuilder, a: ExtVar, s: int) -> ExtVar:
    """Multiply by a base-field constant."""
    sc = builder.constant(gl.canonical(s))
    return ExtVar(builder.mul(a.c0, sc), builder.mul(a.c1, sc))


def ext_assert_equal(builder: CircuitBuilder, a: ExtVar, b: ExtVar) -> None:
    """Copy-constrain two extension values."""
    builder.assert_equal(a.c0, b.c0)
    builder.assert_equal(a.c1, b.c1)


def ext_select(builder: CircuitBuilder, bit: Variable, a: ExtVar, b: ExtVar) -> ExtVar:
    """``bit ? a : b`` limb-wise."""
    return ExtVar(select(builder, bit, a.c0, b.c0), select(builder, bit, a.c1, b.c1))


# ---------------------------------------------------------------------------
# FRI arithmetic
# ---------------------------------------------------------------------------


def domain_point_from_bits(
    builder: CircuitBuilder,
    bits: Sequence[Variable],
    log_n: int,
    shift: int | None = None,
    inverse: bool = False,
) -> Variable:
    """Reconstruct ``shift * omega^index`` from index bits, in-circuit.

    ``x = shift * prod_k (bit_k ? omega^(2^k) : 1)`` -- the verifier-side
    computation of the query's evaluation point (``inverse=True`` builds
    ``x^-1`` with inverted factors, as the fold formula needs).
    """
    if len(bits) != log_n:
        raise ValueError("one bit per domain-size bit")
    omega = gl.primitive_root_of_unity(log_n)
    if inverse:
        omega = gl.inverse(omega)
    shift_val = gl.coset_shift() if shift is None else shift
    if inverse:
        shift_val = gl.inverse(shift_val)
    acc = builder.constant(gl.canonical(shift_val))
    one = builder.constant(1)
    factor = omega
    for bit in bits:
        chosen = select(builder, bit, builder.constant(factor), one)
        acc = builder.mul(acc, chosen)
        factor = gl.mul(factor, factor)
    return acc


def fri_fold_check(
    builder: CircuitBuilder,
    lo: ExtVar,
    hi: ExtVar,
    beta: ExtVar,
    x_inv: Variable,
    expected: ExtVar,
) -> None:
    """Constrain one arity-2 FRI fold step.

    ``expected == (lo + hi)/2 + beta * (lo - hi) * x_inv / 2`` where
    ``x_inv`` is the (in-circuit) inverse of the pair's domain point --
    the exact consistency check of the native verifier's layer walk.
    """
    half = gl.inverse(2)
    even = ext_scalar_mul(builder, ext_add(builder, lo, hi), half)
    diff = ext_scalar_mul(builder, ext_sub(builder, lo, hi), half)
    x_inv_ext = ext_from_base(builder, x_inv)
    odd = ext_mul(builder, diff, x_inv_ext)
    folded = ext_add(builder, even, ext_mul(builder, beta, odd))
    ext_assert_equal(builder, folded, expected)


def ext_eval_poly(
    builder: CircuitBuilder, coeffs: List[ExtVar], x: ExtVar
) -> ExtVar:
    """Horner evaluation of an extension polynomial at an extension point
    (the final-polynomial check of the FRI verifier)."""
    if not coeffs:
        return ext_constant(builder, (0, 0))
    acc = coeffs[-1]
    for c in coeffs[-2::-1]:
        acc = ext_add(builder, ext_mul(builder, acc, x), c)
    return acc
