"""Plonk prover (paper Figure 1, left-to-right).

Pipeline -- each stage is one of the kernels UniZK accelerates:

1. wires commitment: ``iNTT`` + LDE ``NTT`` + Merkle tree (Figure 7's
   *Wires Commitment* node);
2. Fiat-Shamir ``beta``/``gamma`` + permutation accumulator ``Z`` via the
   chunked partial-product kernel;
3. ``alpha`` + quotient construction: vanishing-divided constraint blend
   evaluated on the LDE coset (element-wise polynomial ops);
4. ``zeta`` + batch FRI opening proof.

The commit / challenge / quotient / open sequencing itself lives in
:class:`repro.pipeline.CommitmentPipeline` (shared with the STARK
prover); this module only defines the Plonk-specific stages: witness
generation, the permutation accumulator, and the gate/copy constraint
blend.  Per-shape tables and the workspace arena come from a cached
:class:`~repro.plonk.plan.PlonkPlan`, so repeated proofs of one
circuit shape -- the service path -- pay no per-proof precompute.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .. import parallel, tracing, tunables
from ..field import extension as fext, gl64, goldilocks as gl
from ..fri import FriConfig, PolynomialBatch
from ..hashing import Challenger
from ..ntt import lde
from ..pipeline import CommitmentPipeline
from .circuit import Circuit
from .permutation import compute_z, coset_representatives, sigma_values
from .plan import PlonkPlan, plan_for
from .proof import CircuitData, PlonkProof

#: Quotient chunks per extension limb (degree bound 4n after division).
QUOTIENT_CHUNKS = 4


def setup(circuit: Circuit, config: FriConfig) -> CircuitData:
    """Preprocess a circuit: commit selectors and sigma polynomials."""
    sigmas = sigma_values(circuit)
    pre_rows = np.concatenate([circuit.selectors, sigmas])
    preprocessed = PolynomialBatch.from_values(
        pre_rows, config.rate_bits, config.cap_height
    )
    return CircuitData(
        circuit=circuit, preprocessed=preprocessed, config=config, sigmas=sigmas
    )


def _pi_poly_on_lde(
    circuit: Circuit,
    public_values: list[int],
    rate_bits: int,
    ws: gl64.Workspace | None = None,
) -> np.ndarray:
    """LDE values of the public-input polynomial ``-sum v_k L_rowk(x)``."""
    ws = ws or gl64.default_workspace()
    subgroup = ws.temp((circuit.n,), "plonk:pi")
    subgroup.fill(0)
    for row, val in zip(circuit.public_input_rows, public_values):
        subgroup[row] = gl.neg(val)
    return lde(subgroup, rate_bits, ws=ws)


#: Salt columns appended to the wires commitment when blinding.
ZK_SALT_COLUMNS = 2


def prove(
    data: CircuitData,
    inputs: Dict[int, int],
    challenger: Challenger | None = None,
    blinding_seed: int | None = None,
    plan: PlonkPlan | None = None,
    pool: "parallel.ShardPool | None" = None,
) -> PlonkProof:
    """Generate a Plonk proof for the given input assignment.

    ``inputs`` maps variable indices (from ``Variable.index``) to values;
    every non-derived variable must be present.

    ``blinding_seed`` enables zero-knowledge salting (Plonky2's
    ``blinding`` flag): random salt columns join the wires commitment so
    the Merkle cap is hiding -- two proofs of the same witness with
    different seeds share no commitment material.  (Full zero knowledge
    additionally pads unused trace rows with randomness; the salt
    columns are the commitment-hiding half, and the verifier needs no
    changes because salts ride the leaves without entering any
    constraint.)  ``None`` keeps the prover deterministic.

    ``plan`` carries the per-shape precomputed tables and workspace
    arena; one is looked up (and cached thread-locally) when not
    supplied.

    ``pool`` shards the commit/FRI stages across worker processes
    (:mod:`repro.parallel`); ``None`` inherits any pool scoped by
    :func:`repro.parallel.sharding`.  Sharded proofs are bit-identical
    to serial ones.
    """
    circuit = data.circuit
    config = data.config
    n = circuit.n
    rate_bits = config.rate_bits
    challenger = challenger or Challenger()
    if plan is None:
        plan = plan_for(n, rate_bits)
    elif plan.n != n or plan.rate_bits != rate_bits:
        raise ValueError("plan shape does not match the circuit/config")

    with parallel.maybe_sharding(pool), tunables.applied(plan.tuning), tracing.span(
        "prove:plonk", category="prove", n=n, rate_bits=rate_bits
    ):
        with tracing.span("witness", category="witness"):
            witness = circuit.generate_witness(inputs)
            wires = circuit.wire_values(witness)  # (3, n)
            public_values = [int(wires[0, row]) for row in circuit.public_input_rows]

        pipe = CommitmentPipeline(config, challenger, ws=plan.ws)
        pipe.add_batch(data.preprocessed)  # setup commitment joins the transcript
        pipe.observe_publics(public_values)

        # Step 1: wires commitment (optionally salted for zero knowledge).
        committed_wires = wires
        if blinding_seed is not None:
            salt_rng = np.random.default_rng(blinding_seed)
            salts = gl64.random((ZK_SALT_COLUMNS, n), salt_rng)
            committed_wires = np.concatenate([wires, salts])
        wires_batch = pipe.commit_values(committed_wires, "wires")

        # Step 2: permutation accumulator.
        beta = pipe.challenge()
        gamma = pipe.challenge()
        with tracing.span("permutation", category="permutation"):
            sigmas = data.sigmas if data.sigmas is not None else sigma_values(circuit)
            z, _, _ = compute_z(wires, plan.ids, sigmas, beta, gamma)
        z_batch = pipe.commit_values(z, "z")

        # Step 3: quotient polynomial on the LDE coset.
        alpha = pipe.ext_challenge()
        with tracing.span("constraints", category="quotient"):
            n_lde = n << rate_bits
            blowup = 1 << rate_bits
            xs = plan.xs

            sel = data.preprocessed.values[:, 0:5].T  # (5, N_lde)
            sig = data.preprocessed.values[:, 5:8].T  # (3, N_lde)
            w = wires_batch.values.T  # (3, N_lde)
            z_lde = z_batch.values[:, 0]
            z_next = np.roll(z_lde, -blowup)
            pi_lde = _pi_poly_on_lde(circuit, public_values, rate_bits, ws=plan.ws)

            gate = gl64.add(
                gl64.add(
                    gl64.add(gl64.mul(sel[0], w[0]), gl64.mul(sel[1], w[1])),
                    gl64.mul(sel[2], gl64.mul(w[0], w[1])),
                ),
                gl64.add(gl64.add(gl64.mul(sel[3], w[2]), sel[4]), pi_lde),
            )

            ks = [np.uint64(k) for k in coset_representatives()]
            beta_u = np.uint64(beta)
            gamma_u = np.uint64(gamma)
            f_vals = gl64.ones(n_lde)
            g_vals = gl64.ones(n_lde)
            for j in range(3):
                f_vals = gl64.mul(
                    f_vals,
                    gl64.add(
                        gl64.add(w[j], gl64.mul(xs, gl64.mul(ks[j], beta_u))), gamma_u
                    ),
                )
                g_vals = gl64.mul(
                    g_vals, gl64.add(gl64.add(w[j], gl64.mul(sig[j], beta_u)), gamma_u)
                )
            copy1 = gl64.sub(gl64.mul(z_lde, f_vals), gl64.mul(z_next, g_vals))
            copy2 = gl64.mul(plan.lagrange_first, gl64.sub(z_lde, np.uint64(1)))

            alpha_sq = fext.mul(alpha, alpha)
            combined = fext.from_base(gate)
            combined = fext.add(
                combined, fext.scalar_mul(np.broadcast_to(alpha, (n_lde, 2)), copy1)
            )
            combined = fext.add(
                combined, fext.scalar_mul(np.broadcast_to(alpha_sq, (n_lde, 2)), copy2)
            )

            t_vals = fext.scalar_mul(combined, plan.zh_inv)  # (N_lde, 2)

        quotient_batch = pipe.commit_quotient(t_vals, n, QUOTIENT_CHUNKS)

        # Step 4: openings and FRI.
        zeta = pipe.ext_challenge()
        zeta_next = fext.scalar_mul(zeta, np.uint64(plan.omega))

        columns_zeta = (
            [(0, c) for c in range(8)]
            + [(1, c) for c in range(3)]
            + [(2, 0)]
            + [(3, c) for c in range(2 * QUOTIENT_CHUNKS)]
        )
        columns_next = [(2, 0)]
        openings, fri_proof = pipe.open_and_prove(
            [zeta, zeta_next], [columns_zeta, columns_next]
        )

    return PlonkProof(
        wires_cap=wires_batch.cap.copy(),
        z_cap=z_batch.cap.copy(),
        quotient_cap=quotient_batch.cap.copy(),
        public_inputs=public_values,
        openings=openings,
        fri_proof=fri_proof,
    )
