"""Plonk prover (paper Figure 1, left-to-right).

Pipeline -- each stage is one of the kernels UniZK accelerates:

1. wires commitment: ``iNTT`` + LDE ``NTT`` + Merkle tree (Figure 7's
   *Wires Commitment* node);
2. Fiat-Shamir ``beta``/``gamma`` + permutation accumulator ``Z`` via the
   chunked partial-product kernel;
3. ``alpha`` + quotient construction: vanishing-divided constraint blend
   evaluated on the LDE coset (element-wise polynomial ops);
4. ``zeta`` + batch FRI opening proof.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..field import extension as fext, gl64, goldilocks as gl
from ..fri import FriConfig, FriOpenings, PolynomialBatch, fri_prove, open_batches
from ..hashing import Challenger
from ..ntt import coset_intt, lde
from .circuit import Circuit
from .permutation import compute_z, coset_representatives, id_values, sigma_values
from .proof import CircuitData, PlonkProof

#: Quotient chunks per extension limb (degree bound 4n after division).
QUOTIENT_CHUNKS = 4


def setup(circuit: Circuit, config: FriConfig) -> CircuitData:
    """Preprocess a circuit: commit selectors and sigma polynomials."""
    pre_rows = np.concatenate([circuit.selectors, sigma_values(circuit)])
    preprocessed = PolynomialBatch.from_values(
        pre_rows, config.rate_bits, config.cap_height
    )
    return CircuitData(circuit=circuit, preprocessed=preprocessed, config=config)


def _public_input_values(circuit: Circuit, witness: np.ndarray) -> list[int]:
    wires = circuit.wire_values(witness)
    return [int(wires[0, row]) for row in circuit.public_input_rows]


def _pi_poly_on_lde(
    circuit: Circuit, public_values: list[int], rate_bits: int
) -> np.ndarray:
    """LDE values of the public-input polynomial ``-sum v_k L_rowk(x)``."""
    subgroup = np.zeros(circuit.n, dtype=np.uint64)
    for row, val in zip(circuit.public_input_rows, public_values):
        subgroup[row] = gl.neg(val)
    return lde(subgroup, rate_bits)


def _coset_vanishing(n: int, rate_bits: int) -> tuple[np.ndarray, np.ndarray]:
    """``Z_H`` values and inverses on the LDE coset (period-``blowup``)."""
    blowup = 1 << rate_bits
    n_lde = n * blowup
    g_pow_n = gl.pow_mod(gl.coset_shift(), n)
    omega_lde = gl.primitive_root_of_unity(n_lde.bit_length() - 1)
    # x^n on the coset cycles with period `blowup`.
    cycle = gl64.mul(
        gl64.powers(gl.pow_mod(omega_lde, n), blowup), np.uint64(g_pow_n)
    )
    zh_cycle = gl64.sub(cycle, np.uint64(1))
    zh = np.tile(zh_cycle, n)
    return zh, gl64.inv_fast(zh)


def _lagrange_first_on_lde(n: int, rate_bits: int) -> np.ndarray:
    """``L_1(x) = (x^n - 1) / (n (x - 1))`` on the LDE coset."""
    n_lde = n << rate_bits
    xs = gl64.mul(
        gl64.powers(gl.primitive_root_of_unity(n_lde.bit_length() - 1), n_lde),
        np.uint64(gl.coset_shift()),
    )
    zh, _ = _coset_vanishing(n, rate_bits)
    denom = gl64.mul(gl64.sub(xs, np.uint64(1)), np.uint64(n))
    return gl64.mul(zh, gl64.inv_fast(denom))


#: Salt columns appended to the wires commitment when blinding.
ZK_SALT_COLUMNS = 2


def prove(
    data: CircuitData,
    inputs: Dict[int, int],
    challenger: Challenger | None = None,
    blinding_seed: int | None = None,
) -> PlonkProof:
    """Generate a Plonk proof for the given input assignment.

    ``inputs`` maps variable indices (from ``Variable.index``) to values;
    every non-derived variable must be present.

    ``blinding_seed`` enables zero-knowledge salting (Plonky2's
    ``blinding`` flag): random salt columns join the wires commitment so
    the Merkle cap is hiding -- two proofs of the same witness with
    different seeds share no commitment material.  (Full zero knowledge
    additionally pads unused trace rows with randomness; the salt
    columns are the commitment-hiding half, and the verifier needs no
    changes because salts ride the leaves without entering any
    constraint.)  ``None`` keeps the prover deterministic.
    """
    circuit = data.circuit
    config = data.config
    n = circuit.n
    rate_bits = config.rate_bits
    challenger = challenger or Challenger()

    witness = circuit.generate_witness(inputs)
    wires = circuit.wire_values(witness)  # (3, n)
    public_values = _public_input_values(circuit, witness)

    # Step 1: wires commitment (optionally salted for zero knowledge).
    committed_wires = wires
    if blinding_seed is not None:
        salt_rng = np.random.default_rng(blinding_seed)
        salts = gl64.random((ZK_SALT_COLUMNS, n), salt_rng)
        committed_wires = np.concatenate([wires, salts])
    wires_batch = PolynomialBatch.from_values(
        committed_wires, rate_bits, config.cap_height
    )
    challenger.observe_cap(data.preprocessed.cap)
    challenger.observe_elements(np.array(public_values, dtype=np.uint64))
    challenger.observe_cap(wires_batch.cap)

    # Step 2: permutation accumulator.
    beta = challenger.get_challenge()
    gamma = challenger.get_challenge()
    ids = id_values(n)
    sigmas = sigma_values(circuit)
    z, _, _ = compute_z(wires, ids, sigmas, beta, gamma)
    z_batch = PolynomialBatch.from_values(z, rate_bits, config.cap_height)
    challenger.observe_cap(z_batch.cap)

    # Step 3: quotient polynomial on the LDE coset.
    alpha = challenger.get_ext_challenge()
    n_lde = n << rate_bits
    blowup = 1 << rate_bits
    xs = gl64.mul(
        gl64.powers(gl.primitive_root_of_unity(n_lde.bit_length() - 1), n_lde),
        np.uint64(gl.coset_shift()),
    )

    sel = data.preprocessed.values[:, 0:5].T  # (5, N_lde)
    sig = data.preprocessed.values[:, 5:8].T  # (3, N_lde)
    w = wires_batch.values.T  # (3, N_lde)
    z_lde = z_batch.values[:, 0]
    z_next = np.roll(z_lde, -blowup)
    pi_lde = _pi_poly_on_lde(circuit, public_values, rate_bits)

    gate = gl64.add(
        gl64.add(
            gl64.add(gl64.mul(sel[0], w[0]), gl64.mul(sel[1], w[1])),
            gl64.mul(sel[2], gl64.mul(w[0], w[1])),
        ),
        gl64.add(gl64.add(gl64.mul(sel[3], w[2]), sel[4]), pi_lde),
    )

    ks = [np.uint64(k) for k in coset_representatives()]
    beta_u = np.uint64(beta)
    gamma_u = np.uint64(gamma)
    f_vals = gl64.ones(n_lde)
    g_vals = gl64.ones(n_lde)
    for j in range(3):
        f_vals = gl64.mul(
            f_vals,
            gl64.add(gl64.add(w[j], gl64.mul(xs, gl64.mul(ks[j], beta_u))), gamma_u),
        )
        g_vals = gl64.mul(
            g_vals, gl64.add(gl64.add(w[j], gl64.mul(sig[j], beta_u)), gamma_u)
        )
    copy1 = gl64.sub(gl64.mul(z_lde, f_vals), gl64.mul(z_next, g_vals))
    l1 = _lagrange_first_on_lde(n, rate_bits)
    copy2 = gl64.mul(l1, gl64.sub(z_lde, np.uint64(1)))

    alpha_sq = fext.mul(alpha, alpha)
    combined = fext.from_base(gate)
    combined = fext.add(
        combined, fext.scalar_mul(np.broadcast_to(alpha, (n_lde, 2)), copy1)
    )
    combined = fext.add(
        combined, fext.scalar_mul(np.broadcast_to(alpha_sq, (n_lde, 2)), copy2)
    )

    _, zh_inv = _coset_vanishing(n, rate_bits)
    t_vals = fext.scalar_mul(combined, zh_inv)  # (N_lde, 2)

    # Split into 2 limbs x QUOTIENT_CHUNKS degree-n chunks.
    chunk_rows = []
    for limb in range(2):
        coeffs = coset_intt(t_vals[:, limb])
        for k in range(QUOTIENT_CHUNKS):
            chunk_rows.append(coeffs[k * n : (k + 1) * n])
    quotient_batch = PolynomialBatch.from_coeffs(
        np.stack(chunk_rows), rate_bits, config.cap_height
    )
    challenger.observe_cap(quotient_batch.cap)

    # Step 4: openings and FRI.
    zeta = challenger.get_ext_challenge()
    omega = gl.primitive_root_of_unity(circuit.log_n)
    zeta_next = fext.scalar_mul(zeta, np.uint64(omega))

    batches = [data.preprocessed, wires_batch, z_batch, quotient_batch]
    columns_zeta = (
        [(0, c) for c in range(8)]
        + [(1, c) for c in range(3)]
        + [(2, 0)]
        + [(3, c) for c in range(2 * QUOTIENT_CHUNKS)]
    )
    columns_next = [(2, 0)]
    openings = open_batches(batches, [zeta, zeta_next], [columns_zeta, columns_next])

    fri_proof = fri_prove(batches, openings, challenger, config)
    return PlonkProof(
        wires_cap=wires_batch.cap.copy(),
        z_cap=z_batch.cap.copy(),
        quotient_cap=quotient_batch.cap.copy(),
        public_inputs=public_values,
        openings=openings,
        fri_proof=fri_proof,
    )
