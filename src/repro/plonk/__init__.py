"""Plonk protocol: circuits, permutation argument, prover, verifier."""

from . import gadgets, gadgets_ext, recursion
from .circuit import Circuit, CircuitBuilder, Variable
from .permutation import (
    CHUNK_SIZE,
    check_copy_constraints,
    compute_z,
    id_values,
    partial_products,
    quotient_chunk_products,
    sigma_values,
)
from .plan import PlonkPlan, plan_for
from .proof import CircuitData, PlonkProof, VerifierData
from .prover import prove, setup
from .verifier import PlonkError, verify

__all__ = [
    "gadgets",
    "gadgets_ext",
    "recursion",
    "CircuitBuilder",
    "Circuit",
    "Variable",
    "CircuitData",
    "VerifierData",
    "PlonkProof",
    "PlonkPlan",
    "plan_for",
    "setup",
    "prove",
    "verify",
    "PlonkError",
    "compute_z",
    "partial_products",
    "quotient_chunk_products",
    "id_values",
    "sigma_values",
    "check_copy_constraints",
    "CHUNK_SIZE",
]
