"""Plonk proof container and setup artifacts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..fri import FriConfig, FriOpenings, FriProof, PolynomialBatch
from ..fri.proof import DIGEST_BYTES, ELEM_BYTES
from .circuit import Circuit


@dataclass
class CircuitData:
    """Setup output: the circuit plus its preprocessed commitment.

    The preprocessed batch commits the 5 selector and 3 sigma
    polynomials; its cap acts as the circuit digest both parties bind to.
    ``sigmas`` caches the permuted position labels computed during
    setup, so the prover does not re-derive them per proof.
    """

    circuit: Circuit
    preprocessed: PolynomialBatch
    config: FriConfig
    sigmas: Optional[np.ndarray] = None

    @property
    def verifier_data(self) -> "VerifierData":
        """The subset of setup data the verifier needs."""
        return VerifierData(
            preprocessed_cap=self.preprocessed.cap.copy(),
            n=self.circuit.n,
            num_public_inputs=len(self.circuit.public_input_rows),
            public_input_rows=list(self.circuit.public_input_rows),
            config=self.config,
        )


@dataclass
class VerifierData:
    """Everything the verifier must know about a circuit."""

    preprocessed_cap: np.ndarray
    n: int
    num_public_inputs: int
    public_input_rows: List[int]
    config: FriConfig


@dataclass
class PlonkProof:
    """A complete Plonk proof with FRI openings."""

    wires_cap: np.ndarray
    z_cap: np.ndarray
    quotient_cap: np.ndarray
    public_inputs: List[int]
    openings: FriOpenings
    fri_proof: FriProof

    def size_bytes(self) -> int:
        """Serialized proof size (caps + openings + FRI proof)."""
        total = 0
        for cap in (self.wires_cap, self.z_cap, self.quotient_cap):
            total += cap.shape[0] * DIGEST_BYTES
        total += len(self.public_inputs) * ELEM_BYTES
        total += int(self.openings.flat_values().size) * ELEM_BYTES
        total += self.fri_proof.size_bytes()
        return total
