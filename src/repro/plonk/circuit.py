"""Plonk circuits: gates, copy constraints, witness generation.

Follows the paper's Figure 1 exactly: a circuit is a matrix ``Q`` of
selector columns ``(q_L, q_R, q_M, q_O, q_C)`` -- one row per gate --
and a witness matrix ``W`` of wire columns ``(w_a, w_b, w_c)``.  Every
row must satisfy the gate constraint

    ``q_L*a + q_R*b + q_M*a*b + q_O*c + q_C + PI(row) = 0``

and wires carrying the same variable are tied together by copy
constraints, encoded as a permutation over the ``3n`` wire positions
(the ``id``/``sigma`` matrices of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..field import goldilocks as gl

#: Number of wire columns (a, b, c).
NUM_WIRES = 3


@dataclass(frozen=True)
class Variable:
    """A handle to a circuit value (an index into the witness)."""

    index: int


@dataclass
class Gate:
    """One circuit row: selector values plus the wired variables."""

    q_l: int
    q_r: int
    q_m: int
    q_o: int
    q_c: int
    a: Variable
    b: Variable
    c: Variable


@dataclass
class Circuit:
    """A built (frozen) circuit ready for proving.

    ``selectors`` is (5, n); ``wire_vars`` is (3, n) of variable indices;
    ``sigma`` maps each of the ``3n`` wire positions (column-major:
    position = col * n + row) to its successor under the copy-constraint
    permutation; ``public_input_rows`` lists the rows whose ``a`` wire is
    a public input.
    """

    num_vars: int
    selectors: np.ndarray
    wire_vars: np.ndarray
    sigma: np.ndarray
    public_input_rows: List[int]
    generators: List[Tuple[Callable, Tuple[int, ...], int]]

    @property
    def n(self) -> int:
        """Number of rows (a power of two)."""
        return self.selectors.shape[1]

    @property
    def log_n(self) -> int:
        """log2 of the row count."""
        return self.n.bit_length() - 1

    def generate_witness(self, inputs: Dict[int, int]) -> np.ndarray:
        """Compute all variable values from the provided input assignments.

        Generators run in insertion order (each computes one variable
        from earlier ones), mirroring Plonky2's witness generation.
        Returns the full value vector, indexed by variable.
        """
        values: List[Optional[int]] = [None] * self.num_vars
        for idx, val in inputs.items():
            values[idx] = gl.canonical(val)
        for fn, arg_vars, out_var in self.generators:
            args = []
            for v in arg_vars:
                if values[v] is None:
                    raise ValueError(f"variable {v} needed before it is set")
                args.append(values[v])
            values[out_var] = gl.canonical(fn(*args))
        missing = [i for i, v in enumerate(values) if v is None]
        if missing:
            raise ValueError(f"witness incomplete: variables {missing[:5]} unset")
        return np.array(values, dtype=np.uint64)

    def wire_values(self, witness: np.ndarray) -> np.ndarray:
        """Assemble the (3, n) wire-value matrix ``W`` from the witness."""
        return witness[self.wire_vars]

    def check_gates(self, witness: np.ndarray, public_inputs: Sequence[int]) -> bool:
        """Directly check every gate constraint (test/debug helper)."""
        w = self.wire_values(witness).tolist()
        q = self.selectors.tolist()
        pi_terms = [0] * self.n
        for row, val in zip(self.public_input_rows, public_inputs):
            pi_terms[row] = gl.canonical(-val)
        for i in range(self.n):
            total = gl.canonical(
                q[0][i] * w[0][i]
                + q[1][i] * w[1][i]
                + q[2][i] * w[0][i] * w[1][i]
                + q[3][i] * w[2][i]
                + q[4][i]
                + pi_terms[i]
            )
            if total != 0:
                return False
        return True


class CircuitBuilder:
    """Incrementally build a Plonk circuit.

    The builder records, alongside each gate, a witness *generator* so
    that :meth:`Circuit.generate_witness` can derive every internal value
    from the declared inputs -- the prover-side "fill W" step of
    Figure 1.
    """

    def __init__(self) -> None:
        self._gates: List[Gate] = []
        self._num_vars = 0
        self._generators: List[Tuple[Callable, Tuple[int, ...], int]] = []
        self._public_input_rows: List[int] = []
        self._constants: Dict[int, Variable] = {}
        self._zero: Optional[Variable] = None

    # -- variables ---------------------------------------------------------

    def add_variable(self) -> Variable:
        """Declare a fresh variable (an input: set it when proving)."""
        v = Variable(self._num_vars)
        self._num_vars += 1
        return v

    def add_virtual(self, fn: Callable, args: Sequence[Variable]) -> Variable:
        """Declare a derived variable computed by ``fn`` from ``args``."""
        v = Variable(self._num_vars)
        self._num_vars += 1
        self._generators.append((fn, tuple(a.index for a in args), v.index))
        return v

    def _zero_var(self) -> Variable:
        if self._zero is None:
            self._zero = self.constant(0)
        return self._zero

    # -- gates ---------------------------------------------------------------

    def add_gate(
        self,
        q_l: int,
        q_r: int,
        q_m: int,
        q_o: int,
        q_c: int,
        a: Variable,
        b: Variable,
        c: Variable,
    ) -> int:
        """Append a raw gate row; returns its row index."""
        self._gates.append(
            Gate(gl.canonical(q_l), gl.canonical(q_r), gl.canonical(q_m),
                 gl.canonical(q_o), gl.canonical(q_c), a, b, c)
        )
        return len(self._gates) - 1

    def constant(self, value: int) -> Variable:
        """A variable pinned to a constant: ``c = value``."""
        value %= gl.P
        if value in self._constants:
            return self._constants[value]
        out = self.add_virtual(lambda v=value: v, [])
        dummy = out  # a/b unused; wire them to out to avoid free wires
        self.add_gate(0, 0, 0, gl.P - 1, value, dummy, dummy, out)
        self._constants[value] = out
        return out

    def add(self, x: Variable, y: Variable) -> Variable:
        """Gate computing ``out = x + y``."""
        out = self.add_virtual(gl.add, [x, y])
        self.add_gate(1, 1, 0, gl.P - 1, 0, x, y, out)
        return out

    def sub(self, x: Variable, y: Variable) -> Variable:
        """Gate computing ``out = x - y``."""
        out = self.add_virtual(gl.sub, [x, y])
        self.add_gate(1, gl.P - 1, 0, gl.P - 1, 0, x, y, out)
        return out

    def mul(self, x: Variable, y: Variable) -> Variable:
        """Gate computing ``out = x * y`` (the paper's ``x2 * x3`` gate)."""
        out = self.add_virtual(gl.mul, [x, y])
        self.add_gate(0, 0, 1, gl.P - 1, 0, x, y, out)
        return out

    def mul_add(self, x: Variable, y: Variable, z: Variable) -> Variable:
        """Two gates computing ``out = x * y + z``."""
        prod = self.mul(x, y)
        return self.add(prod, z)

    def assert_equal(self, x: Variable, y: Variable) -> None:
        """Copy-constrain two variables to be equal (same colour in W)."""
        zero = self._zero_var()
        # Gate: x - y = 0, with c wired to a zero constant.
        self.add_gate(1, gl.P - 1, 0, gl.P - 1, 0, x, y, zero)

    def assert_constant(self, x: Variable, value: int) -> None:
        """Constrain ``x == value`` (the paper's ``x_6 = 99`` output row)."""
        zero = self._zero_var()
        self.add_gate(1, 0, 0, 0, gl.canonical(-value), x, zero, zero)

    def public_input(self) -> Variable:
        """Declare a public input (enforced via the PI polynomial)."""
        v = self.add_variable()
        zero = self._zero_var()
        row = self.add_gate(1, 0, 0, 0, 0, v, zero, zero)
        self._public_input_rows.append(row)
        return v

    # -- building --------------------------------------------------------------

    def build(self, min_rows: int = 4) -> Circuit:
        """Freeze into a :class:`Circuit`, padding rows to a power of two."""
        zero = self._zero_var()  # ensure a zero exists for padding gates
        n_gates = len(self._gates)
        n = max(min_rows, 1 << max(2, (n_gates - 1).bit_length() if n_gates else 2))
        while n < n_gates:
            n <<= 1
        selectors = np.zeros((5, n), dtype=np.uint64)
        wire_vars = np.zeros((NUM_WIRES, n), dtype=np.int64)
        for i, g in enumerate(self._gates):
            selectors[:, i] = (g.q_l, g.q_r, g.q_m, g.q_o, g.q_c)
            wire_vars[:, i] = (g.a.index, g.b.index, g.c.index)
        # Padding rows: all-zero selectors, wires tied to the zero constant.
        for i in range(n_gates, n):
            wire_vars[:, i] = (zero.index, zero.index, zero.index)

        sigma = _build_sigma(wire_vars, n)
        return Circuit(
            num_vars=self._num_vars,
            selectors=selectors,
            wire_vars=wire_vars,
            sigma=sigma,
            public_input_rows=list(self._public_input_rows),
            generators=list(self._generators),
        )


def _build_sigma(wire_vars: np.ndarray, n: int) -> np.ndarray:
    """Cycle-link all positions holding the same variable.

    Position numbering is column-major (``pos = col * n + row``).  The
    permutation cyclically shifts each variable's position list, which is
    the standard Plonk encoding of "these cells are equal".
    """
    positions: Dict[int, List[int]] = {}
    for col in range(NUM_WIRES):
        for row in range(n):
            var = int(wire_vars[col, row])
            positions.setdefault(var, []).append(col * n + row)
    sigma = np.arange(NUM_WIRES * n, dtype=np.int64)
    for pos_list in positions.values():
        if len(pos_list) > 1:
            for i, pos in enumerate(pos_list):
                sigma[pos] = pos_list[(i + 1) % len(pos_list)]
    return sigma
