"""In-circuit gadgets: Poseidon, Merkle paths, selection, bits.

Recursive proof aggregation (paper Sections 2.2 and 7.4) works by
expressing a proof *verifier* as a circuit.  The dominant cost of a
FRI verifier is Poseidon hashing (Merkle paths, the transcript), so the
two gadgets here -- an in-circuit Poseidon permutation and an
in-circuit Merkle-path check -- are the substrate the recursion cost
model stands on.  The gate counts they produce also ground the
fixed-size recursion circuit parameters used by Table 5.

Gadgets build on the plain :class:`CircuitBuilder` gate set; each
returns circuit variables whose generated witness values equal the
reference implementation (property-tested).

Note on gate density: with vanilla 3-wire Plonk gates one permutation
costs ~5000 rows.  Plonky2 reaches its small fixed recursion circuits
(~2^12-2^15 rows) with width-135 *custom gates* that evaluate an entire
Poseidon round per row -- the same width-135 rows our paper-scale
performance parameters assume.  The gadgets here demonstrate the
functionality; the recursion *cost model* (``RECURSION_PARAMS``) uses
the wide-gate geometry.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..field import goldilocks as gl
from ..hashing.constants import WIDTH, mds_matrix, round_constants
from ..hashing.optimized import optimized_params
from .circuit import CircuitBuilder, Variable


def select(builder: CircuitBuilder, bit: Variable, a: Variable, b: Variable) -> Variable:
    """Return ``bit ? a : b`` (``bit`` must be boolean-constrained).

    ``out = b + bit * (a - b)`` -- two gates.
    """
    diff = builder.sub(a, b)
    scaled = builder.mul(bit, diff)
    return builder.add(b, scaled)


def assert_boolean(builder: CircuitBuilder, bit: Variable) -> None:
    """Constrain ``bit * (bit - 1) == 0``."""
    zero = builder.constant(0)
    sq = builder.mul(bit, bit)
    diff = builder.sub(sq, bit)
    builder.assert_equal(diff, zero)


def split_bits(builder: CircuitBuilder, value: Variable, num_bits: int) -> List[Variable]:
    """Decompose ``value`` into ``num_bits`` boolean-constrained bits.

    Bits are witness inputs derived by a generator; the gadget
    constrains booleanity and the weighted recomposition.
    """
    bits = []
    for i in range(num_bits):
        bit = builder.add_virtual(lambda v, i=i: (v >> i) & 1, [value])
        assert_boolean(builder, bit)
        bits.append(bit)
    # Recompose: sum bits[i] * 2^i == value.
    acc = builder.constant(0)
    for i in range(num_bits):
        coeff = builder.constant(1 << i)
        term = builder.mul(bits[i], coeff)
        acc = builder.add(acc, term)
    builder.assert_equal(acc, value)
    return bits


def _linear_combination(
    builder: CircuitBuilder, terms: Sequence[Tuple[Variable, int]]
) -> Variable:
    """Gate chain computing ``sum coeff * var``."""
    acc = builder.constant(0)
    for var, coeff in terms:
        scaled = builder.mul(var, builder.constant(coeff))
        acc = builder.add(acc, scaled)
    return acc


def _pow7(builder: CircuitBuilder, x: Variable) -> Variable:
    """Four multiply gates computing ``x^7``."""
    x2 = builder.mul(x, x)
    x3 = builder.mul(x2, x)
    x4 = builder.mul(x2, x2)
    return builder.mul(x4, x3)


def poseidon_permutation(
    builder: CircuitBuilder,
    state: Sequence[Variable],
    full_rounds: int | None = None,
    partial_rounds: int | None = None,
) -> List[Variable]:
    """In-circuit Poseidon permutation (optimised HADES form).

    With default round counts this is the real permutation (witness
    values equal :func:`repro.hashing.permute`); reduced counts exist
    for fast end-to-end proving tests and scale the same way.
    """
    if len(state) != WIDTH:
        raise ValueError(f"state must have {WIDTH} variables")
    params = optimized_params()
    full_rc, _ = round_constants()
    mds = mds_matrix()
    n_full = 8 if full_rounds is None else full_rounds
    n_partial = len(params.rounds) if partial_rounds is None else partial_rounds
    if n_full % 2:
        raise ValueError("full_rounds must be even (split around partials)")
    half = n_full // 2
    state = list(state)

    def full_round(state: List[Variable], r: int) -> List[Variable]:
        sboxed = []
        for lane in range(WIDTH):
            shifted = builder.add(state[lane], builder.constant(int(full_rc[r][lane])))
            sboxed.append(_pow7(builder, shifted))
        return [
            _linear_combination(
                builder, [(sboxed[i], int(mds[i, j])) for i in range(WIDTH)]
            )
            for j in range(WIDTH)
        ]

    for r in range(half):
        state = full_round(state, r)

    # Pre-partial: add constants, multiply by the lane-0-preserving matrix.
    state = [
        builder.add(state[i], builder.constant(int(params.pre_constants[i])))
        for i in range(WIDTH)
    ]
    pre = params.pre_matrix
    state = [
        _linear_combination(builder, [(state[i], int(pre[i, j])) for i in range(WIDTH)])
        for j in range(WIDTH)
    ]

    # Partial rounds with the sparse matrices.
    for rnd in params.rounds[:n_partial]:
        lane0 = _pow7(builder, state[0])
        lane0 = builder.add(lane0, builder.constant(rnd.post_constant))
        out0_terms = [(lane0, rnd.m00)] + [
            (state[i + 1], int(rnd.col_hat[i])) for i in range(WIDTH - 1)
        ]
        out0 = _linear_combination(builder, out0_terms)
        rest = []
        for j in range(WIDTH - 1):
            scaled = builder.mul(lane0, builder.constant(int(rnd.row[j])))
            rest.append(builder.add(scaled, state[j + 1]))
        state = [out0] + rest

    for r in range(half, n_full):
        state = full_round(state, r)
    return state


def poseidon_two_to_one(
    builder: CircuitBuilder,
    left: Sequence[Variable],
    right: Sequence[Variable],
    **round_kwargs,
) -> List[Variable]:
    """In-circuit Merkle two-to-one compression: digest of two digests."""
    if len(left) != 4 or len(right) != 4:
        raise ValueError("digests are 4 variables each")
    zero = builder.constant(0)
    state = list(left) + list(right) + [zero] * 4
    out = poseidon_permutation(builder, state, **round_kwargs)
    return out[:4]


def merkle_verify(
    builder: CircuitBuilder,
    leaf_digest: Sequence[Variable],
    index_bits: Sequence[Variable],
    siblings: Sequence[Sequence[Variable]],
    root: Sequence[Variable],
    **round_kwargs,
) -> None:
    """Constrain a Merkle authentication path inside the circuit.

    ``index_bits`` (boolean-constrained, LSB first) steer which side the
    running digest takes at each level, using :func:`select`; the final
    digest is copy-constrained to ``root``.  This is the core gadget of
    a recursive FRI verifier.
    """
    if len(index_bits) != len(siblings):
        raise ValueError("one index bit per tree level")
    digest = list(leaf_digest)
    for bit, sibling in zip(index_bits, siblings):
        assert_boolean(builder, bit)
        left = [select(builder, bit, sibling[k], digest[k]) for k in range(4)]
        right = [select(builder, bit, digest[k], sibling[k]) for k in range(4)]
        digest = poseidon_two_to_one(builder, left, right, **round_kwargs)
    for k in range(4):
        builder.assert_equal(digest[k], root[k])
