"""The Plonk permutation argument (copy constraints).

Implements Figure 1's copy-constraint machinery:

* ``id`` values ``k_j * omega^i`` label the 3n wire positions with
  distinct field elements (columns use coset representatives
  ``k_j = g**j`` so the three labelled sets never collide);
* ``sigma`` polynomials carry the copy-constraint permutation;
* the running product ``Z`` with
  ``Z(w^(i+1)) = Z(w^i) * f(w^i) / g(w^i)`` certifies ``f == g`` as
  multisets, where ``f``/``g`` blend wires with ``id``/``sigma`` under
  the verifier randomness ``beta``, ``gamma``.

``Z`` is computed through the paper's *partial products* kernel
(Equations (1) and (2)): the quotients ``q[i] = f[i]/g[i]`` are grouped
into 8-element chunk products ``h``, whose prefix products give ``Z`` --
the exact computation UniZK maps with its three-step group scheme
(Figure 6).  A direct cumulative product cross-checks it in the tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..field import gl64, goldilocks as gl
from .circuit import NUM_WIRES, Circuit

#: Chunk size of the quotient partial products (paper Equation (1)).
CHUNK_SIZE = 8


def coset_representatives() -> list[int]:
    """The ``k_j`` column labels: powers of the group generator."""
    g = gl.multiplicative_generator()
    return [gl.pow_mod(g, j) for j in range(NUM_WIRES)]


def id_values(n: int) -> np.ndarray:
    """The (3, n) matrix of position labels ``k_j * omega^i``."""
    omega = gl.primitive_root_of_unity(n.bit_length() - 1)
    base = gl64.powers(omega, n)
    ks = coset_representatives()
    return np.stack([gl64.mul(base, np.uint64(k)) for k in ks])


def sigma_values(circuit: Circuit) -> np.ndarray:
    """The (3, n) matrix of permuted labels ``sigma_j(omega^i)``."""
    n = circuit.n
    ids = id_values(n).reshape(-1)  # column-major position -> label
    permuted = ids[circuit.sigma]
    return permuted.reshape(NUM_WIRES, n)


def blend(
    wires: np.ndarray, labels: np.ndarray, beta: int, gamma: int
) -> np.ndarray:
    """Per-row product ``prod_j (w_j + beta * label_j + gamma)``: shape (n,)."""
    terms = gl64.add(
        gl64.add(wires, gl64.mul(labels, np.uint64(beta))), np.uint64(gamma)
    )
    out = terms[0]
    for j in range(1, terms.shape[0]):
        out = gl64.mul(out, terms[j])
    return out


def quotient_chunk_products(quotients: np.ndarray, chunk: int = CHUNK_SIZE) -> np.ndarray:
    """Equation (1): ``h[i] = prod of each ``chunk``-slice of q``."""
    n = quotients.shape[0]
    if n % chunk:
        raise ValueError("row count must be a multiple of the chunk size")
    chunks = quotients.reshape(n // chunk, chunk)
    out = chunks[:, 0]
    for j in range(1, chunk):
        out = gl64.mul(out, chunks[:, j])
    return out


def partial_products(h: np.ndarray) -> np.ndarray:
    """Equation (2): prefix products ``PP[i] = PP[i-1] * h[i]``.

    Sequential in nature -- this is the dependency chain UniZK breaks
    with its three-step group mapping (emulated and cycle-modelled in
    :mod:`repro.mapping.poly_mapping`).
    """
    out = np.empty_like(h)
    acc = 1
    for i, v in enumerate(h.tolist()):
        acc = gl.mul(acc, v)
        out[i] = acc
    return out


def compute_z(
    wires: np.ndarray,
    ids: np.ndarray,
    sigmas: np.ndarray,
    beta: int,
    gamma: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The permutation accumulator ``Z`` over the subgroup.

    Returns ``(z, f, g)`` where ``z[0] = 1`` and
    ``z[i] = prod_{t<i} f[t]/g[t]`` -- computed via the chunked
    partial-product kernel plus an intra-chunk sweep, exactly the
    dataflow of paper Section 5.4.
    """
    n = wires.shape[1]
    chunk = CHUNK_SIZE if n % CHUNK_SIZE == 0 else n
    f = blend(wires, ids, beta, gamma)
    g = blend(wires, sigmas, beta, gamma)
    quotients = gl64.mul(f, gl64.inv_fast(g))
    # Prefix products of all quotients: chunk, three-step, then stitch.
    h = quotient_chunk_products(quotients, chunk)
    pp = partial_products(h)
    # Expand back: running product inside each chunk, scaled by PP of the
    # previous chunk.
    run = np.empty(n, dtype=np.uint64)
    chunks = quotients.reshape(n // chunk, chunk)
    intra = chunks.copy()
    for j in range(1, chunk):
        intra[:, j] = gl64.mul(intra[:, j - 1], chunks[:, j])
    scale = np.concatenate([np.ones(1, dtype=np.uint64), pp[:-1]])
    run = gl64.mul(intra, scale[:, None]).reshape(n)
    z = np.concatenate([np.ones(1, dtype=np.uint64), run[:-1]])
    return z, f, g


def check_copy_constraints(circuit: Circuit, witness: np.ndarray) -> bool:
    """Directly verify that permuted positions carry equal values."""
    wires = circuit.wire_values(witness).reshape(-1)
    return bool(np.array_equal(wires, wires[circuit.sigma]))
