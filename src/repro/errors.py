"""Shared typed errors for registry lookups.

Every user-facing "unknown X" failure -- an unknown workload name, an
unknown proof protocol -- flows through :class:`UnknownEntryError`, so
the CLI and the service front-end produce one consistent message shape
(``unknown <kind> <name> (choose from: ...)``) sourced from the actual
registry contents instead of hand-maintained per-call-site lists.

:class:`UnknownWorkloadError` additionally subclasses :class:`KeyError`
and :class:`UnknownEntryError` subclasses :class:`ValueError`, so code
written against the historical ``by_name`` / ``JobSpec`` error
contracts keeps working unchanged.
"""

from __future__ import annotations

from typing import Sequence


class UnknownEntryError(ValueError):
    """An unknown name was looked up in a registry."""

    #: What kind of registry this error reports on ("workload", ...).
    entry_kind = "entry"

    def __init__(self, name: str, choices: Sequence[str]) -> None:
        self.name = name
        self.choices = tuple(choices)
        message = (
            f"unknown {self.entry_kind} {name!r} "
            f"(choose from: {', '.join(self.choices)})"
        )
        super().__init__(message)
        self._message = message

    def __str__(self) -> str:  # KeyError.__str__ would repr-quote the message
        return self._message


class UnknownWorkloadError(UnknownEntryError, KeyError):
    """An unknown workload name (also a ``KeyError`` for old callers)."""

    entry_kind = "workload"


class UnknownProtocolError(UnknownEntryError):
    """An unknown proof-system name."""

    entry_kind = "protocol"
