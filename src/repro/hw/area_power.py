"""Area/power model reproducing and scaling paper Table 2.

The paper synthesises the RTL in ASAP7 and models SRAM with FN-CACTI;
neither flow is available here, so per-component unit costs are
*calibrated to Table 2's totals* and exposed as scaling formulas -- the
point of this module is that changing the configuration (VSA count,
scratchpad size, PHY count) changes area and power the way the real
design would, and the default configuration lands exactly on Table 2.

Calibration (from Table 2 at the default config):

====================  ==========  =========
component             area (mm2)  power (W)
====================  ==========  =========
32 VSAs                 21.3        58.0
8 MB scratchpad          5.0         1.0
twiddle generator        0.8         2.6
transpose buffer         0.9         3.1
2 HBM PHYs              29.8        31.7
total                   57.8        96.4
====================  ==========  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .config import DEFAULT_CONFIG, HwConfig

#: Unit costs derived from Table 2 at the default configuration.
_VSA_AREA_MM2 = 21.3 / 32
_VSA_POWER_W = 58.0 / 32
_SPAD_AREA_PER_MB = 5.0 / 8
_SPAD_POWER_PER_MB = 1.0 / 8
_TWIDDLE_AREA_PER_MUL = 0.8 / 8
_TWIDDLE_POWER_PER_MUL = 2.6 / 8
_TRANSPOSE_AREA_PER_KB = 0.9 / 2.0  # 16x16 x 8 B = 2 KB
_TRANSPOSE_POWER_PER_KB = 3.1 / 2.0
_PHY_AREA_MM2 = 29.8 / 2
_PHY_POWER_W = 31.7 / 2
#: Bandwidth served by one HBM2e PHY (GB/s).
_PHY_BANDWIDTH_GBPS = 500.0


@dataclass(frozen=True)
class ComponentCost:
    """Area and power of one chip component."""

    name: str
    area_mm2: float
    power_w: float


@dataclass(frozen=True)
class ChipBudget:
    """Full area/power breakdown (paper Table 2)."""

    components: List[ComponentCost]

    @property
    def total_area_mm2(self) -> float:
        """Total die area."""
        return sum(c.area_mm2 for c in self.components)

    @property
    def total_power_w(self) -> float:
        """Total power."""
        return sum(c.power_w for c in self.components)

    def as_rows(self) -> List[tuple[str, float, float]]:
        """(name, area, power) rows plus the total, for table printing."""
        rows = [(c.name, c.area_mm2, c.power_w) for c in self.components]
        rows.append(("Total", self.total_area_mm2, self.total_power_w))
        return rows


def num_phys(config: HwConfig) -> int:
    """HBM PHYs needed to supply the configured bandwidth."""
    return max(1, -(-int(config.mem_bandwidth_gbps) // int(_PHY_BANDWIDTH_GBPS)))


def chip_budget(config: HwConfig = DEFAULT_CONFIG) -> ChipBudget:
    """Compute the area/power breakdown for a configuration.

    VSA cost scales with PE count (relative to the default 12x12);
    scratchpad with capacity; transpose buffer with its footprint;
    PHY count with bandwidth.
    """
    pe_scale = (config.vsa_rows * config.vsa_cols) / 144
    vsas = ComponentCost(
        name=f"{config.num_vsas} VSAs",
        area_mm2=_VSA_AREA_MM2 * config.num_vsas * pe_scale,
        power_w=_VSA_POWER_W * config.num_vsas * pe_scale,
    )
    spad = ComponentCost(
        name=f"{config.scratchpad_mb:g} MB scratchpad",
        area_mm2=_SPAD_AREA_PER_MB * config.scratchpad_mb,
        power_w=_SPAD_POWER_PER_MB * config.scratchpad_mb,
    )
    twiddle = ComponentCost(
        name="Twiddle factor generator",
        area_mm2=_TWIDDLE_AREA_PER_MUL * config.twiddle_multipliers,
        power_w=_TWIDDLE_POWER_PER_MUL * config.twiddle_multipliers,
    )
    transpose_kb = config.transpose_dim * config.transpose_dim * 8 / 1024
    transpose = ComponentCost(
        name="Transpose buffer",
        area_mm2=_TRANSPOSE_AREA_PER_KB * transpose_kb,
        power_w=_TRANSPOSE_POWER_PER_KB * transpose_kb,
    )
    phys = num_phys(config)
    phy = ComponentCost(
        name=f"{phys} HBM PHYs",
        area_mm2=_PHY_AREA_MM2 * phys,
        power_w=_PHY_POWER_W * phys,
    )
    return ChipBudget(components=[vsas, spad, twiddle, transpose, phy])
