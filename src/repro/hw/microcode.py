"""Cycle-stepped micro-coded PE-grid emulator.

The mapping strategies of Section 5 ultimately compile to *static
per-PE schedules*: every cycle, each PE reads its neighbour latches,
fires at most one multiply and one add/sub, and drives its own output
latches.  This module implements that machine faithfully enough to
execute real kernel schedules at PE granularity -- it is the
reproduction's stand-in for the paper's RTL validation: the high-level
mapping emulators (:mod:`repro.mapping`) are checked against reference
maths, and the grid schedules here are checked against the mapping
emulators, closing the chain from algorithm to (modelled) silicon.

Machine model
-------------

* a ``rows x cols`` grid of PEs;
* links: every PE drives ``right`` and ``down`` latches (classic
  systolic), and PEs in designated columns additionally drive an ``up``
  latch (the paper's reverse links);
* per-cycle, per-PE: one instruction, reading up to two operands from
  {register file, incoming latches, immediate} and writing the result
  to the register file and/or one or more outgoing latches;
* latch discipline: reads observe the value written in the *previous*
  cycle (single-cycle link latency), which is what makes wavefront
  skews real.

Programs are dictionaries ``(row, col) -> [ops per cycle]`` where each
cycle entry is one :class:`Instr` or a tuple of them; shorter programs
idle afterwards.  Per cycle a PE may fire at most one multiplier
instruction (``mul``/``mac``) and two adder instructions
(``add``/``sub``/``mov``) -- the PE's real functional units -- and each
outgoing latch may be driven by at most one instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..field import goldilocks as gl

#: Operand sources.
SRC_KINDS = ("reg", "in_left", "in_top", "in_bottom", "imm", "zero")
#: Instruction opcodes.  ``mac`` is the PE's chained multiply-add
#: (``a * b + c``), using the multiplier and one adder in the same cycle
#: (paper Section 5.4: "chained operations to reduce register access
#: pressure").
OPCODES = ("mul", "add", "sub", "mov", "mac", "nop")


@dataclass(frozen=True)
class Src:
    """An operand source."""

    kind: str
    value: int = 0  # register index or immediate

    def __post_init__(self) -> None:
        if self.kind not in SRC_KINDS:
            raise ValueError(f"bad source kind {self.kind!r}")


def reg(i: int) -> Src:
    """Register-file operand."""
    return Src("reg", i)


def imm(v: int) -> Src:
    """Immediate operand."""
    return Src("imm", gl.canonical(v))


IN_LEFT = Src("in_left")
IN_TOP = Src("in_top")
IN_BOTTOM = Src("in_bottom")
ZERO = Src("zero")


@dataclass(frozen=True)
class Instr:
    """One PE instruction for one cycle."""

    op: str
    a: Src = ZERO
    b: Src = ZERO
    #: third operand, used by ``mac`` only
    c: Src = ZERO
    #: destination register (None = don't write the register file)
    dst_reg: Optional[int] = None
    #: outgoing latches to drive with the result
    out_right: bool = False
    out_down: bool = False
    out_up: bool = False

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise ValueError(f"bad opcode {self.op!r}")


NOP = Instr("nop")

#: Multiplier-using opcodes (at most one per PE per cycle).
_MUL_OPS = ("mul", "mac")
#: Adder-slot opcodes (at most two per PE per cycle; mov uses a bypass).
_ADD_OPS = ("add", "sub", "mov")


class ScheduleError(ValueError):
    """A schedule failed static validation at program load.

    Carries the :class:`repro.analysis.findings.Finding` records of the
    sanitizer; the message lists each with its rule id.
    """

    def __init__(self, findings) -> None:
        self.findings = list(findings)
        lines = [f.format() for f in self.findings]
        super().__init__(
            "schedule failed static validation "
            f"({len(lines)} finding{'s' if len(lines) != 1 else ''}):\n  "
            + "\n  ".join(lines)
        )


def _normalise_cycle(entry) -> tuple:
    # Runtime backstop for ``validate=False`` runs; messages carry the
    # same rule ids the load-time sanitizer reports.
    ops = entry if isinstance(entry, tuple) else (entry,)
    muls = sum(1 for i in ops if i.op in _MUL_OPS)
    adds = sum(1 for i in ops if i.op in _ADD_OPS)
    if muls > 1:
        raise ValueError(
            "[sched.mul-overcommit] a PE has one multiplier: "
            "at most one mul/mac per cycle"
        )
    if adds > 2:
        raise ValueError(
            "[sched.add-overcommit] a PE has two adders: "
            "at most two add/sub/mov per cycle"
        )
    for latch in ("out_right", "out_down", "out_up"):
        if sum(1 for i in ops if getattr(i, latch)) > 1:
            raise ValueError(
                f"[sched.latch-double-drive] latch {latch} driven by "
                "multiple instructions"
            )
    return ops


class GridEmulator:
    """Execute static per-PE programs cycle by cycle.

    With ``validate=True`` (the default) every program handed to
    :meth:`run` is first passed through the schedule sanitizer
    (:mod:`repro.analysis.sanitizer`); hazards raise a
    :class:`ScheduleError` naming the violated rule ids before any
    cycle executes.  ``validate=False`` opts out and falls back to the
    runtime backstop checks only.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        reverse_link_cols: Sequence[int] = (),
        register_words: int = 64,
        validate: bool = True,
    ) -> None:
        self.rows = rows
        self.cols = cols
        self.reverse_link_cols = set(reverse_link_cols)
        self.register_words = register_words
        self.validate = validate
        self.reset()

    def reset(self) -> None:
        """Clear registers, latches, and traces."""
        self.regs: Dict[Tuple[int, int], List[int]] = {
            (r, c): [0] * self.register_words
            for r in range(self.rows)
            for c in range(self.cols)
        }
        # Latches currently visible to consumers.
        self._right: Dict[Tuple[int, int], int] = {}
        self._down: Dict[Tuple[int, int], int] = {}
        self._up: Dict[Tuple[int, int], int] = {}
        #: stream of values that left the grid at the right boundary:
        #: (cycle, row, value)
        self.right_outputs: List[Tuple[int, int, int]] = []
        #: values that left at the top boundary via reverse links
        self.top_outputs: List[Tuple[int, int, int]] = []
        self.cycles_run = 0
        self.mul_count = 0
        self.add_count = 0
        #: ``((row, col), reg_index)`` pairs seeded via :meth:`preload`;
        #: the sanitizer's use-before-def rule keys off this set.
        self.preloaded_regs: set = set()

    def preload(self, pos: Tuple[int, int], idx: int, value: int) -> None:
        """Seed a register before cycle 0 (e.g. stationary weights).

        Unlike poking ``self.regs`` directly, this records the register
        as *defined*, which arms the sanitizer's
        ``sched.reg-use-before-def`` rule for subsequent :meth:`run`
        calls: any register read the schedule performs must then be
        covered by a preload or an earlier in-program write.
        """
        self.regs[pos][idx] = gl.canonical(value)
        self.preloaded_regs.add((pos, idx))

    # -- execution ------------------------------------------------------------

    def run(
        self,
        programs: Dict[Tuple[int, int], List[Instr]],
        left_inputs: Optional[Dict[int, List[int]]] = None,
        top_inputs: Optional[Dict[int, List[int]]] = None,
        num_cycles: Optional[int] = None,
    ) -> int:
        """Run until every program (and input stream) is exhausted.

        ``left_inputs[row]`` feeds column 0's ``in_left`` latch;
        ``top_inputs[col]`` feeds row 0's ``in_top`` latch -- both model
        the scratchpad driving the array boundary, one value per cycle.
        Returns cycles executed.
        """
        left_inputs = left_inputs or {}
        top_inputs = top_inputs or {}
        if self.validate:
            # Late import: repro.analysis.sanitizer imports this module.
            from ..analysis.sanitizer import sanitize, spec_for_emulator

            findings = sanitize(
                spec_for_emulator(
                    self, programs, left_inputs, top_inputs, num_cycles
                )
            )
            if findings:
                raise ScheduleError(findings)
        for (r, c) in programs:
            if not (0 <= r < self.rows and 0 <= c < self.cols):
                raise ValueError(f"[sched.pe-oob] program for PE outside grid: {(r, c)}")
        horizon = num_cycles
        if horizon is None:
            horizon = max(
                [len(p) for p in programs.values()]
                + [len(s) for s in left_inputs.values()]
                + [len(s) for s in top_inputs.values()]
                + [1]
            )
        for cycle in range(horizon):
            self._step(programs, left_inputs, top_inputs, cycle)
        self.cycles_run += horizon
        return horizon

    def _read(
        self,
        pos: Tuple[int, int],
        src: Src,
        left_in: Optional[int],
        top_in: Optional[int],
    ) -> int:
        r, c = pos
        if src.kind == "zero":
            return 0
        if src.kind == "imm":
            return src.value
        if src.kind == "reg":
            return self.regs[pos][src.value]
        if src.kind == "in_left":
            if c == 0:
                return left_in if left_in is not None else 0
            return self._right.get((r, c - 1), 0)
        if src.kind == "in_top":
            if r == 0:
                return top_in if top_in is not None else 0
            return self._down.get((r - 1, c), 0)
        if src.kind == "in_bottom":
            return self._up.get((r + 1, c), 0) if r + 1 < self.rows else 0
        raise AssertionError(src.kind)

    def _step(
        self,
        programs: Dict[Tuple[int, int], List[Instr]],
        left_inputs: Dict[int, List[int]],
        top_inputs: Dict[int, List[int]],
        cycle: int,
    ) -> None:
        new_right: Dict[Tuple[int, int], int] = {}
        new_down: Dict[Tuple[int, int], int] = {}
        new_up: Dict[Tuple[int, int], int] = {}
        writes: List[Tuple[Tuple[int, int], int, int]] = []
        for pos, program in programs.items():
            if cycle >= len(program):
                continue
            ops = _normalise_cycle(program[cycle])
            r, c = pos
            left_stream = left_inputs.get(r)
            left_val = None
            if left_stream is not None and c == 0 and cycle < len(left_stream):
                left_val = left_stream[cycle]
            top_stream = top_inputs.get(c)
            top_val = None
            if top_stream is not None and r == 0 and cycle < len(top_stream):
                top_val = top_stream[cycle]
            for instr in ops:
                if instr.op == "nop":
                    continue
                a = self._read(pos, instr.a, left_val, top_val)
                b = self._read(pos, instr.b, left_val, top_val)
                if instr.op == "mul":
                    result = gl.mul(a, b)
                    self.mul_count += 1
                elif instr.op == "add":
                    result = gl.add(a, b)
                    self.add_count += 1
                elif instr.op == "sub":
                    result = gl.sub(a, b)
                    self.add_count += 1
                elif instr.op == "mac":
                    cc = self._read(pos, instr.c, left_val, top_val)
                    result = gl.add(gl.mul(a, b), cc)
                    self.mul_count += 1
                    self.add_count += 1
                else:  # mov
                    result = a
                if instr.dst_reg is not None:
                    writes.append((pos, instr.dst_reg, result))
                if instr.out_right:
                    if c + 1 == self.cols:
                        self.right_outputs.append((cycle, r, result))
                    else:
                        new_right[pos] = result
                if instr.out_down:
                    new_down[pos] = result
                if instr.out_up:
                    if c not in self.reverse_link_cols:
                        raise ValueError(
                            f"[sched.reverse-link] PE {pos}: column {c} "
                            "has no reverse link"
                        )
                    if r == 0:
                        self.top_outputs.append((cycle, c, result))
                    else:
                        new_up[pos] = result
        for pos, idx, val in writes:
            self.regs[pos][idx] = val
        # Latches update after every PE has read the old values.
        self._right = new_right
        self._down = new_down
        self._up = new_up
