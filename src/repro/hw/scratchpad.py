"""Scratchpad model: double buffering and LRU replacement.

UniZK's global scratchpad hides DRAM latency with double buffering and
keeps element-wise operands on-chip (paper Sections 4 and 5.4: LRU
replacement, compiler-directed vector tiling, and hand-crafted pinning
for critical regions).  This module provides:

* :class:`LruScratchpad` -- a functional line-granular LRU cache used to
  measure hit rates of poly-op access traces;
* :func:`tile_plan` -- the compiler's tiling calculation: how many
  operand vectors fit on-chip and the resulting DRAM traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


class LruScratchpad:
    """Line-granular LRU cache with hit/miss accounting."""

    def __init__(self, capacity_bytes: int, line_bytes: int = 64) -> None:
        if capacity_bytes < line_bytes:
            raise ValueError("capacity must hold at least one line")
        self.capacity_lines = capacity_bytes // line_bytes
        self.line_bytes = line_bytes
        self._lines: OrderedDict[int, bool] = OrderedDict()
        self._pinned: set[int] = set()
        self.hits = 0
        self.misses = 0

    def access(self, addr: int, size: int = 8) -> None:
        """Touch ``[addr, addr + size)``; updates hit/miss counters."""
        first = addr // self.line_bytes
        last = (addr + size - 1) // self.line_bytes
        for line in range(first, last + 1):
            if line in self._lines:
                self.hits += 1
                self._lines.move_to_end(line)
            else:
                self.misses += 1
                self._lines[line] = True
                self._evict_if_needed()

    def pin(self, addr: int, size: int) -> None:
        """Pin a range (the compiler's hand-crafted policy for wire data)."""
        first = addr // self.line_bytes
        last = (addr + size - 1) // self.line_bytes
        for line in range(first, last + 1):
            self._pinned.add(line)
            if line not in self._lines:
                self.misses += 1
                self._lines[line] = True
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        while len(self._lines) > self.capacity_lines:
            for line in self._lines:
                if line not in self._pinned:
                    del self._lines[line]
                    break
            else:
                raise RuntimeError("scratchpad over-pinned")

    @property
    def hit_rate(self) -> float:
        """Fraction of line touches served on-chip."""
        total = self.hits + self.misses
        return self.hits / total if total else 1.0


@dataclass(frozen=True)
class TilePlan:
    """Output of the compiler's vector-tiling analysis."""

    tile_elems: int
    num_tiles: int
    dram_bytes: int
    reuse_factor: float


def tile_plan(
    vector_len: int,
    num_operands: int,
    num_ops: int,
    scratchpad_bytes: int,
    elem_bytes: int = 8,
) -> TilePlan:
    """Plan tiling for a chain of element-wise operations.

    ``num_operands`` distinct vectors feed ``num_ops`` element-wise
    operations.  With tiling, each tile of every operand is loaded once,
    all ops on that tile run back to back, and results stream out --
    DRAM traffic collapses from ``O(num_ops)`` passes to one read of
    each operand plus one write (paper Section 5.4: "our tiling is more
    aggressive and can use much larger batch sizes").

    Half the scratchpad is reserved for the double buffer.
    """
    usable = scratchpad_bytes // 2
    per_elem_footprint = (num_operands + 1) * elem_bytes
    tile_elems = max(1, min(vector_len, usable // per_elem_footprint))
    num_tiles = -(-vector_len // tile_elems)
    # One read per operand element + one result write, regardless of op count.
    dram_bytes = vector_len * per_elem_footprint
    naive_bytes = num_ops * vector_len * 3 * elem_bytes  # 2 reads + 1 write per op
    reuse = naive_bytes / dram_bytes if dram_bytes else 1.0
    return TilePlan(
        tile_elems=tile_elems,
        num_tiles=num_tiles,
        dram_bytes=dram_bytes,
        reuse_factor=reuse,
    )
