"""UniZK hardware model: configuration, DRAM timing, scratchpad,
VSA emulation, transpose buffer, twiddle generator, area/power."""

from . import microcode
from .area_power import ChipBudget, ComponentCost, chip_budget
from .config import DEFAULT_CONFIG, HwConfig
from .memory import DramModel, HbmTimings, measured_efficiencies
from .scratchpad import LruScratchpad, TilePlan, tile_plan
from .transpose import TransposeBuffer
from .twiddle import TwiddleGenerator
from .vsa import PeSpec, SystolicResult, Vsa, VsaSpec

__all__ = [
    "microcode",
    "HwConfig",
    "DEFAULT_CONFIG",
    "DramModel",
    "HbmTimings",
    "measured_efficiencies",
    "LruScratchpad",
    "TilePlan",
    "tile_plan",
    "TransposeBuffer",
    "TwiddleGenerator",
    "Vsa",
    "VsaSpec",
    "PeSpec",
    "SystolicResult",
    "ChipBudget",
    "ComponentCost",
    "chip_budget",
]
