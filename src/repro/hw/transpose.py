"""Global transpose buffer (paper Sections 4 and 5.1).

A ``b x b`` element buffer that converts between polynomial-major and
index-major layouts while streaming data between DRAM and the VSAs --
implicitly, overlapped with compute, which is why layout transformation
costs vanish from UniZK's execution breakdown (Figure 8) while costing
the CPU 2-4.6% (Table 1).

Functionally it transposes fixed-size blocks; we emulate that exactly
so the NTT mapping's batched index-major path can be validated.
"""

from __future__ import annotations

import numpy as np


class TransposeBuffer:
    """Block-transpose engine with cycle accounting."""

    def __init__(self, dim: int = 16) -> None:
        if dim < 1:
            raise ValueError("transpose dimension must be positive")
        self.dim = dim
        self.blocks_processed = 0

    def transpose_block(self, block: np.ndarray) -> np.ndarray:
        """Transpose one ``dim x dim`` block (one buffer fill + drain)."""
        if block.shape != (self.dim, self.dim):
            raise ValueError(f"block must be {self.dim}x{self.dim}")
        self.blocks_processed += 1
        return np.ascontiguousarray(block.T)

    def transpose_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Transpose a (rows, cols) matrix block by block.

        Rows and cols must be multiples of ``dim`` (the mapping pads
        otherwise).  Matches ``matrix.T`` exactly; exercised in tests.
        """
        rows, cols = matrix.shape
        if rows % self.dim or cols % self.dim:
            raise ValueError("matrix dimensions must be multiples of dim")
        out = np.empty((cols, rows), dtype=matrix.dtype)
        for r in range(0, rows, self.dim):
            for c in range(0, cols, self.dim):
                out[c : c + self.dim, r : r + self.dim] = self.transpose_block(
                    matrix[r : r + self.dim, c : c + self.dim]
                )
        return out

    def cycles_for(self, num_elems: int) -> int:
        """Cycles to stream ``num_elems`` through the buffer.

        The buffer sustains ``dim`` elements/cycle (one row in, one
        column out, double-buffered), so it never gates the 2-elem/cycle
        NTT pipelines it feeds.
        """
        return -(-num_elems // self.dim)
