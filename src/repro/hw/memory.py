"""Ramulator-lite: a simplified HBM2e channel/bank/row timing model.

The paper drives its simulator with Ramulator2; we substitute a
compact bank-state model that captures the first-order effects the
evaluation depends on: row-buffer locality (sequential streams hit open
rows; scattered small accesses pay activate/precharge), bank-level
parallelism, and per-channel bus occupancy.

Its purpose here is to *derive* the effective-bandwidth factors the
fast analytic cost models use (sequential ~0.8-0.9, strided ~0.5,
short random chunks ~0.15-0.25), rather than hard-coding them -- see
``benchmarks/bench_ablation_dram.py`` and the unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class HbmTimings:
    """Simplified HBM2e timing/geometry parameters (1 GHz clock domain)."""

    num_channels: int = 16  # pseudo-channels across 2 PHYs
    banks_per_channel: int = 16
    row_bytes: int = 1024
    burst_bytes: int = 64
    #: cycles the data bus is busy per burst, per channel
    burst_cycles: int = 1
    #: activate + column-access latency on a row miss
    t_rcd: int = 14
    #: precharge latency before activating a new row
    t_rp: int = 14
    #: column access on a row hit
    t_cas: int = 14


class DramModel:
    """Service a request stream and report cycles and efficiency."""

    def __init__(self, timings: HbmTimings | None = None) -> None:
        self.t = timings or HbmTimings()

    def _map(self, addr: int) -> tuple[int, int, int]:
        """Address -> (channel, bank, row).

        Bursts interleave channels, then banks; the row index is the
        remaining high bits, so a bank's row covers ``row_bytes``
        *consecutive visits* -- the standard interleaving that gives
        sequential streams their row-buffer locality.
        """
        t = self.t
        burst_idx = addr // t.burst_bytes
        channel = burst_idx % t.num_channels
        rest = burst_idx // t.num_channels
        bank = rest % t.banks_per_channel
        col = rest // t.banks_per_channel
        row = col // max(1, t.row_bytes // t.burst_bytes)
        return channel, bank, row

    def service(self, addresses: Iterable[int]) -> int:
        """Cycles to serve the burst-aligned addresses, in order per bank.

        Banks proceed independently; a row hit occupies the bank for one
        column-to-column slot, a row miss for precharge + activate; each
        channel's data bus serialises bursts.  Returns the completion
        time of the last request.
        """
        t = self.t
        open_row: dict[tuple[int, int], int] = {}
        bank_ready: dict[tuple[int, int], int] = {}
        bus_free: List[int] = [0] * t.num_channels
        finish = 0
        for addr in addresses:
            ch, bank, row = self._map(addr)
            key = (ch, bank)
            ready = bank_ready.get(key, 0)
            if open_row.get(key) == row:
                occupancy = t.burst_cycles  # back-to-back column accesses
            else:
                occupancy = t.t_rp + t.t_rcd  # precharge + activate
                open_row[key] = row
            start = max(ready + occupancy, bus_free[ch])
            done = start + t.burst_cycles
            bus_free[ch] = done
            bank_ready[key] = start
            finish = max(finish, done)
        return finish

    def peak_cycles(self, num_bursts: int) -> float:
        """Ideal cycles if every channel streamed back to back."""
        t = self.t
        return num_bursts * t.burst_cycles / t.num_channels

    def efficiency(self, addresses: List[int]) -> float:
        """Achieved / peak bandwidth for a given access pattern."""
        if not addresses:
            return 1.0
        return self.peak_cycles(len(addresses)) / max(1, self.service(addresses))


# -- synthetic access patterns -------------------------------------------------


def sequential_stream(total_bytes: int, burst: int = 64) -> List[int]:
    """A long unit-stride stream (NTT polynomial-major reads)."""
    return list(range(0, total_bytes, burst))


def strided_stream(total_bytes: int, stride: int, burst: int = 64) -> List[int]:
    """Fixed-stride bursts (index-major access without the transpose buffer)."""
    out = []
    addr = 0
    while len(out) * burst < total_bytes:
        out.append(addr)
        addr += stride
    return out


def random_chunks(
    num_chunks: int, chunk_bytes: int, region_bytes: int, seed: int = 0, burst: int = 64
) -> List[int]:
    """Short chunks at pseudo-random offsets (gate-evaluation accesses).

    This is the pattern the paper blames for the poly kernels' low
    bandwidth utilisation (Section 7.1): chunk size is bounded by the
    circuit width and can be as small as a couple of elements.
    """
    state = seed or 0x9E3779B97F4A7C15
    out = []
    for _ in range(num_chunks):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        base = (state % max(1, region_bytes // chunk_bytes)) * chunk_bytes
        for off in range(0, max(burst, chunk_bytes), burst):
            out.append(base + off)
    return out


def measured_efficiencies(model: DramModel | None = None) -> dict[str, float]:
    """Calibrate the analytic models' efficiency factors from the DRAM model."""
    model = model or DramModel()
    seq = model.efficiency(sequential_stream(1 << 20))
    strided = model.efficiency(strided_stream(1 << 20, stride=4096))
    rnd_small = model.efficiency(random_chunks(4096, 16, 1 << 26))
    rnd_wide = model.efficiency(random_chunks(2048, 3200, 1 << 26))
    return {
        "sequential": seq,
        "strided": strided,
        "random_small": rnd_small,
        "random_wide": rnd_wide,
    }
