"""Vector-systolic array (VSA) structural model (paper Figure 3b).

Each VSA is a 12x12 grid of PEs; a PE holds one 64-bit Goldilocks
modular multiplier, two modular adder/subtractors, and a 64x64-bit
register file.  Data enters/leaves at the boundary; PEs talk only to
neighbours (right/down systolic links, plus a few *reverse* bottom-up
links in designated columns that the Poseidon partial-round mapping
needs).  A *vector mode* turns each column into an independent vector
unit for element-wise polynomial kernels.

This module emulates the two execution modes functionally with cycle
accounting; the per-kernel mappings in :mod:`repro.mapping` build on it
and are validated against the reference implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

import numpy as np

from ..field import gl64


@dataclass(frozen=True)
class PeSpec:
    """Resources inside one processing element."""

    multipliers: int = 1
    adders: int = 2
    register_words: int = 64

    @property
    def mul_throughput(self) -> int:
        """Modular multiplies issued per cycle."""
        return self.multipliers


@dataclass(frozen=True)
class VsaSpec:
    """Geometry and link structure of one VSA."""

    rows: int = 12
    cols: int = 12
    pe: PeSpec = field(default_factory=PeSpec)
    #: Columns equipped with bottom-up reverse links (paper: "a limited
    #: amount of new links"; the partial-round scheme needs them in the
    #: second column of each 3-column region, i.e. every 3rd column).
    reverse_link_cols: Tuple[int, ...] = (1, 4, 7, 10)

    @property
    def num_pes(self) -> int:
        """PEs in the array."""
        return self.rows * self.cols

    def has_reverse_link(self, col: int) -> bool:
        """Whether column ``col`` carries a bottom-up link."""
        return col in self.reverse_link_cols


@dataclass
class SystolicResult:
    """Output of an emulated systolic pass."""

    values: np.ndarray
    cycles: int
    pe_mul_ops: int


class Vsa:
    """Functional emulator for the VSA's execution modes."""

    def __init__(self, spec: VsaSpec | None = None) -> None:
        self.spec = spec or VsaSpec()

    # -- systolic (weight-stationary) mode -----------------------------------

    def matmul_weight_stationary(
        self, weights: np.ndarray, inputs: np.ndarray
    ) -> SystolicResult:
        """Row-vector times matrix, streamed through the array.

        ``weights`` (rows x cols) is pre-loaded (weight-stationary, one
        weight per PE); ``inputs`` is (T, rows) -- one state per cycle.
        Each PE multiplies its stationary weight with the value arriving
        on its horizontal link and accumulates into the partial sum
        moving down its column, exactly the classic systolic schedule.
        Emulated wavefront by wavefront so the link discipline is real.
        """
        rows, cols = self.spec.rows, self.spec.cols
        if weights.shape != (rows, cols):
            raise ValueError(f"weights must be {rows}x{cols}")
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.uint64))
        t = inputs.shape[0]
        if inputs.shape[1] != rows:
            raise ValueError("input width must equal the row count")
        out = gl64.zeros((t, cols))
        # Wavefront emulation: input element i of state s reaches column j
        # at cycle s + i + j; the column-j accumulator collects rows in
        # order.  Numerically this is sum_i in[s,i] * W[i,j].
        for j in range(cols):
            acc = gl64.zeros(t)
            for i in range(rows):
                acc = gl64.add(acc, gl64.mul(inputs[:, i], weights[i, j]))
            out[:, j] = acc
        fill_latency = rows + cols  # skew in + skew out
        cycles = t + fill_latency
        return SystolicResult(values=out, cycles=cycles, pe_mul_ops=t * rows * cols)

    # -- vector mode -------------------------------------------------------------

    def vector_mode(
        self,
        fn: Callable[[List[np.ndarray]], np.ndarray],
        operands: List[np.ndarray],
        ops_per_element: int = 1,
    ) -> SystolicResult:
        """Element-wise kernel across the array's column vector units.

        ``operands`` are equal-length vectors; ``fn`` combines them
        element-wise.  Work is split across ``cols`` vector units, each
        column's PEs chaining multiplier and adders (Section 5.4's
        chained operations).  Per-cycle throughput: one element per PE
        per op.
        """
        n = operands[0].shape[0]
        for op in operands:
            if op.shape[0] != n:
                raise ValueError("vector-mode operands must be equal length")
        values = fn(operands)
        total_ops = n * ops_per_element
        throughput = self.spec.num_pes  # one op per PE per cycle
        cycles = -(-total_ops // throughput)
        return SystolicResult(values=values, cycles=cycles, pe_mul_ops=total_ops)

    # -- reverse links -----------------------------------------------------------

    def reverse_broadcast(self, col: int, value, num_rows: int | None = None):
        """Carry a value bottom-up along a reverse-link column.

        Used by the Poseidon partial round to distribute the S-boxed
        ``state[0]`` to all rows and to accumulate the ``v`` dot product
        upward (Figure 5b).  Raises if the column has no reverse link.
        """
        if not self.spec.has_reverse_link(col):
            raise ValueError(f"column {col} has no reverse link")
        rows = num_rows or self.spec.rows
        return [value] * rows
