"""UniZK hardware configuration (paper Section 4 / Section 6).

Default chip: 32 vector-systolic arrays of 12x12 PEs at 1 GHz, an 8 MB
double-buffered scratchpad, a 16x16 global transpose buffer, an
on-the-fly twiddle factor generator, and two HBM2e PHYs (~1 TB/s).
Every field is overridable for design-space exploration (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HwConfig:
    """One point in UniZK's hardware design space."""

    #: Number of vector-systolic arrays.
    num_vsas: int = 32
    #: PE grid dimensions per VSA (sized for the Poseidon width of 12).
    vsa_rows: int = 12
    vsa_cols: int = 12
    #: Clock frequency in GHz.
    freq_ghz: float = 1.0
    #: Global scratchpad capacity in MB (double-buffered).
    scratchpad_mb: float = 8.0
    #: Peak off-chip bandwidth in GB/s (2 HBM2e PHYs).
    mem_bandwidth_gbps: float = 1000.0
    #: Transpose buffer dimension (b x b elements; paper uses b = 16).
    transpose_dim: int = 16
    #: Modular multipliers in the twiddle factor generator.
    twiddle_multipliers: int = 8
    #: PE register file capacity in 64-bit words.
    pe_registers: int = 64
    #: MDC pipeline tile size exponent: each half-row handles 2**5 NTTs.
    ntt_tile_log2: int = 5

    def __post_init__(self) -> None:
        # The autotuner sweeps these fields; nonsense points must fail
        # here with a typed error, not as silent downstream misbehavior.
        if self.num_vsas < 1 or self.vsa_rows < 1 or self.vsa_cols < 1:
            raise ValueError("VSA geometry must be positive")
        if self.freq_ghz <= 0 or self.mem_bandwidth_gbps <= 0:
            raise ValueError("frequency and bandwidth must be positive")
        if self.scratchpad_mb <= 0:
            raise ValueError("scratchpad must be positive")
        if self.transpose_dim < 1:
            raise ValueError("transpose buffer dimension must be positive")
        if self.twiddle_multipliers < 1:
            raise ValueError("twiddle generator needs at least one multiplier")
        if self.pe_registers < 1:
            raise ValueError("PE register file must be positive")
        if not 1 <= self.ntt_tile_log2 <= 16:
            raise ValueError(
                f"ntt_tile_log2 must be in 1..16, got {self.ntt_tile_log2}"
            )
        if (1 << self.ntt_tile_log2) // 2 > self.pe_registers:
            raise ValueError(
                f"ntt_tile_log2={self.ntt_tile_log2} needs "
                f"{(1 << self.ntt_tile_log2) // 2} delay registers per PE "
                f"but the register file holds {self.pe_registers}"
            )

    # -- derived quantities ---------------------------------------------------

    @property
    def pes_per_vsa(self) -> int:
        """PEs in one VSA."""
        return self.vsa_rows * self.vsa_cols

    @property
    def total_pes(self) -> int:
        """PEs across the whole chip."""
        return self.num_vsas * self.pes_per_vsa

    @property
    def bytes_per_cycle(self) -> float:
        """Peak DRAM bytes deliverable per clock cycle."""
        return self.mem_bandwidth_gbps / self.freq_ghz

    @property
    def scratchpad_bytes(self) -> int:
        """Scratchpad capacity in bytes."""
        return int(self.scratchpad_mb * (1 << 20))

    @property
    def ntt_tile(self) -> int:
        """Fixed small-NTT size each MDC pipeline handles."""
        return 1 << self.ntt_tile_log2

    @property
    def ntt_pipelines(self) -> int:
        """Independent MDC pipelines on the chip.

        Each VSA row splits into two pipelines chained across the two
        half-arrays (paper Figure 4b), so a row forms ONE two-dimension
        chain accepting 2 elements/cycle.
        """
        return self.num_vsas * self.vsa_rows

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert clock cycles to wall-clock seconds."""
        return cycles / (self.freq_ghz * 1e9)

    def scaled(self, **overrides) -> "HwConfig":
        """A copy with some fields overridden (for DSE sweeps)."""
        return replace(self, **overrides)


#: The paper's default configuration.
DEFAULT_CONFIG = HwConfig()
