"""On-the-fly twiddle factor generator (paper Section 4).

Inter-dimension twiddles of the decomposed NTT are generated on chip
from a handful of modular multipliers and seed buffers instead of being
stored -- the factors along a row are a geometric sequence
``w^(k1 * j2)``, so one multiplier per output stream suffices.

Functionally this is :func:`repro.field.gl64.powers` seeded per row; we
wrap it with cycle accounting and validate against the decomposition's
reference twiddle matrix.
"""

from __future__ import annotations

import numpy as np

from ..field import gl64, goldilocks as gl


class TwiddleGenerator:
    """Geometric-sequence generator with throughput accounting."""

    def __init__(self, num_multipliers: int = 8) -> None:
        if num_multipliers < 1:
            raise ValueError("need at least one multiplier")
        self.num_multipliers = num_multipliers
        self.factors_generated = 0

    def row(self, base: int, count: int) -> np.ndarray:
        """Generate ``[1, base, base^2, ...]`` (one row of twiddles)."""
        self.factors_generated += count
        return gl64.powers(base, count)

    def inter_dim_block(self, log_n: int, rows: int, cols: int) -> np.ndarray:
        """All ``w_N^(k1 j2)`` factors for one decomposition boundary."""
        omega = gl.primitive_root_of_unity(log_n)
        out = np.empty((rows, cols), dtype=np.uint64)
        row_base = 1
        for k in range(rows):
            out[k] = self.row(row_base, cols)
            row_base = gl.mul(row_base, omega)
        return out

    def cycles_for(self, count: int) -> int:
        """Cycles to generate ``count`` factors (1 per multiplier/cycle)."""
        return -(-count // self.num_multipliers)
