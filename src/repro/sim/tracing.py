"""Chrome-trace export of execution schedules.

Writes the compiler's lowered timeline in the Trace Event Format, so a
simulated proof generation can be inspected in ``chrome://tracing`` /
Perfetto: one track per kernel class, DRAM traffic as counter events.

The JSON framing and validation live in :mod:`repro.tracing`; this
module only knows how to turn a :class:`DetailedSchedule` into events,
the same way real-run spans are turned into events by
:func:`repro.tracing.spans_to_trace_events`.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from ..compiler.lowering import DetailedSchedule
from ..tracing import write_trace_payload

#: Track (thread) ids per kernel class.
_TRACKS = {"ntt": 1, "hash": 2, "poly": 3, "transform": 4}


def schedule_to_trace_events(sched: DetailedSchedule) -> List[dict]:
    """Convert a schedule to Trace Event Format dicts.

    Cycle timestamps map to microseconds 1:1 (at 1 GHz one cycle is
    1 ns; the 1000x stretch keeps viewers readable).
    """
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": f"UniZK {sched.workload}"},
        }
    ]
    for kind, tid in _TRACKS.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"{kind} kernels"},
            }
        )
    traffic = 0.0
    for k in sched.kernels:
        tid = _TRACKS.get(k.kind, 5)
        events.append(
            {
                "name": k.name,
                "cat": k.stage or "other",
                "ph": "X",  # complete event
                "pid": 1,
                "tid": tid,
                "ts": k.start_cycle,
                "dur": max(1.0, k.elapsed),
                "args": {
                    "mode": k.mode,
                    "vsas": k.vsas,
                    "dma_in_bytes": k.dma_in_bytes,
                    "dma_out_bytes": k.dma_out_bytes,
                    "bound": "memory" if k.memory_bound else "compute",
                },
            }
        )
        traffic += k.dma_in_bytes + k.dma_out_bytes
        events.append(
            {
                "name": "DRAM traffic",
                "ph": "C",  # counter
                "pid": 1,
                "ts": k.end_cycle,
                "args": {"bytes": traffic},
            }
        )
    return events


def write_trace(sched: DetailedSchedule, path: str | Path) -> Path:
    """Write the schedule as a ``chrome://tracing`` JSON file."""
    return write_trace_payload(
        schedule_to_trace_events(sched),
        path,
        other_data={
            "workload": sched.workload,
            "total_cycles": sched.total_cycles,
        },
        display_time_unit="ns",
    )
