"""The UniZK performance simulator.

Executes a scheduled computation graph on a hardware configuration and
produces a :class:`SimReport`.  Elapsed time per kernel is
``max(compute, memory)`` under the double-buffered scratchpad (see
:mod:`repro.mapping.base`); kernels execute in dependency order, which
matches the paper's static scheduling and its per-kernel breakdown
methodology.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..compiler import ComputationGraph, schedule
from ..compiler.frontend import (
    PlonkParams,
    StarkParams,
    trace_plonky2,
    trace_recursive_plonky2,
    trace_starky,
)
from ..hw.config import DEFAULT_CONFIG, HwConfig
from ..mapping import MappingParams
from .stats import KernelRecord, SimReport


def simulate_graph(
    graph: ComputationGraph,
    hw: HwConfig = DEFAULT_CONFIG,
    mapping: Optional[MappingParams] = None,
) -> SimReport:
    """Run the scheduler and accumulate the per-kernel records.

    ``mapping`` follows :func:`repro.compiler.schedule`'s contract:
    ``None`` consults the tuning cache for per-shape winners, an
    explicit :class:`~repro.mapping.params.MappingParams` pins every
    kernel to that point.
    """
    report = SimReport(workload=graph.name, hw=hw)
    for sk in schedule(graph, hw, mapping=mapping):
        cost = sk.cost
        report.records.append(
            KernelRecord(
                name=cost.name,
                kind=cost.kind,
                stage=sk.stage,
                elapsed_cycles=cost.elapsed_cycles(hw),
                mem_bytes=cost.mem_bytes,
                mult_ops=cost.mult_ops,
                memory_util=cost.memory_utilization(hw),
                vsa_util=cost.vsa_utilization(hw),
            )
        )
    return report


def simulate_plonky2(params: PlonkParams, hw: HwConfig = DEFAULT_CONFIG) -> SimReport:
    """Simulate one Plonky2 proof generation."""
    return simulate_graph(trace_plonky2(params), hw)


def simulate_starky(params: StarkParams, hw: HwConfig = DEFAULT_CONFIG) -> SimReport:
    """Simulate one Starky base-proof generation."""
    return simulate_graph(trace_starky(params), hw)


def simulate_starky_plonky2(
    params: StarkParams, hw: HwConfig = DEFAULT_CONFIG
) -> Dict[str, SimReport]:
    """Simulate the combined scheme: Starky base + Plonky2 recursion.

    Starky proves the raw statement cheaply (blowup 2), then a
    fixed-shape Plonky2 circuit compresses/aggregates it (paper
    Sections 2.2 and 7.4).
    """
    return {
        "base": simulate_starky(params, hw),
        "recursive": simulate_graph(trace_recursive_plonky2(), hw),
    }


def sweep(
    params: PlonkParams,
    hw_points: Sequence[HwConfig],
) -> list[SimReport]:
    """Simulate one workload across many hardware points (Figure 10)."""
    return [simulate_plonky2(params, hw) for hw in hw_points]
