"""Simulation reports: per-kernel-class cycles and utilisations.

The aggregation mirrors the paper's reporting: kernel classes
{NTT, hash, poly} for the breakdowns (Figure 8) and time-weighted
memory/VSA utilisation per class (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..hw.config import HwConfig
from ..mapping.base import KIND_HASH, KIND_NTT, KIND_POLY

#: Classes shown in the paper's per-kernel breakdowns.
REPORT_KINDS = (KIND_NTT, KIND_POLY, KIND_HASH)


@dataclass
class KernelRecord:
    """One executed kernel in the report."""

    name: str
    kind: str
    stage: str
    elapsed_cycles: float
    mem_bytes: float
    mult_ops: float
    memory_util: float
    vsa_util: float


@dataclass
class SimReport:
    """Aggregate result of simulating one proof generation."""

    workload: str
    hw: HwConfig
    records: List[KernelRecord] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles (kernels execute back to back)."""
        return sum(r.elapsed_cycles for r in self.records)

    @property
    def total_seconds(self) -> float:
        """End-to-end wall-clock seconds."""
        return self.hw.cycles_to_seconds(self.total_cycles)

    def cycles_by_kind(self) -> Dict[str, float]:
        """Elapsed cycles per kernel class (Figure 8's bars)."""
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0.0) + r.elapsed_cycles
        return out

    def seconds_by_kind(self) -> Dict[str, float]:
        """Elapsed seconds per kernel class."""
        return {k: self.hw.cycles_to_seconds(v) for k, v in self.cycles_by_kind().items()}

    def fraction_by_kind(self) -> Dict[str, float]:
        """Share of total time per kernel class."""
        total = self.total_cycles
        return {k: v / total for k, v in self.cycles_by_kind().items()} if total else {}

    def utilization_by_kind(self) -> Dict[str, Dict[str, float]]:
        """Time-weighted memory and VSA utilisation per class (Table 4)."""
        out: Dict[str, Dict[str, float]] = {}
        for kind in REPORT_KINDS:
            recs = [r for r in self.records if r.kind == kind]
            elapsed = sum(r.elapsed_cycles for r in recs)
            if elapsed <= 0:
                continue
            mem = sum(r.memory_util * r.elapsed_cycles for r in recs) / elapsed
            vsa = sum(r.vsa_util * r.elapsed_cycles for r in recs) / elapsed
            out[kind] = {"memory": mem, "vsa": vsa}
        return out

    def cycles_by_stage(self) -> Dict[str, float]:
        """Elapsed cycles per protocol stage (Figure 7 grouping)."""
        out: Dict[str, float] = {}
        for r in self.records:
            key = r.stage or "(other)"
            out[key] = out.get(key, 0.0) + r.elapsed_cycles
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary (used by the proving service and exports)."""
        return {
            "workload": self.workload,
            "total_cycles": float(self.total_cycles),
            "total_seconds": float(self.total_seconds),
            "num_kernels": len(self.records),
            "cycles_by_kind": {k: float(v) for k, v in self.cycles_by_kind().items()},
            "fraction_by_kind": {
                k: float(v) for k, v in self.fraction_by_kind().items()
            },
            "utilization_by_kind": {
                k: {m: float(v) for m, v in u.items()}
                for k, u in self.utilization_by_kind().items()
            },
        }

    def summary_lines(self) -> List[str]:
        """Human-readable report."""
        lines = [f"workload {self.workload}: {self.total_seconds * 1e3:.2f} ms "
                 f"({self.total_cycles / 1e6:.1f} Mcycles)"]
        fracs = self.fraction_by_kind()
        for kind in REPORT_KINDS:
            if kind in fracs:
                lines.append(f"  {kind:5s}: {fracs[kind] * 100:5.1f}% of time")
        for kind, u in self.utilization_by_kind().items():
            lines.append(
                f"  util[{kind}]: memory {u['memory'] * 100:.1f}%  vsa {u['vsa'] * 100:.1f}%"
            )
        return lines
