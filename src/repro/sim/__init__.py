"""Performance simulator, reports, and Chrome-trace export."""

from .simulator import (
    simulate_graph,
    simulate_plonky2,
    simulate_starky,
    simulate_starky_plonky2,
    sweep,
)
from .stats import KernelRecord, SimReport
from .tracing import schedule_to_trace_events, write_trace

__all__ = [
    "simulate_graph",
    "simulate_plonky2",
    "simulate_starky",
    "simulate_starky_plonky2",
    "sweep",
    "SimReport",
    "KernelRecord",
    "schedule_to_trace_events",
    "write_trace",
]
