"""Binary serialization for proofs.

A compact little-endian format so proofs can actually be shipped
between a prover and verifier process: 8-byte field elements, 4-byte
length prefixes for variable-size structures.  The serialized sizes
validate the structural ``size_bytes()`` accounting used by the
Table 5 / Table 6 proof-size reproduction (the codec adds only small
length-prefix overhead).
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from .fri.proof import (
    FriInitialOpening,
    FriLayerOpening,
    FriProof,
    FriQueryRound,
)
from .fri.prover import FriOpenings
from .hyperplonk.proof import HyperPlonkProof, HyperPlonkTreeOpening
from .merkle.multiproof import MerkleMultiProof
from .merkle.tree import MerkleProof
from .plonk.proof import PlonkProof
from .stark.proof import StarkProof
from .sumcheck import SumcheckProof


class ByteWriter:
    """Append-only little-endian byte sink."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def u32(self, v: int) -> None:
        """Write an unsigned 32-bit length/count."""
        self._chunks.append(struct.pack("<I", v))

    def u64(self, v: int) -> None:
        """Write an unsigned 64-bit value (field element, witness)."""
        self._chunks.append(struct.pack("<Q", int(v)))

    def elems(self, arr) -> None:
        """Write a field-element array with its shape header."""
        arr = np.ascontiguousarray(np.asarray(arr, dtype=np.uint64))
        self.u32(arr.size)
        self.u32(arr.ndim)
        for d in arr.shape:
            self.u32(d)
        self._chunks.append(arr.tobytes())

    def getvalue(self) -> bytes:
        """Concatenate everything written so far."""
        return b"".join(self._chunks)


#: Maximum array rank the codec will decode.  Honest proofs only ever
#: serialize 0/1/2-dimensional arrays; anything deeper is hostile.
MAX_NDIM = 4


class ByteReader:
    """Sequential reader matching :class:`ByteWriter`.

    Every count and array length read from the wire is bounded by the
    number of bytes actually remaining in the buffer *before* any
    allocation or loop is driven by it, so truncated or length-inflated
    input always fails with a typed :class:`ValueError` instead of
    over-allocating or surfacing a raw ``struct``/NumPy error.  The
    proving service deserializes client-supplied bytes through this
    reader.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise ValueError("truncated proof bytes")
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def remaining(self) -> int:
        """Bytes left in the buffer (bounds hostile counts)."""
        return len(self._data) - self._pos

    def u32(self) -> int:
        """Read an unsigned 32-bit length/count."""
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        """Read an unsigned 64-bit value."""
        return struct.unpack("<Q", self._take(8))[0]

    def count(self, item_bytes: int, what: str = "count") -> int:
        """Read a u32 count whose items occupy ``>= item_bytes`` each.

        Rejects counts that could not possibly be satisfied by the
        remaining buffer, so a length-inflated prefix cannot drive a
        multi-gigabyte loop or allocation.
        """
        n = self.u32()
        if n * item_bytes > self.remaining():
            raise ValueError(
                f"length-inflated proof bytes ({what} {n} exceeds remaining buffer)"
            )
        return n

    def elems(self) -> np.ndarray:
        """Read a field-element array written by :meth:`ByteWriter.elems`."""
        size = self.u32()
        if size * 8 > self.remaining():
            raise ValueError(
                f"length-inflated proof bytes (array of {size} elements "
                "exceeds remaining buffer)"
            )
        ndim = self.u32()
        if ndim > MAX_NDIM:
            raise ValueError(f"array rank {ndim} out of range")
        shape = tuple(self.u32() for _ in range(ndim))
        expected = 1
        for d in shape:
            expected *= d
        if expected != size:
            raise ValueError("array shape does not match element count")
        raw = self._take(size * 8)
        return np.frombuffer(raw, dtype=np.uint64).reshape(shape).copy()

    def done(self) -> bool:
        """Whether every byte has been consumed."""
        return self._pos == len(self._data)


# -- FRI -----------------------------------------------------------------------


def _write_merkle_proof(w: ByteWriter, proof: MerkleProof) -> None:
    w.elems(proof.siblings)


def _read_merkle_proof(r: ByteReader) -> MerkleProof:
    sib = r.elems()
    if sib.ndim != 2 or sib.shape[1] != 4:
        raise ValueError("malformed Merkle proof (siblings must be (k, 4))")
    return MerkleProof(siblings=sib)


def _read_cap(r: ByteReader, what: str = "Merkle cap") -> np.ndarray:
    """Read a Merkle cap, enforcing the (c, 4) digest-row layout.

    The verifiers absorb caps into the Fiat-Shamir transcript and index
    them by reduced query position; a reshaped or empty cap must be
    rejected here, with a typed error, before it reaches them.
    """
    cap = r.elems()
    if cap.ndim != 2 or cap.shape[1] != 4 or cap.shape[0] == 0:
        raise ValueError(f"malformed {what} (expected a non-empty (c, 4) array)")
    return cap


def write_fri_proof(w: ByteWriter, proof: FriProof) -> None:
    """Append a FRI proof."""
    w.u32(len(proof.commit_caps))
    for cap in proof.commit_caps:
        w.elems(cap)
    w.elems(proof.final_poly)
    w.u64(proof.pow_witness)
    w.u32(len(proof.query_rounds))
    for qr in proof.query_rounds:
        w.u64(qr.index)
        w.u32(len(qr.initial.leaves))
        for leaf, prf in zip(qr.initial.leaves, qr.initial.proofs):
            w.elems(leaf)
            _write_merkle_proof(w, prf)
        w.u32(len(qr.layers))
        for layer in qr.layers:
            w.elems(layer.pair_leaf)
            _write_merkle_proof(w, layer.proof)


def read_fri_proof(r: ByteReader) -> FriProof:
    """Read a FRI proof."""
    caps = [
        _read_cap(r, "FRI layer cap")
        for _ in range(r.count(8, "FRI cap count"))
    ]
    final_poly = r.elems()
    if final_poly.ndim != 2 or final_poly.shape[1] != 2:
        raise ValueError("malformed final polynomial (expected an (n, 2) array)")
    pow_witness = r.u64()
    rounds = []
    for _ in range(r.count(8, "FRI query-round count")):
        index = r.u64()
        leaves, proofs = [], []
        for _ in range(r.count(8, "initial opening count")):
            leaves.append(r.elems())
            proofs.append(_read_merkle_proof(r))
        layers = []
        for _ in range(r.count(8, "FRI layer count")):
            pair_leaf = r.elems()
            layers.append(FriLayerOpening(pair_leaf=pair_leaf, proof=_read_merkle_proof(r)))
        rounds.append(
            FriQueryRound(
                index=index,
                initial=FriInitialOpening(leaves=leaves, proofs=proofs),
                layers=layers,
            )
        )
    return FriProof(
        commit_caps=caps,
        final_poly=final_poly,
        pow_witness=pow_witness,
        query_rounds=rounds,
    )


def write_openings(w: ByteWriter, op: FriOpenings) -> None:
    """Append an opening set (points, columns, values)."""
    w.u32(len(op.points))
    for point, cols, vals in zip(op.points, op.columns, op.values):
        w.elems(point)
        w.u32(len(cols))
        for b, c in cols:
            w.u32(b)
            w.u32(c)
        w.elems(np.atleast_2d(vals))


def read_openings(r: ByteReader) -> FriOpenings:
    """Read an opening set."""
    points, columns, values = [], [], []
    for _ in range(r.count(8, "opening point count")):
        point = r.elems()
        if point.size != 2:
            raise ValueError("malformed opening point (expected 2 limbs)")
        points.append(point.reshape(2))
        cols = [(r.u32(), r.u32()) for _ in range(r.count(8, "opened column count"))]
        columns.append(cols)
        vals = r.elems()
        if vals.ndim != 2 or vals.shape[1] != 2:
            raise ValueError("malformed opening values (expected an (n, 2) array)")
        values.append(vals)
    return FriOpenings(points=points, columns=columns, values=values)


# -- Plonk ---------------------------------------------------------------------


def plonk_proof_to_bytes(proof: PlonkProof) -> bytes:
    """Serialize a Plonk proof."""
    w = ByteWriter()
    w.elems(proof.wires_cap)
    w.elems(proof.z_cap)
    w.elems(proof.quotient_cap)
    w.u32(len(proof.public_inputs))
    for v in proof.public_inputs:
        w.u64(v)
    write_openings(w, proof.openings)
    write_fri_proof(w, proof.fri_proof)
    return w.getvalue()


def plonk_proof_digest(proof: PlonkProof) -> str:
    """Hex digest of the canonical serialized form (content address)."""
    import hashlib

    return hashlib.sha256(plonk_proof_to_bytes(proof)).hexdigest()


def plonk_proof_from_bytes(data: bytes) -> PlonkProof:
    """Deserialize a Plonk proof."""
    r = ByteReader(data)
    wires_cap = _read_cap(r, "wires cap")
    z_cap = _read_cap(r, "Z cap")
    quotient_cap = _read_cap(r, "quotient cap")
    publics = [r.u64() for _ in range(r.count(8, "public input count"))]
    openings = read_openings(r)
    fri_proof = read_fri_proof(r)
    if not r.done():
        raise ValueError("trailing bytes after Plonk proof")
    return PlonkProof(
        wires_cap=wires_cap,
        z_cap=z_cap,
        quotient_cap=quotient_cap,
        public_inputs=publics,
        openings=openings,
        fri_proof=fri_proof,
    )


# -- STARK ---------------------------------------------------------------------


def stark_proof_to_bytes(proof: StarkProof) -> bytes:
    """Serialize a STARK proof."""
    w = ByteWriter()
    w.elems(proof.trace_cap)
    w.elems(proof.quotient_cap)
    w.u32(proof.degree_bits)
    w.u32(len(proof.public_inputs))
    for v in proof.public_inputs:
        w.u64(v)
    write_openings(w, proof.openings)
    write_fri_proof(w, proof.fri_proof)
    return w.getvalue()


def stark_proof_digest(proof: StarkProof) -> str:
    """Hex digest of the canonical serialized form (content address)."""
    import hashlib

    return hashlib.sha256(stark_proof_to_bytes(proof)).hexdigest()


def stark_proof_from_bytes(data: bytes) -> StarkProof:
    """Deserialize a STARK proof."""
    r = ByteReader(data)
    trace_cap = _read_cap(r, "trace cap")
    quotient_cap = _read_cap(r, "quotient cap")
    degree_bits = r.u32()
    publics = [r.u64() for _ in range(r.count(8, "public input count"))]
    openings = read_openings(r)
    fri_proof = read_fri_proof(r)
    if not r.done():
        raise ValueError("trailing bytes after STARK proof")
    return StarkProof(
        trace_cap=trace_cap,
        quotient_cap=quotient_cap,
        public_inputs=publics,
        degree_bits=degree_bits,
        openings=openings,
        fri_proof=fri_proof,
    )


# -- HyperPlonk-lite -----------------------------------------------------------


def _write_tree_opening(w: ByteWriter, op: HyperPlonkTreeOpening) -> None:
    w.u32(len(op.proof.indices))
    for idx in op.proof.indices:
        w.u32(idx)
    w.elems(op.rows)
    w.elems(op.proof.nodes)


def _read_tree_opening(r: ByteReader, width: int, what: str) -> HyperPlonkTreeOpening:
    indices = tuple(
        r.u32() for _ in range(r.count(4, f"{what} index count"))
    )
    for a, b in zip(indices, indices[1:]):
        if b <= a:
            raise ValueError(f"malformed {what} (indices must be strictly ascending)")
    rows = r.elems()
    if rows.ndim != 2 or rows.shape != (len(indices), width):
        raise ValueError(
            f"malformed {what} (expected a ({len(indices)}, {width}) row array)"
        )
    nodes = r.elems()
    if nodes.ndim != 2 or nodes.shape[1] != 4:
        raise ValueError(f"malformed {what} (path nodes must be (k, 4))")
    return HyperPlonkTreeOpening(
        rows=rows, proof=MerkleMultiProof(indices=indices, nodes=nodes)
    )


def hyperplonk_proof_to_bytes(proof: HyperPlonkProof) -> bytes:
    """Serialize a HyperPlonk-lite proof (batched-opening format v2)."""
    w = ByteWriter()
    w.elems(proof.wires_cap)
    w.elems(proof.z_cap)
    w.u32(len(proof.public_inputs))
    for v in proof.public_inputs:
        w.u64(v)
    sc = proof.sumcheck
    w.u64(sc.claimed_sum)
    w.u32(len(sc.round_values))
    for y0, y1 in sc.round_values:
        w.u64(y0)
        w.u64(y1)
    w.u64(sc.final_value)
    w.u32(len(proof.level_caps))
    for cap in proof.level_caps:
        w.elems(cap)
    _write_tree_opening(w, proof.pre_opening)
    _write_tree_opening(w, proof.wires_opening)
    _write_tree_opening(w, proof.z_opening)
    w.u32(len(proof.level_openings))
    for op in proof.level_openings:
        _write_tree_opening(w, op)
    return w.getvalue()


def hyperplonk_proof_digest(proof: HyperPlonkProof) -> str:
    """Hex digest of the canonical serialized form (content address)."""
    import hashlib

    return hashlib.sha256(hyperplonk_proof_to_bytes(proof)).hexdigest()


def hyperplonk_proof_from_bytes(data: bytes) -> HyperPlonkProof:
    """Deserialize a HyperPlonk-lite proof (batched-opening format v2)."""
    r = ByteReader(data)
    wires_cap = _read_cap(r, "wires cap")
    z_cap = _read_cap(r, "Z cap")
    publics = [r.u64() for _ in range(r.count(8, "public input count"))]
    claimed_sum = r.u64()
    rounds = [
        (r.u64(), r.u64()) for _ in range(r.count(16, "sumcheck round count"))
    ]
    final_value = r.u64()
    sumcheck = SumcheckProof(
        claimed_sum=claimed_sum, round_values=rounds, final_value=final_value
    )
    level_caps = [
        _read_cap(r, "fold-level cap")
        for _ in range(r.count(8, "fold-level cap count"))
    ]
    pre_opening = _read_tree_opening(r, 8, "preprocessed opening")
    wires_opening = _read_tree_opening(r, 3, "wires opening")
    z_opening = _read_tree_opening(r, 1, "Z opening")
    level_openings = [
        _read_tree_opening(r, 1, "fold-level opening")
        for _ in range(r.count(4, "fold-level opening count"))
    ]
    if not r.done():
        raise ValueError("trailing bytes after HyperPlonk proof")
    return HyperPlonkProof(
        wires_cap=wires_cap,
        z_cap=z_cap,
        public_inputs=publics,
        sumcheck=sumcheck,
        level_caps=level_caps,
        pre_opening=pre_opening,
        wires_opening=wires_opening,
        z_opening=z_opening,
        level_openings=level_openings,
    )


# -- Tagged proof blobs --------------------------------------------------------
#
# The raw ``*_proof_to_bytes`` bodies carry no self-description: feeding
# a Plonk body to the STARK decoder yields garbage or a confusing
# structural error.  Everything that ships a proof across a boundary
# (CLI files, service envelopes, fuzz artifacts) therefore wraps the
# body in a tagged blob -- magic, a format-version byte, the protocol
# tag, then the length-prefixed body -- so readers dispatch on the tag
# and reject untagged bytes with a clear typed error.  Digests stay
# defined over the *raw body* so the pinned golden digests are
# unaffected by the framing.

PROOF_BLOB_MAGIC = b"UZKP"
#: Legacy blob-wide version (the version every protocol started at).
PROOF_FORMAT_VERSION = 1

#: Current body-format version per protocol tag.  Bumped when a body
#: codec changes incompatibly; the blob's version byte must match the
#: entry for its protocol.  hyperplonk is at 2: batched per-tree
#: multiproof openings replaced the v1 per-query individual paths.
PROOF_FORMAT_VERSIONS = {
    "stark": 1,
    "plonk": 1,
    "hyperplonk": 2,
}


class ProofFormatError(ValueError):
    """A proof blob's framing (magic / version / protocol tag) is invalid."""


#: Protocols with a registered body codec, in registry order.
PROOF_PROTOCOLS = ("stark", "plonk", "hyperplonk")

_BODY_CODECS = {
    "stark": (stark_proof_to_bytes, stark_proof_from_bytes),
    "plonk": (plonk_proof_to_bytes, plonk_proof_from_bytes),
    "hyperplonk": (hyperplonk_proof_to_bytes, hyperplonk_proof_from_bytes),
}


def proof_format_version(protocol: str) -> int:
    """The current body-format version for a protocol tag."""
    try:
        return PROOF_FORMAT_VERSIONS[protocol]
    except KeyError:
        raise ProofFormatError(f"unknown proof protocol tag {protocol!r}") from None


def proof_body_codec(protocol: str) -> tuple:
    """The ``(to_bytes, from_bytes)`` body codec for a protocol tag."""
    try:
        return _BODY_CODECS[protocol]
    except KeyError:
        raise ProofFormatError(f"unknown proof protocol tag {protocol!r}") from None


def write_proof_blob(protocol: str, body: bytes) -> bytes:
    """Frame a raw proof body with its protocol tag and format version."""
    if protocol not in _BODY_CODECS:
        raise ProofFormatError(f"unknown proof protocol tag {protocol!r}")
    tag = protocol.encode("utf-8")
    w = ByteWriter()
    w._chunks.append(PROOF_BLOB_MAGIC)
    w._chunks.append(bytes([PROOF_FORMAT_VERSIONS[protocol]]))
    w.u32(len(tag))
    w._chunks.append(tag)
    w.u32(len(body))
    w._chunks.append(body)
    return w.getvalue()


def read_proof_blob(data: bytes) -> tuple:
    """Unframe a tagged blob; returns ``(protocol, body)``.

    Raises :class:`ProofFormatError` for untagged bytes, an unknown
    protocol tag, or a format version the tagged protocol's current
    codec does not speak -- before any body decoding happens.  The tag
    is resolved *first* so an unknown protocol reports as such rather
    than as a version mismatch.
    """
    if len(data) < 5 or data[:4] != PROOF_BLOB_MAGIC:
        raise ProofFormatError("untagged proof bytes (missing proof-blob magic)")
    version = data[4]
    r = ByteReader(data[5:])
    try:
        tag_raw = r._take(r.u32())
        body = r._take(r.u32())
        trailing = not r.done()
    except ValueError as exc:
        raise ProofFormatError(f"malformed proof blob: {exc}") from exc
    if trailing:
        raise ProofFormatError("trailing bytes after proof blob")
    try:
        protocol = tag_raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProofFormatError("malformed proof blob: bad protocol tag") from exc
    if protocol not in _BODY_CODECS:
        raise ProofFormatError(f"unknown proof protocol tag {protocol!r}")
    if version != PROOF_FORMAT_VERSIONS[protocol]:
        raise ProofFormatError(
            f"unsupported proof format version {version} for {protocol!r} "
            f"(expected {PROOF_FORMAT_VERSIONS[protocol]})"
        )
    return protocol, body


def proof_to_blob(protocol: str, proof) -> bytes:
    """Serialize a proof object into a tagged blob."""
    if protocol not in _BODY_CODECS:
        raise ProofFormatError(f"unknown proof protocol tag {protocol!r}")
    to_bytes, _ = _BODY_CODECS[protocol]
    return write_proof_blob(protocol, to_bytes(proof))


def proof_from_blob(data: bytes, expected_protocol: str | None = None) -> tuple:
    """Decode a tagged blob; returns ``(protocol, proof)``.

    With ``expected_protocol``, a well-formed blob carrying a different
    protocol's proof is rejected (still a :class:`ProofFormatError`)
    instead of being fed to the wrong decoder.
    """
    protocol, body = read_proof_blob(data)
    if expected_protocol is not None and protocol != expected_protocol:
        raise ProofFormatError(
            f"proof blob carries protocol {protocol!r}, expected {expected_protocol!r}"
        )
    _, from_bytes = _BODY_CODECS[protocol]
    return protocol, from_bytes(body)


# -- Result envelopes ----------------------------------------------------------
#
# The proving service ships job results (proofs, simulation reports)
# between processes and over sockets.  The envelope is a tiny typed
# framing on top of the proof codecs: magic, version, a kind tag, the
# workload name, and the payload bytes, so a reader can dispatch to the
# right ``*_from_bytes`` without out-of-band context.

ENVELOPE_MAGIC = b"UZKR"
ENVELOPE_VERSION = 1

#: Payload kinds an envelope may carry.
ENVELOPE_KINDS = (
    "stark-proof",
    "plonk-proof",
    "hyperplonk-proof",
    "sim-report",
    "debug",
)


def write_result_envelope(kind: str, workload: str, payload: bytes) -> bytes:
    """Frame a result payload with its kind tag and workload name."""
    if kind not in ENVELOPE_KINDS:
        raise ValueError(f"unknown envelope kind {kind!r}")
    w = ByteWriter()
    w._chunks.append(ENVELOPE_MAGIC)
    w.u32(ENVELOPE_VERSION)
    for text in (kind, workload):
        raw = text.encode("utf-8")
        w.u32(len(raw))
        w._chunks.append(raw)
    w.u32(len(payload))
    w._chunks.append(payload)
    return w.getvalue()


def read_result_envelope(data: bytes) -> tuple:
    """Read an envelope; returns ``(kind, workload, payload)``."""
    r = ByteReader(data)
    if r._take(4) != ENVELOPE_MAGIC:
        raise ValueError("not a result envelope (bad magic)")
    version = r.u32()
    if version != ENVELOPE_VERSION:
        raise ValueError(f"unsupported envelope version {version}")
    kind = r._take(r.u32()).decode("utf-8")
    workload = r._take(r.u32()).decode("utf-8")
    payload = r._take(r.u32())
    if not r.done():
        raise ValueError("trailing bytes after result envelope")
    if kind not in ENVELOPE_KINDS:
        raise ValueError(f"unknown envelope kind {kind!r}")
    return kind, workload, payload
