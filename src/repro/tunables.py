"""Software-prover tuning knobs (the :class:`PlanTuner` search space).

These knobs change *how* the numpy prover computes, never *what* it
computes: every setting produces bit-identical field elements, digests
and perf counters.  They only move wall-clock time, which is why the
plan tuner can search them against measured timings without touching
the proof-system goldens.

Knobs (``0`` means "keep the built-in heuristic" for the chunking
knobs, "never" for the crossover):

``scalar_batch_limit``
    Poseidon batch size at or below which ``permute_into`` uses the
    scalar per-state loop instead of the vectorised path
    (:mod:`repro.hashing.optimized`); ``0`` always vectorises.
``ntt_row_block``
    Block the leading (batch) axis of the in-place NTT butterfly loops
    into chunks of this many rows, trading loop overhead against cache
    footprint (:mod:`repro.ntt.transforms`).
``leaf_hash_chunk``
    Hash Merkle leaves in row chunks of this size instead of one giant
    batch (:mod:`repro.hashing.sponge`), bounding the transient arrays.
``permute_chunk``
    Run the vectorised Poseidon permutation over row chunks of this
    size.  The full-round MDS matmul materialises a ``(rows, 12, 12)``
    scratch tensor; at large Merkle levels that tensor spills the CPU
    caches, and bounding the rows keeps every round's working set
    cache-resident (rows are independent, so chunking is bit-exact).

The active tuning travels via a :class:`contextvars.ContextVar`, so
``with tunables.applied(plan.tuning):`` scopes it to one proof without
threading a parameter through every call site.  This module is
deliberately stdlib-only: the hashing/NTT hot paths import it, and it
must never import them back.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, Optional


@dataclass(frozen=True)
class PlanTuning:
    """One point of the software tuning space (defaults = heuristics)."""

    scalar_batch_limit: int = 8
    ntt_row_block: int = 0
    leaf_hash_chunk: int = 0
    permute_chunk: int = 0

    def __post_init__(self) -> None:
        if self.scalar_batch_limit < 0:
            raise ValueError(
                f"scalar_batch_limit must be >= 0, got {self.scalar_batch_limit}"
            )
        if self.ntt_row_block < 0:
            raise ValueError(
                f"ntt_row_block must be >= 0, got {self.ntt_row_block}"
            )
        if self.leaf_hash_chunk < 0:
            raise ValueError(
                f"leaf_hash_chunk must be >= 0, got {self.leaf_hash_chunk}"
            )
        if self.permute_chunk < 0:
            raise ValueError(
                f"permute_chunk must be >= 0, got {self.permute_chunk}"
            )

    def to_dict(self) -> Dict[str, int]:
        """JSON-safe form (stored in the tuning cache)."""
        return {
            "scalar_batch_limit": self.scalar_batch_limit,
            "ntt_row_block": self.ntt_row_block,
            "leaf_hash_chunk": self.leaf_hash_chunk,
            "permute_chunk": self.permute_chunk,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlanTuning":
        tuning = cls()
        known = {k: int(v) for k, v in data.items() if k in tuning.to_dict()}
        return replace(tuning, **known)


DEFAULT_TUNING = PlanTuning()

_ACTIVE: ContextVar[PlanTuning] = ContextVar("repro_plan_tuning", default=DEFAULT_TUNING)


def current() -> PlanTuning:
    """The tuning in effect for the current context."""
    return _ACTIVE.get()


@contextlib.contextmanager
def applied(tuning: Optional[PlanTuning]) -> Iterator[PlanTuning]:
    """Scope ``tuning`` to the enclosed block (``None`` = defaults)."""
    value = tuning if tuning is not None else DEFAULT_TUNING
    token = _ACTIVE.set(value)
    try:
        yield value
    finally:
        _ACTIVE.reset(token)
