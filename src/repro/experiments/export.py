"""Export experiment results as CSV files.

``python -m repro.experiments.export [outdir]`` writes one CSV per
table/figure so the plots can be regenerated with any plotting tool.
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path
from typing import Iterable, List

from . import figures, tables


def _write(path: Path, fieldnames: List[str], rows: Iterable[dict]) -> None:
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in fieldnames})


def export_all(outdir: str | Path = "results") -> List[Path]:
    """Write every table/figure as CSV; returns the written paths."""
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    t1 = tables.table1()
    p = out / "table1_cpu_breakdown.csv"
    _write(p, ["app", "time_s", "poly", "ntt", "merkle", "other_hash", "transform"], t1)
    written.append(p)

    t2 = tables.table2()
    p = out / "table2_area_power.csv"
    _write(p, ["component", "area_mm2", "power_w"], t2)
    written.append(p)

    t3 = tables.table3()
    p = out / "table3_end_to_end.csv"
    _write(p, ["app", "cpu_s", "gpu_s", "gpu_speedup", "unizk_s", "unizk_speedup"], t3)
    written.append(p)

    t4 = tables.table4()
    p = out / "table4_utilisation.csv"
    _write(
        p,
        ["app", "ntt_mem", "ntt_vsa", "poly_mem", "poly_vsa", "hash_mem", "hash_vsa"],
        t4,
    )
    written.append(p)

    t5 = tables.table5()
    p = out / "table5_starky.csv"
    _write(p, ["app", "stage", "cpu_s", "unizk_ms", "speedup", "size_kb"], t5)
    written.append(p)

    t6 = tables.table6()
    p = out / "table6_pipezk.csv"
    _write(
        p,
        ["app", "groth16_cpu_s", "starky_plonky2_cpu_s", "pipezk_ms", "unizk_ms",
         "pipezk_speedup", "unizk_speedup"],
        t6,
    )
    written.append(p)

    f8 = figures.fig8()
    p = out / "fig8_breakdown.csv"
    _write(p, ["app", "ntt", "poly", "hash"], f8)
    written.append(p)

    f9 = figures.fig9()
    p = out / "fig9_kernel_speedups.csv"
    _write(p, ["app", "ntt", "poly", "hash"], f9)
    written.append(p)

    sweeps = figures.fig10()
    rows = []
    for resource, series in sweeps.items():
        for r in series:
            rows.append({"resource": resource, **r})
    p = out / "fig10_dse.csv"
    _write(p, ["resource", "scale", "ntt", "poly", "hash"], rows)
    written.append(p)

    return written


def main() -> None:
    """CLI: write the CSVs and list them."""
    outdir = sys.argv[1] if len(sys.argv) > 1 else "results"
    for path in export_all(outdir):
        print(path)


if __name__ == "__main__":
    main()
