"""Run every experiment and render EXPERIMENTS.md.

``python -m repro.experiments.runner`` regenerates all tables and
figures and writes the paper-vs-measured record.
"""

from __future__ import annotations

from . import figures, tables


def run_all() -> str:
    """Execute every experiment; returns the full text report."""
    sections = [
        tables.format_table1(tables.table1()),
        tables.format_table2(tables.table2()),
        tables.format_table3(tables.table3()),
        tables.format_table4(tables.table4()),
        tables.format_table5(tables.table5()),
        tables.format_table6(tables.table6()),
        figures.format_fig8(figures.fig8()),
        figures.format_fig9(figures.fig9()),
        figures.format_fig10(figures.fig10()),
    ]
    return "\n\n".join(sections)


def main() -> None:
    """CLI entry point: print the report."""
    print(run_all())


if __name__ == "__main__":
    main()
