"""Regenerate the paper's evaluation figures (Section 7) as data series.

* Figure 8 -- UniZK execution-time breakdown by kernel type;
* Figure 9 -- per-kernel-type speedup of UniZK over the CPU;
* Figure 10 -- design-space exploration on MVM: scratchpad size, VSA
  count, and memory bandwidth each swept around the default, reported
  per kernel type (normalised to the default configuration).
"""

from __future__ import annotations

from typing import Dict, List

from ..baselines import CpuModel
from ..compiler import trace_plonky2
from ..hw import DEFAULT_CONFIG
from ..sim import simulate_plonky2
from ..workloads import PAPER_WORKLOADS, by_name

#: Mapping between the simulator's kernel classes and the CPU model's.
_CPU_KIND = {"ntt": ("ntt",), "hash": ("merkle", "other_hash"), "poly": ("poly",)}


def fig8() -> List[Dict]:
    """Execution-time fractions by kernel type on UniZK."""
    rows = []
    for spec in PAPER_WORKLOADS:
        frac = simulate_plonky2(spec.plonk).fraction_by_kind()
        rows.append(
            {
                "app": spec.name,
                "ntt": frac.get("ntt", 0.0),
                "poly": frac.get("poly", 0.0),
                "hash": frac.get("hash", 0.0),
            }
        )
    return rows


def format_fig8(rows: List[Dict]) -> str:
    """Render the Figure 8 breakdown."""
    out = ["Figure 8: UniZK time breakdown by kernel type"]
    for r in rows:
        out.append(
            f"{r['app']:12s} ntt {r['ntt']*100:5.1f}%  poly {r['poly']*100:5.1f}%  "
            f"hash {r['hash']*100:5.1f}%"
        )
    out.append("(paper: polynomial ops dominate after acceleration)")
    return "\n".join(out)


def fig9() -> List[Dict]:
    """Per-kernel-type speedup of UniZK over the 80-thread CPU."""
    cpu = CpuModel()
    rows = []
    for spec in PAPER_WORKLOADS:
        graph = trace_plonky2(spec.plonk)
        cpu_rep = cpu.run(graph)
        uni_rep = simulate_plonky2(spec.plonk)
        uni_secs = uni_rep.seconds_by_kind()
        row = {"app": spec.name}
        for kind, cpu_kinds in _CPU_KIND.items():
            cpu_t = sum(cpu_rep.seconds_by_kind.get(k, 0.0) for k in cpu_kinds)
            uni_t = uni_secs.get(kind, 0.0)
            row[kind] = cpu_t / uni_t if uni_t else float("inf")
        rows.append(row)
    return rows


def format_fig9(rows: List[Dict]) -> str:
    """Render the Figure 9 per-kernel speedups."""
    out = ["Figure 9: per-kernel speedup over the CPU"]
    for r in rows:
        out.append(
            f"{r['app']:12s} ntt {r['ntt']:5.0f}x  poly {r['poly']:5.0f}x  "
            f"hash {r['hash']:5.0f}x"
        )
    out.append("(paper ranges: NTT 90-160x, hash 120-191x, poly 20-92x)")
    return "\n".join(out)


#: Figure 10 sweep values, as multiples of the default configuration.
FIG10_SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)


def fig10(workload: str = "MVM") -> Dict[str, List[Dict]]:
    """DSE on one workload: sweep scratchpad, VSAs, bandwidth.

    Returns, per swept resource, rows of normalised per-kernel
    performance (default = 1.0; higher is faster).
    """
    params = by_name(workload).plonk
    base = simulate_plonky2(params, DEFAULT_CONFIG).seconds_by_kind()

    def norm(hw) -> Dict:
        secs = simulate_plonky2(params, hw).seconds_by_kind()
        return {
            kind: base[kind] / secs[kind] if secs.get(kind) else 1.0
            for kind in ("ntt", "poly", "hash")
        }

    sweeps: Dict[str, List[Dict]] = {"scratchpad": [], "vsas": [], "bandwidth": []}
    for s in FIG10_SCALES:
        hw = DEFAULT_CONFIG.scaled(scratchpad_mb=DEFAULT_CONFIG.scratchpad_mb * s)
        sweeps["scratchpad"].append({"scale": s, **norm(hw)})
        hw = DEFAULT_CONFIG.scaled(num_vsas=max(1, int(DEFAULT_CONFIG.num_vsas * s)))
        sweeps["vsas"].append({"scale": s, **norm(hw)})
        hw = DEFAULT_CONFIG.scaled(
            mem_bandwidth_gbps=DEFAULT_CONFIG.mem_bandwidth_gbps * s
        )
        sweeps["bandwidth"].append({"scale": s, **norm(hw)})
    return sweeps


def format_fig10(sweeps: Dict[str, List[Dict]]) -> str:
    """Render the Figure 10 sweeps."""
    out = ["Figure 10: DSE on MVM (normalised performance per kernel type)"]
    for resource, rows in sweeps.items():
        out.append(f"  sweep {resource}:")
        for r in rows:
            out.append(
                f"    x{r['scale']:<4g} ntt {r['ntt']:5.2f}  poly {r['poly']:5.2f}  "
                f"hash {r['hash']:5.2f}"
            )
    out.append("(paper: NTT/poly track bandwidth+scratchpad; Merkle tracks VSAs)")
    return "\n".join(out)
