"""Regenerate every table of the paper's evaluation (Section 7).

Each ``tableN()`` returns structured rows; each ``format_tableN()``
renders them next to the paper's reported numbers so deviations are
visible at a glance.  The benchmark harness under ``benchmarks/`` calls
these, and ``repro.experiments.runner`` writes EXPERIMENTS.md from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..baselines import (
    AES128_CONSTRAINTS,
    SHA256_CONSTRAINTS,
    CpuModel,
    GpuModel,
    Groth16CpuModel,
    Groth16Workload,
    PipeZkModel,
)
from ..compiler import trace_plonky2, trace_recursive_plonky2, trace_starky
from ..compiler.frontend import RECURSION_PARAMS
from ..hw import DEFAULT_CONFIG, chip_budget
from ..sim import simulate_graph, simulate_plonky2, simulate_starky
from ..workloads import PAPER_WORKLOADS, PIPEZK_WORKLOADS, STARKY_WORKLOADS
from .paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)
from .proof_size import plonk_proof_size, stark_proof_size


# --------------------------------------------------------------------------
# Table 1: single-thread CPU proof-generation breakdown
# --------------------------------------------------------------------------


def table1() -> List[Dict]:
    """Single-thread CPU time and per-kernel shares for the six apps."""
    cpu = CpuModel(threads=1)
    rows = []
    for spec in PAPER_WORKLOADS:
        rep = cpu.run(trace_plonky2(spec.plonk))
        rows.append(
            {
                "app": spec.name,
                "time_s": rep.total_seconds,
                "poly": rep.fraction("poly"),
                "ntt": rep.fraction("ntt"),
                "merkle": rep.fraction("merkle"),
                "other_hash": rep.fraction("other_hash"),
                "transform": rep.fraction("transform"),
            }
        )
    return rows


def format_table1(rows: List[Dict]) -> str:
    """Render Table 1 rows beside the paper's numbers."""
    out = ["Table 1: single-thread CPU breakdown (measured | paper)"]
    out.append(f"{'app':12s} {'time(s)':>16s} {'poly%':>13s} {'ntt%':>13s} "
               f"{'merkle%':>13s} {'xform%':>13s}")
    for r in rows:
        p = PAPER_TABLE1[r["app"]]
        out.append(
            f"{r['app']:12s} {r['time_s']:7.0f} | {p['time_s']:5.0f} "
            f"{r['poly']*100:5.1f} | {p['poly']*100:5.1f} "
            f"{r['ntt']*100:5.1f} | {p['ntt']*100:5.1f} "
            f"{r['merkle']*100:5.1f} | {p['merkle']*100:5.1f} "
            f"{r['transform']*100:5.1f} | {p['transform']*100:5.1f}"
        )
    return "\n".join(out)


# --------------------------------------------------------------------------
# Table 2: area and power breakdown
# --------------------------------------------------------------------------


def table2() -> List[Dict]:
    """Area/power per component at the default configuration."""
    budget = chip_budget(DEFAULT_CONFIG)
    return [
        {"component": name, "area_mm2": area, "power_w": power}
        for name, area, power in budget.as_rows()
    ]


def format_table2(rows: List[Dict]) -> str:
    """Render Table 2 rows beside the paper's numbers."""
    out = ["Table 2: area and power (measured | paper)"]
    for r in rows:
        p = PAPER_TABLE2[r["component"]]
        out.append(
            f"{r['component']:28s} {r['area_mm2']:6.1f} | {p[0]:6.1f} mm2   "
            f"{r['power_w']:6.1f} | {p[1]:6.1f} W"
        )
    return "\n".join(out)


# --------------------------------------------------------------------------
# Table 3: end-to-end CPU vs GPU vs UniZK
# --------------------------------------------------------------------------


def table3() -> List[Dict]:
    """End-to-end Plonky2 proof time on CPU, GPU, UniZK."""
    cpu, gpu = CpuModel(), GpuModel()
    rows = []
    for spec in PAPER_WORKLOADS:
        graph = trace_plonky2(spec.plonk)
        cpu_s = cpu.run(graph).total_seconds
        gpu_s = gpu.run(graph).total_seconds
        uni_s = simulate_plonky2(spec.plonk).total_seconds
        rows.append(
            {
                "app": spec.name,
                "cpu_s": cpu_s,
                "gpu_s": gpu_s,
                "gpu_speedup": cpu_s / gpu_s,
                "unizk_s": uni_s,
                "unizk_speedup": cpu_s / uni_s,
            }
        )
    return rows


def format_table3(rows: List[Dict]) -> str:
    """Render Table 3 rows beside the paper's numbers."""
    out = ["Table 3: end-to-end comparison (measured | paper)"]
    out.append(f"{'app':12s} {'CPU(s)':>15s} {'GPU(s)':>15s} {'UniZK(s)':>17s} "
               f"{'speedup':>13s}")
    for r in rows:
        p = PAPER_TABLE3[r["app"]]
        out.append(
            f"{r['app']:12s} {r['cpu_s']:6.2f} | {p['cpu_s']:6.2f} "
            f"{r['gpu_s']:6.2f} | {p['gpu_s']:6.2f} "
            f"{r['unizk_s']:7.3f} | {p['unizk_s']:7.3f} "
            f"{r['unizk_speedup']:5.0f}x | {p['speedup']:4.0f}x"
        )
    avg = sum(r["unizk_speedup"] for r in rows) / len(rows)
    out.append(f"average UniZK speedup: {avg:.0f}x (paper: 97x)")
    return "\n".join(out)


# --------------------------------------------------------------------------
# Table 4: memory and VSA utilisation per kernel class
# --------------------------------------------------------------------------


def table4() -> List[Dict]:
    """Per-kernel-class memory/VSA utilisation for each app."""
    rows = []
    for spec in PAPER_WORKLOADS:
        util = simulate_plonky2(spec.plonk).utilization_by_kind()
        rows.append(
            {
                "app": spec.name,
                "ntt_mem": util["ntt"]["memory"],
                "ntt_vsa": util["ntt"]["vsa"],
                "poly_mem": util["poly"]["memory"],
                "poly_vsa": util["poly"]["vsa"],
                "hash_mem": util["hash"]["memory"],
                "hash_vsa": util["hash"]["vsa"],
            }
        )
    return rows


def format_table4(rows: List[Dict]) -> str:
    """Render Table 4 rows beside the paper's numbers."""
    out = ["Table 4: utilisation, measured | paper  (mem%, vsa%)"]
    for r in rows:
        p = PAPER_TABLE4[r["app"]]
        out.append(
            f"{r['app']:12s} NTT {r['ntt_mem']*100:4.1f}/{r['ntt_vsa']*100:4.1f} | "
            f"{p['ntt_mem']*100:4.1f}/{p['ntt_vsa']*100:4.1f}  "
            f"Poly {r['poly_mem']*100:4.1f}/{r['poly_vsa']*100:4.1f} | "
            f"{p['poly_mem']*100:4.1f}/{p['poly_vsa']*100:4.1f}  "
            f"Hash {r['hash_mem']*100:4.1f}/{r['hash_vsa']*100:4.1f} | "
            f"{p['hash_mem']*100:4.1f}/{p['hash_vsa']*100:4.1f}"
        )
    return "\n".join(out)


# --------------------------------------------------------------------------
# Table 5: Starky base + Plonky2 recursive aggregation
# --------------------------------------------------------------------------


def table5() -> List[Dict]:
    """Starky + recursive Plonky2: times, speedups, proof sizes."""
    cpu = CpuModel()
    rows = []
    for spec in STARKY_WORKLOADS:
        base_graph = trace_starky(spec.stark)
        base_cpu = cpu.run(base_graph).total_seconds
        base_uni = simulate_starky(spec.stark).total_seconds
        rows.append(
            {
                "app": spec.name,
                "stage": "Base",
                "cpu_s": base_cpu,
                "unizk_ms": base_uni * 1e3,
                "speedup": base_cpu / base_uni,
                "size_kb": stark_proof_size(spec.stark) / 1024,
            }
        )
        rec_graph = trace_recursive_plonky2()
        rec_cpu = cpu.run(rec_graph).total_seconds
        rec_uni = simulate_graph(rec_graph).total_seconds
        rows.append(
            {
                "app": spec.name,
                "stage": "Recursive",
                "cpu_s": rec_cpu,
                "unizk_ms": rec_uni * 1e3,
                "speedup": rec_cpu / rec_uni,
                "size_kb": plonk_proof_size(RECURSION_PARAMS) / 1024,
            }
        )
    return rows


def format_table5(rows: List[Dict]) -> str:
    """Render Table 5 rows beside the paper's numbers."""
    out = ["Table 5: Starky + Plonky2 (measured | paper)"]
    out.append(f"{'app':10s} {'stage':10s} {'CPU(s)':>13s} {'UniZK(ms)':>15s} "
               f"{'speedup':>13s} {'size(kB)':>13s}")
    for r in rows:
        p = PAPER_TABLE5[(r["app"], r["stage"])]
        out.append(
            f"{r['app']:10s} {r['stage']:10s} "
            f"{r['cpu_s']:5.1f} | {p['cpu_s']:5.1f} "
            f"{r['unizk_ms']:6.1f} | {p['unizk_ms']:6.1f} "
            f"{r['speedup']:5.0f}x | {p['speedup']:4.0f}x "
            f"{r['size_kb']:5.0f} | {p['size_kb']:5.0f}"
        )
    return "\n".join(out)


# --------------------------------------------------------------------------
# Table 6: UniZK vs PipeZK (Groth16)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _PipezkRow:
    app: str
    constraints: int


def table6() -> List[Dict]:
    """CPU + ASIC comparison for both protocols, plus batched throughput."""
    cpu = CpuModel()
    g16_cpu = Groth16CpuModel()
    pipezk = PipeZkModel()
    rows = []
    for spec, constraints in zip(
        PIPEZK_WORKLOADS, (SHA256_CONSTRAINTS, AES128_CONSTRAINTS)
    ):
        g16 = Groth16Workload(name=spec.name, constraints=constraints)
        groth_cpu_s = g16_cpu.prove_seconds(g16)
        pipezk_s = pipezk.prove_seconds(g16)
        # Starky + Plonky2 on a single block (recursion dominates).
        single = StarkSingleBlock(spec)
        sp_cpu_s = (
            cpu.run(trace_starky(single.params)).total_seconds
            + cpu.run(trace_recursive_plonky2()).total_seconds
        )
        uni_s = (
            simulate_starky(single.params).total_seconds
            + simulate_graph(trace_recursive_plonky2()).total_seconds
        )
        rows.append(
            {
                "app": spec.name,
                "groth16_cpu_s": groth_cpu_s,
                "starky_plonky2_cpu_s": sp_cpu_s,
                "pipezk_ms": pipezk_s * 1e3,
                "unizk_ms": uni_s * 1e3,
                "pipezk_speedup": groth_cpu_s / pipezk_s,
                "unizk_speedup": sp_cpu_s / uni_s,
            }
        )
    return rows


class StarkSingleBlock:
    """Single-block Starky parameters for the PipeZK comparison.

    One block shrinks the trace to its per-block footprint: SHA-256 to
    ~2^7 rows (padded to the protocol minimum of 2^10), AES-128 to its
    10-round trace.
    """

    def __init__(self, spec) -> None:
        from dataclasses import replace

        base = spec.stark
        self.params = replace(base, degree_bits=10)


def table6_throughput() -> Dict[str, float]:
    """Batched SHA-256 blocks/second: UniZK (Starky base amortised over
    many blocks + one recursion) vs PipeZK (one Groth16 proof/block)."""
    sha = STARKY_WORKLOADS[-1]  # SHA-256 spec
    blocks = 126
    base_s = simulate_starky(sha.stark).total_seconds
    rec_s = simulate_graph(trace_recursive_plonky2()).total_seconds
    unizk_blocks_per_s = blocks / (base_s + rec_s)
    pipezk = PipeZkModel()
    g16 = Groth16Workload(name="SHA-256", constraints=SHA256_CONSTRAINTS)
    pipezk_blocks_per_s = pipezk.blocks_per_second(g16)
    return {
        "unizk_blocks_per_s": unizk_blocks_per_s,
        "pipezk_blocks_per_s": pipezk_blocks_per_s,
        "throughput_ratio": unizk_blocks_per_s / pipezk_blocks_per_s,
    }


def format_table6(rows: List[Dict]) -> str:
    """Render Table 6 rows beside the paper's numbers."""
    out = ["Table 6: UniZK vs PipeZK (measured | paper)"]
    for r in rows:
        p = PAPER_TABLE6[r["app"]]
        out.append(
            f"{r['app']:8s} Groth16-CPU {r['groth16_cpu_s']:4.1f} | {p['groth16_cpu_s']:4.1f} s   "
            f"S+P-CPU {r['starky_plonky2_cpu_s']:4.1f} | {p['sp_cpu_s']:4.1f} s   "
            f"PipeZK {r['pipezk_ms']:5.0f} | {p['pipezk_ms']:5.0f} ms   "
            f"UniZK {r['unizk_ms']:5.1f} | {p['unizk_ms']:5.1f} ms   "
            f"speedups {r['pipezk_speedup']:3.0f}x/{r['unizk_speedup']:3.0f}x | "
            f"{p['pipezk_speedup']:3.0f}x/{p['unizk_speedup']:3.0f}x"
        )
    thr = table6_throughput()
    out.append(
        f"batched SHA-256: UniZK {thr['unizk_blocks_per_s']:.0f} blk/s vs "
        f"PipeZK {thr['pipezk_blocks_per_s']:.1f} blk/s -> "
        f"{thr['throughput_ratio']:.0f}x (paper: 8400 vs 10 -> 840x)"
    )
    return "\n".join(out)
