"""The paper's reported numbers, transcribed for side-by-side reporting.

Every experiment prints measured-vs-paper; these dictionaries are the
"paper" side (UniZK, ASPLOS 2025, Tables 1-6).
"""

from __future__ import annotations

#: Table 1: single-thread CPU breakdown.
PAPER_TABLE1 = {
    "Factorial": {"time_s": 580, "poly": 0.134, "ntt": 0.218, "merkle": 0.624,
                  "other_hash": 0.000, "transform": 0.024},
    "Fibonacci": {"time_s": 34, "poly": 0.121, "ntt": 0.200, "merkle": 0.658,
                  "other_hash": 0.001, "transform": 0.020},
    "ECDSA": {"time_s": 101, "poly": 0.249, "ntt": 0.157, "merkle": 0.572,
              "other_hash": 0.002, "transform": 0.020},
    "SHA-256": {"time_s": 673, "poly": 0.115, "ntt": 0.190, "merkle": 0.670,
                "other_hash": 0.000, "transform": 0.025},
    "Image Crop": {"time_s": 333, "poly": 0.115, "ntt": 0.171, "merkle": 0.688,
                   "other_hash": 0.003, "transform": 0.023},
    "MVM": {"time_s": 512, "poly": 0.137, "ntt": 0.159, "merkle": 0.657,
            "other_hash": 0.001, "transform": 0.046},
}

#: Table 2: (area mm2, power W) per component.
PAPER_TABLE2 = {
    "32 VSAs": (21.3, 58.0),
    "8 MB scratchpad": (5.0, 1.0),
    "Twiddle factor generator": (0.8, 2.6),
    "Transpose buffer": (0.9, 3.1),
    "2 HBM PHYs": (29.8, 31.7),
    "Total": (57.8, 96.4),
}

#: Table 3: end-to-end times (seconds) and UniZK speedup over CPU.
PAPER_TABLE3 = {
    "Factorial": {"cpu_s": 57.561, "gpu_s": 26.673, "unizk_s": 0.828, "speedup": 70},
    "Fibonacci": {"cpu_s": 3.373, "gpu_s": 0.736, "unizk_s": 0.023, "speedup": 147},
    "ECDSA": {"cpu_s": 7.463, "gpu_s": 2.063, "unizk_s": 0.065, "speedup": 115},
    "SHA-256": {"cpu_s": 55.445, "gpu_s": 26.845, "unizk_s": 0.908, "speedup": 61},
    "Image Crop": {"cpu_s": 23.765, "gpu_s": 16.182, "unizk_s": 0.373, "speedup": 64},
    "MVM": {"cpu_s": 39.669, "gpu_s": 33.383, "unizk_s": 0.320, "speedup": 124},
}

#: Table 4: per-kernel-class (memory, VSA) utilisation.
PAPER_TABLE4 = {
    "Factorial": {"ntt_mem": 0.476, "ntt_vsa": 0.043, "poly_mem": 0.157,
                  "poly_vsa": 0.020, "hash_mem": 0.206, "hash_vsa": 0.969},
    "Fibonacci": {"ntt_mem": 0.555, "ntt_vsa": 0.050, "poly_mem": 0.179,
                  "poly_vsa": 0.058, "hash_mem": 0.206, "hash_vsa": 0.967},
    "ECDSA": {"ntt_mem": 0.564, "ntt_vsa": 0.050, "poly_mem": 0.154,
              "poly_vsa": 0.092, "hash_mem": 0.206, "hash_vsa": 0.961},
    "SHA-256": {"ntt_mem": 0.474, "ntt_vsa": 0.043, "poly_mem": 0.136,
                "poly_vsa": 0.019, "hash_mem": 0.207, "hash_vsa": 0.972},
    "Image Crop": {"ntt_mem": 0.540, "ntt_vsa": 0.048, "poly_mem": 0.135,
                   "poly_vsa": 0.022, "hash_mem": 0.207, "hash_vsa": 0.971},
    "MVM": {"ntt_mem": 0.530, "ntt_vsa": 0.048, "poly_mem": 0.245,
            "poly_vsa": 0.059, "hash_mem": 0.217, "hash_vsa": 0.953},
}

#: Table 5: Starky base + Plonky2 recursion.
PAPER_TABLE5 = {
    ("Factorial", "Base"): {"cpu_s": 2.8, "unizk_ms": 42, "speedup": 67, "size_kb": 261},
    ("Factorial", "Recursive"): {"cpu_s": 1.7, "unizk_ms": 12, "speedup": 142, "size_kb": 155},
    ("Fibonacci", "Base"): {"cpu_s": 2.3, "unizk_ms": 26, "speedup": 88, "size_kb": 259},
    ("Fibonacci", "Recursive"): {"cpu_s": 1.9, "unizk_ms": 12, "speedup": 158, "size_kb": 155},
    ("SHA-256", "Base"): {"cpu_s": 0.8, "unizk_ms": 3, "speedup": 267, "size_kb": 778},
    ("SHA-256", "Recursive"): {"cpu_s": 2.0, "unizk_ms": 12, "speedup": 167, "size_kb": 187},
}

#: Table 6: PipeZK comparison.
PAPER_TABLE6 = {
    "SHA-256": {"groth16_cpu_s": 1.5, "sp_cpu_s": 2.0, "pipezk_ms": 102,
                "unizk_ms": 12.6, "pipezk_speedup": 15, "unizk_speedup": 159},
    "AES-128": {"groth16_cpu_s": 1.1, "sp_cpu_s": 3.4, "pipezk_ms": 97,
                "unizk_ms": 27.7, "pipezk_speedup": 12, "unizk_speedup": 123},
}

#: Figure 9 (approximate, read off the plot): per-kernel speedup ranges.
PAPER_FIG9_RANGES = {
    "ntt": (90, 160),
    "hash": (120, 191),
    "poly": (20, 92),
}
