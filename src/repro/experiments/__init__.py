"""Experiment drivers regenerating every table and figure of the paper."""

from . import figures, paper_data, proof_size, tables
from .figures import fig8, fig9, fig10
from .tables import table1, table2, table3, table4, table5, table6, table6_throughput

__all__ = [
    "tables",
    "figures",
    "paper_data",
    "proof_size",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table6_throughput",
    "fig8",
    "fig9",
    "fig10",
]
