"""Design-space Pareto exploration (the architect's view of Figure 10).

Sweeps VSA count x scratchpad size x memory bandwidth over a grid,
costs every point with the simulator and the area/power model, and
extracts the Pareto frontier (no other point is both faster and
smaller).  This turns the paper's three 1-D sensitivity sweeps into the
2-D trade-off an architect actually navigates -- and shows the default
configuration sits on (or near) the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..hw import DEFAULT_CONFIG, HwConfig, chip_budget
from ..sim import simulate_plonky2
from ..workloads import by_name

#: Default sweep grids (multiples of the baseline configuration).
VSA_GRID = (8, 16, 32, 64, 128)
SPAD_GRID = (2.0, 4.0, 8.0, 16.0)
BW_GRID = (500.0, 1000.0, 2000.0)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated hardware configuration."""

    hw: HwConfig
    seconds: float
    area_mm2: float
    power_w: float

    @property
    def label(self) -> str:
        """Compact configuration label."""
        return (
            f"{self.hw.num_vsas}v/{self.hw.scratchpad_mb:g}MB/"
            f"{self.hw.mem_bandwidth_gbps / 1000:g}TBs"
        )

    @property
    def perf_per_area(self) -> float:
        """1 / (seconds * mm2): higher is better."""
        return 1.0 / (self.seconds * self.area_mm2)


def sweep_design_space(
    workload: str = "MVM",
    vsa_grid: Sequence[int] = VSA_GRID,
    spad_grid: Sequence[float] = SPAD_GRID,
    bw_grid: Sequence[float] = BW_GRID,
) -> List[DesignPoint]:
    """Evaluate the full grid for one workload."""
    params = by_name(workload).plonk
    points = []
    for vsas in vsa_grid:
        for spad in spad_grid:
            for bw in bw_grid:
                hw = DEFAULT_CONFIG.scaled(
                    num_vsas=vsas, scratchpad_mb=spad, mem_bandwidth_gbps=bw
                )
                budget = chip_budget(hw)
                points.append(
                    DesignPoint(
                        hw=hw,
                        seconds=simulate_plonky2(params, hw).total_seconds,
                        area_mm2=budget.total_area_mm2,
                        power_w=budget.total_power_w,
                    )
                )
    return points


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated in (seconds, area): lower is better in both."""
    frontier = []
    for p in points:
        dominated = any(
            (q.seconds <= p.seconds and q.area_mm2 < p.area_mm2)
            or (q.seconds < p.seconds and q.area_mm2 <= p.area_mm2)
            for q in points
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.area_mm2)


def format_frontier(points: Sequence[DesignPoint], frontier: Sequence[DesignPoint]) -> str:
    """Render the frontier with the default config's position."""
    lines = [f"design space: {len(points)} points, frontier: {len(frontier)}"]
    for p in frontier:
        lines.append(
            f"  {p.label:18s} {p.seconds * 1e3:8.1f} ms  {p.area_mm2:6.1f} mm2 "
            f"{p.power_w:6.1f} W  perf/area {p.perf_per_area:8.5f}"
        )
    default = next(
        (p for p in points if p.hw == DEFAULT_CONFIG), None
    )
    if default is not None:
        on = any(f.hw == DEFAULT_CONFIG for f in frontier)
        lines.append(
            f"default config ({default.label}): {default.seconds * 1e3:.1f} ms, "
            f"{default.area_mm2:.1f} mm2 -- {'ON' if on else 'near'} the frontier"
        )
    return "\n".join(lines)
