"""Analytic proof-size models (paper Table 5's "Size" column).

Sizes are computed from the same structural inventory our functional
proofs serialise (:meth:`repro.fri.FriProof.size_bytes`): Merkle caps,
claimed openings, per-query initial leaves + authentication paths,
per-layer coset openings + paths, the final polynomial, and the
grinding witness -- evaluated at paper-scale parameters (cap height 4,
folding arity 8, as Plonky2/Starky configure them).
"""

from __future__ import annotations

from math import ceil

from ..compiler import PlonkParams, StarkParams

#: Bytes per field element / digest.
ELEM = 8
DIGEST = 32
#: Plonky2/Starky default Merkle cap height at paper scale.
CAP_HEIGHT = 4
#: Coefficients in the final FRI polynomial.
FINAL_POLY_LEN = 8


def _fri_query_bytes(
    lde_bits: int,
    arity_bits: int,
    tree_widths: list[int],
) -> int:
    """Per-query bytes: initial openings + layer openings."""
    total = 0
    # Initial openings: one leaf + path per committed tree.
    path_len = max(0, lde_bits - CAP_HEIGHT)
    for width in tree_widths:
        total += width * ELEM + path_len * DIGEST
    # Layer openings: arity-wide coset of extension values + path.
    size_bits = lde_bits
    final_bits = (FINAL_POLY_LEN - 1).bit_length() + 3
    while size_bits > final_bits:
        size_bits -= arity_bits
        coset = (1 << arity_bits) * 2 * ELEM
        total += coset + max(0, size_bits - CAP_HEIGHT) * DIGEST
    return total


def _fri_common_bytes(lde_bits: int, arity_bits: int, num_trees: int) -> int:
    """Caps, final polynomial, grinding witness."""
    caps = num_trees * (1 << CAP_HEIGHT) * DIGEST
    layers = max(0, (lde_bits - 6) // arity_bits + 1)
    layer_caps = layers * (1 << CAP_HEIGHT) * DIGEST
    final_poly = FINAL_POLY_LEN * 2 * ELEM
    return caps + layer_caps + final_poly + ELEM


def plonk_proof_size(p: PlonkParams) -> int:
    """Estimated Plonky2 proof size in bytes."""
    lde_bits = p.degree_bits + p.rate_bits
    widths = [
        p.width + p.salt_width,  # wires
        p.zs_columns,  # Z / partial products
        p.quotient_columns,  # quotient chunks
        p.width + 8,  # preprocessed (sigmas + selectors)
    ]
    opened_values = (sum(widths) + p.zs_columns) * 2 * ELEM  # at zeta (+ zeta*g)
    per_query = _fri_query_bytes(lde_bits, p.fri_arity_bits, widths)
    return (
        _fri_common_bytes(lde_bits, p.fri_arity_bits, len(widths))
        + opened_values
        + p.num_queries * per_query
    )


def stark_proof_size(p: StarkParams) -> int:
    """Estimated Starky proof size in bytes."""
    lde_bits = p.degree_bits + p.rate_bits
    widths = [p.width, p.quotient_width]
    opened_values = (2 * p.width + p.quotient_width) * 2 * ELEM
    per_query = _fri_query_bytes(lde_bits, p.fri_arity_bits, widths)
    return (
        _fri_common_bytes(lde_bits, p.fri_arity_bits, len(widths))
        + opened_values
        + p.num_queries * per_query
    )
