"""Poseidon hashing: permutation (naive + HADES-optimised), sponge,
and the duplex Fiat-Shamir challenger."""

from .challenger import Challenger
from .constants import (
    FULL_ROUNDS,
    PARTIAL_ROUNDS,
    SBOX_EXPONENT,
    WIDTH,
    mds_matrix,
    round_constants,
)
from .optimized import optimized_params, permute
from .poseidon import permute_naive
from .sponge import (
    CAPACITY,
    DIGEST_LEN,
    RATE,
    hash_batch,
    hash_no_pad,
    hash_or_noop,
    permutation_count,
    two_to_one,
)

__all__ = [
    "Challenger",
    "WIDTH",
    "FULL_ROUNDS",
    "PARTIAL_ROUNDS",
    "SBOX_EXPONENT",
    "RATE",
    "CAPACITY",
    "DIGEST_LEN",
    "mds_matrix",
    "round_constants",
    "permute",
    "permute_naive",
    "optimized_params",
    "hash_no_pad",
    "hash_batch",
    "hash_or_noop",
    "two_to_one",
    "permutation_count",
]
