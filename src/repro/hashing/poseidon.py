"""The Poseidon permutation, naive (reference) form.

Poseidon processes a 12-lane Goldilocks state through 4 full rounds,
22 partial rounds, and 4 more full rounds (paper Algorithm 1):

* a **full round** adds per-lane constants, applies the ``x**7`` S-box to
  every lane, and multiplies the state (as a row vector) by the MDS
  matrix;
* a **naive partial round** adds per-lane constants, applies the S-box to
  lane 0 only, and multiplies by the same MDS matrix.

The optimised (sparse-matrix) form that UniZK maps to hardware lives in
:mod:`repro.hashing.optimized` and is property-tested to be extensionally
equal to this one.

All functions are batched: ``states`` has shape ``(..., 12)``.
"""

from __future__ import annotations

import numpy as np

from ..field import gl64
from .constants import (
    FULL_ROUNDS,
    PARTIAL_ROUNDS,
    WIDTH,
    mds_matrix,
    round_constants,
)

#: Full rounds executed before the partial block.
HALF_FULL = FULL_ROUNDS // 2


def apply_mds(states: np.ndarray, matrix: np.ndarray | None = None) -> np.ndarray:
    """Row-vector state times matrix: ``out[j] = sum_i state[i] * M[i][j]``.

    On UniZK this is the weight-stationary systolic matrix multiply that
    keeps VSA utilisation above 95% during hashing (paper Table 4).
    """
    matrix = mds_matrix() if matrix is None else matrix
    # out[..., j] = sum_i state[..., i] * M[i, j], fully vectorised:
    # one broadcast multiply then a log-depth tree reduction over i.
    prods = gl64.mul(states[..., :, None], matrix)  # (..., i, j)
    return gl64.sum_along_axis(prods, axis=-2)


def full_round(states: np.ndarray, rc: np.ndarray) -> np.ndarray:
    """One full round: add constants, S-box every lane, MDS multiply."""
    states = gl64.add(states, rc)
    states = gl64.pow7(states)
    return apply_mds(states)


def partial_round_naive(states: np.ndarray, rc: np.ndarray) -> np.ndarray:
    """One naive partial round: add constants, S-box lane 0, MDS multiply."""
    states = gl64.add(states, rc)
    lane0 = gl64.pow7(states[..., 0])
    states = states.copy()
    states[..., 0] = lane0
    return apply_mds(states)


def permute_naive(states: np.ndarray) -> np.ndarray:
    """The full Poseidon permutation, reference implementation."""
    states = np.asarray(states, dtype=np.uint64)
    if states.shape[-1] != WIDTH:
        raise ValueError(f"state width must be {WIDTH}, got {states.shape[-1]}")
    full_rc, partial_rc = round_constants()
    for r in range(HALF_FULL):
        states = full_round(states, full_rc[r])
    for r in range(PARTIAL_ROUNDS):
        states = partial_round_naive(states, partial_rc[r])
    for r in range(HALF_FULL, FULL_ROUNDS):
        states = full_round(states, full_rc[r])
    return states
