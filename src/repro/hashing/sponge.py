"""Poseidon sponge: hashing, Merkle compression, batched variants.

Follows Plonky2's conventions (paper Section 5.3):

* rate 8, capacity 4 (state width 12);
* *overwrite-mode* absorption ("absorb method"): each 8-element chunk of
  the input replaces ``state[0:8]`` before a permutation -- this is what
  lets UniZK stream long Merkle leaves (e.g. 135 elements -> 17
  permutations) through the VSA;
* digests are 4 field elements (~256 bits);
* two-to-one compression for internal Merkle nodes places the children
  in ``state[0:8]`` and zero-pads, one permutation total.

Everything is batched over a leading axis so Merkle levels hash in one
vectorised sweep.
"""

from __future__ import annotations

import numpy as np

from ..field import gl64
from ..metrics import GLOBAL as _METRICS
from . import optimized
from .constants import WIDTH

#: Sponge rate (elements absorbed/squeezed per permutation).
RATE = 8
#: Capacity (untouched lanes guaranteeing collision resistance).
CAPACITY = WIDTH - RATE
#: Digest length in field elements.
DIGEST_LEN = 4


def permutation_count(input_len: int) -> int:
    """Number of Poseidon permutations to hash ``input_len`` elements.

    Used by both the sponge itself and the hardware cost models.
    """
    if input_len == 0:
        return 1
    return (input_len + RATE - 1) // RATE


def hash_no_pad(inputs) -> np.ndarray:
    """Hash a 1-D sequence of field elements to a 4-element digest."""
    arr = np.atleast_2d(np.asarray(inputs, dtype=np.uint64))
    return hash_batch(arr)[0]


def hash_batch(inputs: np.ndarray) -> np.ndarray:
    """Hash a batch of equal-length rows: (B, L) -> (B, DIGEST_LEN).

    Overwrite-mode absorption, one permutation per RATE-element chunk
    (including a final partial chunk).
    """
    inputs = np.asarray(inputs, dtype=np.uint64)
    if inputs.ndim != 2:
        raise ValueError("hash_batch expects a 2-D (batch, length) array")
    batch, length = inputs.shape
    state = gl64.zeros((batch, WIDTH))
    if length == 0:
        _METRICS.sponge_permutations += batch
        state = optimized.permute(state)
        return state[:, :DIGEST_LEN].copy()
    for start in range(0, length, RATE):
        chunk = inputs[:, start : start + RATE]
        state[:, : chunk.shape[1]] = chunk
        _METRICS.sponge_permutations += batch
        state = optimized.permute(state)
    return state[:, :DIGEST_LEN].copy()


def two_to_one(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Compress two digests into one (internal Merkle nodes).

    Batched: ``left`` and ``right`` are (..., DIGEST_LEN).
    """
    left = np.asarray(left, dtype=np.uint64)
    right = np.asarray(right, dtype=np.uint64)
    if left.shape != right.shape or left.shape[-1] != DIGEST_LEN:
        raise ValueError("two_to_one expects matching (..., 4) digests")
    state = gl64.zeros(left.shape[:-1] + (WIDTH,))
    state[..., :DIGEST_LEN] = left
    state[..., DIGEST_LEN : 2 * DIGEST_LEN] = right
    _METRICS.sponge_permutations += int(np.prod(left.shape[:-1], dtype=np.int64))
    state = optimized.permute(state)
    return state[..., :DIGEST_LEN].copy()


def hash_or_noop(values: np.ndarray) -> np.ndarray:
    """Plonky2-style leaf hashing: rows shorter than a digest are padded
    into the digest directly (no permutation); longer rows are hashed."""
    values = np.atleast_2d(np.asarray(values, dtype=np.uint64))
    batch, length = values.shape
    if length <= DIGEST_LEN:
        out = gl64.zeros((batch, DIGEST_LEN))
        out[:, :length] = values
        return out
    return hash_batch(values)
