"""Poseidon sponge: hashing, Merkle compression, batched variants.

Follows Plonky2's conventions (paper Section 5.3):

* rate 8, capacity 4 (state width 12);
* *overwrite-mode* absorption ("absorb method"): each 8-element chunk of
  the input replaces ``state[0:8]`` before a permutation -- this is what
  lets UniZK stream long Merkle leaves (e.g. 135 elements -> 17
  permutations) through the VSA;
* digests are 4 field elements (~256 bits);
* two-to-one compression for internal Merkle nodes places the children
  in ``state[0:8]`` and zero-pads, one permutation total.

Everything is batched over a leading axis so Merkle levels hash in one
vectorised sweep.  The ``*_into`` variants drive the whole sweep through
:func:`repro.hashing.optimized.permute_into` on workspace-owned state
buffers, so a full Merkle build allocates nothing per level.
"""

from __future__ import annotations

import numpy as np

from .. import tunables
from ..field import gl64
from ..metrics import GLOBAL as _METRICS
from . import optimized
from .constants import WIDTH

#: Sponge rate (elements absorbed/squeezed per permutation).
RATE = 8
#: Capacity (untouched lanes guaranteeing collision resistance).
CAPACITY = WIDTH - RATE
#: Digest length in field elements.
DIGEST_LEN = 4


def permutation_count(input_len: int) -> int:
    """Number of Poseidon permutations to hash ``input_len`` elements.

    Used by both the sponge itself and the hardware cost models.
    """
    if input_len == 0:
        return 1
    return (input_len + RATE - 1) // RATE


def _state_buf(batch: int, ws: gl64.Workspace) -> np.ndarray:
    state = ws.temp((batch, WIDTH), "sponge:state")
    state.fill(0)
    return state


def hash_no_pad(inputs) -> np.ndarray:
    """Hash a 1-D sequence of field elements to a 4-element digest."""
    arr = np.atleast_2d(np.asarray(inputs, dtype=np.uint64))
    return hash_batch(arr)[0]


def hash_batch(inputs: np.ndarray, ws: gl64.Workspace | None = None) -> np.ndarray:
    """Hash a batch of equal-length rows: (B, L) -> (B, DIGEST_LEN).

    Overwrite-mode absorption, one permutation per RATE-element chunk
    (including a final partial chunk).
    """
    inputs = gl64.asarray(inputs, trusted=True)  # canonical by construction
    if inputs.ndim != 2:
        raise ValueError("hash_batch expects a 2-D (batch, length) array")
    out = np.empty((inputs.shape[0], DIGEST_LEN), dtype=np.uint64)
    return hash_batch_into(inputs, out, ws)


def hash_batch_into(
    inputs: np.ndarray, out: np.ndarray, ws: gl64.Workspace | None = None
) -> np.ndarray:
    """:func:`hash_batch`, writing digests into a caller-provided (B, 4)
    buffer.  The sponge state lives in the workspace arena.

    ``out`` may alias ``inputs``: every read of ``inputs`` completes
    before the single final write to ``out``.
    """
    ws = ws or gl64.default_workspace()
    batch, length = inputs.shape
    state = _state_buf(batch, ws)
    if length == 0:
        _METRICS.sponge_permutations += batch
        optimized.permute_into(state, ws)
        np.copyto(out, state[:, :DIGEST_LEN])
        return out
    for start in range(0, length, RATE):
        chunk = inputs[:, start : start + RATE]
        state[:, : chunk.shape[1]] = chunk
        _METRICS.sponge_permutations += batch
        optimized.permute_into(state, ws)
    np.copyto(out, state[:, :DIGEST_LEN])
    return out


def two_to_one(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Compress two digests into one (internal Merkle nodes).

    Batched: ``left`` and ``right`` are (..., DIGEST_LEN).
    """
    left = gl64.asarray(left, trusted=True)  # digests are canonical
    right = gl64.asarray(right, trusted=True)
    if left.shape != right.shape or left.shape[-1] != DIGEST_LEN:
        raise ValueError("two_to_one expects matching (..., 4) digests")
    ws = gl64.default_workspace()
    lead = left.shape[:-1]
    batch = int(np.prod(lead, dtype=np.int64))
    state = _state_buf(batch, ws)
    state[:, :DIGEST_LEN] = left.reshape(batch, DIGEST_LEN)
    state[:, DIGEST_LEN : 2 * DIGEST_LEN] = right.reshape(batch, DIGEST_LEN)
    _METRICS.sponge_permutations += batch
    optimized.permute_into(state, ws)
    return state[:, :DIGEST_LEN].reshape(lead + (DIGEST_LEN,)).copy()


def compress_level_into(
    prev: np.ndarray, out: np.ndarray, ws: gl64.Workspace | None = None
) -> np.ndarray:
    """One fused Merkle level: (2k, 4) digests -> (k, 4) parents.

    Equivalent to ``two_to_one(prev[0::2], prev[1::2])`` but interleaves
    both children straight into the workspace state buffer and writes
    the parents into ``out`` (normally a view of the tree's level-order
    arena) -- no temporaries besides the shared sponge state.

    ``out`` may alias ``prev``: both children are copied into the
    workspace state before ``out`` is written.
    """
    ws = ws or gl64.default_workspace()
    half = prev.shape[0] // 2
    state = _state_buf(half, ws)
    state[:, :DIGEST_LEN] = prev[0::2]
    state[:, DIGEST_LEN : 2 * DIGEST_LEN] = prev[1::2]
    _METRICS.sponge_permutations += half
    optimized.permute_into(state, ws)
    np.copyto(out, state[:, :DIGEST_LEN])
    return out


def hash_or_noop(values: np.ndarray) -> np.ndarray:
    """Plonky2-style leaf hashing: rows shorter than a digest are padded
    into the digest directly (no permutation); longer rows are hashed."""
    values = np.atleast_2d(np.asarray(values, dtype=np.uint64))
    out = np.empty((values.shape[0], DIGEST_LEN), dtype=np.uint64)
    return hash_leaves_into(values, out)


def hash_leaves_into(
    values: np.ndarray, out: np.ndarray, ws: gl64.Workspace | None = None
) -> np.ndarray:
    """:func:`hash_or_noop` semantics, writing digests into ``out``.

    ``out`` must not alias ``values``: the short-row path zero-fills
    ``out`` before reading ``values``.
    """
    values = np.atleast_2d(np.asarray(values, dtype=np.uint64))
    length = values.shape[1]
    if length <= DIGEST_LEN:
        out.fill(0)
        out[:, :length] = values
        return out
    # Rows hash independently, so sweeping them in bounded chunks (the
    # plan tuner's ``leaf_hash_chunk`` knob) yields bit-identical
    # digests and the same permutation counts; it only caps the size of
    # the transient sponge state.
    chunk = tunables.current().leaf_hash_chunk
    batch = values.shape[0]
    if chunk and batch > chunk:
        for start in range(0, batch, chunk):
            hash_batch_into(values[start : start + chunk], out[start : start + chunk], ws)
        return out
    return hash_batch_into(values, out, ws)
