"""Deterministic Poseidon parameter generation.

Round constants are derived from SHA-256 in counter mode with a fixed
seed string ("nothing up my sleeve"), rejection-sampled into the field.
The MDS matrix uses the Cauchy construction, which is MDS by
construction (:func:`repro.field.matrix.cauchy_mds`).

We keep Plonky2's *shape* exactly -- width 12, ``x**7`` S-box, 8 full
rounds and 22 partial rounds (Algorithm 1 of the paper) -- but not its
bit-identical constants: the reproduction targets the computation
structure and cost, and the constants only need to be valid field
elements with no algebraic structure.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

import numpy as np

from ..field import goldilocks as gl, matrix as fm

#: Poseidon state width in field elements (matches the 12x12 VSA).
WIDTH = 12
#: Number of full rounds (split 4 + 4 around the partial rounds).
FULL_ROUNDS = 8
#: Number of partial rounds.
PARTIAL_ROUNDS = 22
#: S-box exponent; ``gcd(7, p - 1) = 1`` so ``x**7`` is a permutation.
SBOX_EXPONENT = 7

_SEED = b"unizk-repro-poseidon-v1"


def _constant_stream(count: int) -> list[int]:
    """Derive ``count`` field elements from the seeded SHA-256 stream."""
    out: list[int] = []
    counter = 0
    while len(out) < count:
        digest = hashlib.sha256(_SEED + counter.to_bytes(8, "little")).digest()
        counter += 1
        for off in range(0, 32, 8):
            candidate = int.from_bytes(digest[off : off + 8], "little")
            if candidate < gl.P:
                out.append(candidate)
                if len(out) == count:
                    break
    return out


@lru_cache(maxsize=1)
def round_constants() -> tuple[np.ndarray, np.ndarray]:
    """Return ``(full_rc, partial_rc)``.

    ``full_rc`` has shape (FULL_ROUNDS, WIDTH): the per-lane constants of
    each full round.  ``partial_rc`` has shape (PARTIAL_ROUNDS, WIDTH):
    the *naive* per-lane constants of each partial round, added before
    the lane-0 S-box (the optimised equivalents are derived in
    :mod:`repro.hashing.optimized`).
    """
    total = (FULL_ROUNDS + PARTIAL_ROUNDS) * WIDTH
    stream = _constant_stream(total)
    arr = np.array(stream, dtype=np.uint64).reshape(FULL_ROUNDS + PARTIAL_ROUNDS, WIDTH)
    return arr[:FULL_ROUNDS].copy(), arr[FULL_ROUNDS:].copy()


@lru_cache(maxsize=1)
def mds_matrix() -> np.ndarray:
    """The WIDTH x WIDTH MDS diffusion matrix (Cauchy construction)."""
    return fm.cauchy_mds(WIDTH)
