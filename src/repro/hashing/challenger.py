"""Duplex Fiat-Shamir challenger (paper Figure 7's "Get Challenges").

The prover and verifier both run this transcript object: every message
the prover would send interactively is *observed*, and every verifier
random value is *squeezed* from the sponge state, making the protocol
non-interactive (Fiat-Shamir transform, Section 2.1 of the paper).

Mirrors Plonky2's duplex challenger: observed elements buffer until a
full rate chunk (or a squeeze) forces a permutation; squeezed elements
come from the rate part of the state.
"""

from __future__ import annotations

import numpy as np

from ..field import extension as fext, gl64, goldilocks as gl
from ..metrics import GLOBAL as _METRICS
from . import optimized
from .constants import WIDTH
from .sponge import DIGEST_LEN, RATE


class Challenger:
    """Deterministic transcript with duplex absorb/squeeze semantics."""

    def __init__(self) -> None:
        self._state = gl64.zeros(WIDTH)
        self._input_buffer: list[int] = []
        self._output_buffer: list[int] = []

    # -- observing prover messages ----------------------------------------

    def observe_element(self, value: int) -> None:
        """Absorb one field element."""
        self._output_buffer.clear()
        self._input_buffer.append(gl.canonical(int(value)))
        if len(self._input_buffer) == RATE:
            self._duplex()

    def observe_elements(self, values) -> None:
        """Absorb a sequence of field elements."""
        for v in np.asarray(values, dtype=np.uint64).reshape(-1):
            self.observe_element(int(v))

    def observe_digest(self, digest: np.ndarray) -> None:
        """Absorb a 4-element Poseidon digest (e.g. a Merkle cap entry)."""
        digest = np.asarray(digest, dtype=np.uint64).reshape(-1)
        if digest.size != DIGEST_LEN:
            raise ValueError("digest must have 4 elements")
        self.observe_elements(digest)

    def observe_ext(self, value: np.ndarray) -> None:
        """Absorb an extension-field element (both limbs)."""
        pair = fext.to_pair(value)
        self.observe_element(pair[0])
        self.observe_element(pair[1])

    def observe_cap(self, cap: np.ndarray) -> None:
        """Absorb a Merkle cap (a (c, 4) array of digests)."""
        for digest in np.atleast_2d(np.asarray(cap, dtype=np.uint64)):
            self.observe_digest(digest)

    def clone(self) -> "Challenger":
        """Fork the transcript (used by proof-of-work grinding).

        Constructs ``type(self)()`` so subclasses fork as themselves --
        the analysis-layer recording challenger relies on this to give
        every grinding fork its own (discarded) event stream.
        """
        other = type(self)()
        other._state = self._state.copy()
        other._input_buffer = list(self._input_buffer)
        other._output_buffer = list(self._output_buffer)
        return other

    # -- squeezing verifier randomness -------------------------------------

    def get_challenge(self) -> int:
        """Squeeze one base-field challenge."""
        if self._input_buffer or not self._output_buffer:
            self._duplex()
        return self._output_buffer.pop()

    def get_n_challenges(self, n: int) -> list[int]:
        """Squeeze ``n`` base-field challenges."""
        return [self.get_challenge() for _ in range(n)]

    def get_ext_challenge(self) -> np.ndarray:
        """Squeeze one extension-field challenge (two limbs)."""
        c0 = self.get_challenge()
        c1 = self.get_challenge()
        return fext.make(c0, c1)

    def get_indices(self, n: int, domain_size: int) -> list[int]:
        """Squeeze ``n`` query indices uniform over ``[0, domain_size)``.

        Domain sizes are powers of two, so masking low bits is unbiased.
        """
        if domain_size & (domain_size - 1):
            raise ValueError("domain_size must be a power of two")
        mask = domain_size - 1
        return [self.get_challenge() & mask for _ in range(n)]

    # -- internals ----------------------------------------------------------

    def _duplex(self) -> None:
        for i, v in enumerate(self._input_buffer):
            self._state[i] = np.uint64(v)
        self._input_buffer.clear()
        _METRICS.challenger_permutations += 1
        self._state = optimized.permute(self._state)
        self._output_buffer = [int(x) for x in self._state[:RATE]][::-1]
