"""HADES-optimised Poseidon: sparse partial rounds (paper Algorithm 1).

The naive partial round multiplies by the dense MDS matrix every round.
Because only lane 0 passes through an S-box, the 22 dense multiplies can
be refactored into one dense *pre-matrix* (``PreMDSMatrix``) followed by
22 *sparse* matrices (``SparseMDSMatrix``) whose non-zeros sit only in
the first row, first column, and diagonal -- precisely the structure
UniZK's partial-round mapping exploits with its ``u`` / ``v`` / diagonal
decomposition and reverse links (Figure 5b).

Derivation (row-vector convention, ``state <- state @ M``):

* Matrices.  Factor ``M = M' @ M''`` with ``M' = [[1, 0], [0, Hat]]``
  (lane-0-preserving) and ``M'' = [[m00, r], [Hat^-1 c, I]]`` (sparse).
  ``M'`` commutes with the lane-0 S-box, so peeling from the last round
  backwards and absorbing each ``M'`` into the previous round's matrix
  (``M_{k-1} = M @ M'_k``) leaves one dense lane-0-preserving pre-matrix
  in front and a sparse matrix per round.
* Constants.  The naive per-round constant vectors are replaced by one
  pre-constant vector plus one post-S-box scalar per round.  Both chains
  present identical lane-0 values to each S-box, so the unknown
  constants satisfy a *linear* system: match the constant offset at
  every S-box input and at the block output.  We build the 34x34 system
  by evaluating the transformed chain on unit vectors and solve it
  exactly over GF(p).

Equivalence with the naive permutation is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .. import tunables
from ..field import gl64, goldilocks as gl, matrix as fm
from .constants import PARTIAL_ROUNDS, WIDTH, mds_matrix, round_constants
from .poseidon import FULL_ROUNDS, HALF_FULL, full_round


@dataclass(frozen=True)
class SparseRound:
    """One optimised partial round: S-box lane 0, add ``post_constant`` to
    lane 0, then multiply by the sparse matrix ``(m00, row, col_hat)``.

    ``row`` feeds lane 0 into every output lane (the paper's ``u``);
    ``col_hat`` is dotted against the state to form output lane 0 (the
    paper's ``v``); the diagonal is the identity (the paper's ``E``).
    """

    m00: int
    row: np.ndarray  # (WIDTH-1,)  first row beyond [0,0]
    col_hat: np.ndarray  # (WIDTH-1,)  first column beyond [0,0]
    post_constant: int


@dataclass(frozen=True)
class OptimizedParams:
    """All derived tensors of the optimised permutation."""

    pre_constants: np.ndarray  # (WIDTH,) added before the pre-matrix
    pre_matrix: np.ndarray  # (WIDTH, WIDTH) lane-0-preserving dense matrix
    rounds: tuple[SparseRound, ...]


def _vec_mat(vec: list[int], matrix: np.ndarray) -> list[int]:
    """Row vector times matrix with Python-int accumulation."""
    m = matrix.tolist()
    n = len(m)
    cols = len(m[0])
    return [gl.canonical(sum(vec[i] * m[i][j] for i in range(n))) for j in range(cols)]


def _derive_matrices() -> tuple[np.ndarray, list[tuple[int, np.ndarray, np.ndarray]]]:
    """Peel the sparse factors; returns (pre_matrix, sparse descriptors).

    Descriptors are ordered first-round-first.
    """
    mds = mds_matrix()
    sparse: list[tuple[int, np.ndarray, np.ndarray]] = []
    m_k = mds.copy()  # M_R
    pre = None
    for k in range(PARTIAL_ROUNDS, 0, -1):
        hat = m_k[1:, 1:].copy()
        row = m_k[0, 1:].copy()
        col = m_k[1:, 0]
        m00 = int(m_k[0, 0])
        col_hat = np.array(fm.matvec(fm.inverse(hat), col.tolist()), dtype=np.uint64)
        sparse.append((m00, row, col_hat))
        m_prime = np.zeros((WIDTH, WIDTH), dtype=np.uint64)
        m_prime[0, 0] = 1
        m_prime[1:, 1:] = hat
        if k > 1:
            # Absorb the lane-0-preserving factor into the previous round.
            m_k = fm.matmul(mds, m_prime)
        else:
            # Nothing precedes round 1: its M' survives as the pre-matrix.
            pre = m_prime
    sparse.reverse()  # appended last-round-first; return first-round-first
    return pre, sparse


def _transformed_offsets(
    pre_c: list[int],
    post_c: list[int],
    pre_matrix: np.ndarray,
    sparse: list[tuple[int, np.ndarray, np.ndarray]],
) -> list[int]:
    """Constant offsets of the transformed chain: lane-0 offset at each
    S-box input followed by the WIDTH output offsets."""
    state = _vec_mat(pre_c, pre_matrix)
    offsets: list[int] = []
    for k in range(PARTIAL_ROUNDS):
        offsets.append(state[0])
        state[0] = post_c[k]  # S-box output is a fresh variable; then + d_k
        m00, row, col_hat = sparse[k]
        out0 = gl.canonical(state[0] * m00 + sum(int(c) * s for c, s in zip(col_hat, state[1:])))
        rest = [gl.canonical(state[0] * int(r) + state[j + 1]) for j, r in enumerate(row)]
        state = [out0] + rest
    return offsets + state


def _naive_offsets() -> list[int]:
    """Constant offsets of the naive chain (same observable positions)."""
    _, partial_rc = round_constants()
    mds = mds_matrix()
    state = [0] * WIDTH
    offsets: list[int] = []
    for k in range(PARTIAL_ROUNDS):
        state = [gl.canonical(s + int(c)) for s, c in zip(state, partial_rc[k])]
        offsets.append(state[0])
        state[0] = 0  # S-box output becomes a fresh variable
        state = _vec_mat(state, mds)
    return offsets + state


def _derive_constants(
    pre_matrix: np.ndarray, sparse: list[tuple[int, np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, list[int]]:
    """Solve the linear system matching the naive chain's offsets."""
    n_unknowns = WIDTH + PARTIAL_ROUNDS

    def apply(z: list[int]) -> list[int]:
        return _transformed_offsets(z[:WIDTH], z[WIDTH:], pre_matrix, sparse)

    # Build the system column by column (the map is linear in z).
    cols = []
    for i in range(n_unknowns):
        unit = [0] * n_unknowns
        unit[i] = 1
        cols.append(apply(unit))
    a = np.array(cols, dtype=np.uint64).T  # (n_eq, n_unknowns)
    target = _naive_offsets()
    a_inv = fm.inverse(a)
    solution = fm.matvec(a_inv, target)
    pre_constants = np.array(solution[:WIDTH], dtype=np.uint64)
    post_constants = [int(v) for v in solution[WIDTH:]]
    return pre_constants, post_constants


@lru_cache(maxsize=1)
def optimized_params() -> OptimizedParams:
    """Derive (and cache) the optimised Poseidon parameters."""
    pre_matrix, sparse = _derive_matrices()
    pre_constants, post_constants = _derive_constants(pre_matrix, sparse)
    rounds = tuple(
        SparseRound(m00=m00, row=row, col_hat=col_hat, post_constant=post)
        for (m00, row, col_hat), post in zip(sparse, post_constants)
    )
    return OptimizedParams(
        pre_constants=pre_constants, pre_matrix=pre_matrix, rounds=rounds
    )


def sparse_round_apply(states: np.ndarray, rnd: SparseRound) -> np.ndarray:
    """Apply one sparse partial round to a batch of states.

    Mirrors the Figure 5b dataflow: lane 0 is S-boxed and shifted by the
    post-constant (first PE column), output lane 0 is the ``v`` dot
    product (second column, accumulated via reverse links), and the other
    lanes get ``state[0] * u[j] + state[j]`` (third column).
    """
    lane0 = gl64.add(gl64.pow7(states[..., 0]), np.uint64(rnd.post_constant))
    out = np.empty_like(states)
    rest = states[..., 1:]
    dot = gl64.sum_along_axis(gl64.mul(rest, rnd.col_hat), axis=-1)
    out[..., 0] = gl64.add(gl64.mul(lane0, np.uint64(rnd.m00)), dot)
    out[..., 1:] = gl64.add(gl64.mul(lane0[..., None], rnd.row), rest)
    return out


@lru_cache(maxsize=1)
def _scalar_tables():
    """Python-int copies of all round tensors for the scalar fast path.

    Matrices are stored transposed (column-major tuples) so the row
    vector x matrix products index them directly.
    """
    params = optimized_params()
    full_rc, _ = round_constants()
    mds_t = tuple(tuple(int(v) for v in col) for col in zip(*mds_matrix().tolist()))
    pre_t = tuple(tuple(int(v) for v in col) for col in zip(*params.pre_matrix.tolist()))
    full = [tuple(int(v) for v in row) for row in full_rc.tolist()]
    pre_c = tuple(int(v) for v in params.pre_constants)
    rounds = [
        (r.m00, tuple(int(v) for v in r.row), tuple(int(v) for v in r.col_hat), r.post_constant)
        for r in params.rounds
    ]
    return mds_t, pre_t, full, pre_c, rounds


def permute_scalar(state: list[int]) -> list[int]:
    """Scalar (Python-int) permutation for single states.

    NumPy's per-call overhead dominates on 12-element arrays, so Merkle
    path verification and the duplex challenger use this path (~20x
    faster for batch size 1).
    """
    p = gl.P
    mds_t, pre_t, full, pre_c, rounds = _scalar_tables()
    rng = range(WIDTH)

    def full_rounds(s, lo, hi):
        for r in range(lo, hi):
            rc = full[r]
            s = [pow((v + c) % p, 7, p) for v, c in zip(s, rc)]
            s = [sum(s[i] * col[i] for i in rng) % p for col in mds_t]
        return s

    state = full_rounds(list(state), 0, HALF_FULL)
    state = [(v + c) % p for v, c in zip(state, pre_c)]
    state = [sum(state[i] * col[i] for i in rng) % p for col in pre_t]
    for m00, row, col_hat, post in rounds:
        lane0 = (pow(state[0], 7, p) + post) % p
        out0 = (lane0 * m00 + sum(state[i + 1] * col_hat[i] for i in range(WIDTH - 1))) % p
        state = [out0] + [(lane0 * row[j] + state[j + 1]) % p for j in range(WIDTH - 1)]
    return full_rounds(state, HALF_FULL, FULL_ROUNDS)


#: Batches at or below this size take the scalar path (measured
#: crossover: the vectorised permutation is launch-bound below ~10).
#: The plan tuner can override the crossover per proof via
#: :mod:`repro.tunables`; both paths are extensionally equal, so the
#: knob only moves wall-clock time.
_SCALAR_BATCH_LIMIT = 8


@lru_cache(maxsize=1)
def _fused_tables():
    """Round tensors re-packed for the zero-copy batched permutation.

    * ``full_post[r]``: the constant vector applied *after* round ``r``'s
      MDS multiply -- round ``r+1``'s pre-S-box constants (or the
      partial block's pre-constants after the last leading full round).
      Fusing the adds into the matmul kernel removes the separate
      add-constants pass of the naive round structure; the arithmetic is
      identical because ``(state @ M) + rc`` is exactly the next round's
      input.
    * ``sparse_vec[k]``: the 23-wide constant vector
      ``[col_hat | m00 | row]`` of sparse round ``k``, letting one
      vectorised multiply cover the ``v``-dot, the ``m00`` product and
      the ``u``-column update of Figure 5b in a single kernel launch.
    """
    params = optimized_params()
    full_rc, _ = round_constants()
    mds = np.ascontiguousarray(mds_matrix())
    rc = [np.ascontiguousarray(full_rc[r]) for r in range(FULL_ROUNDS)]
    full_post: list[np.ndarray | None] = []
    for r in range(FULL_ROUNDS):
        if r == HALF_FULL - 1:
            full_post.append(np.ascontiguousarray(params.pre_constants))
        elif r + 1 < FULL_ROUNDS and r + 1 != HALF_FULL:
            full_post.append(rc[r + 1])
        else:
            full_post.append(None)
    sparse_vec = np.empty((PARTIAL_ROUNDS, 2 * WIDTH - 1), dtype=np.uint64)
    sparse_post = np.empty(PARTIAL_ROUNDS, dtype=np.uint64)
    for k, rnd in enumerate(params.rounds):
        sparse_vec[k, : WIDTH - 1] = rnd.col_hat
        sparse_vec[k, WIDTH - 1] = np.uint64(rnd.m00)
        sparse_vec[k, WIDTH:] = rnd.row
        sparse_post[k] = np.uint64(rnd.post_constant)
    for arr in (mds, sparse_vec, sparse_post, *rc, *(p for p in full_post if p is not None)):
        arr.flags.writeable = False
    pre_matrix = np.ascontiguousarray(params.pre_matrix)
    pre_matrix.flags.writeable = False
    return mds, pre_matrix, rc, full_post, sparse_vec, sparse_post


def _matmul_into(
    states: np.ndarray,
    matrix: np.ndarray,
    post: np.ndarray | None,
    ws: gl64.Workspace,
) -> None:
    """``states <- states @ matrix (+ post)`` in place, batched.

    One broadcast multiply into a scratch tensor, then a pairwise tree
    reduction written back into ``states`` (the same associativity the
    old ``apply_mds`` + ``sum_along_axis`` pair used, so results are
    bit-identical); the optional constant add rides the final reduction
    step instead of costing its own pass.
    """
    b = states.shape[0]
    prods = ws.temp((b, WIDTH, WIDTH), "pm:prods")
    gl64.mul_into(states[:, :, None], matrix, prods, ws)
    r6 = ws.temp((b, 6, WIDTH), "pm:r6")
    gl64.add_into(prods[:, :6, :], prods[:, 6:, :], r6, ws)
    r3 = ws.temp((b, 3, WIDTH), "pm:r3")
    gl64.add_into(r6[:, :3, :], r6[:, 3:, :], r3, ws)
    gl64.add_into(r3[:, 0, :], r3[:, 1, :], states, ws)
    gl64.add_into(states, r3[:, 2, :], states, ws)
    if post is not None:
        gl64.add_into(states, post, states, ws)


def _sparse_round_into(
    states: np.ndarray, vec: np.ndarray, post: np.uint64, ws: gl64.Workspace
) -> None:
    """One optimised partial round, in place on a (B, 12) state buffer."""
    b = states.shape[0]
    lane = ws.temp((b,), "sp:lane")
    gl64.pow7_into(states[:, 0], lane, ws)
    gl64.add_into(lane, post, lane, ws)
    buf = ws.temp((b, 2 * WIDTH - 1), "sp:buf")
    np.copyto(buf[:, : WIDTH - 1], states[:, 1:])
    buf[:, WIDTH - 1] = lane
    buf[:, WIDTH:] = lane[:, None]
    prod = ws.temp((b, 2 * WIDTH - 1), "sp:prod")
    gl64.mul_into(buf, vec, prod, ws)
    # out lane 0 = lane*m00 + rest . col_hat: tree-sum of prod[:, :12].
    s6 = ws.temp((b, 6), "sp:s6")
    gl64.add_into(prod[:, :6], prod[:, 6:WIDTH], s6, ws)
    s3 = ws.temp((b, 3), "sp:s3")
    gl64.add_into(s6[:, :3], s6[:, 3:], s3, ws)
    gl64.add_into(s3[:, 0], s3[:, 1], lane, ws)
    gl64.add_into(lane, s3[:, 2], lane, ws)
    # out lanes 1..11 = lane0 * row + rest.
    gl64.add_into(prod[:, WIDTH:], states[:, 1:], states[:, 1:], ws)
    states[:, 0] = lane


def permute_into(states: np.ndarray, ws: gl64.Workspace | None = None) -> np.ndarray:
    """The Poseidon permutation, in place on a writable (..., 12) buffer.

    This is the zero-copy engine behind :func:`permute` and the fused
    Merkle level sweep: full-round constants are pre-fused into the MDS
    matmul, the 22 sparse partial rounds run off the packed
    ``[col_hat | m00 | row]`` vectors, and every intermediate lives in
    the workspace arena.  Small batches dispatch to the Python-int
    scalar path (extensionally equal).
    """
    if states.shape[-1] != WIDTH:
        raise ValueError(f"state width must be {WIDTH}, got {states.shape[-1]}")
    flat = states.reshape(-1, WIDTH)
    if flat.shape[0] <= tunables.current().scalar_batch_limit:
        for i in range(flat.shape[0]):
            flat[i] = permute_scalar([int(v) for v in flat[i]])
        return states
    ws = ws or gl64.default_workspace()
    chunk = tunables.current().permute_chunk
    if chunk and flat.shape[0] > chunk:
        # Rows are independent, so running the permutation per chunk is
        # bit-exact while keeping the (rows, 12, 12) matmul scratch
        # cache-resident at large Merkle levels.
        for start in range(0, flat.shape[0], chunk):
            permute_into(flat[start : start + chunk], ws)
        return states
    mds, pre_matrix, rc, full_post, sparse_vec, sparse_post = _fused_tables()
    gl64.add_into(flat, rc[0], flat, ws)
    for r in range(HALF_FULL):
        gl64.pow7_into(flat, flat, ws)
        _matmul_into(flat, mds, full_post[r], ws)
    _matmul_into(flat, pre_matrix, None, ws)
    for k in range(PARTIAL_ROUNDS):
        _sparse_round_into(flat, sparse_vec[k], sparse_post[k], ws)
    gl64.add_into(flat, rc[HALF_FULL], flat, ws)
    for r in range(HALF_FULL, FULL_ROUNDS):
        gl64.pow7_into(flat, flat, ws)
        _matmul_into(flat, mds, full_post[r], ws)
    return states


def permute(states: np.ndarray) -> np.ndarray:
    """The Poseidon permutation, optimised form (default for the sponge).

    Extensionally equal to :func:`repro.hashing.poseidon.permute_naive`;
    ~6x fewer multiplications in the partial block.  Allocates a fresh
    output; the hot paths call :func:`permute_into` on a reused buffer.
    """
    states = np.array(states, dtype=np.uint64, copy=True)
    return permute_into(states)
