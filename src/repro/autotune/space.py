"""Candidate enumeration: the mapping points the search may try.

One :class:`CandidateSpace` per kernel family.  Enumeration is cheap
and deterministic (no RNG here; the search owns the seeded shuffle);
the *default* mapping is always the first candidate of every family, so
a zero-budget search degrades to the static compiler.

Candidates carry two kinds of cheap rejection evidence, both consulted
before any simulation:

* structural validity (:meth:`MappingParams.invalid_reasons` -- e.g. an
  NTT tile whose delay registers overflow the PE register file);
* a PE-grid microcode factory (``built_schedule``) for candidates that
  change the emitted schedule, which the search runs through the static
  sanitizer (:mod:`repro.analysis.sanitizer`).  The ``sparse-12x3-ii1``
  Poseidon scheme is the deliberate example: nominally faster, but its
  initiation-interval-1 S-box pipeline double-drives the down latch,
  so the sanitizer rejects it without costing a single simulated cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..field import goldilocks as gl
from ..mapping.microcode_schedules import BuiltSchedule, build_sbox_pipeline
from ..mapping.params import (
    DEFAULT_MAPPING,
    MappingParams,
    MerkleMapping,
    NttMapping,
    PolyMapping,
    PoseidonMapping,
)
from ..mapping.poseidon_mapping import ROUND_SCHEMES

#: Kernel families the autotuner searches, in canonical order.
FAMILIES = ("ntt", "poseidon", "merkle", "poly")


@dataclass(frozen=True)
class Candidate:
    """One enumerable mapping point for one kernel family."""

    family: str
    label: str
    #: Full mapping point: the family's knob applied over the defaults.
    params: MappingParams
    #: Factory for the PE-grid schedule this candidate would emit, when
    #: it differs from the shipped microcode (sanitized pre-simulation).
    built_schedule: Optional[Callable[[], BuiltSchedule]] = field(
        default=None, compare=False
    )

    @property
    def is_default(self) -> bool:
        """True when this candidate is the shipped default mapping."""
        return self.params == DEFAULT_MAPPING


@dataclass(frozen=True)
class CandidateSpace:
    """All candidates of one family (default first)."""

    family: str
    candidates: Tuple[Candidate, ...]

    def __len__(self) -> int:
        return len(self.candidates)


def _sbox_values(n: int = 5, seed: int = 3) -> list:
    """Deterministic sanitizer inputs (mirrors analysis.schedules)."""
    return [gl.canonical((seed + 1) * 0x9E37_79B9_7F4A_7C15 * (i + 1)) for i in range(n)]


def ntt_space() -> CandidateSpace:
    """SAM decomposition shapes: tile exponent x dimensions per pass."""
    cands: List[Candidate] = [
        Candidate("ntt", "ntt:default", DEFAULT_MAPPING)
    ]
    for tile in (3, 4, 5, 6, 7, 8):
        for dims in (None, 1, 2):
            mapping = DEFAULT_MAPPING.with_family(
                "ntt", NttMapping(tile_log2=tile, dims_per_pass=dims)
            )
            label = f"ntt:tile{tile}" + ("" if dims is None else f"+dims{dims}")
            cands.append(Candidate("ntt", label, mapping))
    return CandidateSpace("ntt", tuple(cands))


def poseidon_space() -> CandidateSpace:
    """Round schemes, each with the microcode it would emit."""
    cands: List[Candidate] = []
    # Default scheme first, then the alternatives in name order.
    names = sorted(ROUND_SCHEMES, key=lambda s: (s != "sparse-12x3", s))
    for name in names:
        scheme = ROUND_SCHEMES[name]
        mapping = DEFAULT_MAPPING.with_family("poseidon", PoseidonMapping(scheme=name))

        def _factory(ii: int = scheme.sbox_ii) -> BuiltSchedule:
            return build_sbox_pipeline(_sbox_values(), post_constant=977, ii=ii)

        cands.append(
            Candidate("poseidon", f"poseidon:{name}", mapping, built_schedule=_factory)
        )
    return CandidateSpace("poseidon", tuple(cands))


def merkle_space() -> CandidateSpace:
    """Subtree tiling factors (0 = largest subtree that fits)."""
    cands = [
        Candidate(
            "merkle",
            f"merkle:div{div}",
            DEFAULT_MAPPING.with_family("merkle", MerkleMapping(subtree_div_log2=div)),
        )
        for div in (0, 1, 2)
    ]
    return CandidateSpace("merkle", tuple(cands))


def poly_space() -> CandidateSpace:
    """Element-wise chain splits (1 = fully fused)."""
    cands = [
        Candidate(
            "poly",
            f"poly:split{split}",
            DEFAULT_MAPPING.with_family("poly", PolyMapping(chain_split=split)),
        )
        for split in (1, 2, 4, 8)
    ]
    return CandidateSpace("poly", tuple(cands))


def candidate_spaces() -> Tuple[CandidateSpace, ...]:
    """Every family's space, in canonical family order."""
    return (ntt_space(), poseidon_space(), merkle_space(), poly_space())


def space_for_family(family: str) -> CandidateSpace:
    """The candidate space of one kernel family."""
    for space in candidate_spaces():
        if space.family == family:
            return space
    raise ValueError(f"unknown mapping family {family!r}")
