"""Mapping autotuner: enumerate -> sanitize -> score -> cache.

Closes the compiler loop the paper leaves manual: candidate mappings
for each kernel family are enumerated (:mod:`repro.autotune.space`),
cheaply rejected by the PE-grid sanitizer where microcode is involved,
scored on the cycle-accurate simulator (:mod:`repro.autotune.search`),
and the best-per-``(kernel shape, hardware)`` winners are persisted in
a versioned :class:`~repro.autotune.cache.TuningCache` that
``schedule``/``simulate`` consult by default.  The software mirror
(:mod:`repro.autotune.plan_tuner`) searches prover-plan knobs against
measured wall-clock time.

Submodules are imported lazily: the compiler backend imports
``repro.autotune.cache`` on its hot path, while ``search`` imports the
compiler back -- eager re-exports here would create an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "CACHE_VERSION": ".cache",
    "SOFTWARE_HW_KEY": ".cache",
    "CACHE_ENV_VAR": ".cache",
    "TuningCache": ".cache",
    "TuningCacheError": ".cache",
    "MappingResolver": ".cache",
    "default_cache_path": ".cache",
    "load_default_cache": ".cache",
    "hw_key": ".cache",
    "node_key": ".cache",
    "plan_key": ".cache",
    "Candidate": ".space",
    "candidate_spaces": ".space",
    "space_for_family": ".space",
    "TuneReport": ".search",
    "tune_workload": ".search",
    "PlanTuner": ".plan_tuner",
    "cached_tuning": ".plan_tuner",
    "tune_plan": ".plan_tuner",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module, __name__), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
