"""Budgeted mapping search: enumerate -> sanitize -> score -> cache.

The tuner searches per *shape*, not per workload: every kernel family's
candidates are scored against all graph nodes sharing one cache key
(``ntt/log21``, ``merkle/l1048576/w160``, ...), because a node's
simulated cost depends only on its own mapping (the schedule is a
sequential sum of ``max(compute, memory)`` kernels).  The winner per
shape is stored in the :class:`~repro.autotune.cache.TuningCache`, so a
second ``repro tune`` -- and every later ``schedule``/``simulate`` --
returns cached winners without re-simulation.

Rejection happens before scoring, in two cheap layers:

1. structural validity (:meth:`MappingParams.invalid_reasons`) -- e.g.
   an NTT tile whose MDC delay registers overflow the PE register file;
2. the PE-grid static sanitizer over the microcode a candidate would
   emit (``sched.*`` rules) -- e.g. the ``sparse-12x3-ii1`` Poseidon
   scheme's initiation-interval-1 S-box pipeline double-drives the PE
   down latch.

Determinism: one ``random.Random(seed)`` shuffles the non-default
candidate order; everything else is pure enumeration, so a fixed seed
reproduces the identical trial order and winners.  Ties keep the
earlier candidate, and the default is always scored first, so a tied
search never drifts from the static compiler.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.sanitizer import sanitize, spec_for_emulator
from ..compiler.frontend import PlonkParams, trace_plonky2
from ..compiler.graph import ComputationGraph
from ..compiler.scheduler import map_node
from ..hw.config import DEFAULT_CONFIG, HwConfig
from ..mapping.params import DEFAULT_MAPPING
from ..sim.simulator import simulate_graph
from .cache import TuningCache, hw_key, node_key
from .space import Candidate, candidate_spaces


@dataclass
class ShapeResult:
    """Search outcome for one ``(family, shape key)``."""

    key: str
    family: str
    num_nodes: int
    default_cycles: float
    best_cycles: float
    winner: str
    winner_params: Dict[str, Any]
    cached: bool = False
    tried: List[str] = field(default_factory=list)
    rejected: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        """True when the winner beats the default mapping's cycles."""
        return self.best_cycles < self.default_cycles

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (report files, ``--json`` output)."""
        return {
            "key": self.key,
            "family": self.family,
            "num_nodes": self.num_nodes,
            "default_cycles": self.default_cycles,
            "best_cycles": self.best_cycles,
            "improved": self.improved,
            "winner": self.winner,
            "winner_params": self.winner_params,
            "cached": self.cached,
            "tried": list(self.tried),
            "rejected": list(self.rejected),
        }


@dataclass
class TuneReport:
    """One workload's tuning run: per-shape results + whole-graph check."""

    workload: str
    hw_key: str
    seed: int
    budget_s: Optional[float]
    shapes: List[ShapeResult]
    default_total_cycles: float
    tuned_total_cycles: float
    elapsed_s: float
    budget_exhausted: bool = False

    @property
    def speedup(self) -> float:
        """Whole-graph default/tuned cycle ratio (1.0 = no change)."""
        if self.tuned_total_cycles <= 0:
            return 1.0
        return self.default_total_cycles / self.tuned_total_cycles

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (report files, CI assertions)."""
        return {
            "workload": self.workload,
            "hw_key": self.hw_key,
            "seed": self.seed,
            "budget_s": self.budget_s,
            "budget_exhausted": self.budget_exhausted,
            "elapsed_s": self.elapsed_s,
            "default_total_cycles": self.default_total_cycles,
            "tuned_total_cycles": self.tuned_total_cycles,
            "speedup": self.speedup,
            "num_shapes": len(self.shapes),
            "num_improved": sum(1 for s in self.shapes if s.improved),
            "num_cached": sum(1 for s in self.shapes if s.cached),
            "num_rejected": sum(len(s.rejected) for s in self.shapes),
            "shapes": [s.to_dict() for s in self.shapes],
        }

    def summary_lines(self) -> List[str]:
        """Human-readable per-workload summary for the CLI."""
        d = self.to_dict()
        lines = [
            f"tuned {self.workload}: {d['num_improved']}/{d['num_shapes']} shapes "
            f"improved ({d['num_cached']} cached, {d['num_rejected']} candidates "
            f"sanitizer/validity-rejected)",
            f"  default {self.default_total_cycles / 1e6:.2f} Mcycles -> "
            f"tuned {self.tuned_total_cycles / 1e6:.2f} Mcycles "
            f"({self.speedup:.3f}x)",
        ]
        if self.budget_exhausted:
            lines.append("  (budget exhausted; kept best-so-far winners)")
        return lines


def _sanitizer_findings(candidate: Candidate) -> List[str]:
    """Static ``sched.*`` findings of the candidate's microcode (if any)."""
    if candidate.built_schedule is None:
        return []
    built = candidate.built_schedule()
    spec = spec_for_emulator(
        built.emu,
        built.programs,
        built.left_inputs,
        built.top_inputs,
        built.num_cycles,
        name=built.name,
    )
    return [f"{f.rule}: {f.message}" for f in sanitize(spec)]


def _score(nodes, candidate: Candidate, hw: HwConfig) -> float:
    """Summed elapsed cycles of ``nodes`` under one mapping point."""
    return sum(
        map_node(n, hw, candidate.params).elapsed_cycles(hw) for n in nodes
    )


def tune_graph(
    graph: ComputationGraph,
    hw: HwConfig = DEFAULT_CONFIG,
    cache: Optional[TuningCache] = None,
    budget_s: Optional[float] = None,
    seed: int = 0,
) -> TuneReport:
    """Search the mapping space for every tunable shape in ``graph``.

    Winners (including "default wins") are stored into ``cache``; the
    caller decides whether/where to persist it.  ``budget_s`` bounds
    wall-clock: when it runs out, remaining candidates are skipped and
    the best-so-far winners stand.
    """
    t0 = time.monotonic()
    deadline = None if budget_s is None else t0 + budget_s
    cache = cache if cache is not None else TuningCache()
    hkey = hw_key(hw)
    rng = random.Random(seed)

    # Group tunable nodes by shape key (family inferred from the key).
    groups: Dict[str, List] = {}
    for node in graph.topological_order():
        key = node_key(node)
        if key is not None:
            groups.setdefault(key, []).append(node)

    spaces = {s.family: s for s in candidate_spaces()}
    # Sanitize each family's microcode-bearing candidates once, up
    # front -- rejection is per candidate, not per shape.
    sanitizer_rejects: Dict[str, Dict[str, List[str]]] = {}
    for family, space in spaces.items():
        rejects: Dict[str, List[str]] = {}
        for cand in space.candidates:
            findings = _sanitizer_findings(cand)
            if findings:
                rejects[cand.label] = findings
        sanitizer_rejects[family] = rejects

    def family_of(key: str) -> str:
        prefix = key.split("/", 1)[0]
        return {
            "ntt": "ntt",
            "lde": "ntt",
            "merkle": "merkle",
            "poseidon": "poseidon",
            "polyew": "poly",
        }[prefix]

    shapes: List[ShapeResult] = []
    budget_exhausted = False
    for key in sorted(groups):
        nodes = groups[key]
        family = family_of(key)
        space = spaces[family]
        default_cand = space.candidates[0]
        default_cycles = _score(nodes, default_cand, hw)

        stored = cache.lookup(key, hkey)
        if stored is not None:
            # Second run: serve the cached winner without re-searching.
            from ..mapping.params import MappingParams

            params = MappingParams.from_dict(stored.get("params", {}))
            best_cycles = float(stored.get("cycles", default_cycles))
            shapes.append(
                ShapeResult(
                    key=key,
                    family=family,
                    num_nodes=len(nodes),
                    default_cycles=default_cycles,
                    best_cycles=best_cycles,
                    winner=str((stored.get("meta") or {}).get("label", "cached")),
                    winner_params=params.to_dict(),
                    cached=True,
                )
            )
            continue

        result = ShapeResult(
            key=key,
            family=family,
            num_nodes=len(nodes),
            default_cycles=default_cycles,
            best_cycles=default_cycles,
            winner=default_cand.label,
            winner_params=default_cand.params.to_dict(),
        )
        result.tried.append(default_cand.label)

        others = list(space.candidates[1:])
        rng.shuffle(others)
        for cand in others:
            if deadline is not None and time.monotonic() > deadline:
                budget_exhausted = True
                break
            reasons = cand.params.invalid_reasons(hw)
            if reasons:
                result.rejected.append(
                    {"label": cand.label, "stage": "validity", "reasons": reasons}
                )
                continue
            findings = sanitizer_rejects[family].get(cand.label)
            if findings:
                result.rejected.append(
                    {"label": cand.label, "stage": "sanitizer", "reasons": findings}
                )
                continue
            result.tried.append(cand.label)
            cycles = _score(nodes, cand, hw)
            if cycles < result.best_cycles:
                result.best_cycles = cycles
                result.winner = cand.label
                result.winner_params = cand.params.to_dict()

        cache.store(
            key,
            hkey,
            result.winner_params,
            cycles=result.best_cycles,
            meta={"label": result.winner, "seed": seed},
        )
        shapes.append(result)
        if budget_exhausted:
            break

    # Whole-graph verification: score the tuned winners end to end
    # against the pinned defaults through the real simulator.
    default_report = simulate_graph(graph, hw, mapping=DEFAULT_MAPPING)
    from .cache import MappingResolver

    resolver = MappingResolver(hw, cache=cache)
    tuned_total = 0.0
    for node in graph.topological_order():
        tuned_total += map_node(node, hw, resolver.for_node(node)).elapsed_cycles(hw)

    return TuneReport(
        workload=graph.name,
        hw_key=hkey,
        seed=seed,
        budget_s=budget_s,
        shapes=shapes,
        default_total_cycles=default_report.total_cycles,
        tuned_total_cycles=tuned_total,
        elapsed_s=time.monotonic() - t0,
        budget_exhausted=budget_exhausted,
    )


def tune_workload(
    params: PlonkParams,
    hw: HwConfig = DEFAULT_CONFIG,
    cache: Optional[TuningCache] = None,
    budget_s: Optional[float] = None,
    seed: int = 0,
) -> TuneReport:
    """Tune one paper workload's Plonky2 proof-generation graph."""
    return tune_graph(
        trace_plonky2(params), hw, cache=cache, budget_s=budget_s, seed=seed
    )
