"""Versioned on-disk cache of tuned mappings (best-per-shape winners).

The search (:mod:`repro.autotune.search`) pays its cost once per
``(kernel shape, hardware configuration)`` pair; every later
``schedule`` / ``simulate`` / ``repro tune`` run looks the winner up
here instead of re-searching -- the ZK-Flex-style "tune once, serve
many" loop the ROADMAP calls for.

Two consultation modes, deliberately different in strictness:

* **explicit load** (``TuningCache.load(path)``) raises
  :class:`TuningCacheError` on a corrupt file and returns an *empty*
  cache on a version mismatch (old entries are stale by definition);
* **default consult** (:func:`load_default_cache`, what the compiler
  does on every ``schedule``) never raises -- a missing, corrupt or
  mismatched file silently degrades to the static default mappings.

The default location honours the ``REPRO_TUNING_CACHE`` environment
variable so tests and CI can isolate their cache files.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional

from ..hw.config import HwConfig
from ..mapping.params import DEFAULT_MAPPING, MappingParams

#: Cache-format version; bump when the entry schema changes.
CACHE_VERSION = 1

#: Pseudo hardware key for software-side (wall-clock) plan tunings.
SOFTWARE_HW_KEY = "software"

#: Environment variable overriding the default cache path.
CACHE_ENV_VAR = "REPRO_TUNING_CACHE"


class TuningCacheError(ValueError):
    """A tuning-cache file could not be parsed (explicit loads only)."""


def hw_key(hw: HwConfig) -> str:
    """Stable short key of one hardware configuration."""
    blob = json.dumps(asdict(hw), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def node_key(node) -> Optional[str]:
    """Cache key of one computation-graph node's mapping decision.

    Keys are shape-level, not instance-level: every ``ntt`` of one size
    shares a winner regardless of which workload or stage it appears
    in.  Returns ``None`` for kinds with no mapping knobs.
    """
    p = node.params
    if node.kind in ("ntt", "intt"):
        return f"ntt/log{int(p['log_n'])}"
    if node.kind == "lde":
        return f"lde/log{int(p['log_n'])}+r{int(p['rate_bits'])}"
    if node.kind == "merkle":
        return f"merkle/l{int(p['leaves'])}/w{int(p['width'])}"
    if node.kind == "hash_misc":
        return "poseidon/w12"
    if node.kind == "poly_elementwise":
        return (
            f"polyew/len{int(p['vector_len'])}"
            f"/ops{int(p['num_ops'])}/opr{int(p['num_operands'])}"
        )
    return None


def plan_key(protocol: str, n: int, rate_bits: int) -> str:
    """Cache key of one software plan-tuning decision."""
    return f"plan.{protocol}/n{n}/r{rate_bits}"


class TuningCache:
    """In-memory view of the tuned-winner store, with JSON persistence."""

    def __init__(
        self,
        path: Optional[Path] = None,
        entries: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.entries: Dict[str, Dict[str, Any]] = dict(entries or {})

    # -- persistence ----------------------------------------------------------

    @classmethod
    def load(cls, path, strict: bool = True) -> "TuningCache":
        """Read a cache file.

        ``strict`` raises :class:`TuningCacheError` on unreadable or
        malformed files; non-strict returns an empty cache instead.  A
        version mismatch yields an empty cache either way -- stale
        winners must never steer the compiler.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return cls(path=path)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            if strict:
                raise TuningCacheError(
                    f"tuning cache {path} is unreadable: {exc}"
                ) from exc
            return cls(path=path)
        if not isinstance(payload, dict) or not isinstance(
            payload.get("entries"), dict
        ):
            if strict:
                raise TuningCacheError(
                    f"tuning cache {path} has no entries mapping"
                )
            return cls(path=path)
        if payload.get("version") != CACHE_VERSION:
            return cls(path=path)
        return cls(path=path, entries=payload["entries"])

    def save(self, path=None) -> Path:
        """Write the cache (atomically: temp file + rename)."""
        path = Path(path) if path is not None else self.path
        if path is None:
            raise ValueError("no cache path to save to")
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, "entries": self.entries}
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, path)
        self.path = path
        return path

    # -- entry access ---------------------------------------------------------

    @staticmethod
    def _entry_key(key: str, hardware: str) -> str:
        return f"{key}@{hardware}"

    def lookup(self, key: str, hardware: str) -> Optional[Dict[str, Any]]:
        """The stored winner for ``key`` on ``hardware``, or ``None``."""
        return self.entries.get(self._entry_key(key, hardware))

    def store(
        self,
        key: str,
        hardware: str,
        params: Dict[str, Any],
        cycles: Optional[float] = None,
        seconds: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a winner (overwrites any previous entry for the key)."""
        entry: Dict[str, Any] = {"params": dict(params)}
        if cycles is not None:
            entry["cycles"] = float(cycles)
        if seconds is not None:
            entry["seconds"] = float(seconds)
        if meta:
            entry["meta"] = dict(meta)
        self.entries[self._entry_key(key, hardware)] = entry

    def __len__(self) -> int:
        return len(self.entries)


def default_cache_path() -> Path:
    """Where the compiler looks for tuned winners by default."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "tuning.json"


_DEFAULT_CACHE: Dict[Path, tuple] = {}


def load_default_cache() -> TuningCache:
    """The default cache, reloaded only when the file changes on disk.

    Never raises: this sits on the ``schedule``/``simulate`` hot path,
    where a broken cache file must degrade to default mappings, not
    break compilation.
    """
    path = default_cache_path()
    try:
        stat = path.stat()
        stamp = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        stamp = None
    cached = _DEFAULT_CACHE.get(path)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    cache = TuningCache.load(path, strict=False)
    _DEFAULT_CACHE[path] = (stamp, cache)
    return cache


class MappingResolver:
    """Per-node mapping lookup the compiler backend consults.

    Resolution order per node: tuned winner from the cache (validated
    against the hardware point) -> :data:`DEFAULT_MAPPING`.  Lookups are
    memoised per shape key, so resolving a thousand-node graph costs a
    handful of cache reads.
    """

    def __init__(self, hw: HwConfig, cache: Optional[TuningCache] = None) -> None:
        self.hw = hw
        self.hw_key = hw_key(hw)
        self._cache = cache
        self._memo: Dict[Optional[str], MappingParams] = {None: DEFAULT_MAPPING}

    def _cache_obj(self) -> TuningCache:
        if self._cache is None:
            self._cache = load_default_cache()
        return self._cache

    def for_node(self, node) -> MappingParams:
        """The mapping parameters to cost ``node`` with."""
        key = node_key(node)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        entry = self._cache_obj().lookup(key, self.hw_key)
        mapping = DEFAULT_MAPPING
        if entry is not None:
            try:
                candidate = MappingParams.from_dict(entry.get("params", {}))
                if not candidate.invalid_reasons(self.hw):
                    mapping = candidate
            except (TypeError, ValueError):
                mapping = DEFAULT_MAPPING
        self._memo[key] = mapping
        return mapping
