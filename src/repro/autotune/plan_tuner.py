"""Software-side plan tuner: wall-clock search over prover knobs.

The hardware search scores candidates on the simulator; the software
prover has no simulator, so the :class:`PlanTuner` measures real
wall-clock time (the ``prove:*`` span from :mod:`repro.tracing`,
min-of-repeats to shed scheduler noise) for each point of the
:class:`~repro.tunables.PlanTuning` space and stores the winner in the
same :class:`~repro.autotune.cache.TuningCache` under the pseudo
hardware key ``"software"``.  ``plan_for`` consults the stored winner
when building a plan (:func:`cached_tuning`), so every later proof of
that shape runs tuned.

Every knob is bit-identity-preserving by construction (see
:mod:`repro.tunables`), and the tuner *checks* that anyway: a candidate
whose proof digest differs from the default's is discarded as a bug,
never stored.

Search strategy: coordinate descent from the default point, one knob at
a time in a seeded order -- the space is tiny (tens of points), the
cost of a trial is a whole proof, and the knobs are near-independent.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import tracing
from ..tunables import DEFAULT_TUNING, PlanTuning
from .cache import SOFTWARE_HW_KEY, TuningCache, load_default_cache, plan_key

#: Values each knob may take (0 = heuristic/never; see repro.tunables).
KNOB_VALUES: Dict[str, Tuple[int, ...]] = {
    "scalar_batch_limit": (0, 4, 8, 16, 32),
    "ntt_row_block": (0, 2, 4, 8, 16, 64),
    "leaf_hash_chunk": (0, 64, 256, 1024),
    "permute_chunk": (0, 512, 1024, 2048),
}


def cached_tuning(protocol: str, n: int, rate_bits: int) -> Optional[PlanTuning]:
    """The stored plan-tuning winner for a shape, or ``None``.

    Never raises: consulted on every ``plan_for`` miss, where a broken
    cache must degrade to the heuristic defaults.
    """
    try:
        entry = load_default_cache().lookup(
            plan_key(protocol, n, rate_bits), SOFTWARE_HW_KEY
        )
        if entry is None:
            return None
        tuning = PlanTuning.from_dict(entry.get("params", {}))
        return None if tuning == DEFAULT_TUNING else tuning
    except Exception:
        return None


@dataclass
class PlanTrial:
    """One measured candidate."""

    tuning: Dict[str, int]
    seconds: float
    digest: str
    digest_ok: bool

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (report files)."""
        return {
            "tuning": dict(self.tuning),
            "seconds": self.seconds,
            "digest_ok": self.digest_ok,
        }


@dataclass
class PlanTuneReport:
    """Outcome of tuning one prover shape."""

    key: str
    default_seconds: float
    best_seconds: float
    winner: PlanTuning
    trials: List[PlanTrial] = field(default_factory=list)
    seed: int = 0

    @property
    def improved(self) -> bool:
        """True when the winner beats the default tuning's wall-clock."""
        return self.best_seconds < self.default_seconds

    @property
    def speedup(self) -> float:
        """Default/best wall-clock ratio (1.0 = no change)."""
        if self.best_seconds <= 0:
            return 1.0
        return self.default_seconds / self.best_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (report files)."""
        return {
            "key": self.key,
            "seed": self.seed,
            "default_seconds": self.default_seconds,
            "best_seconds": self.best_seconds,
            "speedup": self.speedup,
            "improved": self.improved,
            "winner": self.winner.to_dict(),
            "trials": [t.to_dict() for t in self.trials],
        }


class PlanTuner:
    """Coordinate-descent wall-clock tuner for one prover shape.

    ``run_proof`` executes one complete proof under the ambient tunables
    context (via ``tunables.applied`` inside the prover) and returns a
    stable digest of the proof; the tuner owns applying each candidate.
    """

    def __init__(
        self,
        key: str,
        run_proof: Callable[[PlanTuning], str],
        repeats: int = 3,
        seed: int = 0,
    ) -> None:
        self.key = key
        self.run_proof = run_proof
        self.repeats = max(1, repeats)
        self.seed = seed

    def _measure(self, tuning: PlanTuning) -> Tuple[float, str]:
        """Min-of-repeats prove time (seconds) and the proof digest.

        Timed through the tracer's ``prove:*`` span when one is emitted
        (the prover's own instrumentation), falling back to the whole
        call otherwise.
        """
        best = float("inf")
        digest = ""
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            with tracing.trace() as session:
                digest = self.run_proof(tuning)
            elapsed = time.perf_counter() - t0
            prove_spans = [
                s
                for top in session.spans
                for s in top.walk()
                if s.name.startswith("prove:")
            ]
            if prove_spans:
                elapsed = sum(s.elapsed_s for s in prove_spans)
            best = min(best, elapsed)
        return best, digest

    def tune(
        self,
        cache: Optional[TuningCache] = None,
        budget_s: Optional[float] = None,
    ) -> PlanTuneReport:
        """Search the knob grid; optionally store the winner in ``cache``."""
        deadline = None if budget_s is None else time.monotonic() + budget_s
        default_s, default_digest = self._measure(DEFAULT_TUNING)
        report = PlanTuneReport(
            key=self.key,
            default_seconds=default_s,
            best_seconds=default_s,
            winner=DEFAULT_TUNING,
            seed=self.seed,
        )
        report.trials.append(
            PlanTrial(DEFAULT_TUNING.to_dict(), default_s, default_digest, True)
        )

        rng = random.Random(self.seed)
        knobs = sorted(KNOB_VALUES)
        rng.shuffle(knobs)
        current = DEFAULT_TUNING
        for knob in knobs:
            values = [v for v in KNOB_VALUES[knob] if v != getattr(current, knob)]
            rng.shuffle(values)
            for value in values:
                if deadline is not None and time.monotonic() > deadline:
                    break
                candidate = replace(current, **{knob: value})
                seconds, digest = self._measure(candidate)
                ok = digest == default_digest
                report.trials.append(
                    PlanTrial(candidate.to_dict(), seconds, digest, ok)
                )
                if ok and seconds < report.best_seconds:
                    report.best_seconds = seconds
                    report.winner = candidate
            current = report.winner

        if cache is not None:
            cache.store(
                self.key,
                SOFTWARE_HW_KEY,
                report.winner.to_dict(),
                seconds=report.best_seconds,
                meta={"seed": self.seed, "default_seconds": default_s},
            )
        return report


def tune_plan(
    protocol: str,
    workload: str,
    scale: int,
    cache: Optional[TuningCache] = None,
    repeats: int = 3,
    seed: int = 0,
    budget_s: Optional[float] = None,
) -> PlanTuneReport:
    """Tune the software prover for one ``(protocol, workload, scale)``.

    Builds the workload once, then repeatedly proves it under candidate
    tunings, comparing proof digests against the default run.  The
    winner is stored under ``plan.<protocol>/n<n>/r<rate>`` with the
    ``"software"`` hardware key.
    """
    from ..fri import FriConfig
    from ..workloads import by_name

    spec = by_name(workload)
    if protocol == "plonk":
        from ..plonk import plan as plonk_plan, prove, setup
        from ..serialize import plonk_proof_digest

        config = FriConfig(
            rate_bits=3, cap_height=1, num_queries=8,
            proof_of_work_bits=4, final_poly_len=4,
        )
        circuit, inputs, _ = spec.build_circuit(scale)
        data = setup(circuit, config)
        key = plan_key("plonk", circuit.n, config.rate_bits)

        def run(tuning: PlanTuning) -> str:
            plan = plonk_plan.plan_for(circuit.n, config.rate_bits)
            old = plan.tuning
            plan.tuning = tuning
            try:
                return plonk_proof_digest(prove(data, inputs, plan=plan))
            finally:
                plan.tuning = old

    elif protocol == "stark":
        from ..serialize import stark_proof_digest
        from ..stark import plan as stark_plan, prove

        config = FriConfig(
            rate_bits=1, cap_height=1, num_queries=10,
            proof_of_work_bits=3, final_poly_len=4,
        )
        air, trace_rows, publics = spec.build_air(scale)
        n = trace_rows.shape[0]
        key = plan_key("stark", n, config.rate_bits)

        def run(tuning: PlanTuning) -> str:
            plan = stark_plan.plan_for(n, config.rate_bits)
            old = plan.tuning
            plan.tuning = tuning
            try:
                return stark_proof_digest(
                    prove(air, trace_rows, publics, config, plan=plan)
                )
            finally:
                plan.tuning = old

    else:
        raise ValueError(f"unknown protocol {protocol!r} (stark or plonk)")

    tuner = PlanTuner(key, run, repeats=repeats, seed=seed)
    return tuner.tune(cache=cache, budget_s=budget_s)
