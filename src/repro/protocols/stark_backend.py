"""STARK backend: :mod:`repro.stark` behind the registry interface."""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..fri import FriConfig
from ..stark import prove as stark_prove, verify as stark_verify
from .base import ProofSystem, ProtocolSetup


class StarkSystem(ProofSystem):
    """Starky-style AIR proofs over the univariate FRI PCS."""

    name = "stark"
    description = "AIR transition constraints, LDE + batch FRI opening"
    envelope_kind = "stark-proof"
    uses_ntt = True

    def default_config(self) -> Dict[str, int]:
        return dict(
            rate_bits=1,
            cap_height=1,
            num_queries=10,
            proof_of_work_bits=3,
            final_poly_len=4,
        )

    def config_from(self, knobs: Mapping[str, int]) -> FriConfig:
        return FriConfig(**dict(knobs))

    def supports(self, workload) -> bool:
        return workload.build_air is not None

    def setup(self, workload, scale: int, config: FriConfig) -> ProtocolSetup:
        if workload.build_air is None:
            raise ValueError(f"workload {workload.name!r} has no AET builder")
        air, trace, publics = workload.build_air(scale)
        return ProtocolSetup(
            protocol=self.name,
            workload=workload.name,
            scale=scale,
            config=config,
            data=(air, trace, publics),
            rows=int(trace.shape[0]),
        )

    def prove(self, setup: ProtocolSetup, pool=None):
        air, trace, publics = setup.data
        return stark_prove(air, trace, publics, setup.config, pool=pool)

    def verify(self, setup: ProtocolSetup, proof) -> None:
        air, _, _ = setup.data
        stark_verify(air, proof, setup.config)
