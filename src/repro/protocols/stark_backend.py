"""STARK backend: :mod:`repro.stark` behind the registry interface."""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..fri import FriConfig
from ..stark import prove as stark_prove, verify as stark_verify
from .base import ProofSystem, ProtocolSetup
from .transcript import CapBinding, TranscriptSpec


class StarkSystem(ProofSystem):
    """Starky-style AIR proofs over the univariate FRI PCS."""

    name = "stark"
    description = "AIR transition constraints, LDE + batch FRI opening"
    envelope_kind = "stark-proof"
    uses_ntt = True

    def default_config(self) -> Dict[str, int]:
        return dict(
            rate_bits=1,
            cap_height=1,
            num_queries=10,
            proof_of_work_bits=3,
            final_poly_len=4,
        )

    def config_from(self, knobs: Mapping[str, int]) -> FriConfig:
        return FriConfig(**dict(knobs))

    def supports(self, workload) -> bool:
        return workload.build_air is not None

    def setup(self, workload, scale: int, config: FriConfig) -> ProtocolSetup:
        if workload.build_air is None:
            raise ValueError(f"workload {workload.name!r} has no AET builder")
        air, trace, publics = workload.build_air(scale)
        return ProtocolSetup(
            protocol=self.name,
            workload=workload.name,
            scale=scale,
            config=config,
            data=(air, trace, publics),
            rows=int(trace.shape[0]),
        )

    def prove(self, setup: ProtocolSetup, pool=None):
        air, trace, publics = setup.data
        return stark_prove(air, trace, publics, setup.config, pool=pool)

    def verify(self, setup: ProtocolSetup, proof) -> None:
        air, _, _ = setup.data
        stark_verify(air, proof, setup.config)

    # -- transcript conformance ------------------------------------------

    def transcript_spec(self) -> TranscriptSpec:
        # scale is log2(rows) for AIR builders; queries/grinding shrunk
        # because conformance is structural, not statistical.
        return TranscriptSpec(
            workload="Fibonacci",
            scales=(3, 4),
            config_overrides=dict(num_queries=2, proof_of_work_bits=1),
            setup_caps=0,
        )

    def prove_with_challenger(self, setup: ProtocolSetup, challenger):
        air, trace, publics = setup.data
        return stark_prove(air, trace, publics, setup.config, challenger=challenger)

    def verify_with_challenger(self, setup: ProtocolSetup, proof, challenger) -> None:
        air, _, _ = setup.data
        stark_verify(air, proof, setup.config, challenger=challenger)

    def cap_bindings(self, setup: ProtocolSetup, proof):
        # Base-challenge ordinals: alpha (ext) draws #0-1, zeta (ext)
        # #2-3, FRI alpha #4-5, then layer beta_k (ext) at #6+2k.
        bindings = [
            CapBinding("trace_cap", proof.trace_cap, 0),
            CapBinding("quotient_cap", proof.quotient_cap, 2),
        ]
        for k, cap in enumerate(proof.fri_proof.commit_caps):
            bindings.append(CapBinding(f"fri.commit_caps[{k}]", cap, 6 + 2 * k))
        return bindings

    def public_inputs_of(self, setup: ProtocolSetup, proof):
        return list(proof.public_inputs)
