"""Per-backend Fiat-Shamir transcript specifications.

A :class:`TranscriptSpec` is a backend's declaration of its transcript
*shape*: which workload/scales to drive it at for conformance checking,
how many setup-time caps precede the public inputs, and -- the heart of
the soundness argument -- which commitment caps must be bound into the
transcript **before** which challenge ordinal (:class:`CapBinding`).

The analyzer (:mod:`repro.analysis.transcript`) records the prover's
and verifier's actual challenger interactions with a recording shim and
checks them against this declaration; the types live here (not in
``repro.analysis``) so backends can declare their specs without the
protocols package importing the analysis layer.

Challenge positions are counted in **base-challenge ordinals**: every
single squeezed base-field element advances the count by one, so an
extension challenge advances it by two and ``get_n_challenges(n)`` by
``n``.  A binding ``before_challenge=k`` asserts the cap's observation
happens before the ``k``-th base challenge (0-indexed) is drawn --
i.e. the cap is in the duplex state that produces that challenge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class CapBinding:
    """One cap-to-challenge dependency the transcript must satisfy.

    ``cap`` is the cap payload as carried by the proof (or setup); the
    analyzer locates its observation event by value and checks it
    precedes base-challenge ordinal ``before_challenge``.
    """

    label: str
    cap: np.ndarray
    before_challenge: int


@dataclass(frozen=True)
class TranscriptSpec:
    """A backend's transcript-shape declaration for conformance checks.

    ``setup_caps`` counts the setup-time (preprocessed/circuit-digest)
    caps a verifier observes *before* the public inputs -- the publics
    must be the first non-setup observation, ahead of every challenge.
    """

    #: Workload driven at tiny scale (must support this backend).
    workload: str = "Fibonacci"
    #: Scales (backend ``setup`` units) exercised by the analyzer.
    scales: Tuple[int, ...] = (2, 3)
    #: Config knob overrides shrinking the instance (fewer queries,
    #: minimal grinding) -- soundness checks are structural, not
    #: statistical, so tiny parameters are fine.
    config_overrides: Mapping[str, int] = field(default_factory=dict)
    #: Caps observed before the public inputs (0 = publics first).
    setup_caps: int = 0


def binding_error(binding: CapBinding, observed_at: Any) -> str:
    """Human-readable description of a violated :class:`CapBinding`."""
    where = (
        "never observed"
        if observed_at is None
        else f"first observed at event {observed_at}"
    )
    return (
        f"cap {binding.label!r} must be bound before base-challenge "
        f"#{binding.before_challenge} but was {where}"
    )
