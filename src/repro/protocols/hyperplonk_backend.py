"""HyperPlonk-lite backend: the sumcheck-native prover in the registry."""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..hyperplonk import (
    HyperPlonkConfig,
    prove as hp_prove,
    setup as hp_setup,
    verify as hp_verify,
)
from .base import ProofSystem, ProtocolSetup


class HyperPlonkSystem(ProofSystem):
    """Sumcheck-native prover over the multilinear PCS -- zero NTTs."""

    name = "hyperplonk"
    description = "sumcheck-native zerocheck over a multilinear PCS (no NTT)"
    envelope_kind = "hyperplonk-proof"
    uses_ntt = False

    def default_config(self) -> Dict[str, int]:
        return dict(cap_height=1, num_queries=16)

    def config_from(self, knobs: Mapping[str, int]) -> HyperPlonkConfig:
        return HyperPlonkConfig(**dict(knobs))

    def setup(self, workload, scale: int, config: HyperPlonkConfig) -> ProtocolSetup:
        circuit, inputs, _ = workload.build_circuit(scale)
        data = hp_setup(circuit, config)
        return ProtocolSetup(
            protocol=self.name,
            workload=workload.name,
            scale=scale,
            config=config,
            data=(data, inputs),
            rows=circuit.n,
        )

    def prove(self, setup: ProtocolSetup, pool=None):
        # No sharded path: the prover is hashing-bound and pools shard
        # only the LDE/FRI stages this backend doesn't run.
        data, inputs = setup.data
        return hp_prove(data, inputs)

    def verify(self, setup: ProtocolSetup, proof) -> None:
        data, _ = setup.data
        hp_verify(data.verifier_data, proof)
