"""HyperPlonk-lite backend: the sumcheck-native prover in the registry."""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..hyperplonk import (
    HyperPlonkConfig,
    prove as hp_prove,
    setup as hp_setup,
    verify as hp_verify,
)
from .base import ProofSystem, ProtocolSetup
from .transcript import CapBinding, TranscriptSpec


class HyperPlonkSystem(ProofSystem):
    """Sumcheck-native prover over the multilinear PCS -- zero NTTs."""

    name = "hyperplonk"
    description = "sumcheck-native zerocheck over a multilinear PCS (no NTT)"
    envelope_kind = "hyperplonk-proof"
    uses_ntt = False

    def default_config(self) -> Dict[str, int]:
        return dict(cap_height=1, num_queries=16)

    def config_from(self, knobs: Mapping[str, int]) -> HyperPlonkConfig:
        return HyperPlonkConfig(**dict(knobs))

    def setup(self, workload, scale: int, config: HyperPlonkConfig) -> ProtocolSetup:
        circuit, inputs, _ = workload.build_circuit(scale)
        data = hp_setup(circuit, config)
        return ProtocolSetup(
            protocol=self.name,
            workload=workload.name,
            scale=scale,
            config=config,
            data=(data, inputs),
            rows=circuit.n,
        )

    def prove(self, setup: ProtocolSetup, pool=None):
        # Sharded path: the wires/Z commits and each sumcheck round's
        # fold + fold-level commit fan out over the pool (``None``
        # inherits the ambient repro.parallel pool, so service/CLI
        # callers that scope one via parallel.sharding are covered).
        data, inputs = setup.data
        return hp_prove(data, inputs, pool=pool)

    def verify(self, setup: ProtocolSetup, proof) -> None:
        data, _ = setup.data
        hp_verify(data.verifier_data, proof)

    # -- transcript conformance ------------------------------------------

    def transcript_spec(self) -> TranscriptSpec:
        return TranscriptSpec(
            workload="Fibonacci",
            scales=(4, 8),
            config_overrides=dict(num_queries=2),
            setup_caps=1,  # preprocessed (circuit-digest) cap, then publics
        )

    def prove_with_challenger(self, setup: ProtocolSetup, challenger):
        data, inputs = setup.data
        return hp_prove(data, inputs, challenger=challenger)

    def verify_with_challenger(self, setup: ProtocolSetup, proof, challenger) -> None:
        data, _ = setup.data
        hp_verify(data.verifier_data, proof, challenger=challenger)

    def cap_bindings(self, setup: ProtocolSetup, proof):
        # Base-challenge ordinals with v = log2(rows): beta #0, gamma
        # #1, alpha #2, tau #3..v+2, sumcheck round-k challenge at
        # #v+3+k.  level_caps[k] is committed right after round k's
        # challenge and must be bound before round k+1's.
        data, _ = setup.data
        v = data.circuit.log_n
        bindings = [
            CapBinding("preprocessed_cap", data.preprocessed.cap, 0),
            CapBinding("wires_cap", proof.wires_cap, 0),
            CapBinding("z_cap", proof.z_cap, 2),
        ]
        for k, cap in enumerate(proof.level_caps):
            bindings.append(CapBinding(f"level_caps[{k}]", cap, v + 4 + k))
        return bindings

    def public_inputs_of(self, setup: ProtocolSetup, proof):
        return list(proof.public_inputs)
