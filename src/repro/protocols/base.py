"""The protocol-backend interface.

A :class:`ProofSystem` is one registered proving protocol (STARK, Plonk,
HyperPlonk-lite) with a uniform surface over its existing functional
modules: build a setup, prove, verify, and move proofs across process
boundaries.  The CLI (``repro prove --protocol``), the proving service
(job kinds), and the soundness fuzzer all dispatch through the registry
(:mod:`repro.protocols.registry`) instead of hard-coding per-protocol
branches.

The interface deliberately wraps the existing ``prove``/``verify``
functions rather than replacing them -- the functional modules stay the
source of truth (and keep their pinned op-counter goldens); a backend
only adapts signatures and owns the workload -> setup plumbing.
"""

from __future__ import annotations

import hashlib
import logging
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

logger = logging.getLogger("repro.protocols")

#: Backend names that already warned about an ignored ``pool`` (the
#: default :meth:`ProofSystem.prove` warns once per backend, not per
#: proof -- a ``prove --workers`` sweep should not spam the log).
_UNUSED_POOL_WARNED: set = set()


@dataclass
class ProtocolSetup:
    """One proved instance: workload + scale bound to a backend setup.

    ``data`` is backend-specific (AIR + trace for STARK, circuit setup
    artifacts + inputs for the Plonk family); callers treat it as
    opaque and hand it back to the owning :class:`ProofSystem`.
    """

    protocol: str
    workload: str
    scale: int
    config: Any
    data: Any
    #: Trace/circuit rows (display + sizing; a power of two).
    rows: int


class ProofSystem(ABC):
    """One registered proving protocol."""

    #: Registry name; also the proof-blob protocol tag and job kind.
    name: str = "?"
    #: One-line description shown by ``repro prove --list-protocols``.
    description: str = ""
    #: Result-envelope kind carrying this protocol's proofs.
    envelope_kind: str = "?"
    #: Whether the prover's hot path runs NTTs (False for the
    #: sumcheck-native backend -- asserted by its perf gate).
    uses_ntt: bool = True

    # -- configuration ---------------------------------------------------

    @abstractmethod
    def default_config(self) -> Dict[str, int]:
        """Default config knobs as a plain dict (small/fast, NOT sound)."""

    @abstractmethod
    def config_from(self, knobs: Mapping[str, int]) -> Any:
        """Build the frozen config object from a complete knob dict."""

    def make_config(self, overrides: Optional[Mapping[str, int]] = None) -> Any:
        """Defaults + overrides -> frozen config; unknown keys rejected."""
        base = dict(self.default_config())
        overrides = dict(overrides or {})
        unknown = set(overrides) - set(base)
        if unknown:
            raise ValueError(
                f"unknown {self.name} config keys: {', '.join(sorted(unknown))} "
                f"(valid: {', '.join(sorted(base))})"
            )
        base.update(overrides)
        return self.config_from(base)

    # -- proving ---------------------------------------------------------

    def supports(self, workload) -> bool:
        """Whether a :class:`~repro.workloads.WorkloadSpec` has the
        builder this backend needs."""
        return True

    @abstractmethod
    def setup(self, workload, scale: int, config: Any) -> ProtocolSetup:
        """Build the instance (circuit/AIR + preprocessing) to prove."""

    def prove(self, setup: ProtocolSetup, pool=None):
        """Prove the instance; ``pool`` shards when the backend supports
        it.

        The default implementation runs :meth:`prove_serial` and -- so
        ``prove --workers N`` never *silently* degrades to a serial run
        -- logs a one-time warning per backend when a pool was supplied
        but the backend has no sharded path.  Backends with a sharded
        prover override this method and thread ``pool`` through.
        """
        if pool is not None and self.name not in _UNUSED_POOL_WARNED:
            _UNUSED_POOL_WARNED.add(self.name)
            logger.warning(
                "%s backend has no sharded prover; --workers pool is ignored "
                "and this proof runs serial",
                self.name,
            )
        return self.prove_serial(setup)

    def prove_serial(self, setup: ProtocolSetup):
        """The backend's serial prover (used by the default
        :meth:`prove`); backends overriding :meth:`prove` need not
        implement it."""
        raise NotImplementedError(
            f"{self.name} backend implements neither prove nor prove_serial"
        )

    @abstractmethod
    def verify(self, setup: ProtocolSetup, proof) -> None:
        """Verify; raises the backend's typed error on any failure."""

    # -- transcript conformance ------------------------------------------

    def transcript_spec(self):
        """The backend's :class:`~repro.protocols.transcript.TranscriptSpec`.

        ``None`` means the backend does not declare its transcript shape
        and the conformance analyzer reports it as unverifiable.  New
        backends should return a spec so ``repro analyze`` checks their
        Fiat-Shamir sequencing for free.
        """
        return None

    def prove_with_challenger(self, setup: ProtocolSetup, challenger):
        """Prove with an externally supplied transcript challenger.

        Used by the transcript-conformance analyzer to record the
        prover's exact observe/challenge event stream.
        """
        raise NotImplementedError(
            f"{self.name} backend does not support challenger injection"
        )

    def verify_with_challenger(self, setup: ProtocolSetup, proof, challenger) -> None:
        """Verify with an externally supplied transcript challenger."""
        raise NotImplementedError(
            f"{self.name} backend does not support challenger injection"
        )

    def cap_bindings(self, setup: ProtocolSetup, proof):
        """Cap-to-challenge deadlines for one proved instance.

        Returns a list of :class:`~repro.protocols.transcript.CapBinding`
        covering every commitment cap the proof (and setup) carries.
        """
        raise NotImplementedError(
            f"{self.name} backend does not declare cap bindings"
        )

    def public_inputs_of(self, setup: ProtocolSetup, proof):
        """The public-input values bound into the transcript."""
        raise NotImplementedError(
            f"{self.name} backend does not expose its public inputs"
        )

    # -- serialization ---------------------------------------------------

    def to_bytes(self, proof) -> bytes:
        """Raw canonical proof body (digests are defined over this)."""
        from ..serialize import proof_body_codec

        return proof_body_codec(self.name)[0](proof)

    def from_bytes(self, data: bytes):
        """Decode a raw proof body (typed ``ValueError`` on bad input)."""
        from ..serialize import proof_body_codec

        return proof_body_codec(self.name)[1](data)

    def digest(self, proof) -> str:
        """Hex content address of the canonical proof body."""
        return hashlib.sha256(self.to_bytes(proof)).hexdigest()

    # -- fuzzing ---------------------------------------------------------

    def fuzz_target(self):
        """The soundness-fuzz target for this protocol (lazy import --
        building a target proves small honest instances)."""
        from ..fuzz.targets import target_for

        return target_for(self.name)
