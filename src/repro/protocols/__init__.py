"""Protocol-backend registry (the pluggable proving plane).

Importing this package registers the built-in backends in canonical
order -- ``stark``, ``plonk``, ``hyperplonk`` -- and every consumer
(CLI, proving service, fuzzer, benchmarks) resolves protocols through
:func:`get`/:func:`names` instead of hard-coding the list.  Each name
doubles as the job kind and the tagged proof-blob protocol tag
(:data:`repro.serialize.PROOF_PROTOCOLS` must cover every registered
name, asserted here at import time).
"""

from ..serialize import PROOF_PROTOCOLS
from .base import ProofSystem, ProtocolSetup
from .hyperplonk_backend import HyperPlonkSystem
from .plonk_backend import PlonkSystem
from .registry import get, names, register
from .stark_backend import StarkSystem
from .transcript import CapBinding, TranscriptSpec

register(StarkSystem())
register(PlonkSystem())
register(HyperPlonkSystem())

for _name in names():
    if _name not in PROOF_PROTOCOLS:
        raise RuntimeError(
            f"protocol {_name!r} has no registered proof-blob codec"
        )

__all__ = [
    "ProofSystem",
    "ProtocolSetup",
    "CapBinding",
    "TranscriptSpec",
    "StarkSystem",
    "PlonkSystem",
    "HyperPlonkSystem",
    "register",
    "get",
    "names",
]
