"""Plonk backend: :mod:`repro.plonk` behind the registry interface."""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..fri import FriConfig
from ..plonk import prove as plonk_prove, setup as plonk_setup, verify as plonk_verify
from .base import ProofSystem, ProtocolSetup


class PlonkSystem(ProofSystem):
    """Plonky2-style circuits: gate + copy constraints over FRI."""

    name = "plonk"
    description = "Plonky2-style gates + permutation argument over FRI"
    envelope_kind = "plonk-proof"
    uses_ntt = True

    def default_config(self) -> Dict[str, int]:
        return dict(
            rate_bits=3,
            cap_height=1,
            num_queries=8,
            proof_of_work_bits=4,
            final_poly_len=4,
        )

    def config_from(self, knobs: Mapping[str, int]) -> FriConfig:
        return FriConfig(**dict(knobs))

    def setup(self, workload, scale: int, config: FriConfig) -> ProtocolSetup:
        circuit, inputs, _ = workload.build_circuit(scale)
        data = plonk_setup(circuit, config)
        return ProtocolSetup(
            protocol=self.name,
            workload=workload.name,
            scale=scale,
            config=config,
            data=(data, inputs),
            rows=circuit.n,
        )

    def prove(self, setup: ProtocolSetup, pool=None):
        data, inputs = setup.data
        return plonk_prove(data, inputs, pool=pool)

    def verify(self, setup: ProtocolSetup, proof) -> None:
        data, _ = setup.data
        plonk_verify(data.verifier_data, proof)
