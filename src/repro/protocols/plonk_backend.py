"""Plonk backend: :mod:`repro.plonk` behind the registry interface."""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..fri import FriConfig
from ..plonk import prove as plonk_prove, setup as plonk_setup, verify as plonk_verify
from .base import ProofSystem, ProtocolSetup
from .transcript import CapBinding, TranscriptSpec


class PlonkSystem(ProofSystem):
    """Plonky2-style circuits: gate + copy constraints over FRI."""

    name = "plonk"
    description = "Plonky2-style gates + permutation argument over FRI"
    envelope_kind = "plonk-proof"
    uses_ntt = True

    def default_config(self) -> Dict[str, int]:
        return dict(
            rate_bits=3,
            cap_height=1,
            num_queries=8,
            proof_of_work_bits=4,
            final_poly_len=4,
        )

    def config_from(self, knobs: Mapping[str, int]) -> FriConfig:
        return FriConfig(**dict(knobs))

    def setup(self, workload, scale: int, config: FriConfig) -> ProtocolSetup:
        circuit, inputs, _ = workload.build_circuit(scale)
        data = plonk_setup(circuit, config)
        return ProtocolSetup(
            protocol=self.name,
            workload=workload.name,
            scale=scale,
            config=config,
            data=(data, inputs),
            rows=circuit.n,
        )

    def prove(self, setup: ProtocolSetup, pool=None):
        data, inputs = setup.data
        return plonk_prove(data, inputs, pool=pool)

    def verify(self, setup: ProtocolSetup, proof) -> None:
        data, _ = setup.data
        plonk_verify(data.verifier_data, proof)

    # -- transcript conformance ------------------------------------------

    def transcript_spec(self) -> TranscriptSpec:
        return TranscriptSpec(
            workload="Fibonacci",
            scales=(4, 8),
            config_overrides=dict(num_queries=2, proof_of_work_bits=1),
            setup_caps=1,  # preprocessed (circuit-digest) cap, then publics
        )

    def prove_with_challenger(self, setup: ProtocolSetup, challenger):
        data, inputs = setup.data
        return plonk_prove(data, inputs, challenger=challenger)

    def verify_with_challenger(self, setup: ProtocolSetup, proof, challenger) -> None:
        data, _ = setup.data
        plonk_verify(data.verifier_data, proof, challenger=challenger)

    def cap_bindings(self, setup: ProtocolSetup, proof):
        # Base-challenge ordinals: beta #0, gamma #1, alpha (ext) #2-3,
        # zeta (ext) #4-5, FRI alpha #6-7, layer beta_k at #8+2k.
        data, _ = setup.data
        bindings = [
            CapBinding("preprocessed_cap", data.preprocessed.cap, 0),
            CapBinding("wires_cap", proof.wires_cap, 0),
            CapBinding("z_cap", proof.z_cap, 2),
            CapBinding("quotient_cap", proof.quotient_cap, 4),
        ]
        for k, cap in enumerate(proof.fri_proof.commit_caps):
            bindings.append(CapBinding(f"fri.commit_caps[{k}]", cap, 8 + 2 * k))
        return bindings

    def public_inputs_of(self, setup: ProtocolSetup, proof):
        return list(proof.public_inputs)
