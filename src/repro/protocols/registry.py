"""The protocol registry: name -> :class:`~repro.protocols.base.ProofSystem`.

Insertion-ordered so every consumer (CLI listings, job kinds, fuzz
campaigns) enumerates protocols in one canonical order.  Lookup
failures raise :class:`repro.errors.UnknownProtocolError` -- the same
typed error path the CLI and service surface to users.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import UnknownProtocolError
from .base import ProofSystem

_REGISTRY: Dict[str, ProofSystem] = {}


def register(system: ProofSystem) -> ProofSystem:
    """Register a backend under its ``name``; duplicate names rejected."""
    if not system.name or system.name == "?":
        raise ValueError("proof system must define a name")
    if system.name in _REGISTRY:
        raise ValueError(f"protocol {system.name!r} is already registered")
    _REGISTRY[system.name] = system
    return system


def get(name: str) -> ProofSystem:
    """Look up a backend; raises :class:`UnknownProtocolError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownProtocolError(name, names()) from None


def names() -> Tuple[str, ...]:
    """Registered protocol names in registration order."""
    return tuple(_REGISTRY)
