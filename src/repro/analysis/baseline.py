"""Justification-carrying suppression baseline.

A baseline entry accepts a known finding instead of fixing it -- but
only with a human-written justification.  Entries match findings
content-first: by ``(rule, fingerprint)`` where ``fingerprint`` is
:meth:`Finding.fingerprint` (a hash of the rule id plus the normalized
source snippet), falling back to ``(rule, key)`` where ``key`` is
:meth:`Finding.key` (file + scope + detail for lint findings; schedule
+ PE for sanitizer findings; protocol / graph for the semantic
layers -- never line numbers).  Fingerprint matching makes baselines
robust to line drift *and* scope renames of unrelated code; the key
fallback keeps hand-written entries (no fingerprint) working.
``count`` caps how many matching findings the entry absorbs; extra
occurrences in the same scope surface as new findings.

File format (JSON, sorted, diff-friendly)::

    {
      "version": 1,
      "entries": [
        {"rule": "prover.raw-mod",
         "key": "stark/poseidon_air.py::_reference_permute::% gl.P",
         "fingerprint": "9e21c6d0a3b17f44",
         "count": 3,
         "justification": "executable spec; intentionally scalar"}
      ]
    }

``--strict`` additionally requires every entry's justification to be a
non-empty string, so ``repro analyze --update-baseline`` (which records
new findings with an empty justification) cannot silently launder them
through CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from .findings import RULES, AnalysisError, Finding

BASELINE_VERSION = 1
#: Default baseline filename, at the repository root.
BASELINE_NAME = "ANALYSIS_BASELINE.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One suppressed finding class.

    ``fingerprint`` is optional (hand-written entries may omit it);
    when present it is tried before the ``key`` fallback.
    """

    rule: str
    key: str
    justification: str
    count: int = 1
    fingerprint: str = ""


def default_baseline_path() -> Path:
    """``ANALYSIS_BASELINE.json`` next to ``src/`` (the repo root)."""
    import repro

    return Path(repro.__file__).resolve().parents[2] / BASELINE_NAME


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Load and validate a baseline file.

    A missing file is an empty baseline.  Malformed content raises
    :class:`AnalysisError` with a clean, actionable message naming the
    offending entry.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or "entries" not in payload:
        raise AnalysisError(
            f"baseline {path} must be an object with an 'entries' list"
        )
    if payload.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {path} has version {payload.get('version')!r}; "
            f"this tool reads version {BASELINE_VERSION}"
        )
    entries: List[BaselineEntry] = []
    seen = set()
    for i, raw in enumerate(payload["entries"]):
        where = f"baseline {path} entry {i}"
        if not isinstance(raw, dict):
            raise AnalysisError(f"{where}: expected an object, got {type(raw).__name__}")
        for field_name in ("rule", "key", "justification"):
            if not isinstance(raw.get(field_name), str):
                raise AnalysisError(f"{where}: missing or non-string {field_name!r}")
        unknown = set(raw) - {"rule", "key", "justification", "count", "fingerprint"}
        if unknown:
            raise AnalysisError(
                f"{where}: unknown field(s) {sorted(unknown)}"
            )
        fingerprint = raw.get("fingerprint", "")
        if not isinstance(fingerprint, str):
            raise AnalysisError(f"{where}: fingerprint must be a string")
        if raw["rule"] not in RULES:
            known = ", ".join(sorted(RULES))
            raise AnalysisError(
                f"{where}: unknown rule id {raw['rule']!r} (choose from: {known})"
            )
        count = raw.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise AnalysisError(f"{where}: count must be a positive integer")
        ident = (raw["rule"], raw["key"])
        if ident in seen:
            raise AnalysisError(
                f"{where}: duplicate entry for rule {raw['rule']!r} "
                f"key {raw['key']!r}"
            )
        seen.add(ident)
        entries.append(
            BaselineEntry(
                rule=raw["rule"],
                key=raw["key"],
                justification=raw["justification"],
                count=count,
                fingerprint=fingerprint,
            )
        )
    return entries


def save_baseline(path: Path, entries: List[BaselineEntry]) -> None:
    """Write a baseline file (sorted, one canonical form per content)."""
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": e.rule,
                "key": e.key,
                **({"fingerprint": e.fingerprint} if e.fingerprint else {}),
                "count": e.count,
                "justification": e.justification,
            }
            for e in sorted(entries, key=lambda e: (e.rule, e.key))
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


@dataclass
class MatchResult:
    """Findings split against a baseline."""

    new: List[Finding]
    suppressed: List[Finding]
    stale: List[BaselineEntry]
    unjustified: List[BaselineEntry]


def match_baseline(
    findings: List[Finding], entries: List[BaselineEntry]
) -> MatchResult:
    """Split ``findings`` into new vs. baselined; report stale entries.

    Each finding first looks for an entry whose ``(rule, fingerprint)``
    matches its content fingerprint; only if no fingerprinted entry has
    budget left does it fall back to the ``(rule, key)`` location
    match.  An entry's budget is shared across both match paths.
    """
    budget: List[int] = [e.count for e in entries]
    used: List[int] = [0] * len(entries)
    by_fp: Dict[Tuple[str, str], List[int]] = {}
    by_key: Dict[Tuple[str, str], List[int]] = {}
    for i, e in enumerate(entries):
        if e.fingerprint:
            by_fp.setdefault((e.rule, e.fingerprint), []).append(i)
        by_key.setdefault((e.rule, e.key), []).append(i)

    def _claim(indices: List[int]) -> bool:
        for i in indices:
            if budget[i] > 0:
                budget[i] -= 1
                used[i] += 1
                return True
        return False

    new: List[Finding] = []
    suppressed: List[Finding] = []
    for f in findings:
        if _claim(by_fp.get((f.rule, f.fingerprint()), [])) or _claim(
            by_key.get((f.rule, f.key()), [])
        ):
            suppressed.append(f)
        else:
            new.append(f)
    stale = [e for i, e in enumerate(entries) if used[i] == 0]
    unjustified = [e for e in entries if not e.justification.strip()]
    return MatchResult(new=new, suppressed=suppressed, stale=stale, unjustified=unjustified)


def update_baseline(
    findings: List[Finding], entries: List[BaselineEntry]
) -> List[BaselineEntry]:
    """Merge current findings into a baseline, keeping justifications.

    Every current finding gets an entry sized to its occurrence count;
    entries for findings that no longer occur are dropped; existing
    justifications are preserved (matched by fingerprint first, key
    second).  New entries carry an *empty* justification, which
    ``--strict`` rejects until a human fills it in.
    """
    counts: Dict[Tuple[str, str], int] = {}
    fingerprints: Dict[Tuple[str, str], str] = {}
    for f in findings:
        ident = (f.rule, f.key())
        counts[ident] = counts.get(ident, 0) + 1
        fingerprints.setdefault(ident, f.fingerprint())
    old_by_fp = {(e.rule, e.fingerprint): e for e in entries if e.fingerprint}
    old_by_key = {(e.rule, e.key): e for e in entries}
    merged = []
    for (rule, key), count in counts.items():
        fingerprint = fingerprints[(rule, key)]
        prior = old_by_fp.get((rule, fingerprint)) or old_by_key.get((rule, key))
        merged.append(
            BaselineEntry(
                rule=rule,
                key=key,
                count=count,
                justification=prior.justification if prior else "",
                fingerprint=fingerprint,
            )
        )
    return merged
