"""Justification-carrying suppression baseline.

A baseline entry accepts a known finding instead of fixing it -- but
only with a human-written justification.  Entries match findings by
``(rule, key)`` where ``key`` is :meth:`Finding.key` (file + scope +
detail for lint findings; schedule + PE for sanitizer findings --
never line numbers, so baselines survive unrelated edits).  ``count``
caps how many matching findings the entry absorbs; extra occurrences
in the same scope surface as new findings.

File format (JSON, sorted, diff-friendly)::

    {
      "version": 1,
      "entries": [
        {"rule": "prover.raw-mod",
         "key": "stark/poseidon_air.py::_reference_permute::% gl.P",
         "count": 3,
         "justification": "executable spec; intentionally scalar"}
      ]
    }

``--strict`` additionally requires every entry's justification to be a
non-empty string, so ``repro analyze --update-baseline`` (which records
new findings with an empty justification) cannot silently launder them
through CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from .findings import RULES, AnalysisError, Finding

BASELINE_VERSION = 1
#: Default baseline filename, at the repository root.
BASELINE_NAME = "ANALYSIS_BASELINE.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One suppressed finding class."""

    rule: str
    key: str
    justification: str
    count: int = 1


def default_baseline_path() -> Path:
    """``ANALYSIS_BASELINE.json`` next to ``src/`` (the repo root)."""
    import repro

    return Path(repro.__file__).resolve().parents[2] / BASELINE_NAME


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Load and validate a baseline file.

    A missing file is an empty baseline.  Malformed content raises
    :class:`AnalysisError` with a clean, actionable message naming the
    offending entry.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or "entries" not in payload:
        raise AnalysisError(
            f"baseline {path} must be an object with an 'entries' list"
        )
    if payload.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {path} has version {payload.get('version')!r}; "
            f"this tool reads version {BASELINE_VERSION}"
        )
    entries: List[BaselineEntry] = []
    seen = set()
    for i, raw in enumerate(payload["entries"]):
        where = f"baseline {path} entry {i}"
        if not isinstance(raw, dict):
            raise AnalysisError(f"{where}: expected an object, got {type(raw).__name__}")
        for field_name in ("rule", "key", "justification"):
            if not isinstance(raw.get(field_name), str):
                raise AnalysisError(f"{where}: missing or non-string {field_name!r}")
        unknown = set(raw) - {"rule", "key", "justification", "count"}
        if unknown:
            raise AnalysisError(
                f"{where}: unknown field(s) {sorted(unknown)}"
            )
        if raw["rule"] not in RULES:
            known = ", ".join(sorted(RULES))
            raise AnalysisError(
                f"{where}: unknown rule id {raw['rule']!r} (choose from: {known})"
            )
        count = raw.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise AnalysisError(f"{where}: count must be a positive integer")
        ident = (raw["rule"], raw["key"])
        if ident in seen:
            raise AnalysisError(
                f"{where}: duplicate entry for rule {raw['rule']!r} "
                f"key {raw['key']!r}"
            )
        seen.add(ident)
        entries.append(
            BaselineEntry(
                rule=raw["rule"],
                key=raw["key"],
                justification=raw["justification"],
                count=count,
            )
        )
    return entries


def save_baseline(path: Path, entries: List[BaselineEntry]) -> None:
    """Write a baseline file (sorted, one canonical form per content)."""
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": e.rule,
                "key": e.key,
                "count": e.count,
                "justification": e.justification,
            }
            for e in sorted(entries, key=lambda e: (e.rule, e.key))
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


@dataclass
class MatchResult:
    """Findings split against a baseline."""

    new: List[Finding]
    suppressed: List[Finding]
    stale: List[BaselineEntry]
    unjustified: List[BaselineEntry]


def match_baseline(
    findings: List[Finding], entries: List[BaselineEntry]
) -> MatchResult:
    """Split ``findings`` into new vs. baselined; report stale entries."""
    budget: Dict[Tuple[str, str], int] = {
        (e.rule, e.key): e.count for e in entries
    }
    used: Dict[Tuple[str, str], int] = {k: 0 for k in budget}
    new: List[Finding] = []
    suppressed: List[Finding] = []
    for f in findings:
        ident = (f.rule, f.key())
        if budget.get(ident, 0) > 0:
            budget[ident] -= 1
            used[ident] += 1
            suppressed.append(f)
        else:
            new.append(f)
    stale = [e for e in entries if used[(e.rule, e.key)] == 0]
    unjustified = [e for e in entries if not e.justification.strip()]
    return MatchResult(new=new, suppressed=suppressed, stale=stale, unjustified=unjustified)


def update_baseline(
    findings: List[Finding], entries: List[BaselineEntry]
) -> List[BaselineEntry]:
    """Merge current findings into a baseline, keeping justifications.

    Every current finding gets an entry sized to its occurrence count;
    entries for findings that no longer occur are dropped; existing
    justifications are preserved.  New entries carry an *empty*
    justification, which ``--strict`` rejects until a human fills it in.
    """
    counts: Dict[Tuple[str, str], int] = {}
    for f in findings:
        ident = (f.rule, f.key())
        counts[ident] = counts.get(ident, 0) + 1
    old = {(e.rule, e.key): e for e in entries}
    merged = []
    for (rule, key), count in counts.items():
        prior = old.get((rule, key))
        merged.append(
            BaselineEntry(
                rule=rule,
                key=key,
                count=count,
                justification=prior.justification if prior else "",
            )
        )
    return merged
