"""Finding records and the static-analysis rule catalogue.

Every check in the analysis subsystem -- schedule sanitizer rules and
repo lint passes alike -- is registered here as a :class:`Rule` with a
stable id.  Checks report :class:`Finding` records carrying the rule id
plus a location (PE coordinate and cycle for schedule findings, file /
scope for lint findings); the runner matches findings against the
suppression baseline by :meth:`Finding.key`.

Rule ids are namespaced: ``sched.*`` for the PE-grid schedule
sanitizer (:mod:`repro.analysis.sanitizer`), ``prover.*`` for the AST
lint passes (:mod:`repro.analysis.lint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule."""

    id: str
    layer: str  # "schedule" or "lint"
    summary: str


#: The full rule catalogue, in documentation order.
RULES: Dict[str, Rule] = {
    r.id: r
    for r in (
        # -- layer 1: schedule sanitizer ---------------------------------
        Rule(
            "sched.pe-oob",
            "schedule",
            "program assigned to a PE coordinate outside the grid",
        ),
        Rule(
            "sched.mul-overcommit",
            "schedule",
            "more than one mul/mac issued by a PE in one cycle "
            "(a PE has a single multiplier)",
        ),
        Rule(
            "sched.add-overcommit",
            "schedule",
            "more than two add/sub/mov issued by a PE in one cycle "
            "(a PE has two adder slots)",
        ),
        Rule(
            "sched.latch-double-drive",
            "schedule",
            "an outgoing latch (right/down/up) driven by more than one "
            "instruction in the same cycle",
        ),
        Rule(
            "sched.reg-oob",
            "schedule",
            "register-file index (operand or destination) outside the "
            "PE's register file",
        ),
        Rule(
            "sched.reverse-link",
            "schedule",
            "up latch driven from a column without a reverse link",
        ),
        Rule(
            "sched.reg-use-before-def",
            "schedule",
            "read of a register never preloaded nor written by an "
            "earlier cycle",
        ),
        Rule(
            "sched.latch-use-before-def",
            "schedule",
            "read of an incoming latch that no upstream instruction "
            "drove in the previous cycle (and no boundary feed covers)",
        ),
        # -- layer 2: repo lint -------------------------------------------
        Rule(
            "prover.raw-mod",
            "lint",
            "raw `% P` modular reduction outside the field/ modules",
        ),
        Rule(
            "prover.hot-alloc",
            "lint",
            "fresh numpy allocation (np.zeros/np.empty/np.array/...) in "
            "a hot-path module that must draw from Workspace arenas",
        ),
        Rule(
            "prover.nondeterminism",
            "lint",
            "time/random nondeterminism imported or used in the "
            "proving path",
        ),
        Rule(
            "prover.into-aliasing-doc",
            "lint",
            "an *_into kernel taking an `out` buffer whose docstring "
            "does not state the aliasing contract",
        ),
    )
}

#: Rule ids belonging to the schedule sanitizer layer.
SCHEDULE_RULES = tuple(r.id for r in RULES.values() if r.layer == "schedule")
#: Rule ids belonging to the repo lint layer.
LINT_RULES = tuple(r.id for r in RULES.values() if r.layer == "lint")


class AnalysisError(Exception):
    """User-facing analysis failure (unknown rule, malformed baseline).

    Rendered as a clean one-line error by the runner and the
    ``repro analyze`` CLI subcommand, mirroring :class:`repro.cli.CliError`.
    """


def check_rule_ids(rule_ids) -> None:
    """Validate a rule-id selection, raising :class:`AnalysisError`."""
    for rule_id in rule_ids:
        if rule_id not in RULES:
            known = ", ".join(sorted(RULES))
            raise AnalysisError(
                f"unknown rule id {rule_id!r} (choose from: {known})"
            )


@dataclass
class Finding:
    """One structured analysis finding.

    Schedule findings populate ``schedule``/``pe``/``cycle``; lint
    findings populate ``path``/``line``/``scope``/``detail``.  ``key()``
    is the location identity the suppression baseline matches on: it
    deliberately excludes line numbers and cycle-level detail where the
    surrounding scope is stable, so baselines survive unrelated edits.
    """

    rule: str
    message: str
    # lint location
    path: Optional[str] = None
    line: Optional[int] = None
    scope: Optional[str] = None
    detail: Optional[str] = None
    # schedule location
    schedule: Optional[str] = None
    pe: Optional[Tuple[int, int]] = None
    cycle: Optional[int] = None

    def key(self) -> str:
        """The baseline-matching location key (excludes line numbers)."""
        if self.path is not None:
            return f"{self.path}::{self.scope or '<module>'}::{self.detail or ''}"
        pe = f"pe({self.pe[0]},{self.pe[1]})" if self.pe is not None else "pe(?)"
        return f"{self.schedule or '<schedule>'}::{pe}"

    def format(self) -> str:
        """One human-readable report line."""
        if self.path is not None:
            where = self.path
            if self.line is not None:
                where += f":{self.line}"
            if self.scope:
                where += f" ({self.scope})"
        else:
            where = self.schedule or "<schedule>"
            if self.pe is not None:
                where += f" PE{self.pe}"
            if self.cycle is not None:
                where += f" cycle {self.cycle}"
        return f"[{self.rule}] {where}: {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready representation (for ``--json`` output)."""
        out = {"rule": self.rule, "message": self.message, "key": self.key()}
        for name in ("path", "line", "scope", "detail", "schedule", "cycle"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.pe is not None:
            out["pe"] = list(self.pe)
        return out


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic report order: rule, then location."""
    return sorted(
        findings,
        key=lambda f: (
            f.rule,
            f.path or "",
            f.line or 0,
            f.schedule or "",
            f.pe or (-1, -1),
            f.cycle if f.cycle is not None else -1,
        ),
    )
