"""Finding records and the static-analysis rule catalogue.

Every check in the analysis subsystem -- schedule sanitizer rules,
repo lint passes, transcript conformance and shard-graph race
detection alike -- is registered here as a :class:`Rule` with a stable
id.  Checks report :class:`Finding` records carrying the rule id plus
a location (PE coordinate and cycle for schedule findings, file /
scope for lint findings, protocol for transcript findings, graph for
race findings); the runner matches findings against the suppression
baseline by :meth:`Finding.fingerprint` first and :meth:`Finding.key`
as the fallback.

Rule ids are namespaced: ``sched.*`` for the PE-grid schedule
sanitizer (:mod:`repro.analysis.sanitizer`), ``prover.*`` for the AST
lint passes (:mod:`repro.analysis.lint`), ``fs.*`` for Fiat-Shamir
transcript conformance (:mod:`repro.analysis.transcript`), and
``race.*`` for shard-graph race detection
(:mod:`repro.analysis.races`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule."""

    id: str
    layer: str  # "schedule" or "lint"
    summary: str


#: The full rule catalogue, in documentation order.
RULES: Dict[str, Rule] = {
    r.id: r
    for r in (
        # -- layer 1: schedule sanitizer ---------------------------------
        Rule(
            "sched.pe-oob",
            "schedule",
            "program assigned to a PE coordinate outside the grid",
        ),
        Rule(
            "sched.mul-overcommit",
            "schedule",
            "more than one mul/mac issued by a PE in one cycle "
            "(a PE has a single multiplier)",
        ),
        Rule(
            "sched.add-overcommit",
            "schedule",
            "more than two add/sub/mov issued by a PE in one cycle "
            "(a PE has two adder slots)",
        ),
        Rule(
            "sched.latch-double-drive",
            "schedule",
            "an outgoing latch (right/down/up) driven by more than one "
            "instruction in the same cycle",
        ),
        Rule(
            "sched.reg-oob",
            "schedule",
            "register-file index (operand or destination) outside the "
            "PE's register file",
        ),
        Rule(
            "sched.reverse-link",
            "schedule",
            "up latch driven from a column without a reverse link",
        ),
        Rule(
            "sched.reg-use-before-def",
            "schedule",
            "read of a register never preloaded nor written by an "
            "earlier cycle",
        ),
        Rule(
            "sched.latch-use-before-def",
            "schedule",
            "read of an incoming latch that no upstream instruction "
            "drove in the previous cycle (and no boundary feed covers)",
        ),
        # -- layer 2: repo lint -------------------------------------------
        Rule(
            "prover.raw-mod",
            "lint",
            "raw `% P` modular reduction outside the field/ modules",
        ),
        Rule(
            "prover.hot-alloc",
            "lint",
            "fresh numpy allocation (np.zeros/np.empty/np.array/...) in "
            "a hot-path module that must draw from Workspace arenas",
        ),
        Rule(
            "prover.nondeterminism",
            "lint",
            "time/random nondeterminism imported or used in the "
            "proving path",
        ),
        Rule(
            "prover.into-aliasing-doc",
            "lint",
            "an *_into kernel taking an `out` buffer whose docstring "
            "does not state the aliasing contract",
        ),
        # -- layer 3: Fiat-Shamir transcript conformance ------------------
        Rule(
            "fs.transcript-mismatch",
            "transcript",
            "prover and verifier transcripts diverge: a different event "
            "kind or payload at the same stream position",
        ),
        Rule(
            "fs.publics-order",
            "transcript",
            "public inputs not bound into the transcript at the "
            "spec-declared position (after the setup caps, before any "
            "challenge)",
        ),
        Rule(
            "fs.unobserved-message",
            "transcript",
            "a commitment cap carried by the proof was never observed "
            "on the transcript (weak Fiat-Shamir)",
        ),
        Rule(
            "fs.binding-order",
            "transcript",
            "a commitment cap observed only after a challenge that must "
            "depend on it was already drawn",
        ),
        Rule(
            "fs.challenge-repeat",
            "transcript",
            "an identical challenge value drawn at two transcript "
            "positions (the duplex state did not advance between draws)",
        ),
        Rule(
            "fs.dangling-observe",
            "transcript",
            "a prover message observed after the final challenge: no "
            "verifier randomness can depend on it",
        ),
        # -- layer 4: shard-graph race detection --------------------------
        Rule(
            "race.write-write",
            "races",
            "two shards write overlapping regions of one shared buffer "
            "with no dependency path ordering them",
        ),
        Rule(
            "race.read-write",
            "races",
            "one shard reads a region another shard writes with no "
            "dependency path ordering them",
        ),
        Rule(
            "race.no-footprint",
            "races",
            "a shard kind with no declared read/write footprint: its "
            "memory accesses cannot be verified race-free",
        ),
        Rule(
            "race.challenger-in-shard",
            "races",
            "a shard kernel is handed a Challenger: Fiat-Shamir "
            "interaction must stay in the coordinator",
        ),
    )
}

#: Rule ids belonging to the schedule sanitizer layer.
SCHEDULE_RULES = tuple(r.id for r in RULES.values() if r.layer == "schedule")
#: Rule ids belonging to the repo lint layer.
LINT_RULES = tuple(r.id for r in RULES.values() if r.layer == "lint")
#: Rule ids belonging to the transcript conformance layer.
TRANSCRIPT_RULES = tuple(r.id for r in RULES.values() if r.layer == "transcript")
#: Rule ids belonging to the shard-graph race layer.
RACE_RULES = tuple(r.id for r in RULES.values() if r.layer == "races")


class AnalysisError(Exception):
    """User-facing analysis failure (unknown rule, malformed baseline).

    Rendered as a clean one-line error by the runner and the
    ``repro analyze`` CLI subcommand, mirroring :class:`repro.cli.CliError`.
    """


def check_rule_ids(rule_ids) -> None:
    """Validate a rule-id selection, raising :class:`AnalysisError`."""
    for rule_id in rule_ids:
        if rule_id not in RULES:
            known = ", ".join(sorted(RULES))
            raise AnalysisError(
                f"unknown rule id {rule_id!r} (choose from: {known})"
            )


@dataclass
class Finding:
    """One structured analysis finding.

    Schedule findings populate ``schedule``/``pe``/``cycle``; lint
    findings populate ``path``/``line``/``scope``/``detail``;
    transcript findings populate ``protocol``/``detail``; race findings
    populate ``graph``/``detail``.  ``key()`` is the location identity
    the suppression baseline falls back to: it deliberately excludes
    line numbers and cycle-level detail where the surrounding scope is
    stable, so baselines survive unrelated edits.  ``fingerprint()`` is
    the content identity matched first: a hash of the rule id plus the
    normalized source snippet (lint) or location key (other layers),
    which survives even scope renames and file moves of unrelated code.
    """

    rule: str
    message: str
    # lint location
    path: Optional[str] = None
    line: Optional[int] = None
    scope: Optional[str] = None
    detail: Optional[str] = None
    # schedule location
    schedule: Optional[str] = None
    pe: Optional[Tuple[int, int]] = None
    cycle: Optional[int] = None
    # transcript location
    protocol: Optional[str] = None
    # race location
    graph: Optional[str] = None
    #: Normalized source text the finding anchors to (lint findings).
    snippet: Optional[str] = None

    def key(self) -> str:
        """The baseline-matching location key (excludes line numbers)."""
        if self.path is not None:
            return f"{self.path}::{self.scope or '<module>'}::{self.detail or ''}"
        if self.protocol is not None:
            return f"protocol:{self.protocol}::{self.detail or ''}"
        if self.graph is not None:
            return f"graph:{self.graph}::{self.detail or ''}"
        pe = f"pe({self.pe[0]},{self.pe[1]})" if self.pe is not None else "pe(?)"
        return f"{self.schedule or '<schedule>'}::{pe}"

    def fingerprint(self) -> str:
        """Content-based identity: hash of rule id + normalized snippet.

        Findings without a source snippet (schedule, transcript, race)
        hash their location key instead, so every finding has a stable
        fingerprint the baseline can match on before falling back to
        the key/line location.
        """
        basis = self.snippet if self.snippet else self.key()
        normalized = " ".join(basis.split())
        digest = hashlib.sha256(f"{self.rule}::{normalized}".encode())
        return digest.hexdigest()[:16]

    def format(self) -> str:
        """One human-readable report line."""
        if self.path is not None:
            where = self.path
            if self.line is not None:
                where += f":{self.line}"
            if self.scope:
                where += f" ({self.scope})"
        elif self.protocol is not None:
            where = f"protocol {self.protocol}"
            if self.detail:
                where += f" ({self.detail})"
        elif self.graph is not None:
            where = f"graph {self.graph}"
            if self.detail:
                where += f" ({self.detail})"
        else:
            where = self.schedule or "<schedule>"
            if self.pe is not None:
                where += f" PE{self.pe}"
            if self.cycle is not None:
                where += f" cycle {self.cycle}"
        return f"[{self.rule}] {where}: {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready representation (for ``--json`` output)."""
        out = {
            "rule": self.rule,
            "message": self.message,
            "key": self.key(),
            "fingerprint": self.fingerprint(),
        }
        for name in (
            "path", "line", "scope", "detail", "schedule", "cycle",
            "protocol", "graph", "snippet",
        ):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.pe is not None:
            out["pe"] = list(self.pe)
        return out


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic report order: rule, then location."""
    return sorted(
        findings,
        key=lambda f: (
            f.rule,
            f.path or "",
            f.line or 0,
            f.schedule or "",
            f.pe or (-1, -1),
            f.cycle if f.cycle is not None else -1,
            f.protocol or "",
            f.graph or "",
            f.detail or "",
        ),
    )
