"""Shared runner for all analysis layers.

``python -m repro.analysis`` and ``repro analyze`` run the same code:
sanitize every shipped PE-grid schedule (layer 1), lint the whole
``repro`` package (layer 2), check Fiat-Shamir transcript conformance
for every registered protocol (layer 3), race-check representative
instances of every shipped shard-graph shape (layer 4), match the
findings against the suppression baseline, and report.

Exit status: ``0`` clean (or informational mode), ``1`` non-baselined
findings under ``--strict``, ``2`` usage errors (unknown rule id,
malformed baseline) -- always a clean one-line message, never a
traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import (
    BaselineEntry,
    MatchResult,
    default_baseline_path,
    load_baseline,
    match_baseline,
    save_baseline,
    update_baseline,
)
from .findings import (
    LINT_RULES,
    RACE_RULES,
    RULES,
    SCHEDULE_RULES,
    TRANSCRIPT_RULES,
    AnalysisError,
    Finding,
    check_rule_ids,
    sort_findings,
)


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding]
    match: MatchResult
    schedules_checked: int
    modules_checked: int
    baseline_entries: List[BaselineEntry] = field(default_factory=list)
    protocols_checked: List[str] = field(default_factory=list)
    graphs_checked: List[str] = field(default_factory=list)

    @property
    def new_findings(self) -> List[Finding]:
        """Findings not absorbed by the suppression baseline."""
        return self.match.new

    @property
    def exit_code(self) -> int:
        """The strict-mode exit status this report implies."""
        if self.match.new or self.match.unjustified:
            return 1
        return 0

    def rule_counts(self) -> dict:
        """Findings per rule id (new + suppressed), zero-count rules omitted."""
        counts: dict = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        """JSON-ready report (for ``--json`` output)."""
        return {
            "schedules_checked": self.schedules_checked,
            "modules_checked": self.modules_checked,
            "protocols_checked": list(self.protocols_checked),
            "graphs_checked": list(self.graphs_checked),
            "rule_counts": self.rule_counts(),
            "exit_code": self.exit_code,
            "new": [f.to_dict() for f in self.match.new],
            "suppressed": [f.to_dict() for f in self.match.suppressed],
            "stale_baseline": [
                {"rule": e.rule, "key": e.key} for e in self.match.stale
            ],
        }

    def format_text(self, verbose_suppressed: bool = False) -> str:
        """Human-readable report, one finding per line."""
        lines = [
            f"schedule sanitizer: {self.schedules_checked} shipped schedules",
            f"repo lint: {len(RULES)} rules over {self.modules_checked} modules",
            f"transcript conformance: "
            f"{len(self.protocols_checked)} protocols "
            f"({', '.join(self.protocols_checked) or 'skipped'})",
            f"race detection: {len(self.graphs_checked)} shipped graph shapes",
            f"findings: {len(self.match.new)} new, "
            f"{len(self.match.suppressed)} baselined, "
            f"{len(self.match.stale)} stale baseline entries",
        ]
        for f in sort_findings(self.match.new):
            lines.append("  " + f.format())
        if verbose_suppressed:
            for f in sort_findings(self.match.suppressed):
                lines.append("  (baselined) " + f.format())
        for e in self.match.stale:
            lines.append(
                f"  warning: stale baseline entry [{e.rule}] {e.key} "
                "(no longer matches any finding; prune with --update-baseline)"
            )
        return "\n".join(lines)


def run_analysis(
    rules: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
) -> AnalysisReport:
    """Run all four layers and match against the baseline."""
    from .lint import iter_modules, lint_source
    from .races import run_race_checks
    from .sanitizer import sanitize
    from .schedules import shipped_specs
    from .transcript import run_transcript_checks

    if rules is not None:
        check_rule_ids(rules)
    findings: List[Finding] = []
    schedule_rules = (
        None if rules is None else [r for r in rules if r in SCHEDULE_RULES]
    )
    lint_rules = None if rules is None else [r for r in rules if r in LINT_RULES]
    fs_rules = None if rules is None else [r for r in rules if r in TRANSCRIPT_RULES]
    race_rules = None if rules is None else [r for r in rules if r in RACE_RULES]

    schedules_checked = 0
    if schedule_rules is None or schedule_rules:
        for spec in shipped_specs():
            schedules_checked += 1
            findings.extend(sanitize(spec, rules=schedule_rules))

    modules_checked = 0
    if lint_rules is None or lint_rules:
        for relpath, source in iter_modules():
            modules_checked += 1
            findings.extend(lint_source(relpath, source, rules=lint_rules))

    protocols_checked: List[str] = []
    if fs_rules is None or fs_rules:
        fs_findings, protocols_checked = run_transcript_checks()
        if fs_rules is not None:
            fs_findings = [f for f in fs_findings if f.rule in fs_rules]
        findings.extend(fs_findings)

    graphs_checked: List[str] = []
    if race_rules is None or race_rules:
        race_findings, graphs_checked = run_race_checks()
        if race_rules is not None:
            race_findings = [f for f in race_findings if f.rule in race_rules]
        findings.extend(race_findings)

    findings = sort_findings(findings)
    entries = load_baseline(baseline_path or default_baseline_path())
    return AnalysisReport(
        findings=findings,
        match=match_baseline(findings, entries),
        schedules_checked=schedules_checked,
        modules_checked=modules_checked,
        baseline_entries=entries,
        protocols_checked=protocols_checked,
        graphs_checked=graphs_checked,
    )


def list_rules() -> str:
    """The rule catalogue, one line per rule."""
    lines = []
    for layer, title in (
        ("schedule", "Schedule sanitizer"),
        ("lint", "Repo lint"),
        ("transcript", "Transcript conformance"),
        ("races", "Shard-graph race detection"),
    ):
        lines.append(f"{title}:")
        for rule in RULES.values():
            if rule.layer == layer:
                lines.append(f"  {rule.id:28s} {rule.summary}")
    return "\n".join(lines)


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared flag definitions for ``repro analyze`` and ``-m repro.analysis``."""
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any non-baselined finding or unjustified baseline entry",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="suppression baseline file (default: ANALYSIS_BASELINE.json at the repo root)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="run only these rule ids (see --list-rules)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current findings "
        "(new entries get an empty justification, which --strict rejects)",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also list suppressed findings",
    )


def execute(args: argparse.Namespace) -> int:
    """Run the analysis per parsed CLI flags; raises :class:`AnalysisError`."""
    if args.list_rules:
        print(list_rules())
        return 0
    rules = None
    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        if not rules:
            raise AnalysisError("--rules given but no rule ids parsed")
        check_rule_ids(rules)
    baseline_path = Path(args.baseline) if args.baseline else default_baseline_path()
    report = run_analysis(rules=rules, baseline_path=baseline_path)

    if args.update_baseline:
        merged = update_baseline(report.findings, report.baseline_entries)
        save_baseline(baseline_path, merged)
        empty = sum(1 for e in merged if not e.justification.strip())
        print(
            f"wrote {baseline_path} ({len(merged)} entries, "
            f"{empty} awaiting justification)"
        )
        return 0

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_text(verbose_suppressed=args.show_baselined))

    if args.strict:
        failed = False
        if report.match.unjustified:
            failed = True
            for e in report.match.unjustified:
                print(
                    f"strict: baseline entry [{e.rule}] {e.key} has no "
                    "justification",
                    file=sys.stderr,
                )
        if report.match.new:
            failed = True
            print(
                f"strict: {len(report.match.new)} non-baselined finding(s)",
                file=sys.stderr,
            )
        return 1 if failed else 0
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.analysis`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="UniZK reproduction static analysis: "
        "PE-grid schedule sanitizer, prover-invariant lint, "
        "Fiat-Shamir transcript conformance, shard-graph race detection",
    )
    add_analyze_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return execute(args)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
