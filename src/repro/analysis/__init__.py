"""Static + semantic soundness analysis for the UniZK reproduction.

The compiler emits *static* per-PE schedules, so every hazard -- latch
double-drives, functional-unit overcommit, use-before-def across
wavefront skews -- is decidable before a single emulated cycle; the
zero-copy prover data plane is a set of conventions worth checking, not
trusting; and the protocol layer has *semantic* soundness invariants
(Fiat-Shamir transcript discipline, shard-graph determinism) that a
syntactic pass cannot see.  Four layers:

1. :mod:`repro.analysis.sanitizer` -- given a schedule spec destined
   for :class:`repro.hw.microcode.GridEmulator`, statically verify the
   structural and dataflow invariants (``sched.*`` rules).  The
   emulator runs the same checks at program load (``validate=True``).
2. :mod:`repro.analysis.lint` -- deterministic AST passes over
   ``src/repro`` enforcing prover-code invariants (``prover.*`` rules).
3. :mod:`repro.analysis.transcript` -- a recording
   :class:`~repro.hashing.Challenger` drives every registered
   :class:`~repro.protocols.ProofSystem`'s prove *and* verify paths at
   tiny scale and checks Fiat-Shamir conformance (``fs.*`` rules):
   caps observed before dependent challenges, prover/verifier streams
   identical, no unobserved prover message (weak Fiat-Shamir).
4. :mod:`repro.analysis.races` -- per-shard read/write footprints
   (:mod:`repro.parallel.footprints`) prove every overlapping access
   pair in a :class:`~repro.parallel.scheduler.ShardGraph` is ordered
   by a dependency path (``race.*`` rules).  The pool runs the same
   check at graph submission (``validate=True``).

All layers share :class:`~repro.analysis.findings.Finding` records,
the justification-carrying suppression baseline
(:mod:`repro.analysis.baseline`), and one runner
(``python -m repro.analysis`` / ``repro analyze``), which CI gates with
``--strict``.
"""

from .baseline import (
    BaselineEntry,
    default_baseline_path,
    load_baseline,
    match_baseline,
    save_baseline,
    update_baseline,
)
from .findings import (
    LINT_RULES,
    RACE_RULES,
    RULES,
    SCHEDULE_RULES,
    TRANSCRIPT_RULES,
    AnalysisError,
    Finding,
    Rule,
)
from .lint import lint_package, lint_source
from .races import graph_findings, run_race_checks
from .runner import AnalysisReport, main, run_analysis
from .sanitizer import ScheduleSpec, sanitize, spec_for_emulator
from .schedules import shipped_schedules, shipped_specs
from .transcript import (
    RecordingChallenger,
    TranscriptEvent,
    check_streams,
    run_transcript_checks,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "BaselineEntry",
    "Finding",
    "LINT_RULES",
    "RACE_RULES",
    "RecordingChallenger",
    "Rule",
    "RULES",
    "SCHEDULE_RULES",
    "ScheduleSpec",
    "TRANSCRIPT_RULES",
    "TranscriptEvent",
    "check_streams",
    "default_baseline_path",
    "graph_findings",
    "lint_package",
    "lint_source",
    "load_baseline",
    "main",
    "match_baseline",
    "run_analysis",
    "run_race_checks",
    "run_transcript_checks",
    "sanitize",
    "save_baseline",
    "shipped_schedules",
    "shipped_specs",
    "spec_for_emulator",
    "update_baseline",
]
