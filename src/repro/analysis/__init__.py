"""Static analysis subsystem: schedule sanitizer + prover lint.

The compiler emits *static* per-PE schedules, so every hazard -- latch
double-drives, functional-unit overcommit, use-before-def across
wavefront skews -- is decidable before a single emulated cycle; and the
zero-copy prover data plane is a set of conventions worth checking, not
trusting.  Two layers:

1. :mod:`repro.analysis.sanitizer` -- given a schedule spec destined
   for :class:`repro.hw.microcode.GridEmulator`, statically verify the
   structural and dataflow invariants (``sched.*`` rules).  The
   emulator runs the same checks at program load (``validate=True``).
2. :mod:`repro.analysis.lint` -- deterministic AST passes over
   ``src/repro`` enforcing prover-code invariants (``prover.*`` rules).

Both layers share :class:`~repro.analysis.findings.Finding` records,
the justification-carrying suppression baseline
(:mod:`repro.analysis.baseline`), and one runner
(``python -m repro.analysis`` / ``repro analyze``), which CI gates with
``--strict``.
"""

from .baseline import (
    BaselineEntry,
    default_baseline_path,
    load_baseline,
    match_baseline,
    save_baseline,
    update_baseline,
)
from .findings import RULES, AnalysisError, Finding, Rule
from .lint import lint_package, lint_source
from .runner import AnalysisReport, main, run_analysis
from .sanitizer import ScheduleSpec, sanitize, spec_for_emulator
from .schedules import shipped_schedules, shipped_specs

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "BaselineEntry",
    "Finding",
    "Rule",
    "RULES",
    "ScheduleSpec",
    "default_baseline_path",
    "lint_package",
    "lint_source",
    "load_baseline",
    "main",
    "match_baseline",
    "run_analysis",
    "sanitize",
    "save_baseline",
    "shipped_schedules",
    "shipped_specs",
    "spec_for_emulator",
    "update_baseline",
]
