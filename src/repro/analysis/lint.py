"""Layer 2: deterministic AST lint passes over ``src/repro``.

The zero-copy data plane (workspace arenas, ``*_into`` aliasing
kernels, pinned Fiat-Shamir ordering) is a set of conventions; these
passes turn them into checked invariants:

* ``prover.raw-mod`` -- ad-hoc ``% P`` / ``% gl.P`` modular reduction
  belongs in :mod:`repro.field`; everything else goes through the field
  helpers (:func:`repro.field.goldilocks.canonical`, the gl64 kernels);
* ``prover.hot-alloc`` -- hot-path modules (``ntt/``, ``hashing/``,
  ``fri/``, ``stark/prover.py``, ``plonk/prover.py``) must draw scratch
  from :class:`~repro.field.gl64.Workspace` arenas, not allocate fresh
  numpy arrays per call;
* ``prover.nondeterminism`` -- the proving path must not import or use
  ``time``/``random``/``np.random`` (proofs are transcript-seeded and
  replayable);
* ``prover.into-aliasing-doc`` -- every ``*_into`` kernel taking an
  ``out`` buffer must state its aliasing contract in the docstring
  (may/must-not alias), since callers rely on it for in-place reuse.

Passes are pure functions of the source text: deterministic, no
imports of the linted code.  :func:`lint_source` lints one module from
a string (fixture-friendly); :func:`lint_package` walks the installed
``repro`` package in sorted order.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from .findings import LINT_RULES, Finding, check_rule_ids

#: Module prefixes (relative to the ``repro`` package root, ``/``
#: separators) whose allocations must come from Workspace arenas.
HOT_PATH_PREFIXES = ("ntt/", "hashing/", "fri/", "pcs/")
#: Individual hot-path files.  The shard kernels and graph builders run
#: once per shard per proof -- the same budget as the provers they split;
#: the hyperplonk prover is the sumcheck-native hot path.
HOT_PATH_FILES = (
    "stark/prover.py",
    "plonk/prover.py",
    "hyperplonk/prover.py",
    "parallel/kernels.py",
    "parallel/ops.py",
)

#: Prefixes forming the deterministic proving path.
PROVING_PATH_PREFIXES = (
    "field/",
    "ntt/",
    "hashing/",
    "merkle/",
    "fri/",
    "stark/",
    "plonk/",
    "pipeline/",
    "sumcheck/",
    "parallel/",
    "hyperplonk/",
    "pcs/",
    "protocols/",
)

#: Names that look like a field modulus on the right of ``%``.
_MODULUS_NAMES = frozenset({"P", "PRIME", "MODULUS"})
#: numpy allocators that create fresh arrays.
_NP_ALLOCATORS = frozenset(
    {
        "zeros",
        "empty",
        "ones",
        "array",
        "full",
        "zeros_like",
        "empty_like",
        "ones_like",
        "full_like",
    }
)
#: Modules whose import into the proving path is nondeterminism.
_NONDET_MODULES = frozenset({"time", "random", "secrets"})


def is_hot_path(relpath: str) -> bool:
    """Is this module (path relative to the package root) hot-path?"""
    return relpath.startswith(HOT_PATH_PREFIXES) or relpath in HOT_PATH_FILES


def is_proving_path(relpath: str) -> bool:
    """Is this module part of the deterministic proving path?"""
    return relpath.startswith(PROVING_PATH_PREFIXES)


def is_field_module(relpath: str) -> bool:
    """Is this module inside ``repro.field`` (raw ``%`` is its job)?"""
    return relpath.startswith("field/")


class _ScopedVisitor(ast.NodeVisitor):
    """AST walk tracking the enclosing function/class qualname."""

    def __init__(self) -> None:
        self.stack: List[str] = []

    @property
    def scope(self) -> Optional[str]:
        return ".".join(self.stack) if self.stack else None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef


class _Pass(_ScopedVisitor):
    def __init__(self, relpath: str, lines: Optional[Sequence[str]] = None) -> None:
        super().__init__()
        self.relpath = relpath
        self.lines = lines or ()
        self.findings: List[Finding] = []

    def report(self, rule: str, node: ast.AST, detail: str, msg: str) -> None:
        line = getattr(node, "lineno", None)
        snippet = None
        if line is not None and 0 < line <= len(self.lines):
            # The fingerprint basis: the source line the finding anchors
            # to, so baselines survive line drift and scope renames.
            snippet = f"{self.relpath}::{self.lines[line - 1].strip()}"
        self.findings.append(
            Finding(
                rule=rule,
                message=msg,
                path=self.relpath,
                line=line,
                scope=self.scope,
                detail=detail,
                snippet=snippet,
            )
        )


class _RawModPass(_Pass):
    """``prover.raw-mod``: ``x % P`` outside the field modules."""

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Mod) and _is_modulus(node.right):
            self.report(
                "prover.raw-mod",
                node,
                f"% {ast.unparse(node.right)}",
                "raw modular reduction; use repro.field helpers "
                "(gl.canonical / gl64 kernels) instead",
            )
        self.generic_visit(node)


def _is_modulus(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _MODULUS_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _MODULUS_NAMES
    return False


class _HotAllocPass(_Pass):
    """``prover.hot-alloc``: fresh numpy allocations in hot modules."""

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _NP_ALLOCATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        ):
            self.report(
                "prover.hot-alloc",
                node,
                f"np.{func.attr}",
                f"fresh np.{func.attr} allocation in a hot-path module; "
                "draw scratch from a Workspace arena (or baseline with "
                "justification if the buffer escapes to the caller)",
            )
        self.generic_visit(node)


class _NondetPass(_Pass):
    """``prover.nondeterminism``: time/random in the proving path."""

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _NONDET_MODULES:
                self.report(
                    "prover.nondeterminism",
                    node,
                    f"import {root}",
                    f"`{alias.name}` imported in the proving path; proofs "
                    "must be transcript-seeded and replayable",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in _NONDET_MODULES:
            self.report(
                "prover.nondeterminism",
                node,
                f"import {root}",
                f"`from {node.module} import ...` in the proving path",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # np.random.* -- numpy's global or constructed RNGs.
        if (
            node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        ):
            self.report(
                "prover.nondeterminism",
                node,
                "np.random",
                "np.random used in the proving path; any randomness must "
                "be derived from the transcript (seeded, replayable)",
            )
        self.generic_visit(node)


class _IntoAliasingPass(_Pass):
    """``prover.into-aliasing-doc``: `_into` kernels must document aliasing."""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name.endswith("_into"):
            args = [a.arg for a in node.args.args + node.args.kwonlyargs]
            if any(a == "out" or a.startswith("out_") for a in args):
                doc = ast.get_docstring(node) or ""
                if "alias" not in doc.lower():
                    self.report(
                        "prover.into-aliasing-doc",
                        node,
                        node.name,
                        f"{node.name} takes an out buffer but its docstring "
                        "does not state the aliasing contract "
                        "('out may alias ...' / 'must not alias ...')",
                    )
        super().visit_FunctionDef(node)

    visit_AsyncFunctionDef = visit_FunctionDef


def lint_source(
    relpath: str, source: str, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint one module's source text; ``relpath`` is package-relative.

    The path decides which passes apply (hot-path, proving-path,
    field-module scoping).  Raises ``SyntaxError`` on unparsable input.
    """
    if rules is None:
        enabled = set(LINT_RULES)
    else:
        check_rule_ids(rules)
        enabled = set(rules)
    tree = ast.parse(source, filename=relpath)
    lines = source.splitlines()
    passes: List[_Pass] = []
    if "prover.raw-mod" in enabled and not is_field_module(relpath):
        passes.append(_RawModPass(relpath, lines))
    if "prover.hot-alloc" in enabled and is_hot_path(relpath):
        passes.append(_HotAllocPass(relpath, lines))
    if "prover.nondeterminism" in enabled and is_proving_path(relpath):
        passes.append(_NondetPass(relpath, lines))
    if "prover.into-aliasing-doc" in enabled:
        passes.append(_IntoAliasingPass(relpath, lines))
    findings: List[Finding] = []
    for p in passes:
        p.visit(tree)
        findings.extend(p.findings)
    return findings


def package_root() -> Path:
    """Directory of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


def iter_modules(root: Optional[Path] = None) -> Iterator[tuple]:
    """Yield ``(relpath, source)`` for every module, sorted."""
    root = root or package_root()
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        yield relpath, path.read_text()


def lint_package(
    root: Optional[Path] = None, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run every enabled lint pass over the whole package."""
    findings: List[Finding] = []
    for relpath, source in iter_modules(root):
        findings.extend(lint_source(relpath, source, rules))
    return findings
