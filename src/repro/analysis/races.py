"""Layer 4: shard-graph race detection (``race.*`` rules).

A :class:`~repro.parallel.scheduler.ShardGraph` executes with a
non-deterministic interleaving: any two shards not ordered by a
dependency path can run simultaneously in different processes over the
same shared-memory buffers.  The bit-identity tests catch a missing
dependency edge only when the scheduler happens to interleave the racy
pair -- this pass catches it *statically*, before the graph runs.

Every kernel declares its read/write footprint
(:mod:`repro.parallel.footprints`); :func:`graph_findings` checks one
graph:

* ``race.write-write`` / ``race.read-write`` -- every overlapping
  access pair on a shared buffer must be ordered by a dependency path
  (transitively; insertion order is *not* an ordering -- only ``deps``
  edges are);
* ``race.no-footprint`` -- a shard kind with no declared footprint
  cannot be verified race-free;
* ``race.challenger-in-shard`` -- shard args must never carry a
  :class:`~repro.hashing.Challenger`: Fiat-Shamir interaction is
  coordinator-only (the transcript-order invariant of
  :mod:`repro.parallel.ops`).

:class:`~repro.parallel.pool.ShardPool` runs this check on every graph
submission (``validate=True``), and :func:`run_race_checks` verifies
representative instances of every *shipped* graph shape for ``repro
analyze`` -- so a refactor that breaks a builder's dependency topology
fails the CI gate even if no sharded test happens to race.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..hashing import Challenger
from ..parallel.footprints import Access, footprint
from ..parallel.scheduler import ShardGraph
from .findings import Finding


def _ancestors(graph: ShardGraph) -> Dict[str, FrozenSet[str]]:
    """Transitive dependency closure: shard id -> everything before it.

    Insertion order is topological (``ShardGraph.add`` requires deps to
    pre-exist), so one forward sweep suffices.
    """
    out: Dict[str, FrozenSet[str]] = {}
    for sid in graph.order:
        acc: set = set()
        for dep in graph.shards[sid].deps:
            acc.add(dep)
            acc |= out[dep]
        out[sid] = frozenset(acc)
    return out


def _contains_challenger(obj, depth: int = 0) -> bool:
    """Recursively scan a kernel args value for a transcript object."""
    if depth > 6:
        return False
    if isinstance(obj, Challenger):
        return True
    if isinstance(obj, dict):
        return any(_contains_challenger(v, depth + 1) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return any(_contains_challenger(v, depth + 1) for v in obj)
    return False


def _conflict(
    a: Sequence[Access], b: Sequence[Access]
) -> Optional[Tuple[str, Access, Access]]:
    """The most severe access conflict between two footprints, if any.

    Returns ``(rule, access_a, access_b)`` preferring write-write over
    read-write; ``None`` when every shared-buffer overlap is read-read.
    """
    worst: Optional[Tuple[str, Access, Access]] = None
    for ax in a:
        for bx in b:
            if ax.buffer != bx.buffer:
                continue
            if ax.mode == "r" and bx.mode == "r":
                continue
            if not ax.overlaps(bx):
                continue
            if ax.mode == "w" and bx.mode == "w":
                return ("race.write-write", ax, bx)
            if worst is None:
                worst = ("race.read-write", ax, bx)
    return worst


def graph_findings(graph: ShardGraph, name: Optional[str] = None) -> List[Finding]:
    """Race-check one shard graph; returns structured findings.

    ``name`` overrides ``graph.name`` in the finding locations (the
    runner labels representative graphs this way).
    """
    gname = name if name is not None else (graph.name or "<unnamed>")
    findings: List[Finding] = []
    footprints: Dict[str, Optional[List[Access]]] = {}
    for sid in graph.order:
        shard = graph.shards[sid]
        fp = footprint(shard.kind, shard.args)
        footprints[sid] = fp
        if fp is None:
            findings.append(
                Finding(
                    rule="race.no-footprint",
                    message=(
                        f"shard {sid!r} has kind {shard.kind!r} with no "
                        "declared footprint; its accesses cannot be "
                        "verified race-free (declare one in "
                        "repro.parallel.footprints)"
                    ),
                    graph=gname,
                    detail=f"kind:{shard.kind}",
                )
            )
        if _contains_challenger(shard.args):
            findings.append(
                Finding(
                    rule="race.challenger-in-shard",
                    message=(
                        f"shard {sid!r} args carry a Challenger; "
                        "Fiat-Shamir interaction must stay in the "
                        "coordinator (transcript order is pinned between "
                        "graph runs, not inside them)"
                    ),
                    graph=gname,
                    detail=f"shard:{sid}",
                )
            )

    ancestors = _ancestors(graph)
    order = graph.order
    for i, a_id in enumerate(order):
        fa = footprints[a_id]
        if not fa:
            continue
        for b_id in order[i + 1 :]:
            fb = footprints[b_id]
            if not fb:
                continue
            if a_id in ancestors[b_id] or b_id in ancestors[a_id]:
                continue  # a dependency path orders the pair
            hit = _conflict(fa, fb)
            if hit is None:
                continue
            rule, ax, bx = hit
            kind = "write-write" if rule == "race.write-write" else "read-write"
            findings.append(
                Finding(
                    rule=rule,
                    message=(
                        f"shards {a_id!r} and {b_id!r} have a {kind} "
                        f"overlap ({ax.describe()} vs {bx.describe()}) "
                        "with no dependency path ordering them"
                    ),
                    graph=gname,
                    detail=f"{a_id}~{b_id}",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Shipped-graph representative pass (the `repro analyze` layer)
# ---------------------------------------------------------------------------


def _representative_graphs():
    """Build one small instance of every shipped graph shape.

    Uses a 4-worker pool that is never started (graph *construction*
    allocates arena buffers but runs nothing), so the checked
    topologies -- shard splits, merkle alignment, dependency edges --
    are exactly what :mod:`repro.parallel.ops` ships at ``workers=4``.
    Yields ``(label, graph)`` pairs; the caller closes the pool.
    """
    from ..fri.prover import FriOpenings, PolynomialBatch
    from ..parallel import ops
    from ..parallel.pool import ShardPool

    pool = ShardPool(workers=4, validate=False)
    graphs: List[Tuple[str, ShardGraph]] = []
    rng_rows = np.arange(4 * 16, dtype=np.uint64).reshape(4, 16)

    graph, _ = ops.from_coeffs_graph(pool, rng_rows, 1, 1, "chk:coeffs")
    graphs.append(("commit:from_coeffs", graph))

    graph, _ = ops.from_values_graph(pool, rng_rows, 1, 1, "chk:values")
    graphs.append(("commit:from_values", graph))

    ext = np.arange(32 * 2, dtype=np.uint64).reshape(32, 2)
    graph, _ = ops.quotient_commit_graph(pool, ext, 16, 2, 1, 1, "chk:quotient")
    graphs.append(("commit:quotient", graph))

    layer_vals = np.arange(32 * 2, dtype=np.uint64).reshape(32, 2)
    graph, _ = ops.layer_tree_graph(pool, layer_vals, 1, 1)
    graphs.append(("fri:layer_tree", graph))

    # Combine + queries need committed batches; a tiny serial commit is
    # enough (the graphs only reference its buffers).
    batch = PolynomialBatch.from_values(rng_rows, 1, 1)
    openings = FriOpenings(
        points=[np.array([3, 5], dtype=np.uint64)],
        columns=[[(0, 0), (0, 1)]],
        values=[np.array([[1, 2], [3, 4]], dtype=np.uint64)],
    )
    alpha = np.array([7, 9], dtype=np.uint64)
    graph, _ = ops.combine_graph(pool, [batch], openings, alpha)
    graphs.append(("fri:combine", graph))

    with ShardPool(workers=1, validate=False) as inline:
        tree = ops.sharded_layer_tree(inline, layer_vals, 1, 0)
    layer_args = [ops.layer_ref_args(pool, tree, layer_vals, 0)]
    graph, _ = ops.query_rounds_graph(pool, [batch], layer_args, list(range(6)))
    graphs.append(("fri:queries", graph))

    # HyperPlonk-lite shapes: a multilinear-PCS commit and one fused
    # sumcheck fold + fold-level commit round.
    ml_rows = np.arange(16 * 3, dtype=np.uint64).reshape(16, 3)
    graph, _ = ops.multilinear_commit_graph(pool, ml_rows, 1, "chk:ml")
    graphs.append(("mlpcs:commit", graph))

    buf = ops.sumcheck_table_buffer(pool, np.arange(16, dtype=np.uint64), "chk:sc")
    graph, _, _ = ops.sumcheck_fold_graph(pool, buf, 7, 0, 1)
    graphs.append(("sumcheck:round", graph))

    return pool, graphs


def run_race_checks() -> Tuple[List[Finding], List[str]]:
    """Race-check representative instances of every shipped graph shape.

    Returns ``(findings, graphs_checked)`` for the analysis runner.
    """
    pool, graphs = _representative_graphs()
    try:
        findings: List[Finding] = []
        checked: List[str] = []
        for label, graph in graphs:
            findings.extend(graph_findings(graph, name=label))
            checked.append(label)
        return findings, checked
    finally:
        pool.close()
