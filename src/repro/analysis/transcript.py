"""Layer 3: Fiat-Shamir transcript conformance (``fs.*`` rules).

The soundness of the Fiat-Shamir transform rests on sequencing: every
prover message must be absorbed into the duplex state *before* any
verifier challenge that is supposed to depend on it is squeezed (weak
Fiat-Shamir -- binding challenges to too little of the transcript -- is
a classic, exploitable proof-system bug), and the prover and verifier
must absorb byte-identical streams or verification diverges silently.

This pass checks those properties *semantically* rather than by code
review: a :class:`RecordingChallenger` (an observationally transparent
:class:`~repro.hashing.Challenger` subclass) drives each registered
backend's real ``prove`` and ``verify`` paths at tiny scale and records
the abstract event streams, which are then checked against the
backend's declared :class:`~repro.protocols.transcript.TranscriptSpec`:

* ``fs.transcript-mismatch`` -- prover/verifier streams must be
  identical event-for-event (kind and payload);
* ``fs.publics-order`` -- the public inputs are absorbed right after
  the declared setup caps, before any challenge;
* ``fs.unobserved-message`` / ``fs.binding-order`` -- every commitment
  cap the proof carries is absorbed, and absorbed before the challenge
  ordinal it must bind (the weak-FS detector);
* ``fs.challenge-repeat`` -- no identical challenge value at two
  stream positions (the duplex state advanced between draws);
* ``fs.dangling-observe`` -- no prover message absorbed after the
  final challenge (nothing downstream could depend on it).

Checks run straight off :mod:`repro.protocols.registry`, so a new
backend is covered as soon as it returns a spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..field import goldilocks as gl
from ..hashing import Challenger
from .findings import Finding

#: Event kinds that squeeze challenges; payload length == base draws.
CHALLENGE_KINDS = frozenset({"challenge", "challenge_ext", "challenge_n", "indices"})
#: Event kinds that absorb prover messages.
OBSERVE_KINDS = frozenset({"obs_elem", "obs_vec", "obs_digest", "obs_ext", "obs_cap"})


@dataclass(frozen=True)
class TranscriptEvent:
    """One outermost challenger interaction.

    ``payload`` is a tuple of canonical field elements: the absorbed
    values for observe events, the squeezed values for challenge
    events.  For challenge kinds ``len(payload)`` is the number of
    base-field draws the event consumed (an extension challenge is two,
    ``get_n_challenges(n)`` is ``n``).
    """

    kind: str
    payload: Tuple[int, ...]

    def base_draws(self) -> int:
        """Base-field challenge draws this event consumed (0 if observe)."""
        return len(self.payload) if self.kind in CHALLENGE_KINDS else 0

    def describe(self) -> str:
        """Short human label for finding messages (kind + size)."""
        if self.kind in CHALLENGE_KINDS:
            return f"{self.kind}({len(self.payload)} draws)"
        return f"{self.kind}({len(self.payload)} elems)"


def _ints(values) -> Tuple[int, ...]:
    return tuple(int(v) for v in np.asarray(values, dtype=np.uint64).reshape(-1))


class RecordingChallenger(Challenger):
    """A transcript challenger that records its abstract event stream.

    Observationally transparent: the duplex state evolution is exactly
    the base class's, so proofs driven through a recording challenger
    are bit-identical to plain ones (asserted by the tests).  Only the
    *outermost* API call is recorded -- ``observe_cap`` absorbs through
    ``observe_digest`` -> ``observe_elements`` -> ``observe_element``,
    which a reentrancy depth guard keeps out of the stream.  Forks made
    by :meth:`Challenger.clone` (proof-of-work grinding) record into
    their own discarded lists, so the prover's many grinding forks and
    the verifier's single check fork cannot desynchronize the streams.
    """

    def __init__(self) -> None:
        super().__init__()
        self.events: List[TranscriptEvent] = []
        self._depth = 0

    # -- recording machinery ---------------------------------------------

    def _emit(self, kind: str, payload: Tuple[int, ...]) -> None:
        if self._depth == 0:
            self.events.append(TranscriptEvent(kind, payload))

    def _enter(self) -> None:
        self._depth += 1

    def _exit(self) -> None:
        self._depth -= 1

    # -- observing ---------------------------------------------------------

    def observe_element(self, value: int) -> None:
        self._emit("obs_elem", (gl.canonical(int(value)),))
        self._enter()
        try:
            super().observe_element(value)
        finally:
            self._exit()

    def observe_elements(self, values) -> None:
        self._emit("obs_vec", _ints(values))
        self._enter()
        try:
            super().observe_elements(values)
        finally:
            self._exit()

    def observe_digest(self, digest: np.ndarray) -> None:
        self._emit("obs_digest", _ints(digest))
        self._enter()
        try:
            super().observe_digest(digest)
        finally:
            self._exit()

    def observe_ext(self, value: np.ndarray) -> None:
        self._emit("obs_ext", _ints(value))
        self._enter()
        try:
            super().observe_ext(value)
        finally:
            self._exit()

    def observe_cap(self, cap: np.ndarray) -> None:
        self._emit("obs_cap", _ints(cap))
        self._enter()
        try:
            super().observe_cap(cap)
        finally:
            self._exit()

    # -- squeezing ---------------------------------------------------------

    def get_challenge(self) -> int:
        self._enter()
        try:
            value = super().get_challenge()
        finally:
            self._exit()
        self._emit("challenge", (value,))
        return value

    def get_n_challenges(self, n: int) -> List[int]:
        self._enter()
        try:
            values = super().get_n_challenges(n)
        finally:
            self._exit()
        self._emit("challenge_n", tuple(values))
        return values

    def get_ext_challenge(self) -> np.ndarray:
        self._enter()
        try:
            value = super().get_ext_challenge()
        finally:
            self._exit()
        self._emit("challenge_ext", _ints(value))
        return value

    def get_indices(self, n: int, domain_size: int) -> List[int]:
        self._enter()
        try:
            values = super().get_indices(n, domain_size)
        finally:
            self._exit()
        self._emit("indices", tuple(values))
        return values


# ---------------------------------------------------------------------------
# Stream checks
# ---------------------------------------------------------------------------


def record_case(system, setup):
    """Drive one prove + verify with recording challengers.

    Returns ``(proof, prover_events, verifier_events)``.
    """
    prover = RecordingChallenger()
    proof = system.prove_with_challenger(setup, prover)
    verifier = RecordingChallenger()
    system.verify_with_challenger(setup, proof, verifier)
    return proof, prover.events, verifier.events


def _finding(rule: str, protocol: str, detail: str, message: str) -> Finding:
    return Finding(rule=rule, message=message, protocol=protocol, detail=detail)


def check_streams(
    protocol: str,
    case: str,
    spec,
    publics: Sequence[int],
    bindings,
    prover_events: Sequence[TranscriptEvent],
    verifier_events: Sequence[TranscriptEvent],
) -> List[Finding]:
    """Check one recorded prove/verify pair against its spec.

    ``case`` labels the instance (workload + scale) in finding details;
    ``publics`` / ``bindings`` come from the backend's
    ``public_inputs_of`` / ``cap_bindings`` hooks.  Pure function of
    the streams, so injected-violation fixtures tamper with event lists
    and assert the specific rule that fires.
    """
    findings: List[Finding] = []

    # fs.transcript-mismatch: event-for-event equality.
    for i, (pe, ve) in enumerate(zip(prover_events, verifier_events)):
        if pe != ve:
            findings.append(
                _finding(
                    "fs.transcript-mismatch",
                    protocol,
                    f"{case}:event[{i}]",
                    f"prover recorded {pe.describe()} but verifier recorded "
                    f"{ve.describe()} at stream position {i}",
                )
            )
            break
    else:
        if len(prover_events) != len(verifier_events):
            longer, n_extra = (
                ("prover", len(prover_events) - len(verifier_events))
                if len(prover_events) > len(verifier_events)
                else ("verifier", len(verifier_events) - len(prover_events))
            )
            findings.append(
                _finding(
                    "fs.transcript-mismatch",
                    protocol,
                    f"{case}:length",
                    f"{longer} transcript has {n_extra} extra trailing "
                    f"event(s) the other side never absorbs",
                )
            )

    # The remaining checks run on the verifier stream: it is the
    # binding side (what the proof must convince), and any divergence
    # from the prover stream was already reported above.
    events = list(verifier_events)

    # fs.publics-order: exactly the declared setup caps, then the
    # publics vector, before any challenge.
    expected = _ints(np.asarray(list(publics), dtype=np.uint64))
    position = None
    for i, ev in enumerate(events):
        if ev.kind == "obs_vec" and ev.payload == expected:
            position = i
            break
        if ev.kind in CHALLENGE_KINDS:
            break
    if position is None:
        findings.append(
            _finding(
                "fs.publics-order",
                protocol,
                f"{case}:publics",
                "public inputs are not absorbed before the first "
                "challenge (unbound publics can be swapped freely)",
            )
        )
    else:
        before = [ev.kind for ev in events[:position]]
        if before != ["obs_cap"] * spec.setup_caps:
            findings.append(
                _finding(
                    "fs.publics-order",
                    protocol,
                    f"{case}:publics",
                    f"expected exactly {spec.setup_caps} setup cap(s) "
                    f"before the public inputs, saw {before or 'nothing'}",
                )
            )

    # fs.unobserved-message / fs.binding-order: every proof cap is
    # absorbed, early enough for its dependent challenge.
    for binding in bindings:
        payload = _ints(binding.cap)
        observed_at = None
        draws_before = 0
        draws = 0
        for i, ev in enumerate(events):
            if ev.kind == "obs_cap" and ev.payload == payload:
                observed_at = i
                draws_before = draws
                break
            draws += ev.base_draws()
        if observed_at is None:
            findings.append(
                _finding(
                    "fs.unobserved-message",
                    protocol,
                    f"{case}:{binding.label}",
                    f"commitment cap {binding.label!r} is carried by the "
                    "proof but never absorbed into the transcript "
                    "(weak Fiat-Shamir: challenges do not depend on it)",
                )
            )
        elif draws_before > binding.before_challenge:
            findings.append(
                _finding(
                    "fs.binding-order",
                    protocol,
                    f"{case}:{binding.label}",
                    f"cap {binding.label!r} must be absorbed before "
                    f"base-challenge #{binding.before_challenge} but "
                    f"{draws_before} draws precede its observation",
                )
            )

    # fs.challenge-repeat: all squeezed base values distinct.  Query
    # indices are excluded -- they are masked to the domain size, so
    # small domains legitimately repeat.
    seen: Dict[int, int] = {}
    ordinal = 0
    for ev in events:
        if ev.kind in CHALLENGE_KINDS and ev.kind != "indices":
            for value in ev.payload:
                if value in seen:
                    findings.append(
                        _finding(
                            "fs.challenge-repeat",
                            protocol,
                            f"{case}:draw[{ordinal}]",
                            f"challenge draw #{ordinal} repeats draw "
                            f"#{seen[value]} exactly (duplex state did "
                            "not advance between squeezes)",
                        )
                    )
                else:
                    seen[value] = ordinal
                ordinal += 1
        elif ev.kind == "indices":
            ordinal += len(ev.payload)

    # fs.dangling-observe: nothing absorbed after the final challenge.
    last_challenge = max(
        (i for i, ev in enumerate(events) if ev.kind in CHALLENGE_KINDS),
        default=-1,
    )
    for i in range(last_challenge + 1, len(events)):
        if events[i].kind in OBSERVE_KINDS:
            findings.append(
                _finding(
                    "fs.dangling-observe",
                    protocol,
                    f"{case}:event[{i}]",
                    f"{events[i].describe()} absorbed after the final "
                    "challenge: no verifier randomness can depend on it",
                )
            )

    return findings


def check_case(system, setup) -> List[Finding]:
    """Record and check one proved instance end to end."""
    spec = system.transcript_spec()
    proof, prover_events, verifier_events = record_case(system, setup)
    return check_streams(
        system.name,
        f"{setup.workload}@{setup.scale}",
        spec,
        system.public_inputs_of(setup, proof),
        system.cap_bindings(setup, proof),
        prover_events,
        verifier_events,
    )


def run_transcript_checks(
    protocols: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], List[str]]:
    """Run transcript conformance for every registered backend.

    Returns ``(findings, protocols_checked)``.  Backends that do not
    declare a :class:`~repro.protocols.transcript.TranscriptSpec` are
    skipped (and not counted as checked).
    """
    from .. import protocols as registry_pkg
    from ..workloads import by_name

    names = list(protocols) if protocols is not None else list(registry_pkg.names())
    findings: List[Finding] = []
    checked: List[str] = []
    for name in names:
        system = registry_pkg.get(name)
        spec = system.transcript_spec()
        if spec is None:
            continue
        workload = by_name(spec.workload)
        config = system.make_config(spec.config_overrides)
        for scale in spec.scales:
            setup = system.setup(workload, scale, config)
            findings.extend(check_case(system, setup))
        checked.append(name)
    return findings, checked
