"""Layer 1: static sanitizer for PE-grid microcode schedules.

The compiler backend emits *static* per-PE schedules, so every hazard
is decidable before a single emulated cycle.  Given a
:class:`ScheduleSpec` (grid shape + programs + boundary feeds +
preloaded registers), :func:`sanitize` verifies

structural invariants, per PE per cycle:

* at most one multiplier op (``mul``/``mac``) -- ``sched.mul-overcommit``;
* at most two adder-slot ops (``add``/``sub``/``mov``) --
  ``sched.add-overcommit``;
* each outgoing latch driven at most once -- ``sched.latch-double-drive``;
* register-file indices in bounds -- ``sched.reg-oob``;
* ``up`` latches driven only in designated reverse-link columns --
  ``sched.reverse-link``;
* programs inside the grid -- ``sched.pe-oob``;

and dataflow invariants, via an abstract wavefront walk that mirrors
the emulator's timing (register writes commit at end of cycle, latch
values are visible exactly one cycle after being driven):

* no read of a register that was neither preloaded nor written by an
  earlier cycle -- ``sched.reg-use-before-def``;
* no read of an incoming latch that the upstream PE did not drive in
  the previous cycle, and no boundary read beyond the declared input
  feed -- ``sched.latch-use-before-def``.  Schedules that want the
  architectural "undriven latch reads as zero" must say so with an
  explicit ``zero`` source.

:class:`repro.hw.microcode.GridEmulator` runs the same checks at
program load (``validate=True``), so a bad schedule fails up front with
the rule id instead of silently misexecuting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..hw import microcode as mc
from .findings import SCHEDULE_RULES, Finding, check_rule_ids

Coord = Tuple[int, int]


@dataclass
class ScheduleSpec:
    """Everything the sanitizer needs to know about one schedule.

    ``left_feeds[row]`` / ``top_feeds[col]`` give the number of cycles
    the boundary stream covers (a prefix; reads past it are undefined).
    ``preloaded_regs`` lists ``((row, col), reg_index)`` pairs seeded
    before cycle 0; ``None`` means the register file's reset state is
    part of the contract (every register reads as a defined zero), which
    disables ``sched.reg-use-before-def``.
    """

    name: str
    rows: int
    cols: int
    programs: Mapping[Coord, Sequence]
    reverse_link_cols: frozenset = frozenset()
    register_words: int = 64
    left_feeds: Mapping[int, int] = field(default_factory=dict)
    top_feeds: Mapping[int, int] = field(default_factory=dict)
    preloaded_regs: Optional[Set[Tuple[Coord, int]]] = None
    num_cycles: Optional[int] = None

    def horizon(self) -> int:
        """Cycles the emulator would execute (mirrors ``GridEmulator.run``)."""
        if self.num_cycles is not None:
            return self.num_cycles
        return max(
            [len(p) for p in self.programs.values()]
            + [n for n in self.left_feeds.values()]
            + [n for n in self.top_feeds.values()]
            + [1]
        )


def spec_for_emulator(
    emu,
    programs: Mapping[Coord, Sequence],
    left_inputs: Optional[Mapping[int, Sequence]] = None,
    top_inputs: Optional[Mapping[int, Sequence]] = None,
    num_cycles: Optional[int] = None,
    name: str = "<run>",
) -> ScheduleSpec:
    """Build a :class:`ScheduleSpec` for a ``GridEmulator.run`` call.

    Preloaded registers are taken from :meth:`GridEmulator.preload`
    bookkeeping; an emulator whose registers were never preloaded keeps
    ``preloaded_regs=None`` (reset zeroes are defined), so direct
    ``emu.regs`` pokes never cause spurious use-before-def findings.
    """
    preloaded = getattr(emu, "preloaded_regs", None)
    return ScheduleSpec(
        name=name,
        rows=emu.rows,
        cols=emu.cols,
        programs=programs,
        reverse_link_cols=frozenset(emu.reverse_link_cols),
        register_words=emu.register_words,
        left_feeds={r: len(s) for r, s in (left_inputs or {}).items()},
        top_feeds={c: len(s) for c, s in (top_inputs or {}).items()},
        preloaded_regs=set(preloaded) if preloaded else None,
        num_cycles=num_cycles,
    )


def _as_ops(entry) -> tuple:
    return entry if isinstance(entry, tuple) else (entry,)


_LATCHES = ("out_right", "out_down", "out_up")


def sanitize(
    spec: ScheduleSpec, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Statically verify one schedule; return all findings.

    ``rules`` restricts the check to a subset of ``sched.*`` rule ids
    (default: all of them).
    """
    if rules is None:
        enabled = set(SCHEDULE_RULES)
    else:
        check_rule_ids(rules)
        enabled = set(rules)
    findings: List[Finding] = []

    def report(rule: str, pe: Optional[Coord], cycle: Optional[int], msg: str) -> None:
        if rule in enabled:
            findings.append(
                Finding(rule=rule, message=msg, schedule=spec.name, pe=pe, cycle=cycle)
            )

    in_grid: Dict[Coord, Sequence] = {}
    for pos, program in spec.programs.items():
        r, c = pos
        if 0 <= r < spec.rows and 0 <= c < spec.cols:
            in_grid[pos] = program
        else:
            report(
                "sched.pe-oob",
                pos,
                None,
                f"program assigned outside the {spec.rows}x{spec.cols} grid",
            )

    horizon = spec.horizon()
    # Dataflow state for the abstract wavefront walk.
    defined_regs: Dict[Coord, Set[int]] = {pos: set() for pos in in_grid}
    if spec.preloaded_regs is not None:
        for pos, idx in spec.preloaded_regs:
            if pos in defined_regs:
                defined_regs[pos].add(idx)
    check_regs = spec.preloaded_regs is not None
    driven_prev: Dict[str, Set[Coord]] = {l: set() for l in _LATCHES}

    def check_read(pos: Coord, cycle: int, src: mc.Src) -> None:
        r, c = pos
        if src.kind == "reg":
            if not (0 <= src.value < spec.register_words):
                report(
                    "sched.reg-oob",
                    pos,
                    cycle,
                    f"operand register {src.value} outside the "
                    f"{spec.register_words}-word register file",
                )
            elif check_regs and src.value not in defined_regs[pos]:
                report(
                    "sched.reg-use-before-def",
                    pos,
                    cycle,
                    f"register {src.value} read before any preload or write",
                )
        elif src.kind == "in_left":
            if c == 0:
                if cycle >= spec.left_feeds.get(r, 0):
                    report(
                        "sched.latch-use-before-def",
                        pos,
                        cycle,
                        f"in_left read at the boundary but the left feed for "
                        f"row {r} covers {spec.left_feeds.get(r, 0)} cycles",
                    )
            elif (r, c - 1) not in driven_prev["out_right"]:
                report(
                    "sched.latch-use-before-def",
                    pos,
                    cycle,
                    f"in_left read but PE {(r, c - 1)} did not drive its "
                    f"right latch in cycle {cycle - 1}",
                )
        elif src.kind == "in_top":
            if r == 0:
                if cycle >= spec.top_feeds.get(c, 0):
                    report(
                        "sched.latch-use-before-def",
                        pos,
                        cycle,
                        f"in_top read at the boundary but the top feed for "
                        f"column {c} covers {spec.top_feeds.get(c, 0)} cycles",
                    )
            elif (r - 1, c) not in driven_prev["out_down"]:
                report(
                    "sched.latch-use-before-def",
                    pos,
                    cycle,
                    f"in_top read but PE {(r - 1, c)} did not drive its "
                    f"down latch in cycle {cycle - 1}",
                )
        elif src.kind == "in_bottom":
            if r == spec.rows - 1:
                report(
                    "sched.latch-use-before-def",
                    pos,
                    cycle,
                    "in_bottom read in the bottom row: there is no bottom "
                    "boundary feed (use an explicit zero source)",
                )
            elif (r + 1, c) not in driven_prev["out_up"]:
                report(
                    "sched.latch-use-before-def",
                    pos,
                    cycle,
                    f"in_bottom read but PE {(r + 1, c)} did not drive its "
                    f"up latch in cycle {cycle - 1}",
                )

    for cycle in range(horizon):
        driven_now: Dict[str, Set[Coord]] = {l: set() for l in _LATCHES}
        reg_writes: List[Tuple[Coord, int]] = []
        for pos, program in in_grid.items():
            if cycle >= len(program):
                continue
            ops = _as_ops(program[cycle])
            muls = sum(1 for i in ops if i.op in mc._MUL_OPS)
            adds = sum(1 for i in ops if i.op in mc._ADD_OPS)
            if muls > 1:
                report(
                    "sched.mul-overcommit",
                    pos,
                    cycle,
                    f"{muls} mul/mac ops issued; a PE has one multiplier",
                )
            if adds > 2:
                report(
                    "sched.add-overcommit",
                    pos,
                    cycle,
                    f"{adds} add/sub/mov ops issued; a PE has two adder slots",
                )
            for latch in _LATCHES:
                drivers = sum(1 for i in ops if getattr(i, latch))
                if drivers > 1:
                    report(
                        "sched.latch-double-drive",
                        pos,
                        cycle,
                        f"latch {latch} driven by {drivers} instructions",
                    )
            r, c = pos
            for instr in ops:
                if instr.op == "nop":
                    continue
                if instr.out_up and c not in spec.reverse_link_cols:
                    report(
                        "sched.reverse-link",
                        pos,
                        cycle,
                        f"up latch driven but column {c} has no reverse link",
                    )
                srcs = [instr.a, instr.b]
                if instr.op == "mac":
                    srcs.append(instr.c)
                for src in srcs:
                    check_read(pos, cycle, src)
                if instr.dst_reg is not None:
                    if not (0 <= instr.dst_reg < spec.register_words):
                        report(
                            "sched.reg-oob",
                            pos,
                            cycle,
                            f"destination register {instr.dst_reg} outside the "
                            f"{spec.register_words}-word register file",
                        )
                    else:
                        reg_writes.append((pos, instr.dst_reg))
                for latch in _LATCHES:
                    if getattr(instr, latch):
                        driven_now[latch].add(pos)
        # Commit: register writes and latch drives become visible next cycle.
        for pos, idx in reg_writes:
            defined_regs[pos].add(idx)
        driven_prev = driven_now
    return findings
