"""Shipped PE-grid schedules, as sanitizer specs.

The analysis runner sanitizes every schedule the compiler backend ships
(:mod:`repro.mapping.microcode_schedules`) without executing a single
emulated cycle.  Instances are small and fully deterministic -- the
proving-path lint rules apply to this module too, so no ``random``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..field import goldilocks as gl
from ..mapping.microcode_schedules import (
    BuiltSchedule,
    build_matvec,
    build_reverse_dot,
    build_sbox_pipeline,
    build_vector_mac,
)
from .sanitizer import ScheduleSpec, spec_for_emulator


def _values(n: int, seed: int) -> list:
    """Deterministic, well-spread field elements (no RNG in this path)."""
    return [gl.canonical((seed + 1) * 0x9E37_79B9_7F4A_7C15 * (i + 1)) for i in range(n)]


def _spec(built: BuiltSchedule) -> ScheduleSpec:
    return spec_for_emulator(
        built.emu,
        built.programs,
        built.left_inputs,
        built.top_inputs,
        built.num_cycles,
        name=built.name,
    )


def shipped_schedules() -> Iterator[BuiltSchedule]:
    """Build one representative instance of every shipped schedule."""
    weights = np.array(
        [_values(6, 10 + r) for r in range(6)], dtype=np.uint64
    )
    states = np.array([_values(6, 20 + s) for s in range(4)], dtype=np.uint64)
    yield build_matvec(weights, states)
    yield build_sbox_pipeline(_values(5, 3), post_constant=977)
    yield build_reverse_dot(_values(12, 4), _values(12, 5))
    yield build_vector_mac(_values(30, 6), _values(30, 7), _values(30, 8))


def shipped_specs() -> Iterator[ScheduleSpec]:
    """Sanitizer specs for every shipped schedule."""
    for built in shipped_schedules():
        yield _spec(built)
