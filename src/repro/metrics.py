"""Operation counters instrumenting the functional stack.

The performance models cost proofs from *predicted* operation counts
(permutations per Merkle tree, butterflies per NTT).  These counters
measure what the functional provers actually execute, so the
test-suite can cross-validate prediction against reality at matched
parameters -- the reproduction's analogue of validating the simulator
against RTL.

Usage::

    with counting() as c:
        prove(...)
    print(c.sponge_permutations, c.ntt_butterflies)

Counting is always on (one integer add per call -- negligible); the
context manager just snapshots deltas.

Concurrency
-----------

``GLOBAL`` is *context-local*: every thread (and every asyncio task)
accumulates into its own :class:`Counters` instance, so two proofs
running concurrently -- e.g. the proving service's request handlers --
never corrupt each other's totals.  Worker *processes* each carry
their own counters by construction; the service ships each job's
deltas back as a dict (:meth:`Counters.as_dict`) and merges them into
the coordinator's context with :func:`merge_counts`, the
"per-process, merged-on-return" model.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, fields


@dataclass
class Counters:
    """Running operation totals."""

    #: Poseidon permutations issued by the sponge (Merkle trees, leaf
    #: hashing, two-to-one compression).
    sponge_permutations: int = 0
    #: Poseidon permutations issued by the duplex challenger
    #: (Fiat-Shamir, grinding).
    challenger_permutations: int = 0
    #: NTT butterflies executed (forward + inverse, all variants).
    ntt_butterflies: int = 0
    #: NTT transforms executed (count of (batch, size) calls).
    ntt_transforms: int = 0
    #: Prover plans dropped from the per-thread LRU caches
    #: (:func:`repro.stark.plan.plan_for` and the Plonk analogue).
    plan_evictions: int = 0

    def snapshot(self) -> "Counters":
        """Copy the current totals."""
        return Counters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, since: "Counters") -> "Counters":
        """Totals accumulated since a snapshot."""
        return Counters(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )

    def merge(self, other: "Counters") -> None:
        """Add another counter set's totals into this one (in place)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict:
        """Plain-int dict form, safe to ship across process boundaries."""
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "Counters":
        """Inverse of :meth:`as_dict`; unknown keys are ignored."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in d.items() if k in names})

    @property
    def total_permutations(self) -> int:
        """All Poseidon permutations."""
        return self.sponge_permutations + self.challenger_permutations


_CURRENT: ContextVar[Counters] = ContextVar("repro_counters")


def _current() -> Counters:
    """The context's live counter set, created lazily per thread/task."""
    c = _CURRENT.get(None)
    if c is None:
        c = Counters()
        _CURRENT.set(c)
    return c


class _ContextCounters:
    """Attribute proxy onto the context-local :class:`Counters`.

    Instrumented modules do ``GLOBAL.ntt_butterflies += n``; routing the
    attribute access through the context variable gives every thread its
    own accumulator without touching any call site.
    """

    __slots__ = ()

    def __getattr__(self, name):
        return getattr(_current(), name)

    def __setattr__(self, name, value):
        setattr(_current(), name, value)


#: The counter instance the instrumented modules update (context-local).
GLOBAL = _ContextCounters()


@contextmanager
def counting():
    """Yield a live view of the operations executed inside the block."""
    start = GLOBAL.snapshot()

    class _View:
        def __getattr__(self, name):
            return getattr(GLOBAL.delta(start), name)

    yield _View()


def merge_counts(d: dict) -> None:
    """Fold a worker's :meth:`Counters.as_dict` deltas into this context.

    Used by the proving service to account operations executed in worker
    processes against the coordinator's counters.
    """
    _current().merge(Counters.from_dict(d))
