"""Operation counters instrumenting the functional stack.

The performance models cost proofs from *predicted* operation counts
(permutations per Merkle tree, butterflies per NTT).  These counters
measure what the functional provers actually execute, so the
test-suite can cross-validate prediction against reality at matched
parameters -- the reproduction's analogue of validating the simulator
against RTL.

Usage::

    with counting() as c:
        prove(...)
    print(c.sponge_permutations, c.ntt_butterflies)

Counting is always on (one integer add per call -- negligible); the
context manager just snapshots deltas.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Counters:
    """Running operation totals."""

    #: Poseidon permutations issued by the sponge (Merkle trees, leaf
    #: hashing, two-to-one compression).
    sponge_permutations: int = 0
    #: Poseidon permutations issued by the duplex challenger
    #: (Fiat-Shamir, grinding).
    challenger_permutations: int = 0
    #: NTT butterflies executed (forward + inverse, all variants).
    ntt_butterflies: int = 0
    #: NTT transforms executed (count of (batch, size) calls).
    ntt_transforms: int = 0

    def snapshot(self) -> "Counters":
        """Copy the current totals."""
        return Counters(
            sponge_permutations=self.sponge_permutations,
            challenger_permutations=self.challenger_permutations,
            ntt_butterflies=self.ntt_butterflies,
            ntt_transforms=self.ntt_transforms,
        )

    def delta(self, since: "Counters") -> "Counters":
        """Totals accumulated since a snapshot."""
        return Counters(
            sponge_permutations=self.sponge_permutations - since.sponge_permutations,
            challenger_permutations=(
                self.challenger_permutations - since.challenger_permutations
            ),
            ntt_butterflies=self.ntt_butterflies - since.ntt_butterflies,
            ntt_transforms=self.ntt_transforms - since.ntt_transforms,
        )

    @property
    def total_permutations(self) -> int:
        """All Poseidon permutations."""
        return self.sponge_permutations + self.challenger_permutations


#: The global counter instance the instrumented modules update.
GLOBAL = Counters()


@contextmanager
def counting():
    """Yield a live view of the operations executed inside the block."""
    start = GLOBAL.snapshot()
    holder = Counters()

    class _View:
        def __getattr__(self, name):
            return getattr(GLOBAL.delta(start), name)

    yield _View()
