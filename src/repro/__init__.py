"""UniZK reproduction: a hash-based ZKP stack and the UniZK accelerator
model (ASPLOS 2025).

Sub-packages (bottom-up):

``field`` / ``ntt`` / ``hashing`` / ``merkle`` -- cryptographic
substrates; ``fri`` / ``plonk`` / ``stark`` / ``sumcheck`` -- the
protocols; ``hw`` / ``mapping`` / ``compiler`` / ``sim`` -- the
accelerator model; ``baselines`` / ``workloads`` / ``experiments`` --
the paper's evaluation.

See README.md for a guided tour and DESIGN.md for the system inventory.
"""

__version__ = "0.1.0"

__all__ = [
    "field",
    "ntt",
    "hashing",
    "merkle",
    "fri",
    "plonk",
    "stark",
    "sumcheck",
    "hw",
    "mapping",
    "compiler",
    "sim",
    "baselines",
    "workloads",
    "experiments",
    "serialize",
    "cli",
]
