"""Batched Merkle openings with shared-path deduplication.

FRI opens every committed tree at ~28-84 query indices; individual
authentication paths repeat the nodes near the root.  A *multiproof*
sends each needed node once: walking levels bottom-up, a node is
included only if it cannot be derived from the opened leaves and
previously included nodes.  Production FRI implementations use exactly
this to shave proof size; we provide it standalone with a size
comparison exercised in the tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..hashing import sponge
from .tree import MerkleTree


@dataclass
class MerkleMultiProof:
    """One combined proof for several leaf indices.

    ``nodes`` lists the sibling digests in verification order: the
    verifier walks levels bottom-up, consuming one digest whenever a
    needed child is neither an opened leaf nor a previously derived
    node.
    """

    indices: Tuple[int, ...]
    nodes: np.ndarray  # (k, 4) digests in consumption order

    def size_bytes(self) -> int:
        """Serialized digest payload."""
        return int(self.nodes.size) * 8


def prove_multi(tree: MerkleTree, indices: Sequence[int]) -> MerkleMultiProof:
    """Build a deduplicated proof for ``indices``."""
    num = tree.num_leaves()
    idx = sorted(set(int(i) for i in indices))
    for i in idx:
        if not 0 <= i < num:
            raise IndexError(f"leaf index {i} out of range")
    nodes: List[np.ndarray] = []
    frontier = idx
    for level in tree.levels[:-1]:
        next_frontier: List[int] = []
        known = set(frontier)
        for i in frontier:
            parent = i >> 1
            if next_frontier and next_frontier[-1] == parent:
                continue  # sibling pair already handled together
            sibling = i ^ 1
            if sibling not in known:
                nodes.append(level[sibling])
            next_frontier.append(parent)
        frontier = next_frontier
    stacked = (
        np.stack(nodes)
        if nodes
        else np.zeros((0, sponge.DIGEST_LEN), dtype=np.uint64)
    )
    return MerkleMultiProof(indices=tuple(idx), nodes=stacked)


def verify_multi(
    leaves: Dict[int, np.ndarray],
    proof: MerkleMultiProof,
    cap: np.ndarray,
    tree_depth: int,
    cap_height: int = 0,
) -> bool:
    """Verify a multiproof against a cap.

    ``leaves`` maps each opened index to its raw leaf row; the digests
    are recomputed, combined with ``proof.nodes`` in consumption order,
    and the derived cap entries are compared.
    """
    if tuple(sorted(leaves)) != proof.indices:
        return False
    current: Dict[int, np.ndarray] = {
        i: sponge.hash_or_noop(np.atleast_2d(np.asarray(row, dtype=np.uint64)))[0]
        for i, row in leaves.items()
    }
    cursor = 0
    levels = tree_depth - cap_height
    for _ in range(levels):
        nxt: Dict[int, np.ndarray] = {}
        for i in sorted(current):
            parent = i >> 1
            if parent in nxt:
                continue
            sibling = i ^ 1
            if sibling in current:
                sib_digest = current[sibling]
            else:
                if cursor >= proof.nodes.shape[0]:
                    return False
                sib_digest = proof.nodes[cursor]
                cursor += 1
            left, right = (current[i], sib_digest) if i % 2 == 0 else (sib_digest, current[i])
            nxt[parent] = sponge.two_to_one(left, right)
        current = nxt
    if cursor != proof.nodes.shape[0]:
        return False
    cap = np.atleast_2d(np.asarray(cap, dtype=np.uint64))
    for slot, digest in current.items():
        if slot >= cap.shape[0] or not np.array_equal(digest, cap[slot]):
            return False
    return True


def individual_paths_bytes(tree: MerkleTree, indices: Sequence[int]) -> int:
    """Digest payload of separate per-index proofs (for comparison)."""
    return sum(len(tree.prove(i).siblings) * 32 for i in set(indices))
