"""Merkle tree with Plonky2-style caps (paper Section 5.3).

Leaves are rows of field elements (one row per LDE-domain point,
concatenating the values of all committed polynomials at that point).
Leaf digests come from the Poseidon sponge; internal nodes use
two-to-one compression.  Instead of a single root, the tree can be
truncated at a *cap* of ``2**cap_height`` digests, trading commitment
size for shorter authentication paths -- exactly as Plonky2 does.

The tree stores its levels contiguously in level order, matching the
memory layout UniZK relies on for long sequential DRAM accesses while
climbing levels (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..field import gl64
from ..hashing import sponge


def level_sizes(num_leaves: int, cap_height: int) -> List[int]:
    """Digest counts per level, leaves first, down to the cap.

    The contiguous level-order arena layout (Section 5.3) is
    ``sum(level_sizes(...))`` rows; sharded tree builders use this to
    size shared arenas identically to :class:`MerkleTree` itself.
    """
    sizes = []
    width = num_leaves
    while width >= (1 << cap_height):
        sizes.append(width)
        width //= 2
    return sizes


@dataclass(frozen=True)
class MerkleProof:
    """Authentication path from a leaf to the cap."""

    siblings: np.ndarray  # (path_len, DIGEST_LEN)

    def __len__(self) -> int:
        return len(self.siblings)


class MerkleTree:
    """Merkle tree over a (num_leaves, leaf_width) matrix of elements."""

    def __init__(
        self,
        leaves: np.ndarray,
        cap_height: int = 0,
        ws: gl64.Workspace | None = None,
        arena_slot: str | None = None,
    ) -> None:
        leaves = np.atleast_2d(gl64.asarray(leaves, trusted=True))
        num_leaves = leaves.shape[0]
        if num_leaves == 0 or num_leaves & (num_leaves - 1):
            raise ValueError("leaf count must be a non-zero power of two")
        depth = num_leaves.bit_length() - 1
        if not 0 <= cap_height <= depth:
            raise ValueError(f"cap_height must be in [0, {depth}]")
        self.leaves = leaves
        self.cap_height = cap_height
        ws = ws or gl64.default_workspace()
        # All levels live in one contiguous level-order arena (the
        # paper's Section 5.3 layout); ``levels`` are views into it.  A
        # plan can pin the arena in its workspace via ``arena_slot`` so
        # repeated proofs of the same shape reuse the buffer, but each
        # slot then belongs to exactly one tree per proof.
        sizes = level_sizes(num_leaves, cap_height)
        total = sum(sizes)
        if arena_slot is not None:
            self.arena = ws.temp((total, sponge.DIGEST_LEN), f"merkle:{arena_slot}")
        else:
            self.arena = np.empty((total, sponge.DIGEST_LEN), dtype=np.uint64)
        #: levels[0] = leaf digests; levels[-1] = the cap.
        self.levels: List[np.ndarray] = []
        offset = 0
        for size in sizes:
            self.levels.append(self.arena[offset : offset + size])
            offset += size
        sponge.hash_leaves_into(leaves, self.levels[0], ws)
        for i in range(1, len(self.levels)):
            sponge.compress_level_into(self.levels[i - 1], self.levels[i], ws)

    @classmethod
    def from_levels(
        cls,
        leaves: np.ndarray,
        cap_height: int,
        arena: np.ndarray,
        sizes: List[int],
    ) -> "MerkleTree":
        """Wrap an already-hashed level-order arena as a tree.

        The sharded prover fills the arena through parallel subtree
        kernels (same layout, same digests) and adopts it here without
        re-hashing; ``sizes`` must be ``level_sizes(len(leaves),
        cap_height)`` and the arena ``sum(sizes)`` digest rows.
        """
        if list(sizes) != level_sizes(leaves.shape[0], cap_height):
            raise ValueError("sizes do not match the leaf count and cap height")
        if arena.shape != (sum(sizes), sponge.DIGEST_LEN):
            raise ValueError("arena shape does not match the level sizes")
        tree = cls.__new__(cls)
        tree.leaves = leaves
        tree.cap_height = cap_height
        tree.arena = arena
        tree.levels = []
        offset = 0
        for size in sizes:
            tree.levels.append(arena[offset : offset + size])
            offset += size
        return tree

    @property
    def cap(self) -> np.ndarray:
        """The commitment: ``2**cap_height`` digests, shape (c, 4)."""
        return self.levels[-1]

    @property
    def root(self) -> np.ndarray:
        """The single root digest (requires ``cap_height == 0``)."""
        if self.cap_height != 0:
            raise ValueError("tree has a cap, not a single root")
        return self.levels[-1][0]

    def num_leaves(self) -> int:
        """Number of leaves."""
        return self.leaves.shape[0]

    def prove(self, index: int) -> MerkleProof:
        """Return the authentication path for leaf ``index``."""
        if not 0 <= index < self.num_leaves():
            raise IndexError("leaf index out of range")
        sibs = []
        for level in self.levels[:-1]:
            sibs.append(level[index ^ 1])
            index >>= 1
        if sibs:
            return MerkleProof(siblings=np.stack(sibs))
        return MerkleProof(siblings=np.zeros((0, sponge.DIGEST_LEN), dtype=np.uint64))


def verify_proof(
    leaf_data: np.ndarray,
    index: int,
    proof: MerkleProof,
    cap: np.ndarray,
) -> bool:
    """Check an authentication path against a cap.

    ``leaf_data`` is the raw leaf row (the verifier re-hashes it).
    """
    digest = sponge.hash_or_noop(np.atleast_2d(np.asarray(leaf_data, dtype=np.uint64)))[0]
    for sibling in proof.siblings:
        if index & 1:
            digest = sponge.two_to_one(sibling, digest)
        else:
            digest = sponge.two_to_one(digest, sibling)
        index >>= 1
    cap = np.atleast_2d(np.asarray(cap, dtype=np.uint64))
    if index >= cap.shape[0]:
        return False
    return bool(np.array_equal(digest, cap[index]))


def merkle_permutation_count(num_leaves: int, leaf_width: int, cap_height: int = 0) -> int:
    """Poseidon permutations needed to build a tree (for cost models)."""
    per_leaf = sponge.permutation_count(leaf_width) if leaf_width > sponge.DIGEST_LEN else 0
    internal = max(0, num_leaves - (1 << cap_height))
    return num_leaves * per_leaf + internal
