"""Merkle commitments with Plonky2-style caps and batched multiproofs."""

from . import multiproof
from .multiproof import MerkleMultiProof, prove_multi, verify_multi
from .tree import (
    MerkleProof,
    MerkleTree,
    level_sizes,
    merkle_permutation_count,
    verify_proof,
)

__all__ = [
    "MerkleTree",
    "MerkleProof",
    "verify_proof",
    "level_sizes",
    "merkle_permutation_count",
    "multiproof",
    "MerkleMultiProof",
    "prove_multi",
    "verify_multi",
]
