"""Socket front-end: newline-delimited JSON over local TCP.

One request object per line, one response object per line.  Ops:

* ``{"op": "ping"}``
* ``{"op": "submit", "spec": {...}, "priority": 0, "wait": true,
  "timeout_s": ..., "max_retries": ...}`` -- submit a job; with
  ``wait`` the response includes the result envelope (hex).
* ``{"op": "status", "job_id": "..."}`` -- one job's stats
  (service stats when ``job_id`` is omitted).
* ``{"op": "result", "job_id": "...", "wait_s": ...}`` -- block for a
  result envelope.
* ``{"op": "stats"}`` -- service-level stats.
* ``{"op": "shutdown"}`` -- drain and stop the serve loop.

Binary payloads (proof envelopes) are hex-encoded: the framing stays
line-oriented and debuggable with ``nc``.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Any, Dict, Optional

from .jobs import JobFailed
from .server import ProvingService


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            # Parse failures get their own error envelope and the
            # connection stays open -- one bad line must not cost the
            # client its session (or take down the handler thread).
            try:
                request = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._reply({"ok": False, "error": f"malformed request JSON: {exc}"})
                continue
            if not isinstance(request, dict):
                self._reply({"ok": False, "error": "request must be a JSON object"})
                continue
            try:
                response = self.server.dispatch(request)  # type: ignore[attr-defined]
            except Exception as exc:  # noqa: BLE001 - report to the client
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            self._reply(response)
            if response.get("bye"):
                break

    def _reply(self, response: Dict[str, Any]) -> None:
        self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
        self.wfile.flush()


class ServiceServer(socketserver.ThreadingTCPServer):
    """TCP server wrapping a :class:`ProvingService`.

    ``max_jobs`` makes the server exit after that many submitted jobs
    have reached a terminal state -- used by smoke tests and CI so a
    foreground ``repro serve`` terminates by itself.

    Client-supplied waits are untrusted: ``wait_s`` / ``timeout_s``
    from the wire are clamped to ``max_wait_s`` (and an omitted
    ``wait_s`` means "up to the server max", never "forever") so a
    client cannot pin a handler thread indefinitely.  ``drain_timeout_s``
    bounds the final drain before a ``max_jobs`` shutdown.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service: ProvingService,
        host: str = "127.0.0.1",
        port: int = 8347,
        max_jobs: Optional[int] = None,
        max_wait_s: float = 300.0,
        drain_timeout_s: float = 60.0,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = service
        self.max_jobs = max_jobs
        self.max_wait_s = max_wait_s
        self.drain_timeout_s = drain_timeout_s
        self._jobs_seen = 0
        self._lock = threading.Lock()

    def _clamp_wait(self, value: Any) -> float:
        """Clamp an untrusted client wait to ``[0, max_wait_s]``."""
        try:
            v = float(value)
        except (TypeError, ValueError):
            return self.max_wait_s
        return min(max(v, 0.0), self.max_wait_s)

    # -- request dispatch ------------------------------------------------

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Route one request object to the matching service call."""
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            return self._submit(request)
        if op == "status":
            job_id = request.get("job_id")
            if job_id:
                return {"ok": True, "job": self.service.job(job_id)}
            return {"ok": True, "stats": self.service.stats()}
        if op == "result":
            return self._result(request["job_id"], self._clamp_wait(request.get("wait_s")))
        if op == "stats":
            return {"ok": True, "stats": self.service.stats()}
        if op == "shutdown":
            threading.Thread(target=self.shutdown, daemon=True).start()
            return {"ok": True, "bye": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # A missing per-job timeout falls back to the service default;
        # a supplied one is clamped like any other client wait.
        timeout_s = request.get("timeout_s")
        if timeout_s is not None:
            timeout_s = self._clamp_wait(timeout_s)
        job_id = self.service.submit(
            request["spec"],
            priority=int(request.get("priority", 0)),
            timeout_s=timeout_s,
            max_retries=request.get("max_retries"),
        )
        response: Dict[str, Any] = {"ok": True, "job_id": job_id}
        if request.get("wait"):
            response.update(self._result(job_id, self._clamp_wait(request.get("wait_s"))))
            response["job_id"] = job_id
        self._count_job()
        return response

    def _result(self, job_id: str, wait_s: Optional[float]) -> Dict[str, Any]:
        try:
            result = self.service.result(job_id, timeout_s=wait_s)
        except JobFailed:
            return {"ok": False, "job": self.service.job(job_id)}
        return {
            "ok": True,
            "job": self.service.job(job_id),
            "envelope_hex": result.envelope.hex(),
        }

    def _count_job(self) -> None:
        if self.max_jobs is None:
            return
        with self._lock:
            self._jobs_seen += 1
            if self._jobs_seen >= self.max_jobs:
                threading.Thread(target=self._drain_and_stop, daemon=True).start()

    def _drain_and_stop(self) -> None:
        self.service.drain(timeout_s=self.drain_timeout_s)
        self.shutdown()


def serve_forever(
    service: ProvingService,
    host: str = "127.0.0.1",
    port: int = 8347,
    max_jobs: Optional[int] = None,
    ready_event: Optional[threading.Event] = None,
    max_wait_s: float = 300.0,
    drain_timeout_s: float = 60.0,
) -> None:
    """Run the accept loop until shutdown (blocking)."""
    with ServiceServer(
        service,
        host=host,
        port=port,
        max_jobs=max_jobs,
        max_wait_s=max_wait_s,
        drain_timeout_s=drain_timeout_s,
    ) as server:
        if ready_event is not None:
            ready_event.set()
        server.serve_forever(poll_interval=0.1)
