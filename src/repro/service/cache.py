"""Content-addressed LRU result cache.

Proof generation here is deterministic (fixed transcripts, no
blinding by default), so a :class:`~repro.service.jobs.JobSpec`'s
``cache_key`` fully determines the serialized proof bytes.  The cache
maps that key to the result envelope; a hit returns the *byte-identical*
proof a fresh prove would produce, for free.

Eviction is least-recently-used, bounded both by entry count and by
total payload bytes (proofs are tens of kilobytes each).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional


class ProofCache:
    """Thread-safe LRU byte cache with hit/miss/eviction metrics."""

    def __init__(self, max_entries: int = 256, max_bytes: int = 64 << 20) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._data: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[bytes]:
        """Look up a result envelope; refreshes recency on hit."""
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value: bytes) -> None:
        """Insert (or refresh) an envelope, evicting LRU entries to fit."""
        with self._lock:
            old = self._data.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._data[key] = value
            self._bytes += len(value)
            while len(self._data) > self._max_entries or (
                self._bytes > self._max_bytes and len(self._data) > 1
            ):
                _, evicted = self._data.popitem(last=False)
                self._bytes -= len(evicted)
                self._evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Drop every entry (metrics are kept)."""
        with self._lock:
            self._data.clear()
            self._bytes = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters and current occupancy."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._data),
                "bytes": self._bytes,
            }
