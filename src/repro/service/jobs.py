"""Job model for the proving service.

A *job* is one client request: prove (or simulate) a named workload at
a given scale.  Jobs move through a small state machine::

    PENDING --> RUNNING --> DONE
       ^           |
       |           +------> FAILED      (retries exhausted)
       +-----------+                    (retry with backoff)
    PENDING/RUNNING ------> CANCELLED   (client cancel)

The :class:`JobSpec` is the content-addressable part -- two specs with
the same canonical form are the *same work*, which is what the result
cache and the request batcher key on.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from ..errors import UnknownEntryError
from ..protocols import names as _protocol_names

#: Job kinds the executor understands: every registered proof protocol,
#: the performance-model ``simulate`` kind, plus the fault-injection
#: kinds (``sleep``/``crash``) used by the failure tests and benchmarks;
#: the service only accepts the latter when started with
#: ``fault_injection=True``.
JOB_KINDS = _protocol_names() + ("simulate", "sleep", "crash")
FAULT_KINDS = ("sleep", "crash")


class UnknownJobKindError(UnknownEntryError):
    """An unknown job kind (still a ``ValueError`` for old callers)."""

    entry_kind = "job kind"


class JobState(str, Enum):
    """Lifecycle states of a job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the job will never run again."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """What to prove: the content-addressed request description."""

    workload: str
    kind: str = "stark"
    #: Size knob: ``log_rows`` for stark AETs, gate count for plonk.
    scale: int = 6
    #: FRI-config overrides (``rate_bits``, ``num_queries``, ...).
    config: Dict[str, int] = field(default_factory=dict)
    #: Extra kind-specific parameters (e.g. ``seconds`` for ``sleep``).
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise UnknownJobKindError(self.kind, JOB_KINDS)

    def canonical(self) -> str:
        """Deterministic JSON form (sorted keys) used for hashing."""
        return json.dumps(
            {
                "workload": self.workload,
                "kind": self.kind,
                "scale": self.scale,
                "config": dict(sorted(self.config.items())),
                "params": dict(sorted(self.params.items())),
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @property
    def cache_key(self) -> str:
        """Content address: same key == same proof bytes (deterministic)."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    @property
    def compat_key(self) -> str:
        """Batching compatibility: jobs sharing workload/kind/config may
        ride in one worker dispatch (amortised precompute)."""
        return json.dumps(
            {
                "workload": self.workload,
                "kind": self.kind,
                "config": dict(sorted(self.config.items())),
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Wire form (JSON-safe)."""
        return {
            "workload": self.workload,
            "kind": self.kind,
            "scale": self.scale,
            "config": dict(self.config),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        allowed = {"workload", "kind", "scale", "config", "params"}
        extra = set(d) - allowed
        if extra:
            raise ValueError(f"unknown job spec fields: {sorted(extra)}")
        return cls(**d)


@dataclass
class JobResult:
    """Outcome payload of a finished job."""

    #: Serialized result envelope (see ``repro.serialize``).
    envelope: bytes
    #: Whether it was served from the result cache.
    cache_hit: bool = False
    #: Operation-counter deltas measured in the worker.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Per-stage trace spans (``repro.tracing.Span.as_dict()`` forms)
    #: recorded around the worker-side execution.
    spans: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class Job:
    """A submitted job plus all its bookkeeping."""

    id: str
    spec: JobSpec
    priority: int = 0
    timeout_s: float = 60.0
    max_retries: int = 2
    state: JobState = JobState.PENDING
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Dispatch attempts so far (1 == first try, no retry yet).
    attempts: int = 0
    error: Optional[str] = None
    result: Optional[JobResult] = None
    #: Size of the batch the job last rode in (1 == solo).
    batch_size: int = 0
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    def stats(self) -> Dict[str, Any]:
        """Structured per-job stats (queue wait, run time, retries, ...)."""
        queue_wait = (
            (self.started_at - self.submitted_at) if self.started_at else None
        )
        run_time = (
            (self.finished_at - self.started_at)
            if self.finished_at and self.started_at
            else None
        )
        return {
            "id": self.id,
            "state": self.state.value,
            "workload": self.spec.workload,
            "kind": self.spec.kind,
            "scale": self.spec.scale,
            "priority": self.priority,
            "attempts": self.attempts,
            "retries": max(0, self.attempts - 1),
            "batch_size": self.batch_size,
            "queue_wait_s": queue_wait,
            "run_time_s": run_time,
            "cache_hit": bool(self.result.cache_hit) if self.result else False,
            "counters": dict(self.result.counters) if self.result else {},
            "spans": list(self.result.spans) if self.result else [],
            "error": self.error,
        }


class JobFailed(Exception):
    """Raised by blocking result waits when the job ended unsuccessfully."""

    def __init__(self, job: Job) -> None:
        super().__init__(f"job {job.id} {job.state.value}: {job.error}")
        self.job = job
