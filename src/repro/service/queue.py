"""Thread-safe priority queue with delayed (backoff) entries.

Two heaps: a *delayed* heap ordered by ready time (retry backoff, the
batching window) and a *ready* heap ordered by ``(priority, sequence)``
-- lowest priority number first, FIFO within a level.  Popping first
matures any delayed entries whose time has come, so a high-priority
retry still jumps ahead of older low-priority work.  Cancellation uses
tombstones so it is O(1) regardless of queue depth.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import List, Optional


class PriorityJobQueue:
    """Priority queue of job ids with per-entry visibility delays."""

    def __init__(self) -> None:
        self._delayed: List[tuple] = []  # (not_before, seq, priority, job_id)
        self._ready: List[tuple] = []    # (priority, seq, job_id)
        self._seq = itertools.count()
        self._cancelled: set = set()
        self._lock = threading.Lock()

    def push(self, job_id: str, priority: int = 0, delay_s: float = 0.0) -> None:
        """Enqueue; the entry becomes poppable after ``delay_s`` seconds."""
        with self._lock:
            self._cancelled.discard(job_id)
            seq = next(self._seq)
            if delay_s > 0:
                heapq.heappush(
                    self._delayed,
                    (time.monotonic() + delay_s, seq, priority, job_id),
                )
            else:
                heapq.heappush(self._ready, (priority, seq, job_id))

    def cancel(self, job_id: str) -> None:
        """Mark a queued job id so it is skipped when it surfaces."""
        with self._lock:
            self._cancelled.add(job_id)

    def _mature(self, now: float) -> None:
        while self._delayed and self._delayed[0][0] <= now:
            _, seq, priority, job_id = heapq.heappop(self._delayed)
            heapq.heappush(self._ready, (priority, seq, job_id))

    def pop_ready(self, max_n: int = 1) -> List[str]:
        """Dequeue up to ``max_n`` entries whose ready time has passed."""
        out: List[str] = []
        with self._lock:
            self._mature(time.monotonic())
            while self._ready and len(out) < max_n:
                _, _, job_id = heapq.heappop(self._ready)
                if job_id in self._cancelled:
                    self._cancelled.discard(job_id)
                    continue
                out.append(job_id)
        return out

    def next_ready_in(self) -> Optional[float]:
        """Seconds until some entry becomes poppable (None if empty)."""
        with self._lock:
            self._mature(time.monotonic())
            live_ready = any(
                job_id not in self._cancelled for _, _, job_id in self._ready
            )
            if live_ready:
                return 0.0
            delayed = [
                e for e in self._delayed if e[3] not in self._cancelled
            ]
            if not delayed:
                return None
            return max(0.0, min(e[0] for e in delayed) - time.monotonic())

    def __len__(self) -> int:
        with self._lock:
            live = [
                e for e in self._ready if e[2] not in self._cancelled
            ] + [e for e in self._delayed if e[3] not in self._cancelled]
            return len(live)

    def empty(self) -> bool:
        """Whether no live entries remain."""
        return len(self) == 0
