"""Multiprocess worker pool with liveness tracking and respawn.

Each worker is a separate OS process (real parallelism for the
numpy-heavy provers) with its own task queue; results funnel back
through one shared queue.  The pool itself is policy-free: the
scheduler decides *what* to run and *when* to give up on a worker; the
pool knows how to dispatch, detect death, kill, and respawn.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .executor import execute


def _worker_main(
    worker_id: int,
    task_q,
    result_q,
    shard_workers: int = 1,
    shard_config: Optional[Dict[str, Any]] = None,
) -> None:
    """Worker loop: take a batch task, run every spec, ship results.

    With ``shard_workers > 1`` the worker owns a
    :class:`repro.parallel.ShardPool` and scopes it over every job it
    executes, so each proof's commit/FRI stages fan out across shard
    processes (stage-level parallelism nested inside job-level
    parallelism).  ``shard_config`` forwards pool thresholds.
    """
    # A foreground `repro serve` shares its process group with the
    # workers, so a terminal Ctrl-C would hit them too.  Shutdown is
    # driven by sentinels (and SIGKILL for deadline kills), never
    # SIGINT -- let the scheduler drain instead of dying mid-batch.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from .. import parallel

    shard_pool = None
    if shard_workers > 1:
        shard_pool = parallel.ShardPool(shard_workers, **(shard_config or {}))
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            results = []
            with parallel.sharding(shard_pool):
                for spec in task["specs"]:
                    try:
                        results.append({"ok": True, **execute(spec)})
                    except Exception as exc:  # noqa: BLE001 - report, don't die
                        results.append(
                            {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                        )
            result_q.put(
                {
                    "worker_id": worker_id,
                    "batch_id": task["batch_id"],
                    "results": results,
                }
            )
    finally:
        if shard_pool is not None:
            shard_pool.close()


@dataclass
class WorkerHandle:
    """One worker process plus its dispatch state."""

    id: int
    process: mp.Process
    task_q: Any
    #: Batch id currently executing (None == idle).
    busy: Optional[int] = None
    #: Monotonic deadline for the in-flight batch.
    deadline: Optional[float] = None
    generation: int = 0
    #: Monotonic time this worker last became idle (spawn counts).
    idle_since: float = field(default_factory=time.monotonic)
    #: Batches dispatched to this worker over its lifetime.
    dispatches: int = 0

    @property
    def idle(self) -> bool:
        """Whether the worker has no batch in flight."""
        return self.busy is None

    @property
    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.is_alive()


@dataclass
class Casualty:
    """A worker the pool had to give up on, and why."""

    worker_id: int
    batch_id: int
    reason: str  # "crashed" | "timeout"


class WorkerPool:
    """Fixed-size pool of proving workers."""

    def __init__(
        self,
        num_workers: int = 2,
        start_method: str = "fork",
        shard_workers: int = 1,
        shard_config: Optional[Dict[str, Any]] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if isinstance(shard_workers, bool) or not isinstance(shard_workers, int):
            raise TypeError(
                f"shard_workers must be an int, got {type(shard_workers).__name__}"
            )
        if shard_workers < 1:
            raise ValueError(f"shard_workers must be >= 1, got {shard_workers}")
        self._ctx = mp.get_context(start_method)
        self._num_workers = num_workers
        self.shard_workers = shard_workers
        self.shard_config = dict(shard_config or {})
        self.result_q = self._ctx.Queue()
        self.workers: List[WorkerHandle] = []
        self.restarts = 0
        self._next_id = 0

    # -- lifecycle -------------------------------------------------------

    def _spawn(self, generation: int = 0) -> WorkerHandle:
        wid = self._next_id
        self._next_id += 1
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, task_q, self.result_q, self.shard_workers, self.shard_config),
            # Daemonic processes cannot spawn children, so a worker that
            # owns a shard pool must be non-daemonic; pool.stop() still
            # reaps it (sentinel, then terminate).
            daemon=self.shard_workers <= 1,
        )
        proc.start()
        return WorkerHandle(id=wid, process=proc, task_q=task_q, generation=generation)

    def start(self) -> None:
        """Spawn the configured number of workers."""
        while len(self.workers) < self._num_workers:
            self.workers.append(self._spawn())

    def stop(self, timeout_s: float = 5.0) -> None:
        """Graceful stop: sentinel each worker, then terminate stragglers."""
        for w in self.workers:
            if w.alive:
                try:
                    w.task_q.put_nowait(None)
                except Exception:
                    pass
        deadline = time.monotonic() + timeout_s
        for w in self.workers:
            w.process.join(max(0.0, deadline - time.monotonic()))
            if w.alive:
                w.process.terminate()
                w.process.join(1.0)
        self.workers.clear()

    # -- dispatch --------------------------------------------------------

    def idle_workers(self) -> List[WorkerHandle]:
        """Workers ready for a new batch, longest-idle first.

        Ordering matters: the scheduler zips this list against ready
        batches, so returning declaration order would always feed
        worker 0 first, starving high-id workers under light load and
        skewing per-worker stats.  Longest-waiting-first spreads work
        evenly (and keeps every worker's caches warm).
        """
        idle = [w for w in self.workers if w.idle and w.alive]
        idle.sort(key=lambda w: (w.idle_since, w.id))
        return idle

    def assign(self, worker: WorkerHandle, batch_id: int, specs: List[dict],
               timeout_s: float) -> None:
        """Hand a batch to an idle worker and arm its deadline."""
        assert worker.idle, "assigning to a busy worker"
        worker.busy = batch_id
        worker.deadline = time.monotonic() + timeout_s
        worker.dispatches += 1
        worker.task_q.put({"batch_id": batch_id, "specs": specs})

    def mark_idle(self, worker_id: int) -> None:
        """Clear a worker's in-flight state after its result arrived."""
        for w in self.workers:
            if w.id == worker_id:
                w.busy = None
                w.deadline = None
                w.idle_since = time.monotonic()

    def pids(self) -> Dict[int, int]:
        """worker id -> OS pid (the failure tests kill these)."""
        return {w.id: w.process.pid for w in self.workers if w.process.pid}

    def busy_workers(self) -> List[WorkerHandle]:
        """Workers with a batch in flight."""
        return [w for w in self.workers if not w.idle]

    # -- health ----------------------------------------------------------

    def check_health(self) -> List[Casualty]:
        """Detect crashed/timed-out workers; replace them; report losses.

        A worker past its deadline is SIGKILLed (the prover does not
        poll for cancellation) and counted as a ``timeout`` casualty;
        a worker that died with a batch in flight is a ``crash``.
        """
        now = time.monotonic()
        casualties: List[Casualty] = []
        for i, w in enumerate(list(self.workers)):
            timed_out = (
                w.alive and w.busy is not None and w.deadline is not None
                and now > w.deadline
            )
            if timed_out:
                try:
                    os.kill(w.process.pid, signal.SIGKILL)
                except (OSError, TypeError):
                    pass
                w.process.join(1.0)
            if not w.process.is_alive():
                if w.busy is not None:
                    casualties.append(
                        Casualty(
                            worker_id=w.id,
                            batch_id=w.busy,
                            reason="timeout" if timed_out else "crashed",
                        )
                    )
                self.workers[i] = self._spawn(generation=w.generation + 1)
                self.restarts += 1
        return casualties
