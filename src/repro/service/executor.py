"""Job execution: the code that runs inside a worker process.

Maps a :class:`~repro.service.jobs.JobSpec` (as a plain dict, the wire
form) onto the registered proving backends:

* any protocol kind (``stark``, ``plonk``, ``hyperplonk``, ...) --
  resolved through :mod:`repro.protocols` and run via its
  :class:`~repro.protocols.ProofSystem`;
* ``simulate`` -- :func:`repro.sim.simulate_plonky2` performance model;
* ``sleep`` / ``crash`` -- fault-injection kinds for tests/benchmarks.

Results are framed as serialize.py envelopes whose proof payloads are
*tagged blobs* (protocol tag + format version, see
:func:`repro.serialize.proof_to_blob`), so they cross the process
boundary (and the client socket) exactly the way a real
prover/verifier deployment would ship proofs.  :func:`verify_result`
closes the loop on the client side.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

from .. import tracing
from ..fri import FriConfig
from ..metrics import counting
from ..protocols import get as get_protocol
from ..serialize import (
    proof_from_blob,
    proof_to_blob,
    read_result_envelope,
    write_result_envelope,
)
from .jobs import FAULT_KINDS, JobSpec

#: Small, fast parameters (NOT sound) per proving kind, sourced from the
#: registered backends; overridable through ``JobSpec.config``.
DEFAULT_CONFIGS = {
    "stark": get_protocol("stark").default_config(),
    "plonk": get_protocol("plonk").default_config(),
}


def fri_config_for(spec: JobSpec) -> FriConfig:
    """The FRI parameters a stark/plonk spec resolves to (defaults +
    overrides).  Kept for FRI-family callers; :func:`config_for` is the
    protocol-generic path."""
    base = dict(DEFAULT_CONFIGS.get(spec.kind, DEFAULT_CONFIGS["stark"]))
    base.update(spec.config)
    return FriConfig(**base)


def config_for(spec: JobSpec):
    """The backend config any protocol spec resolves to."""
    return get_protocol(spec.kind).make_config(spec.config)


def validate_spec(spec: JobSpec, fault_injection: bool = False) -> None:
    """Reject specs the executor cannot run (fail fast at submit time)."""
    if spec.kind in FAULT_KINDS:
        if not fault_injection:
            raise ValueError(
                f"fault-injection kind {spec.kind!r} requires fault_injection=True"
            )
        return
    from ..workloads import by_name

    workload = by_name(spec.workload)  # raises UnknownWorkloadError
    if spec.kind == "simulate":
        return
    system = get_protocol(spec.kind)  # raises UnknownProtocolError
    if not system.supports(workload):
        raise ValueError(
            f"workload {spec.workload!r} has no {spec.kind} builder"
        )
    system.make_config(spec.config)  # raises on bad config overrides


def execute(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job spec; returns envelope bytes plus measured stats.

    Each job runs inside a :func:`repro.tracing.trace` session, so the
    per-stage span tree (commit / quotient / open / FRI or sumcheck,
    with wall time and counter deltas) rides back in the result dict
    alongside the envelope and total counters.
    """
    spec = JobSpec.from_dict(spec_dict)
    t0 = time.monotonic()
    with counting() as c, tracing.trace() as session:
        envelope = _run(spec)
    return {
        "envelope": envelope,
        "counters": c.as_dict(),
        "wall_s": time.monotonic() - t0,
        "spans": [s.as_dict() for s in session.spans],
    }


#: Per-process cache of protocol setup artifacts.  Workers serve many
#: jobs of a few instance shapes, and ``setup()`` (sigma computation +
#: the preprocessed commitment, or AET generation) dominates small-proof
#: latency, so caching the :class:`~repro.protocols.ProtocolSetup` per
#: (kind, workload, scale, config) turns repeat jobs into prove-only
#: work.  Config objects are frozen/hashable, so they key directly.
#: Size-capped FIFO: shapes are few, so eviction is rare.
_SETUP_CAP = 16
_SETUPS: Dict[Any, Any] = {}


def _setup_for(system, workload, spec: JobSpec, config):
    """Cached :class:`ProtocolSetup` for a protocol spec's shape."""
    key = (spec.kind, spec.workload, spec.scale, config)
    hit = _SETUPS.get(key)
    if hit is not None:
        return hit
    psetup = system.setup(workload, spec.scale, config)
    if len(_SETUPS) >= _SETUP_CAP:
        _SETUPS.pop(next(iter(_SETUPS)))
    _SETUPS[key] = psetup
    return psetup


def _run(spec: JobSpec) -> bytes:
    if spec.kind == "sleep":
        time.sleep(float(spec.params.get("seconds", 0.1)))
        return write_result_envelope("debug", spec.workload, b"slept")
    if spec.kind == "crash":
        os._exit(17)  # simulate a hard worker death (segfault/OOM-kill)

    from ..workloads import by_name

    workload = by_name(spec.workload)

    if spec.kind == "simulate":
        from ..hw import DEFAULT_CONFIG
        from ..sim import simulate_plonky2

        report = simulate_plonky2(workload.plonk, DEFAULT_CONFIG)
        payload = json.dumps(report.to_dict(), sort_keys=True).encode()
        return write_result_envelope("sim-report", spec.workload, payload)

    system = get_protocol(spec.kind)
    config = system.make_config(spec.config)
    # Setup artifacts persist across jobs in a long-lived worker; the
    # per-shape prover plans (tables + workspace arenas) are cached
    # thread-locally inside the backends' prove paths.
    psetup = _setup_for(system, workload, spec, config)
    proof = system.prove(psetup)
    return write_result_envelope(
        system.envelope_kind, spec.workload, proof_to_blob(spec.kind, proof)
    )


def verify_result(spec_dict: Dict[str, Any], envelope: bytes) -> bool:
    """Re-derive the workload and verify a service-returned envelope.

    Raises the underlying verifier error on an invalid proof; returns
    True on success (sim reports / debug payloads just check framing).
    """
    spec = JobSpec.from_dict(spec_dict)
    kind, workload_name, payload = read_result_envelope(envelope)
    if workload_name != spec.workload:
        raise ValueError(
            f"envelope is for {workload_name!r}, expected {spec.workload!r}"
        )

    if kind == "sim-report":
        json.loads(payload.decode())
        return True
    if kind == "debug":
        return True

    if not kind.endswith("-proof"):
        raise ValueError(f"unverifiable envelope kind {kind!r}")
    protocol = kind[: -len("-proof")]
    if protocol != spec.kind:
        raise ValueError(
            f"envelope carries a {protocol!r} proof, expected {spec.kind!r}"
        )
    from ..workloads import by_name

    system = get_protocol(protocol)
    _, proof = proof_from_blob(payload, expected_protocol=protocol)
    config = system.make_config(spec.config)
    psetup = system.setup(by_name(spec.workload), spec.scale, config)
    system.verify(psetup, proof)
    return True
