"""Job execution: the code that runs inside a worker process.

Maps a :class:`~repro.service.jobs.JobSpec` (as a plain dict, the wire
form) onto the existing proving paths:

* ``stark``    -- ``spec.build_air(scale)`` then :func:`repro.stark.prove`;
* ``plonk``    -- ``spec.build_circuit(scale)`` then Plonk setup/prove;
* ``simulate`` -- :func:`repro.sim.simulate_plonky2` performance model;
* ``sleep`` / ``crash`` -- fault-injection kinds for tests/benchmarks.

Results are framed as serialize.py envelopes so they cross the process
boundary (and the client socket) exactly the way a real prover/verifier
deployment would ship proofs.  :func:`verify_result` closes the loop on
the client side.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

from .. import tracing
from ..fri import FriConfig
from ..metrics import counting
from ..serialize import (
    read_result_envelope,
    stark_proof_from_bytes,
    stark_proof_to_bytes,
    plonk_proof_from_bytes,
    plonk_proof_to_bytes,
    write_result_envelope,
)
from .jobs import FAULT_KINDS, JobSpec

#: Small, fast parameters (NOT sound) per proving kind; overridable
#: through ``JobSpec.config``.
DEFAULT_CONFIGS = {
    "stark": dict(
        rate_bits=1, cap_height=1, num_queries=10, proof_of_work_bits=3,
        final_poly_len=4,
    ),
    "plonk": dict(
        rate_bits=3, cap_height=1, num_queries=8, proof_of_work_bits=4,
        final_poly_len=4,
    ),
}


def fri_config_for(spec: JobSpec) -> FriConfig:
    """The FRI parameters a spec resolves to (defaults + overrides)."""
    base = dict(DEFAULT_CONFIGS.get(spec.kind, DEFAULT_CONFIGS["stark"]))
    base.update(spec.config)
    return FriConfig(**base)


def validate_spec(spec: JobSpec, fault_injection: bool = False) -> None:
    """Reject specs the executor cannot run (fail fast at submit time)."""
    if spec.kind in FAULT_KINDS:
        if not fault_injection:
            raise ValueError(
                f"fault-injection kind {spec.kind!r} requires fault_injection=True"
            )
        return
    from ..workloads import by_name

    spec_obj = by_name(spec.workload)  # raises KeyError on unknown workload
    if spec.kind == "stark" and spec_obj.build_air is None:
        raise ValueError(f"workload {spec.workload!r} has no AET builder")
    fri_config_for(spec)  # raises on bad config overrides


def execute(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job spec; returns envelope bytes plus measured stats.

    Each job runs inside a :func:`repro.tracing.trace` session, so the
    per-stage span tree (commit / quotient / open / FRI, with wall time
    and counter deltas) rides back in the result dict alongside the
    envelope and total counters.
    """
    spec = JobSpec.from_dict(spec_dict)
    t0 = time.monotonic()
    with counting() as c, tracing.trace() as session:
        envelope = _run(spec)
    return {
        "envelope": envelope,
        "counters": c.as_dict(),
        "wall_s": time.monotonic() - t0,
        "spans": [s.as_dict() for s in session.spans],
    }


#: Per-process cache of Plonk setup artifacts.  Workers serve many jobs
#: of a few circuit shapes, and ``setup()`` (sigma computation + the
#: preprocessed commitment) dominates small-proof latency, so caching
#: :class:`CircuitData` per (workload, scale, config) turns repeat jobs
#: into prove-only work.  ``FriConfig`` is frozen/hashable, so it keys
#: directly.  Size-capped FIFO: shapes are few, so eviction is rare.
_PLONK_DATA_CAP = 16
_PLONK_DATA: Dict[Any, Any] = {}


def _plonk_data_for(workload, spec: JobSpec, config: FriConfig):
    """Cached ``(CircuitData, inputs)`` for a plonk spec's circuit shape."""
    key = (spec.workload, spec.scale, config)
    hit = _PLONK_DATA.get(key)
    if hit is not None:
        return hit
    from ..plonk import setup

    circuit, inputs, _ = workload.build_circuit(spec.scale)
    data = setup(circuit, config)
    if len(_PLONK_DATA) >= _PLONK_DATA_CAP:
        _PLONK_DATA.pop(next(iter(_PLONK_DATA)))
    _PLONK_DATA[key] = (data, inputs)
    return data, inputs


def _run(spec: JobSpec) -> bytes:
    if spec.kind == "sleep":
        time.sleep(float(spec.params.get("seconds", 0.1)))
        return write_result_envelope("debug", spec.workload, b"slept")
    if spec.kind == "crash":
        os._exit(17)  # simulate a hard worker death (segfault/OOM-kill)

    from ..workloads import by_name

    workload = by_name(spec.workload)

    if spec.kind == "stark":
        from ..stark import plan_for, prove

        air, trace, publics = workload.build_air(spec.scale)
        config = fri_config_for(spec)
        # Worker processes keep serving jobs, so the per-shape plan
        # (tables + workspace arena) stays warm across a batch.
        plan = plan_for(trace.shape[0], config.rate_bits)
        proof = prove(air, trace, publics, config, plan=plan)
        return write_result_envelope(
            "stark-proof", spec.workload, stark_proof_to_bytes(proof)
        )

    if spec.kind == "plonk":
        from ..plonk import plan_for as plonk_plan_for, prove

        config = fri_config_for(spec)
        # Setup artifacts and the per-shape plan (tables + workspace
        # arena) both persist across jobs in a long-lived worker.
        data, inputs = _plonk_data_for(workload, spec, config)
        plan = plonk_plan_for(data.circuit.n, config.rate_bits)
        proof = prove(data, inputs, plan=plan)
        return write_result_envelope(
            "plonk-proof", spec.workload, plonk_proof_to_bytes(proof)
        )

    if spec.kind == "simulate":
        from ..hw import DEFAULT_CONFIG
        from ..sim import simulate_plonky2

        report = simulate_plonky2(workload.plonk, DEFAULT_CONFIG)
        payload = json.dumps(report.to_dict(), sort_keys=True).encode()
        return write_result_envelope("sim-report", spec.workload, payload)

    raise ValueError(f"unknown job kind {spec.kind!r}")


def verify_result(spec_dict: Dict[str, Any], envelope: bytes) -> bool:
    """Re-derive the workload and verify a service-returned envelope.

    Raises the underlying verifier error on an invalid proof; returns
    True on success (sim reports / debug payloads just check framing).
    """
    spec = JobSpec.from_dict(spec_dict)
    kind, workload_name, payload = read_result_envelope(envelope)
    if workload_name != spec.workload:
        raise ValueError(
            f"envelope is for {workload_name!r}, expected {spec.workload!r}"
        )

    if kind == "stark-proof":
        from ..stark import verify
        from ..workloads import by_name

        air, _, _ = by_name(spec.workload).build_air(spec.scale)
        verify(air, stark_proof_from_bytes(payload), fri_config_for(spec))
        return True

    if kind == "plonk-proof":
        from ..plonk import setup, verify
        from ..workloads import by_name

        circuit, _, _ = by_name(spec.workload).build_circuit(spec.scale)
        data = setup(circuit, fri_config_for(spec))
        verify(data.verifier_data, plonk_proof_from_bytes(payload))
        return True

    if kind == "sim-report":
        json.loads(payload.decode())
        return True

    return True  # debug payloads: envelope framing already validated
