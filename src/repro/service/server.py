"""The proving service: scheduler, retries, timeouts, drain.

``ProvingService`` ties the pieces together:

* :class:`~repro.service.queue.PriorityJobQueue` orders submitted jobs
  (priority + backoff/batching delays);
* :class:`~repro.service.cache.ProofCache` short-circuits duplicate
  requests with byte-identical results;
* :mod:`~repro.service.batching` coalesces compatible pending jobs into
  one worker dispatch;
* :class:`~repro.service.pool.WorkerPool` runs batches in worker
  processes and reports crashes/timeouts.

A single scheduler thread owns all state transitions, so there is one
lock and no lost-update window: results, casualties, and dispatch all
happen on its tick.  Jobs are never lost -- a worker death or timeout
requeues every rider (bounded retries with exponential backoff and
jitter) or fails it explicitly.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from typing import Any, Dict, List, Optional, Union

from ..metrics import merge_counts
from . import batching
from .cache import ProofCache
from .executor import validate_spec
from .jobs import Job, JobFailed, JobResult, JobSpec, JobState
from .pool import WorkerPool
from .queue import PriorityJobQueue

_TICK_S = 0.005


class ProvingService:
    """Long-running concurrent proof-generation service."""

    def __init__(
        self,
        workers: int = 2,
        *,
        enable_batching: bool = True,
        enable_cache: bool = True,
        batch_window_s: float = 0.05,
        max_batch: int = 8,
        cache_entries: int = 256,
        cache_bytes: int = 64 << 20,
        default_timeout_s: float = 120.0,
        max_retries: int = 2,
        backoff_base_s: float = 0.1,
        backoff_cap_s: float = 2.0,
        fault_injection: bool = False,
        start_method: str = "fork",
        jitter_seed: Optional[int] = None,
        shard_workers: int = 1,
        shard_config: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.enable_batching = enable_batching
        self.enable_cache = enable_cache
        self.batch_window_s = batch_window_s if enable_batching else 0.0
        self.max_batch = max_batch
        self.default_timeout_s = default_timeout_s
        self.default_max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.fault_injection = fault_injection

        self.cache = ProofCache(max_entries=cache_entries, max_bytes=cache_bytes)
        self.queue = PriorityJobQueue()
        # ``shard_workers`` trades job-level for stage-level parallelism:
        # each proving worker owns that many shard processes and every
        # proof it runs fans its commit/FRI stages across them.
        self.pool = WorkerPool(
            num_workers=workers,
            start_method=start_method,
            shard_workers=shard_workers,
            shard_config=shard_config,
        )

        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[int, batching.Batch] = {}
        self._lock = threading.RLock()
        self._job_seq = itertools.count(1)
        self._rng = random.Random(jitter_seed)
        self._stop = threading.Event()
        self._scheduler: Optional[threading.Thread] = None

        self.totals: Dict[str, Any] = {
            "submitted": 0, "completed": 0, "failed": 0, "cancelled": 0,
            "retried": 0, "timeouts": 0, "worker_crashes": 0,
            "batches_dispatched": 0, "jobs_dispatched": 0,
            "cache_completions": 0, "counters": {}, "stage_wall_s": {},
        }

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ProvingService":
        """Spawn workers and the scheduler thread."""
        if self._scheduler is not None:
            return self
        self.pool.start()
        self._stop.clear()
        self._scheduler = threading.Thread(
            target=self._run_scheduler, name="proving-scheduler", daemon=True
        )
        self._scheduler.start()
        return self

    def close(self, drain: bool = True, timeout_s: float = 60.0) -> None:
        """Shut down: optionally drain outstanding work, then stop workers."""
        if drain and self._scheduler is not None:
            self.drain(timeout_s=timeout_s)
        self._stop.set()
        if self._scheduler is not None:
            self._scheduler.join(timeout_s)
            self._scheduler = None
        self.pool.stop()

    def __enter__(self) -> "ProvingService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- client surface --------------------------------------------------

    def submit(
        self,
        spec: Union[JobSpec, Dict[str, Any], None] = None,
        *,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        max_retries: Optional[int] = None,
        **spec_kwargs,
    ) -> str:
        """Submit a job; returns its id immediately.

        Raises ``KeyError`` for an unknown workload and ``ValueError``
        for an invalid spec (both before the job enters the queue).
        """
        if spec is None:
            spec = JobSpec(**spec_kwargs)
        elif isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        validate_spec(spec, fault_injection=self.fault_injection)

        job = Job(
            id=f"j-{next(self._job_seq):06d}",
            spec=spec,
            priority=priority,
            timeout_s=self.default_timeout_s if timeout_s is None else timeout_s,
            max_retries=(
                self.default_max_retries if max_retries is None else max_retries
            ),
        )
        with self._lock:
            self._jobs[job.id] = job
            self.totals["submitted"] += 1
            cached = self.cache.get(spec.cache_key) if self.enable_cache else None
            if cached is not None:
                self._complete(job, cached, cache_hit=True)
            else:
                self.queue.push(job.id, priority=priority, delay_s=self.batch_window_s)
        return job.id

    def job(self, job_id: str) -> Dict[str, Any]:
        """Snapshot of one job's structured stats."""
        with self._lock:
            return self._jobs[job_id].stats()

    def result(self, job_id: str, timeout_s: Optional[float] = None) -> JobResult:
        """Block until a job finishes; raises :class:`JobFailed` if it
        did not end in ``DONE``."""
        job = self._jobs[job_id]
        if not job.done_event.wait(timeout_s):
            raise TimeoutError(f"job {job_id} still {job.state.value}")
        if job.state is not JobState.DONE:
            raise JobFailed(job)
        assert job.result is not None
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-pending job (running jobs cannot be preempted)."""
        with self._lock:
            job = self._jobs[job_id]
            if job.state is not JobState.PENDING:
                return False
            self.queue.cancel(job_id)
            job.state = JobState.CANCELLED
            job.finished_at = time.monotonic()
            self.totals["cancelled"] += 1
            job.done_event.set()
            return True

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Wait until every submitted job reached a terminal state."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            with self._lock:
                busy = any(not j.state.terminal for j in self._jobs.values())
            if not busy:
                return True
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(_TICK_S)

    def stats(self) -> Dict[str, Any]:
        """Service-level stats: totals, queue depth, cache, workers."""
        with self._lock:
            by_state: Dict[str, int] = {}
            for j in self._jobs.values():
                by_state[j.state.value] = by_state.get(j.state.value, 0) + 1
            return {
                **{k: (dict(v) if isinstance(v, dict) else v)
                   for k, v in self.totals.items()},
                "jobs_by_state": by_state,
                "queue_depth": len(self.queue),
                "inflight_batches": len(self._inflight),
                "cache": self.cache.stats(),
                "workers": len(self.pool.workers),
                "worker_restarts": self.pool.restarts,
                "shard_workers": self.pool.shard_workers,
                "worker_dispatches": {
                    w.id: w.dispatches for w in self.pool.workers
                },
            }

    # -- scheduler -------------------------------------------------------

    def _run_scheduler(self) -> None:
        while not self._stop.is_set():
            did_work = self._tick()
            if not did_work:
                time.sleep(_TICK_S)

    def _tick(self) -> bool:
        did_work = False
        # 1. Completed batches.
        while True:
            try:
                msg = self.pool.result_q.get_nowait()
            except Exception:
                break
            self._handle_result(msg)
            did_work = True
        # 2. Dead / timed-out workers.
        for casualty in self.pool.check_health():
            self._handle_casualty(casualty)
            did_work = True
        # 3. Dispatch ready work to idle workers.
        did_work |= self._dispatch()
        return did_work

    def _dispatch(self) -> bool:
        idle = self.pool.idle_workers()
        if not idle:
            return False
        with self._lock:
            ready_ids = self.queue.pop_ready(max_n=len(idle) * self.max_batch)
            ready: List[Job] = []
            for job_id in ready_ids:
                job = self._jobs[job_id]
                if job.state is not JobState.PENDING:
                    continue  # cancelled while queued
                cached = (
                    self.cache.get(job.spec.cache_key)
                    if self.enable_cache else None
                )
                if cached is not None:
                    self._complete(job, cached, cache_hit=True)
                else:
                    ready.append(job)
            if not ready:
                return False
            batches = (
                batching.coalesce(ready, max_batch=self.max_batch)
                if self.enable_batching
                else batching.singletons(ready)
            )
            for batch in batches[len(idle):]:
                # More compat groups than free workers: requeue for the
                # next tick, keeping priority.
                for rider_ids in batch.riders:
                    for job_id in rider_ids:
                        self.queue.push(
                            job_id, priority=self._jobs[job_id].priority
                        )
            now = time.monotonic()
            for worker, batch in zip(idle, batches):
                timeout = 0.0
                for rider_ids in batch.riders:
                    for job_id in rider_ids:
                        job = self._jobs[job_id]
                        job.state = JobState.RUNNING
                        job.attempts += 1
                        if job.started_at is None:
                            job.started_at = now
                        job.batch_size = batch.num_jobs
                        timeout = max(timeout, job.timeout_s)
                self._inflight[batch.id] = batch
                self.totals["batches_dispatched"] += 1
                self.totals["jobs_dispatched"] += batch.num_jobs
                self.pool.assign(worker, batch.id, batch.specs, timeout)
        return True

    def _handle_result(self, msg: Dict[str, Any]) -> None:
        with self._lock:
            self.pool.mark_idle(msg["worker_id"])
            batch = self._inflight.pop(msg["batch_id"], None)
            if batch is None:
                return  # stale result from a worker we already gave up on
            for spec_dict, rider_ids, res in zip(
                batch.specs, batch.riders, msg["results"]
            ):
                if res.get("ok"):
                    key = JobSpec.from_dict(spec_dict).cache_key
                    if self.enable_cache:
                        self.cache.put(key, res["envelope"])
                    merge_counts(res.get("counters", {}))
                    self._merge_totals(res.get("counters", {}))
                    self._merge_stage_wall(res.get("spans", []))
                    for job_id in rider_ids:
                        job = self._jobs[job_id]
                        if job.state is JobState.RUNNING:
                            self._complete(
                                job, res["envelope"],
                                cache_hit=False,
                                counters=res.get("counters", {}),
                                spans=res.get("spans", []),
                            )
                else:
                    for job_id in rider_ids:
                        self._fail_or_retry(
                            self._jobs[job_id], res.get("error", "unknown error")
                        )

    def _handle_casualty(self, casualty) -> None:
        with self._lock:
            batch = self._inflight.pop(casualty.batch_id, None)
            if batch is None:
                return
            key = "timeouts" if casualty.reason == "timeout" else "worker_crashes"
            self.totals[key] += 1
            for rider_ids in batch.riders:
                for job_id in rider_ids:
                    job = self._jobs[job_id]
                    if job.state is JobState.RUNNING:
                        self._fail_or_retry(job, f"worker {casualty.reason}")

    # -- state transitions (caller holds the lock) -----------------------

    def _complete(
        self,
        job: Job,
        envelope: bytes,
        *,
        cache_hit: bool,
        counters: Optional[Dict[str, int]] = None,
        spans: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        job.state = JobState.DONE
        job.finished_at = time.monotonic()
        if job.started_at is None:
            job.started_at = job.finished_at  # cache hit: zero queue wait
        job.result = JobResult(
            envelope=envelope, cache_hit=cache_hit, counters=counters or {},
            spans=spans or [],
        )
        self.totals["completed"] += 1
        if cache_hit:
            self.totals["cache_completions"] += 1
        job.done_event.set()

    def _fail_or_retry(self, job: Job, error: str) -> None:
        job.error = error
        if job.attempts <= job.max_retries:
            backoff = min(
                self.backoff_cap_s,
                self.backoff_base_s * (2 ** (job.attempts - 1)),
            )
            delay = backoff * (1.0 + 0.25 * self._rng.random())
            job.state = JobState.PENDING
            self.totals["retried"] += 1
            self.queue.push(job.id, priority=job.priority, delay_s=delay)
        else:
            job.state = JobState.FAILED
            job.finished_at = time.monotonic()
            self.totals["failed"] += 1
            job.done_event.set()

    def _merge_totals(self, counters: Dict[str, int]) -> None:
        agg = self.totals["counters"]
        for k, v in counters.items():
            agg[k] = agg.get(k, 0) + int(v)

    def _merge_stage_wall(self, spans: List[Dict[str, Any]]) -> None:
        """Aggregate per-stage wall time (roots + their direct children).

        The root span is the whole prove (``prove:plonk`` / ``prove:stark``)
        and its children are the pipeline stages, so two levels give the
        service-wide stage breakdown exported by :meth:`stats`.
        """
        agg = self.totals["stage_wall_s"]
        for root in spans:
            for s in [root, *root.get("children", [])]:
                name = s.get("name", "?")
                agg[name] = agg.get(name, 0.0) + float(s.get("elapsed_s", 0.0))
