"""Request batching: coalesce compatible jobs into one worker dispatch.

Two levels of amortisation, mirroring the paper's batched NTT/Merkle
kernels at the service level:

* jobs with the **same cache key** are duplicates of one request -- the
  work runs once and the result fans out to every rider;
* jobs with the same **compat key** (workload + kind + FRI config) but
  different scales ride in one worker dispatch, sharing the prover's
  per-shape precomputation (`repro.stark.prover` caches coset points
  and vanishing inverses) and the per-task IPC overhead.

The functions here are pure: the scheduler feeds them the jobs it
popped this tick and dispatches the returned batches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .jobs import Job

_batch_ids = itertools.count(1)


@dataclass
class Batch:
    """One worker dispatch: unique specs plus the job ids riding each."""

    id: int
    compat_key: str
    #: One entry per *unique* spec (deduplicated by cache key).
    specs: List[dict] = field(default_factory=list)
    #: ``riders[i]`` lists the job ids whose result is ``specs[i]``'s.
    riders: List[List[str]] = field(default_factory=list)

    @property
    def num_jobs(self) -> int:
        """Total jobs riding in this batch."""
        return sum(len(r) for r in self.riders)


def coalesce(jobs: Sequence[Job], max_batch: int = 8) -> List[Batch]:
    """Group jobs into batches of compatible, deduplicated work.

    ``max_batch`` bounds the number of *jobs* per batch so one giant
    burst cannot monopolise a worker.
    """
    by_compat: Dict[str, List[Job]] = {}
    for job in jobs:
        by_compat.setdefault(job.spec.compat_key, []).append(job)

    batches: List[Batch] = []
    for compat_key, group in by_compat.items():
        batch = None
        index_of: Dict[str, int] = {}
        for job in group:
            if batch is None or batch.num_jobs >= max_batch:
                batch = Batch(id=next(_batch_ids), compat_key=compat_key)
                index_of = {}
                batches.append(batch)
            ck = job.spec.cache_key
            if ck in index_of:
                batch.riders[index_of[ck]].append(job.id)
            else:
                index_of[ck] = len(batch.specs)
                batch.specs.append(job.spec.to_dict())
                batch.riders.append([job.id])
    return batches


def singletons(jobs: Sequence[Job]) -> List[Batch]:
    """Batching disabled: one batch per job, no dedup, no sharing."""
    return [
        Batch(
            id=next(_batch_ids),
            compat_key=job.spec.compat_key,
            specs=[job.spec.to_dict()],
            riders=[[job.id]],
        )
        for job in jobs
    ]
