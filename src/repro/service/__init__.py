"""Proving service: async job queue, worker pool, batching, caching.

The software half of the paper's throughput story: UniZK removes the
per-proof bottleneck in hardware; this subsystem turns the repository's
provers and simulator into a long-running concurrent service a fleet of
clients can hit -- priority queueing, multiprocess workers, request
batching (the service-level analogue of the batched NTT/Merkle
kernels), a content-addressed result cache, and bounded-retry fault
handling.

Entry points: ``python -m repro serve`` / ``submit`` / ``status`` on
the CLI, or :class:`ProvingService` in process::

    with ProvingService(workers=4) as svc:
        job_id = svc.submit(workload="Fibonacci", kind="stark", scale=8)
        proof_envelope = svc.result(job_id).envelope
"""

from .batching import Batch, coalesce, singletons
from .cache import ProofCache
from .client import ServiceClient, ServiceError, wait_for_server
from .executor import execute, fri_config_for, validate_spec, verify_result
from .jobs import Job, JobFailed, JobResult, JobSpec, JobState
from .net import ServiceServer, serve_forever
from .pool import WorkerPool
from .queue import PriorityJobQueue
from .server import ProvingService

__all__ = [
    "ProvingService",
    "ServiceServer",
    "serve_forever",
    "ServiceClient",
    "ServiceError",
    "wait_for_server",
    "Job",
    "JobSpec",
    "JobState",
    "JobResult",
    "JobFailed",
    "PriorityJobQueue",
    "ProofCache",
    "WorkerPool",
    "Batch",
    "coalesce",
    "singletons",
    "execute",
    "verify_result",
    "validate_spec",
    "fri_config_for",
]
