"""Client for the proving service's socket front-end.

Speaks the newline-delimited JSON protocol of :mod:`repro.service.net`
and decodes result envelopes back to bytes.  Used by the
``repro submit`` / ``repro status`` CLI commands and by tests.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Optional, Union

from .jobs import JobSpec


class ServiceError(RuntimeError):
    """The server reported a failure for a request."""

    def __init__(self, response: Dict[str, Any]) -> None:
        super().__init__(response.get("error") or json.dumps(response))
        self.response = response


class ServiceClient:
    """One connection to a running proving service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8347,
                 timeout_s: float = 300.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip; raises on ``ok: false``."""
        self._file.write((json.dumps(request) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise ServiceError(response)
        return response

    # -- convenience wrappers --------------------------------------------

    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self.call({"op": "ping"}).get("pong"))

    def submit(
        self,
        spec: Union[JobSpec, Dict[str, Any]],
        *,
        priority: int = 0,
        wait: bool = False,
        wait_s: Optional[float] = None,
        timeout_s: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Submit a job; with ``wait`` the response carries the result.

        Returns the response dict; ``envelope`` is decoded to bytes
        when present.
        """
        if isinstance(spec, JobSpec):
            spec = spec.to_dict()
        response = self.call(
            {
                "op": "submit",
                "spec": spec,
                "priority": priority,
                "wait": wait,
                "wait_s": wait_s,
                "timeout_s": timeout_s,
                "max_retries": max_retries,
            }
        )
        if "envelope_hex" in response:
            response["envelope"] = bytes.fromhex(response.pop("envelope_hex"))
        return response

    def result(self, job_id: str, wait_s: Optional[float] = None) -> bytes:
        """Block for a job's result envelope bytes."""
        response = self.call({"op": "result", "job_id": job_id, "wait_s": wait_s})
        return bytes.fromhex(response["envelope_hex"])

    def status(self, job_id: Optional[str] = None) -> Dict[str, Any]:
        """One job's stats, or service stats when ``job_id`` is None."""
        response = self.call({"op": "status", "job_id": job_id})
        return response.get("job") or response.get("stats")

    def stats(self) -> Dict[str, Any]:
        """Service-level stats."""
        return self.call({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the server to drain and exit its accept loop."""
        self.call({"op": "shutdown"})


def wait_for_server(host: str, port: int, timeout_s: float = 10.0) -> bool:
    """Poll until a server accepts connections (for scripts and CI)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with ServiceClient(host, port, timeout_s=1.0) as client:
                if client.ping():
                    return True
        except OSError:
            time.sleep(0.1)
    return False
