"""Unified proof pipeline: the protocol-agnostic commit/open flow.

Every FRI-based protocol in this repository -- STARK, Plonk, and
whatever lands next (recursion wrappers, sumcheck hybrids) -- runs the
same backbone: batch-commit polynomials, interact with the Fiat-Shamir
challenger, interpolate and commit a quotient, then open everything at
the evaluation points with one batch FRI proof.  UniZK's thesis is that
one substrate serves all of these kernels; :class:`CommitmentPipeline`
is that substrate at the software layer.  The per-protocol provers
(:mod:`repro.stark.prover`, :mod:`repro.plonk.prover`) are thin stage
definitions on top of it, which is also what gives every protocol
stage-level tracing for free (:mod:`repro.tracing`).
"""

from .commitment import CommitmentPipeline

__all__ = ["CommitmentPipeline"]
