"""The shared commitment core of the unified proof pipeline.

:class:`CommitmentPipeline` owns the *transcript half* of a FRI-based
proof (paper Figure 1): what gets observed, in what order, and when
Fiat-Shamir randomness is drawn.  The *data-plane half* -- building
:class:`~repro.fri.prover.PolynomialBatch` commitments (iNTT -> LDE ->
Merkle), interpolating quotients, and running the batch FRI opening
proof -- lives in :class:`repro.pcs.FriPCS`, one of the interchangeable
commitment backends behind :mod:`repro.pcs`:

1. **commit** -- :meth:`commit_values` / :meth:`commit_coeffs` build a
   batch through the PCS and observe its cap on the transcript;
2. **challenge** -- :meth:`challenge` / :meth:`ext_challenge` draw
   Fiat-Shamir randomness from the shared duplex challenger;
3. **quotient** -- :meth:`commit_quotient` interpolates a combined
   extension-field evaluation back to coefficients (coset iNTT per
   limb), slices it into degree-``n`` chunks, and commits them;
4. **open** -- :meth:`open_and_prove` evaluates the requested openings
   and runs the batch FRI opening proof over every batch committed so
   far.

The pipeline threads one :class:`~repro.field.gl64.Workspace` arena
(from a per-shape prover plan) through the PCS into every commitment
and the FRI call -- the zero-copy data plane -- and the PCS wraps each
stage in a :func:`repro.tracing.span`, so any proof that runs through
it is observable per stage without protocol-specific instrumentation.
The split is pure code motion: kernels, call order, spans, operation
counters and proof bytes are bit-identical to the pre-split pipeline
(enforced by the perf-counter CI gate).

Batches are opened by ``(batch_index, poly_index)`` pairs; the batch
index is simply the order of :meth:`add_batch`/``commit_*`` calls, so
protocols control their layout by call order (Plonk registers its
preprocessed setup batch first, then wires, Z, quotient).

The observe-before-challenge discipline this class encodes is exactly
what the transcript-conformance analyzer
(:mod:`repro.analysis.transcript`, ``fs.*`` rules) verifies end to end:
it replays every registered protocol's prove and verify paths through a
recording challenger and checks each commitment cap is observed before
any challenge that must depend on it, so a pipeline refactor that
reorders these calls fails ``repro analyze --strict`` even if the
proof still verifies against its own prover.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..field import gl64
from ..fri import FriConfig, FriOpenings, FriProof, PolynomialBatch
from ..hashing import Challenger
from ..pcs.fri import FriPCS


class CommitmentPipeline:
    """One proof's commit -> challenge -> quotient -> open -> FRI flow."""

    def __init__(
        self,
        config: FriConfig,
        challenger: Challenger | None = None,
        ws: gl64.Workspace | None = None,
    ) -> None:
        self.config = config
        self.challenger = challenger if challenger is not None else Challenger()
        self.ws = ws
        #: The commitment backend (univariate FRI).
        self.pcs = FriPCS(config, ws=ws)

    @property
    def batches(self) -> List[PolynomialBatch]:
        """Batches in commitment order == FRI opening batch indices."""
        return self.pcs.batches

    # -- transcript interaction ------------------------------------------

    def observe_publics(self, values: Iterable[int] | np.ndarray) -> None:
        """Bind public inputs into the transcript."""
        self.challenger.observe_elements(np.asarray(list(values), dtype=np.uint64))

    def observe_cap(self, cap: np.ndarray) -> None:
        """Bind a Merkle cap into the transcript."""
        self.challenger.observe_cap(cap)

    def challenge(self) -> int:
        """Draw one base-field Fiat-Shamir challenge."""
        return self.challenger.get_challenge()

    def ext_challenge(self) -> np.ndarray:
        """Draw one extension-field Fiat-Shamir challenge."""
        return self.challenger.get_ext_challenge()

    # -- commitments -----------------------------------------------------

    def add_batch(
        self, batch: PolynomialBatch, observe: bool = True
    ) -> PolynomialBatch:
        """Register a pre-built batch (e.g. a setup-time commitment).

        The batch joins the opening/FRI index space; with ``observe``
        its cap is bound into the transcript now.
        """
        self.pcs.add_batch(batch)
        if observe:
            self.challenger.observe_cap(batch.cap)
        return batch

    def commit_values(
        self, rows: np.ndarray, label: str, observe: bool = True
    ) -> PolynomialBatch:
        """Commit polynomials given by subgroup evaluations (rows)."""
        batch = self.pcs.commit_values(rows, label)
        if observe:
            self.challenger.observe_cap(batch.cap)
        return batch

    def commit_coeffs(
        self, rows: np.ndarray, label: str, observe: bool = True
    ) -> PolynomialBatch:
        """Commit polynomials given by coefficient rows."""
        batch = self.pcs.commit_coeffs(rows, label)
        if observe:
            self.challenger.observe_cap(batch.cap)
        return batch

    def commit_quotient(
        self,
        ext_values: np.ndarray,
        n: int,
        chunks: int,
        label: str = "quotient",
        observe: bool = True,
    ) -> PolynomialBatch:
        """Interpolate and commit a quotient evaluated on the LDE coset.

        See :meth:`repro.pcs.FriPCS.commit_quotient` for the data-plane
        details (per-limb coset iNTT, chunking, the fused shard graph
        under an active pool).
        """
        batch = self.pcs.commit_quotient(ext_values, n, chunks, label)
        if observe:
            self.challenger.observe_cap(batch.cap)
        return batch

    # -- openings + FRI --------------------------------------------------

    def open_and_prove(
        self,
        points: Sequence[np.ndarray],
        columns: Sequence[Sequence[Tuple[int, int]]],
    ) -> Tuple[FriOpenings, FriProof]:
        """Open the committed batches and produce the FRI proof.

        ``columns[k]`` lists the ``(batch_index, poly_index)`` pairs
        opened at ``points[k]``; batch indices are commitment order.
        """
        return self.pcs.open_and_prove(points, columns, self.challenger)
