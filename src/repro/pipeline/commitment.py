"""The shared commitment core of the unified proof pipeline.

:class:`CommitmentPipeline` owns the whole protocol-agnostic flow of a
FRI-based proof (paper Figure 1):

1. **commit** -- :meth:`commit_values` / :meth:`commit_coeffs` build a
   :class:`~repro.fri.prover.PolynomialBatch` (iNTT -> LDE -> Merkle)
   and observe its cap on the transcript;
2. **challenge** -- :meth:`challenge` / :meth:`ext_challenge` draw
   Fiat-Shamir randomness from the shared duplex challenger;
3. **quotient** -- :meth:`commit_quotient` interpolates a combined
   extension-field evaluation back to coefficients (coset iNTT per
   limb), slices it into degree-``n`` chunks, and commits them;
4. **open** -- :meth:`open_and_prove` evaluates the requested openings
   and runs the batch FRI opening proof over every batch committed so
   far.

The pipeline threads one :class:`~repro.field.gl64.Workspace` arena
(from a per-shape prover plan) through every commitment and the FRI
call -- the zero-copy data plane -- and wraps each stage in a
:func:`repro.tracing.span`, so any proof that runs through it is
observable per stage without protocol-specific instrumentation.

Batches are opened by ``(batch_index, poly_index)`` pairs; the batch
index is simply the order of :meth:`add_batch`/``commit_*`` calls, so
protocols control their layout by call order (Plonk registers its
preprocessed setup batch first, then wires, Z, quotient).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .. import parallel, tracing
from ..field import gl64
from ..fri import FriConfig, FriOpenings, FriProof, PolynomialBatch, fri_prove, open_batches
from ..hashing import Challenger
from ..ntt import coset_intt


class CommitmentPipeline:
    """One proof's commit -> challenge -> quotient -> open -> FRI flow."""

    def __init__(
        self,
        config: FriConfig,
        challenger: Challenger | None = None,
        ws: gl64.Workspace | None = None,
    ) -> None:
        self.config = config
        self.challenger = challenger if challenger is not None else Challenger()
        self.ws = ws
        #: Batches in commitment order == FRI opening batch indices.
        self.batches: List[PolynomialBatch] = []

    # -- transcript interaction ------------------------------------------

    def observe_publics(self, values: Iterable[int] | np.ndarray) -> None:
        """Bind public inputs into the transcript."""
        self.challenger.observe_elements(np.asarray(list(values), dtype=np.uint64))

    def observe_cap(self, cap: np.ndarray) -> None:
        """Bind a Merkle cap into the transcript."""
        self.challenger.observe_cap(cap)

    def challenge(self) -> int:
        """Draw one base-field Fiat-Shamir challenge."""
        return self.challenger.get_challenge()

    def ext_challenge(self) -> np.ndarray:
        """Draw one extension-field Fiat-Shamir challenge."""
        return self.challenger.get_ext_challenge()

    # -- commitments -----------------------------------------------------

    def add_batch(
        self, batch: PolynomialBatch, observe: bool = True
    ) -> PolynomialBatch:
        """Register a pre-built batch (e.g. a setup-time commitment).

        The batch joins the opening/FRI index space; with ``observe``
        its cap is bound into the transcript now.
        """
        self.batches.append(batch)
        if observe:
            self.challenger.observe_cap(batch.cap)
        return batch

    def commit_values(
        self, rows: np.ndarray, label: str, observe: bool = True
    ) -> PolynomialBatch:
        """Commit polynomials given by subgroup evaluations (rows)."""
        with tracing.span(f"commit:{label}", category="commit"):
            batch = PolynomialBatch.from_values(
                rows,
                self.config.rate_bits,
                self.config.cap_height,
                ws=self.ws,
                slot=label,
            )
        return self.add_batch(batch, observe=observe)

    def commit_coeffs(
        self, rows: np.ndarray, label: str, observe: bool = True
    ) -> PolynomialBatch:
        """Commit polynomials given by coefficient rows."""
        with tracing.span(f"commit:{label}", category="commit"):
            batch = PolynomialBatch.from_coeffs(
                rows,
                self.config.rate_bits,
                self.config.cap_height,
                ws=self.ws,
                slot=label,
            )
        return self.add_batch(batch, observe=observe)

    def commit_quotient(
        self,
        ext_values: np.ndarray,
        n: int,
        chunks: int,
        label: str = "quotient",
        observe: bool = True,
    ) -> PolynomialBatch:
        """Interpolate and commit a quotient evaluated on the LDE coset.

        ``ext_values`` is the (N_lde, 2) extension-field evaluation of
        the (already divisor-divided) constraint blend; each limb is
        coset-iNTT'd and split into ``chunks`` degree-``n`` coefficient
        chunks, giving a ``2 * chunks``-polynomial batch -- the quotient
        layout both STARK and Plonk use.

        Under an active shard pool the limb iNTTs, chunk LDEs and the
        Merkle build fuse into one shard graph (no barrier between the
        interpolation and the extensions); the resulting batch, cap and
        counters are bit-identical to the serial path.
        """
        pool = parallel.current_pool()
        if pool is not None and pool.wants_commit(n << self.config.rate_bits):
            from ..parallel import ops as par_ops

            with tracing.span(f"commit:{label}", category="commit"):
                batch = par_ops.sharded_commit_quotient(
                    pool,
                    ext_values,
                    n,
                    chunks,
                    self.config.rate_bits,
                    self.config.cap_height,
                    f"commit:{label}",
                )
            return self.add_batch(batch, observe=observe)
        with tracing.span("quotient:intt", category="quotient"):
            chunk_rows = []
            for limb in range(2):
                coeffs = coset_intt(ext_values[:, limb], ws=self.ws)
                for k in range(chunks):
                    chunk_rows.append(coeffs[k * n : (k + 1) * n])
            stacked = np.stack(chunk_rows)
        return self.commit_coeffs(stacked, label, observe=observe)

    # -- openings + FRI --------------------------------------------------

    def open_and_prove(
        self,
        points: Sequence[np.ndarray],
        columns: Sequence[Sequence[Tuple[int, int]]],
    ) -> Tuple[FriOpenings, FriProof]:
        """Open the committed batches and produce the FRI proof.

        ``columns[k]`` lists the ``(batch_index, poly_index)`` pairs
        opened at ``points[k]``; batch indices are commitment order.
        """
        with tracing.span("open", category="open"):
            openings = open_batches(self.batches, points, columns)
        with tracing.span("fri", category="fri"):
            proof = fri_prove(
                self.batches, openings, self.challenger, self.config, ws=self.ws
            )
        return openings, proof
