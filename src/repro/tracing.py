"""Stage-level tracing shared by the real provers and the simulator.

Two halves, one file:

* **Spans** -- context-local structured timing of real proof runs.  A
  :func:`span` context manager records wall time plus the
  :class:`repro.metrics.Counters` delta of everything executed inside
  it, nesting under the enclosing span.  Collection is off unless a
  :func:`trace` session is active, so the instrumented hot paths pay
  one context-variable read when nobody is watching.

* **Chrome Trace Event export** -- a shared writer/validator for the
  `Trace Event Format`_ JSON consumed by ``chrome://tracing`` and
  Perfetto.  Both the simulator's schedule export
  (:mod:`repro.sim.tracing`) and real-run span dumps (``repro prove
  --trace-out``) produce their payloads through :func:`write_trace_payload`
  and are checked by the same :func:`validate_trace_events`.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Usage::

    with tracing.trace() as session:
        prove(...)
    for s in session.spans:           # nested Span tree
        print(s.name, s.elapsed_s, s.counters)
    tracing.write_spans_trace(session.spans, "prove.json")

Sessions are context-local (:mod:`contextvars`): concurrent proofs in
different threads or asyncio tasks collect into separate sessions, the
same model :mod:`repro.metrics` uses for its counters.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from .metrics import GLOBAL


@dataclass
class Span:
    """One timed stage: name, wall time, counter deltas, children."""

    name: str
    category: str = "stage"
    #: ``time.perf_counter()`` at entry (relative clock, session-local).
    start_s: float = 0.0
    elapsed_s: float = 0.0
    #: Non-zero operation-counter deltas accumulated inside the span
    #: (children included -- a raw delta, not an exclusive count).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Static annotations supplied at span entry (shape, workload, ...).
    args: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe nested form (ships across process boundaries)."""
        return {
            "name": self.name,
            "category": self.category,
            "start_s": float(self.start_s),
            "elapsed_s": float(self.elapsed_s),
            "counters": {k: int(v) for k, v in self.counters.items()},
            "args": dict(self.args),
            "children": [c.as_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`as_dict`."""
        return cls(
            name=d["name"],
            category=d.get("category", "stage"),
            start_s=float(d.get("start_s", 0.0)),
            elapsed_s=float(d.get("elapsed_s", 0.0)),
            counters=dict(d.get("counters", {})),
            args=dict(d.get("args", {})),
            children=[cls.from_dict(c) for c in d.get("children", [])],
        )


class TraceSession:
    """Collects the span forest of one traced region."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    def walk(self) -> Iterator[Span]:
        """Every collected span, depth-first across all roots."""
        for root in self.spans:
            yield from root.walk()

    def stage_seconds(self) -> Dict[str, float]:
        """Wall seconds per span name, roots and their direct stages.

        Nested grandchildren (e.g. ``fri:fold`` under ``fri``) are not
        double counted into their parents' rows; they get their own.
        """
        out: Dict[str, float] = {}
        for s in self.walk():
            out[s.name] = out.get(s.name, 0.0) + s.elapsed_s
        return out


_ACTIVE: ContextVar[Optional[TraceSession]] = ContextVar(
    "repro_trace_session", default=None
)


def active_session() -> Optional[TraceSession]:
    """The context's live session, or ``None`` when tracing is off."""
    return _ACTIVE.get()


@contextmanager
def trace() -> Iterator[TraceSession]:
    """Activate span collection for the enclosed block."""
    session = TraceSession()
    token = _ACTIVE.set(session)
    try:
        yield session
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name: str, category: str = "stage", **args: Any) -> Iterator[Optional[Span]]:
    """Record a timed stage (no-op unless a :func:`trace` is active).

    Yields the live :class:`Span` (or ``None`` when collection is off);
    wall time and counter deltas are filled in at exit.
    """
    session = _ACTIVE.get()
    if session is None:
        yield None
        return
    s = Span(name=name, category=category, args=dict(args))
    parent = session._stack[-1] if session._stack else None
    (parent.children if parent is not None else session.spans).append(s)
    session._stack.append(s)
    before = GLOBAL.snapshot()
    s.start_s = time.perf_counter()
    try:
        yield s
    finally:
        s.elapsed_s = time.perf_counter() - s.start_s
        s.counters = {
            k: v for k, v in GLOBAL.delta(before).as_dict().items() if v
        }
        session._stack.pop()


def attach_spans(
    span_dicts: List[Dict[str, Any]], base_s: Optional[float] = None
) -> int:
    """Graft serialized spans from another process into this session.

    Shard workers trace into their own sessions and ship the forest
    back as ``Span.as_dict`` payloads; the coordinator re-attaches them
    under its currently open span (or as session roots), so a traced
    sharded proof shows ``shard:*`` work nested inside the stage that
    dispatched it.  ``base_s`` -- the coordinator's ``perf_counter`` at
    dispatch -- rebases the foreign clock onto this session's timeline
    (worker ``start_s`` values are process-local).

    No-op (returning 0) when tracing is off; returns the number of
    roots attached otherwise.
    """
    session = _ACTIVE.get()
    if session is None or not span_dicts:
        return 0
    roots = [Span.from_dict(d) for d in span_dicts]
    if base_s is not None:
        origin = min(r.start_s for r in roots)
        shift = base_s - origin
        for root in roots:
            for s in root.walk():
                s.start_s += shift
    parent = session._stack[-1] if session._stack else None
    (parent.children if parent is not None else session.spans).extend(roots)
    return len(roots)


# -- Chrome Trace Event export -------------------------------------------------


def spans_to_trace_events(
    spans: List[Span], pid: int = 1, tid: int = 1, label: str = "prover stages"
) -> List[dict]:
    """Convert a span forest to Trace Event Format dicts.

    Wall seconds map to microsecond timestamps relative to the earliest
    span start; nested spans become nested ``"X"`` (complete) events on
    one track, which is exactly how viewers render call stacks.
    """
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": label}},
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "stages"},
        },
    ]
    flat = [s for root in spans for s in root.walk()]
    if not flat:
        return events
    origin = min(s.start_s for s in flat)
    for s in flat:
        events.append(
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": (s.start_s - origin) * 1e6,
                "dur": max(0.001, s.elapsed_s * 1e6),
                "args": {**s.counters, **s.args},
            }
        )
    return events


def validate_trace_events(events: List[dict]) -> None:
    """Raise ``ValueError`` unless ``events`` is well-formed Trace JSON.

    Checks the invariants both exporters rely on: every event carries a
    name and a phase; complete (``"X"``) events carry non-negative
    numeric ``ts``/``dur``; counter (``"C"``) events carry ``args``.
    """
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    for i, e in enumerate(events):
        if not isinstance(e, dict) or "name" not in e or "ph" not in e:
            raise ValueError(f"event {i} lacks name/ph: {e!r}")
        if e["ph"] == "X":
            ts, dur = e.get("ts"), e.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"event {i} ({e['name']!r}) has bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur <= 0:
                raise ValueError(f"event {i} ({e['name']!r}) has bad dur {dur!r}")
        if e["ph"] == "C" and not isinstance(e.get("args"), dict):
            raise ValueError(f"counter event {i} ({e['name']!r}) lacks args")


def write_trace_payload(
    events: List[dict],
    path: str | Path,
    other_data: Optional[Dict[str, Any]] = None,
    display_time_unit: str = "ns",
) -> Path:
    """Validate and write a ``chrome://tracing`` JSON file."""
    validate_trace_events(events)
    path = Path(path)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": display_time_unit,
        "otherData": dict(other_data or {}),
    }
    path.write_text(json.dumps(payload))
    return path


def load_trace(path: str | Path) -> dict:
    """Read a trace file back, re-validating its events."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("trace file has no traceEvents")
    validate_trace_events(payload["traceEvents"])
    return payload


def write_spans_trace(
    spans: List[Span], path: str | Path, **other_data: Any
) -> Path:
    """Export a real-run span forest as a Chrome trace file."""
    events = spans_to_trace_events(spans)
    total = sum(s.elapsed_s for s in spans)
    return write_trace_payload(
        events,
        path,
        other_data={"total_seconds": total, **other_data},
        display_time_unit="ms",
    )
