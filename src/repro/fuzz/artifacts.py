"""Finding records and seeded reproducer artifacts.

A finding is a mutant that the verifier *accepted* or rejected with an
untyped exception.  Findings are persisted as small JSON artifacts that
carry everything needed to replay them in a fresh process:

* byte-level findings embed the (shrunk) mutant bytes directly;
* object-level findings embed the ``(seed, iteration, mutator)`` triple,
  because the mutant proof object is regenerated deterministically from
  the per-iteration generator.

Artifacts double as regression corpus entries: CI replays every stored
artifact and fails if one reproduces (see ``repro fuzz --replay``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

#: Artifact schema version (bump on incompatible format changes).
ARTIFACT_VERSION = 1

#: Outcome labels that constitute a finding.
BAD_OUTCOMES = ("accepted", "untyped-decode", "untyped-verify")


@dataclass(frozen=True)
class Finding:
    """One soundness finding, replayable from its artifact."""

    protocol: str  # registered protocol name ("stark", "plonk", ...)
    mutator: str  # name in MUTATORS
    kind: str  # "bytes" | "object"
    seed: int
    iteration: int
    outcome: str  # one of BAD_OUTCOMES
    exception_type: Optional[str]  # None for an accept
    exception_msg: Optional[str]
    data_hex: Optional[str] = None  # mutant bytes (byte-level findings)
    shrunk_hex: Optional[str] = None  # minimized mutant bytes, if shrinking ran
    proof_format: Optional[str] = None  # blob framing tag (e.g. "uzkp-v1")

    def describe(self) -> str:
        """One-line human summary."""
        exc = f"{self.exception_type}: {self.exception_msg}" if self.exception_type else "accepted"
        return (
            f"[{self.protocol}] {self.mutator} (iter {self.iteration}, "
            f"seed {self.seed}) -> {self.outcome} ({exc})"
        )

    def artifact_name(self) -> str:
        """Stable filename for this finding's artifact."""
        return f"{self.protocol}-{self.mutator}-s{self.seed}-i{self.iteration}.json"


def save_finding(finding: Finding, corpus_dir: str | Path) -> Path:
    """Persist a finding as a JSON artifact; returns its path."""
    corpus = Path(corpus_dir)
    corpus.mkdir(parents=True, exist_ok=True)
    path = corpus / finding.artifact_name()
    payload = {"version": ARTIFACT_VERSION, **asdict(finding)}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_finding(path: str | Path) -> Finding:
    """Load a finding back from its JSON artifact."""
    raw = json.loads(Path(path).read_text())
    version = raw.pop("version", None)
    if version != ARTIFACT_VERSION:
        raise ValueError(f"unsupported fuzz artifact version {version!r}")
    return Finding(**raw)
