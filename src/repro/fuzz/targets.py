"""Deterministic honest-proof targets for the soundness fuzzer.

A :class:`FuzzTarget` bundles everything one mutation iteration needs:
the honest serialized proof, a *second* honest proof (for splicing
mutators), and decode / encode / verify callables whose error behaviour
is the thing under test.  Targets are built once per process and
cached -- every byte of ``blob`` is deterministic, which is what makes
seeded findings replayable across runs and processes.

Target blobs are *tagged proof blobs* (magic + format version +
protocol tag, see :func:`repro.serialize.proof_to_blob`), the same
framing the proving service ships, so byte-level mutants exercise the
envelope parser alongside the per-protocol codec.  The protocol list
itself comes from the :mod:`repro.protocols` registry -- the fuzzer
automatically covers every registered backend.

The proofs are deliberately tiny (scaled-down FRI parameters, small
traces): a fuzz campaign spends its budget on *mutations*, not on
proving.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Tuple

from ..fri import FriConfig
from ..fri.verifier import FriError
from ..hyperplonk import HyperPlonkConfig, HyperPlonkError
from ..hyperplonk import prove as hp_prove, setup as hp_setup, verify as hp_verify
from ..plonk import CircuitBuilder, PlonkError
from ..plonk import prove as plonk_prove, setup as plonk_setup, verify as plonk_verify
from ..protocols import names as _protocol_names
from ..serialize import proof_format_version, proof_from_blob, proof_to_blob
from ..stark import StarkError
from ..stark import prove as stark_prove, verify as stark_verify
from ..workloads import by_name

#: Exception types that constitute a *valid* rejection of a hostile
#: proof.  Anything else escaping decode or verify -- ``IndexError``,
#: ``ZeroDivisionError``, ``MemoryError``, ... -- would kill a service
#: worker and is reported as a finding, exactly like an accept.
#: ``ProofFormatError`` (bad blob framing) is a ``ValueError``.
TYPED_REJECTIONS: Tuple[type, ...] = (
    ValueError,
    FriError,
    StarkError,
    PlonkError,
    HyperPlonkError,
)

#: Protocols the fuzzer targets: every registered proof backend.
PROTOCOLS = _protocol_names()


def proof_format_tag(protocol: str) -> str:
    """Blob framing identifier recorded in finding artifacts.

    Format versions are per protocol (the hyperplonk body moved to v2
    with batched openings), so the tag carries the protocol's own
    version rather than one blob-wide constant.
    """
    return f"uzkp-v{proof_format_version(protocol)}"


_STARK_CONFIG = FriConfig(
    rate_bits=1, cap_height=1, num_queries=4, proof_of_work_bits=2, final_poly_len=4
)
_PLONK_CONFIG = FriConfig(
    rate_bits=3, cap_height=1, num_queries=4, proof_of_work_bits=2, final_poly_len=4
)
_HYPERPLONK_CONFIG = HyperPlonkConfig(cap_height=1, num_queries=4)


@dataclass(frozen=True)
class FuzzTarget:
    """One protocol's honest proof plus its decode/verify surface."""

    protocol: str
    blob: bytes  # honest serialized proof (tagged blob)
    alt_blob: bytes  # a second, structurally different honest proof
    decode: Callable[[bytes], object]
    encode: Callable[[object], bytes]
    run_verify: Callable[[object], None]  # raises a typed error to reject
    proof_format: str = "uzkp-v1"  # blob framing, for artifacts


def _codecs(protocol: str):
    """Tagged-blob decode/encode pair pinned to one protocol."""

    def decode(data: bytes):
        _, proof = proof_from_blob(data, expected_protocol=protocol)
        return proof

    def encode(proof) -> bytes:
        return proof_to_blob(protocol, proof)

    return decode, encode


def _cube_circuit():
    """The tiny shared circuit (``pub == x**3``) for plonkish targets."""
    b = CircuitBuilder()
    x = b.add_variable()
    pub = b.public_input()
    b.assert_equal(pub, b.mul(b.mul(x, x), x))
    return b.build(), x, pub


@lru_cache(maxsize=1)
def stark_target() -> FuzzTarget:
    """Fibonacci STARK target (two scales, so splices cross shapes)."""
    spec = by_name("Fibonacci")
    air, trace, publics = spec.build_air(5)
    proof = stark_prove(air, trace, publics, _STARK_CONFIG)
    alt_air, alt_trace, alt_publics = spec.build_air(6)
    alt_proof = stark_prove(alt_air, alt_trace, alt_publics, _STARK_CONFIG)
    decode, encode = _codecs("stark")

    def run_verify(p) -> None:
        stark_verify(air, p, _STARK_CONFIG)

    run_verify(proof)  # sanity: the honest proof must pass
    return FuzzTarget(
        protocol="stark",
        proof_format=proof_format_tag("stark"),
        blob=encode(proof),
        alt_blob=encode(alt_proof),
        decode=decode,
        encode=encode,
        run_verify=run_verify,
    )


@lru_cache(maxsize=1)
def plonk_target() -> FuzzTarget:
    """Tiny Plonk circuit target (``pub == x**3``, two witnesses)."""
    circuit, x, pub = _cube_circuit()
    data = plonk_setup(circuit, _PLONK_CONFIG)
    proof = plonk_prove(data, {x.index: 3, pub.index: 27})
    alt_proof = plonk_prove(data, {x.index: 5, pub.index: 125})
    decode, encode = _codecs("plonk")

    def run_verify(p) -> None:
        plonk_verify(data.verifier_data, p)

    run_verify(proof)
    return FuzzTarget(
        protocol="plonk",
        proof_format=proof_format_tag("plonk"),
        blob=encode(proof),
        alt_blob=encode(alt_proof),
        decode=decode,
        encode=encode,
        run_verify=run_verify,
    )


@lru_cache(maxsize=1)
def hyperplonk_target() -> FuzzTarget:
    """Sumcheck-native HyperPlonk target over the same cube circuit."""
    circuit, x, pub = _cube_circuit()
    data = hp_setup(circuit, _HYPERPLONK_CONFIG)
    proof = hp_prove(data, {x.index: 3, pub.index: 27})
    alt_proof = hp_prove(data, {x.index: 5, pub.index: 125})
    decode, encode = _codecs("hyperplonk")

    def run_verify(p) -> None:
        hp_verify(data.verifier_data, p)

    run_verify(proof)
    return FuzzTarget(
        protocol="hyperplonk",
        proof_format=proof_format_tag("hyperplonk"),
        blob=encode(proof),
        alt_blob=encode(alt_proof),
        decode=decode,
        encode=encode,
        run_verify=run_verify,
    )


_TARGET_BUILDERS = {
    "stark": stark_target,
    "plonk": plonk_target,
    "hyperplonk": hyperplonk_target,
}


def target_for(protocol: str) -> FuzzTarget:
    """Look up (and lazily build) the target for ``protocol``."""
    builder = _TARGET_BUILDERS.get(protocol)
    if builder is None:
        raise ValueError(f"unknown fuzz protocol {protocol!r}")
    return builder()
