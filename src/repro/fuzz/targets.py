"""Deterministic honest-proof targets for the soundness fuzzer.

A :class:`FuzzTarget` bundles everything one mutation iteration needs:
the honest serialized proof, a *second* honest proof (for splicing
mutators), and decode / encode / verify callables whose error behaviour
is the thing under test.  Targets are built once per process and
cached -- every byte of ``blob`` is deterministic, which is what makes
seeded findings replayable across runs and processes.

The proofs are deliberately tiny (scaled-down FRI parameters, small
traces): a fuzz campaign spends its budget on *mutations*, not on
proving.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Tuple

from ..fri import FriConfig
from ..fri.verifier import FriError
from ..plonk import CircuitBuilder, PlonkError
from ..plonk import prove as plonk_prove, setup as plonk_setup, verify as plonk_verify
from ..serialize import (
    plonk_proof_from_bytes,
    plonk_proof_to_bytes,
    stark_proof_from_bytes,
    stark_proof_to_bytes,
)
from ..stark import StarkError
from ..stark import prove as stark_prove, verify as stark_verify
from ..workloads import by_name

#: Exception types that constitute a *valid* rejection of a hostile
#: proof.  Anything else escaping decode or verify -- ``IndexError``,
#: ``ZeroDivisionError``, ``MemoryError``, ... -- would kill a service
#: worker and is reported as a finding, exactly like an accept.
TYPED_REJECTIONS: Tuple[type, ...] = (ValueError, FriError, StarkError, PlonkError)

#: Protocols the fuzzer knows how to target.
PROTOCOLS = ("stark", "plonk")

_STARK_CONFIG = FriConfig(
    rate_bits=1, cap_height=1, num_queries=4, proof_of_work_bits=2, final_poly_len=4
)
_PLONK_CONFIG = FriConfig(
    rate_bits=3, cap_height=1, num_queries=4, proof_of_work_bits=2, final_poly_len=4
)


@dataclass(frozen=True)
class FuzzTarget:
    """One protocol's honest proof plus its decode/verify surface."""

    protocol: str
    blob: bytes  # honest serialized proof
    alt_blob: bytes  # a second, structurally different honest proof
    decode: Callable[[bytes], object]
    encode: Callable[[object], bytes]
    run_verify: Callable[[object], None]  # raises a typed error to reject


@lru_cache(maxsize=1)
def stark_target() -> FuzzTarget:
    """Fibonacci STARK target (two scales, so splices cross shapes)."""
    spec = by_name("Fibonacci")
    air, trace, publics = spec.build_air(5)
    proof = stark_prove(air, trace, publics, _STARK_CONFIG)
    alt_air, alt_trace, alt_publics = spec.build_air(6)
    alt_proof = stark_prove(alt_air, alt_trace, alt_publics, _STARK_CONFIG)

    def run_verify(p) -> None:
        stark_verify(air, p, _STARK_CONFIG)

    run_verify(proof)  # sanity: the honest proof must pass
    return FuzzTarget(
        protocol="stark",
        blob=stark_proof_to_bytes(proof),
        alt_blob=stark_proof_to_bytes(alt_proof),
        decode=stark_proof_from_bytes,
        encode=stark_proof_to_bytes,
        run_verify=run_verify,
    )


@lru_cache(maxsize=1)
def plonk_target() -> FuzzTarget:
    """Tiny Plonk circuit target (``pub == x**3``, two witnesses)."""
    b = CircuitBuilder()
    x = b.add_variable()
    pub = b.public_input()
    b.assert_equal(pub, b.mul(b.mul(x, x), x))
    data = plonk_setup(b.build(), _PLONK_CONFIG)
    proof = plonk_prove(data, {x.index: 3, pub.index: 27})
    alt_proof = plonk_prove(data, {x.index: 5, pub.index: 125})

    def run_verify(p) -> None:
        plonk_verify(data.verifier_data, p)

    run_verify(proof)
    return FuzzTarget(
        protocol="plonk",
        blob=plonk_proof_to_bytes(proof),
        alt_blob=plonk_proof_to_bytes(alt_proof),
        decode=plonk_proof_from_bytes,
        encode=plonk_proof_to_bytes,
        run_verify=run_verify,
    )


def target_for(protocol: str) -> FuzzTarget:
    """Look up (and lazily build) the target for ``protocol``."""
    if protocol == "stark":
        return stark_target()
    if protocol == "plonk":
        return plonk_target()
    raise ValueError(f"unknown fuzz protocol {protocol!r}")
