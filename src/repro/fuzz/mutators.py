"""Structured mutation library over serialized proofs (all protocols).

Every mutator takes a :class:`~repro.fuzz.targets.FuzzTarget` and a
seeded ``numpy.random.Generator`` and produces a :class:`Mutant`:

* **byte mutants** carry a mutated serialized proof -- they exercise the
  deserializer *and* the verifier (most structured mutators decode the
  honest proof, tamper with one structural element, and re-encode);
* **object mutants** carry a mutated in-memory proof object -- they
  exercise verifier states that the codec cannot even express (e.g. an
  initial opening whose ``leaves`` and ``proofs`` lists disagree in
  length, which ``write_fri_proof``'s ``zip`` would silently repair).

Mutators are deterministic in ``(target, rng)``: re-running one with
the same per-iteration seed regenerates the identical mutant, which is
how object-mutant findings are replayed from artifacts.  A mutator may
return ``None`` when it does not apply (e.g. ``perturb-degree-bits`` on
a Plonk proof).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..field import goldilocks as gl
from .targets import FuzzTarget

_P = gl.P


@dataclass
class Mutant:
    """One mutated proof, as bytes or as an in-memory object."""

    mutator: str
    data: Optional[bytes] = None  # byte-level mutant
    proof: Optional[object] = None  # object-level mutant (skips decode)

    @property
    def kind(self) -> str:
        """``"bytes"`` or ``"object"``."""
        return "bytes" if self.data is not None else "object"


def _rand_elem(rng: np.random.Generator, not_equal: int | None = None) -> int:
    """A uniform canonical field element, optionally != a given value."""
    while True:
        v = int(rng.integers(0, _P, dtype=np.uint64))
        if v != not_equal:
            return v


# -- access helpers over both proof shapes ------------------------------------


def _cap_slots(proof) -> list:
    """Addressable Merkle-cap slots: ``(attr, index_or_None)`` pairs."""
    slots = []
    for name in ("trace_cap", "quotient_cap", "wires_cap", "z_cap"):
        if hasattr(proof, name):
            slots.append((name, None))
    if hasattr(proof, "fri_proof"):
        for i in range(len(proof.fri_proof.commit_caps)):
            slots.append(("commit_caps", i))
    for i in range(len(getattr(proof, "level_caps", ()))):
        slots.append(("level_caps", i))
    return slots


def _get_cap(proof, slot) -> np.ndarray:
    name, idx = slot
    if name == "commit_caps":
        return proof.fri_proof.commit_caps[idx]
    if name == "level_caps":
        return proof.level_caps[idx]
    return getattr(proof, name)


def _set_cap(proof, slot, value: np.ndarray) -> None:
    name, idx = slot
    if name == "commit_caps":
        proof.fri_proof.commit_caps[idx] = value
    elif name == "level_caps":
        proof.level_caps[idx] = value
    else:
        setattr(proof, name, value)


def _query_rounds(proof) -> list:
    """The proof's query rounds, whichever protocol shape it has."""
    if hasattr(proof, "fri_proof"):
        return proof.fri_proof.query_rounds
    return getattr(proof, "query_rounds", [])


def _fri_layer_rounds(proof) -> list:
    """FRI query rounds that carry fold-layer openings ([] otherwise)."""
    if not hasattr(proof, "fri_proof"):
        return []
    return [qr for qr in proof.fri_proof.query_rounds if qr.layers]


def _all_arrays(proof) -> list:
    """Every mutable field-element array reachable in a proof."""
    arrays = [_get_cap(proof, s) for s in _cap_slots(proof)]
    if hasattr(proof, "openings"):
        arrays.extend(proof.openings.points)
        arrays.extend(proof.openings.values)
    if hasattr(proof, "fri_proof"):
        fp = proof.fri_proof
        arrays.append(fp.final_poly)
        for qr in fp.query_rounds:
            arrays.extend(qr.initial.leaves)
            arrays.extend(p.siblings for p in qr.initial.proofs)
            for layer in qr.layers:
                arrays.append(layer.pair_leaf)
                arrays.append(layer.proof.siblings)
    if hasattr(proof, "sumcheck"):  # hyperplonk shape
        for op in proof.tree_openings():
            arrays.append(op.rows)
            arrays.append(op.proof.nodes)
    return [a for a in arrays if a.size]


def _choice(rng: np.random.Generator, seq):
    return seq[int(rng.integers(0, len(seq)))]


# -- byte-level mutators -------------------------------------------------------


def bit_flip(target: FuzzTarget, rng) -> Mutant:
    """Flip one bit anywhere in the serialized proof."""
    blob = bytearray(target.blob)
    pos = int(rng.integers(0, len(blob)))
    blob[pos] ^= 1 << int(rng.integers(0, 8))
    return Mutant("bit-flip", data=bytes(blob))


def truncate_bytes(target: FuzzTarget, rng) -> Mutant:
    """Cut the serialized proof at a random position."""
    cut = int(rng.integers(0, len(target.blob)))
    return Mutant("truncate-bytes", data=target.blob[:cut])


def extend_bytes(target: FuzzTarget, rng) -> Mutant:
    """Append 1..16 random bytes after a valid proof."""
    extra = rng.integers(0, 256, size=int(rng.integers(1, 17)), dtype=np.uint8)
    return Mutant("extend-bytes", data=target.blob + extra.tobytes())


def stomp_u32(target: FuzzTarget, rng) -> Mutant:
    """Overwrite a 4-byte window with ``0xFFFFFFFF``.

    Unaligned windows corrupt payloads; aligned ones inflate the
    length/count prefixes the deserializer must bound-check.
    """
    blob = bytearray(target.blob)
    pos = int(rng.integers(0, len(blob) - 3))
    blob[pos : pos + 4] = b"\xff\xff\xff\xff"
    return Mutant("stomp-u32", data=bytes(blob))


def zero_window(target: FuzzTarget, rng) -> Mutant:
    """Zero out an 8-byte window of the serialized proof."""
    blob = bytearray(target.blob)
    pos = int(rng.integers(0, max(1, len(blob) - 7)))
    blob[pos : pos + 8] = b"\x00" * len(blob[pos : pos + 8])
    return Mutant("zero-window", data=bytes(blob))


def splice_proofs(target: FuzzTarget, rng) -> Mutant:
    """Concatenate a prefix of one valid proof with another's suffix."""
    a, b = target.blob, target.alt_blob
    cut = int(rng.integers(1, min(len(a), len(b))))
    return Mutant("splice-proofs", data=a[:cut] + b[cut:])


# -- structured mutators (decode, tamper, re-encode) ---------------------------


def flip_field_element(target: FuzzTarget, rng) -> Mutant:
    """Replace one field element anywhere in the proof structure."""
    proof = target.decode(target.blob)
    arr = _choice(rng, _all_arrays(proof))
    flat = arr.reshape(-1)
    idx = int(rng.integers(0, flat.size))
    flat[idx] = np.uint64(_rand_elem(rng, not_equal=int(flat[idx])))
    return Mutant("flip-field-element", data=target.encode(proof))


def perturb_opening_value(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Perturb one claimed opening evaluation (FRI-family proofs)."""
    proof = target.decode(target.blob)
    if not hasattr(proof, "openings"):
        return None
    vals = _choice(rng, proof.openings.values)
    flat = vals.reshape(-1)
    idx = int(rng.integers(0, flat.size))
    flat[idx] = np.uint64(_rand_elem(rng, not_equal=int(flat[idx])))
    return Mutant("perturb-opening-value", data=target.encode(proof))


def swap_opening_points(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Swap the two opening points (zeta and zeta * omega)."""
    proof = target.decode(target.blob)
    if not hasattr(proof, "openings"):
        return None
    pts = proof.openings.points
    pts[0], pts[1] = pts[1], pts[0]
    return Mutant("swap-opening-points", data=target.encode(proof))


def swap_cap_entries(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Swap two rows of one Merkle cap."""
    proof = target.decode(target.blob)
    slots = [s for s in _cap_slots(proof) if _get_cap(proof, s).shape[0] >= 2]
    if not slots:
        return None
    cap = _get_cap(proof, _choice(rng, slots))
    i, j = 0, int(rng.integers(1, cap.shape[0]))
    if np.array_equal(cap[i], cap[j]):
        return None
    cap[[i, j]] = cap[[j, i]]
    return Mutant("swap-cap-entries", data=target.encode(proof))


def truncate_cap(target: FuzzTarget, rng) -> Mutant:
    """Drop the last row of one Merkle cap."""
    proof = target.decode(target.blob)
    slot = _choice(rng, _cap_slots(proof))
    _set_cap(proof, slot, _get_cap(proof, slot)[:-1])
    return Mutant("truncate-cap", data=target.encode(proof))


def drop_query_round(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Remove one query round (FRI or multilinear-PCS)."""
    proof = target.decode(target.blob)
    rounds = _query_rounds(proof)
    if not rounds:
        return None
    del rounds[int(rng.integers(0, len(rounds)))]
    return Mutant("drop-query-round", data=target.encode(proof))


def duplicate_query_round(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Duplicate one query round in place (FRI or multilinear-PCS)."""
    proof = target.decode(target.blob)
    rounds = _query_rounds(proof)
    if not rounds:
        return None
    idx = int(rng.integers(0, len(rounds)))
    rounds.insert(idx, rounds[idx])
    return Mutant("duplicate-query-round", data=target.encode(proof))


def drop_layer(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Remove one fold-layer opening from one query round."""
    proof = target.decode(target.blob)
    rounds = _fri_layer_rounds(proof)
    if not rounds:
        return None
    qr = _choice(rng, rounds)
    del qr.layers[int(rng.integers(0, len(qr.layers)))]
    return Mutant("drop-layer", data=target.encode(proof))


def duplicate_layer(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Duplicate one fold-layer opening within its query round."""
    proof = target.decode(target.blob)
    rounds = _fri_layer_rounds(proof)
    if not rounds:
        return None
    qr = _choice(rng, rounds)
    idx = int(rng.integers(0, len(qr.layers)))
    qr.layers.insert(idx, qr.layers[idx])
    return Mutant("duplicate-layer", data=target.encode(proof))


def resize_final_poly(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Truncate the final polynomial, or pad it past the degree bound."""
    proof = target.decode(target.blob)
    if not hasattr(proof, "fri_proof"):
        return None
    fp = proof.fri_proof
    if int(rng.integers(0, 2)) and fp.final_poly.shape[0]:
        fp.final_poly = fp.final_poly[:-1]
    else:
        extra = np.array(
            [[_rand_elem(rng), _rand_elem(rng)]], dtype=np.uint64
        )
        fp.final_poly = np.concatenate([fp.final_poly, extra])
    return Mutant("resize-final-poly", data=target.encode(proof))


def corrupt_pow_witness(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Shift the grinding witness."""
    proof = target.decode(target.blob)
    if not hasattr(proof, "fri_proof"):
        return None
    fp = proof.fri_proof
    fp.pow_witness = (fp.pow_witness + int(rng.integers(1, 1 << 32))) % (1 << 64)
    return Mutant("corrupt-pow-witness", data=target.encode(proof))


def perturb_public_input(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Change, append, or drop a public input."""
    proof = target.decode(target.blob)
    publics = proof.public_inputs
    action = int(rng.integers(0, 3))
    if action == 0 and publics:
        idx = int(rng.integers(0, len(publics)))
        publics[idx] = _rand_elem(rng, not_equal=publics[idx])
    elif action == 1:
        publics.append(_rand_elem(rng))
    elif publics:
        del publics[int(rng.integers(0, len(publics)))]
    else:
        return None
    return Mutant("perturb-public-input", data=target.encode(proof))


def perturb_degree_bits(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Lie about the trace degree (STARK only)."""
    proof = target.decode(target.blob)
    if not hasattr(proof, "degree_bits"):
        return None
    new = int(rng.integers(0, 51))
    if new == proof.degree_bits:
        new = proof.degree_bits + 1
    proof.degree_bits = new
    return Mutant("perturb-degree-bits", data=target.encode(proof))


def splice_fri_proof(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Graft the FRI proof of a different honest proof onto this one."""
    proof = target.decode(target.blob)
    if not hasattr(proof, "fri_proof"):
        return None
    donor = target.decode(target.alt_blob)
    proof.fri_proof = donor.fri_proof
    return Mutant("splice-fri-proof", data=target.encode(proof))


def pad_initial_leaf(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Append a zero element to one initial-opening leaf.

    For leaves shorter than a digest, ``hash_or_noop`` zero-pads -- so
    the padded leaf still authenticates against the commitment and only
    the verifier's exact leaf-width pin rejects it.
    """
    proof = target.decode(target.blob)
    if not hasattr(proof, "fri_proof"):
        return None
    rounds = proof.fri_proof.query_rounds
    if not rounds:
        return None
    qr = _choice(rng, rounds)
    idx = int(rng.integers(0, len(qr.initial.leaves)))
    leaf = qr.initial.leaves[idx]
    qr.initial.leaves[idx] = np.concatenate([leaf, np.zeros(1, dtype=np.uint64)])
    return Mutant("pad-initial-leaf", data=target.encode(proof))


def reshape_initial_leaf(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Serialize one initial leaf as a (1, n) matrix instead of a vector."""
    proof = target.decode(target.blob)
    if not hasattr(proof, "fri_proof"):
        return None
    rounds = proof.fri_proof.query_rounds
    if not rounds:
        return None
    qr = _choice(rng, rounds)
    idx = int(rng.integers(0, len(qr.initial.leaves)))
    qr.initial.leaves[idx] = qr.initial.leaves[idx].reshape(1, -1)
    return Mutant("reshape-initial-leaf", data=target.encode(proof))


def truncate_pair_leaf(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Truncate one fold-layer pair leaf below its 4 elements."""
    proof = target.decode(target.blob)
    rounds = _fri_layer_rounds(proof)
    if not rounds:
        return None
    qr = _choice(rng, rounds)
    layer = _choice(rng, qr.layers)
    layer.pair_leaf = layer.pair_leaf[: int(rng.integers(0, 4))]
    return Mutant("truncate-pair-leaf", data=target.encode(proof))


# -- sumcheck mutators (hyperplonk-shaped proofs only) -------------------------


def tamper_sumcheck_round(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Perturb one half of one sumcheck round polynomial."""
    proof = target.decode(target.blob)
    if not hasattr(proof, "sumcheck") or not proof.sumcheck.round_values:
        return None
    rounds = proof.sumcheck.round_values
    idx = int(rng.integers(0, len(rounds)))
    y0, y1 = rounds[idx]
    if int(rng.integers(0, 2)):
        rounds[idx] = (y0, _rand_elem(rng, not_equal=y1))
    else:
        rounds[idx] = (_rand_elem(rng, not_equal=y0), y1)
    return Mutant("tamper-sumcheck-round", data=target.encode(proof))


def perturb_final_value(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Lie about the sumcheck's fully-folded final evaluation."""
    proof = target.decode(target.blob)
    if not hasattr(proof, "sumcheck"):
        return None
    sc = proof.sumcheck
    sc.final_value = _rand_elem(rng, not_equal=sc.final_value)
    return Mutant("perturb-final-value", data=target.encode(proof))


def perturb_claimed_sum(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Claim a nonzero zerocheck sum (honest proofs must claim zero)."""
    proof = target.decode(target.blob)
    if not hasattr(proof, "sumcheck"):
        return None
    sc = proof.sumcheck
    sc.claimed_sum = _rand_elem(rng, not_equal=sc.claimed_sum)
    return Mutant("perturb-claimed-sum", data=target.encode(proof))


def perturb_z_opening(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Perturb one opened Z-tree row value in the batched opening."""
    proof = target.decode(target.blob)
    if not hasattr(proof, "sumcheck"):
        return None
    rows = proof.z_opening.rows
    if not rows.size:
        return None
    idx = int(rng.integers(0, rows.shape[0]))
    rows[idx, 0] = np.uint64(_rand_elem(rng, not_equal=int(rows[idx, 0])))
    return Mutant("perturb-z-opening", data=target.encode(proof))


def drop_opened_row(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Remove one index + row from a batched tree opening.

    The verifier re-derives the expected index set from the transcript,
    so a multiproof opening fewer positions than the queries touch must
    reject on the index-set comparison (before any hashing).
    """
    proof = target.decode(target.blob)
    if not hasattr(proof, "sumcheck"):
        return None
    ops = [op for op in proof.tree_openings() if len(op.proof.indices) >= 2]
    if not ops:
        return None
    op = _choice(rng, ops)
    k = int(rng.integers(0, len(op.proof.indices)))
    op.proof.indices = op.proof.indices[:k] + op.proof.indices[k + 1 :]
    op.rows = np.delete(op.rows, k, axis=0)
    return Mutant("drop-opened-row", data=target.encode(proof))


def pad_opening_nodes(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Append a junk digest to a multiproof's shared node list.

    ``verify_multi`` demands the node cursor land exactly at the end of
    the list -- unconsumed nodes must reject even though every derived
    digest still matches the cap.
    """
    proof = target.decode(target.blob)
    if not hasattr(proof, "sumcheck"):
        return None
    op = _choice(rng, proof.tree_openings())
    junk = np.array(
        [[_rand_elem(rng) for _ in range(4)]], dtype=np.uint64
    )
    op.proof.nodes = np.concatenate([op.proof.nodes, junk])
    return Mutant("pad-opening-nodes", data=target.encode(proof))


# -- object-level mutators (states the codec cannot express) -------------------


def mismatch_initial_proofs(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Hand the verifier fewer Merkle proofs than initial leaves.

    Unserializable on purpose: ``write_fri_proof`` zips leaves with
    proofs, so the only way this state reaches a verifier is through
    the in-process object API -- where a truncating ``zip`` would have
    skipped Merkle checks entirely.
    """
    proof = copy.deepcopy(target.decode(target.blob))
    if not hasattr(proof, "fri_proof"):
        return None
    rounds = [qr for qr in proof.fri_proof.query_rounds if qr.initial.proofs]
    if not rounds:
        return None
    qr = _choice(rng, rounds)
    qr.initial.proofs = qr.initial.proofs[:-1]
    return Mutant("mismatch-initial-proofs", proof=proof)


def scalar_pair_leaf(target: FuzzTarget, rng) -> Optional[Mutant]:
    """Replace one pair leaf with a 0-d array (slicing would crash)."""
    proof = copy.deepcopy(target.decode(target.blob))
    rounds = _fri_layer_rounds(proof)
    if not rounds:
        return None
    qr = _choice(rng, rounds)
    layer = _choice(rng, qr.layers)
    layer.pair_leaf = np.uint64(_rand_elem(rng)).reshape(())
    return Mutant("scalar-pair-leaf", proof=proof)


#: The full mutation catalogue, keyed by stable artifact-facing names.
MUTATORS: Dict[str, Callable[[FuzzTarget, np.random.Generator], Optional[Mutant]]] = {
    "bit-flip": bit_flip,
    "truncate-bytes": truncate_bytes,
    "extend-bytes": extend_bytes,
    "stomp-u32": stomp_u32,
    "zero-window": zero_window,
    "splice-proofs": splice_proofs,
    "flip-field-element": flip_field_element,
    "perturb-opening-value": perturb_opening_value,
    "swap-opening-points": swap_opening_points,
    "swap-cap-entries": swap_cap_entries,
    "truncate-cap": truncate_cap,
    "drop-query-round": drop_query_round,
    "duplicate-query-round": duplicate_query_round,
    "drop-layer": drop_layer,
    "duplicate-layer": duplicate_layer,
    "resize-final-poly": resize_final_poly,
    "corrupt-pow-witness": corrupt_pow_witness,
    "perturb-public-input": perturb_public_input,
    "perturb-degree-bits": perturb_degree_bits,
    "splice-fri-proof": splice_fri_proof,
    "pad-initial-leaf": pad_initial_leaf,
    "reshape-initial-leaf": reshape_initial_leaf,
    "truncate-pair-leaf": truncate_pair_leaf,
    "tamper-sumcheck-round": tamper_sumcheck_round,
    "perturb-final-value": perturb_final_value,
    "perturb-claimed-sum": perturb_claimed_sum,
    "perturb-z-opening": perturb_z_opening,
    "drop-opened-row": drop_opened_row,
    "pad-opening-nodes": pad_opening_nodes,
    "mismatch-initial-proofs": mismatch_initial_proofs,
    "scalar-pair-leaf": scalar_pair_leaf,
}

#: Stable ordering for seeded mutator choice.
MUTATOR_NAMES = tuple(MUTATORS)
