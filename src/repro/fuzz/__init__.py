"""Soundness fuzzing: proof-mutation campaigns and differential oracles.

The package attacks the verifier/deserializer surface from two sides:

* :mod:`repro.fuzz.mutators` + :mod:`repro.fuzz.runner` mutate honest
  serialized proofs (and, for states the codec cannot express, proof
  objects) and assert every mutant is rejected with a *typed* error --
  an accept or a stray ``IndexError`` is a finding, shrunk and persisted
  as a replayable artifact (:mod:`repro.fuzz.artifacts`);
* :mod:`repro.fuzz.oracles` cross-check the optimized data plane
  (in-place GL kernels, fused Poseidon, workspace NTT, power-table
  extension evaluation) against slow references over randomized shapes.

Entry points: :func:`run_fuzz`, :func:`replay_artifact`, and the
``repro fuzz`` CLI subcommand.
"""

from .artifacts import BAD_OUTCOMES, Finding, load_finding, save_finding
from .mutators import MUTATOR_NAMES, MUTATORS, Mutant
from .oracles import ORACLES, OracleFinding, run_oracles
from .runner import (
    FuzzReport,
    ReplayResult,
    classify_bytes,
    classify_object,
    replay_artifact,
    run_fuzz,
    shrink_bytes,
)
from .targets import PROTOCOLS, TYPED_REJECTIONS, FuzzTarget, target_for

__all__ = [
    "BAD_OUTCOMES",
    "Finding",
    "FuzzReport",
    "FuzzTarget",
    "MUTATORS",
    "MUTATOR_NAMES",
    "Mutant",
    "ORACLES",
    "OracleFinding",
    "PROTOCOLS",
    "ReplayResult",
    "TYPED_REJECTIONS",
    "classify_bytes",
    "classify_object",
    "load_finding",
    "replay_artifact",
    "run_fuzz",
    "run_oracles",
    "save_finding",
    "shrink_bytes",
    "target_for",
]
