"""The fuzz campaign loop: mutate, classify, shrink, persist, report.

Every iteration is addressed by ``(seed, i)``: the mutator choice draws
from ``default_rng([seed, i, 0])`` and the mutator body from
``default_rng([seed, i, 1])``, so any finding can be regenerated from
its ``(seed, iteration, mutator)`` triple alone -- that is what makes
object-level findings (which carry no bytes) replayable.

Outcome classes:

* ``rejected-decode`` / ``rejected-verify`` -- the mutant was refused
  with a typed error (:data:`~repro.fuzz.targets.TYPED_REJECTIONS`).
  This is the only acceptable fate for a mutant.
* ``accepted`` -- the verifier accepted a tampered proof: a soundness
  finding.
* ``untyped-decode`` / ``untyped-verify`` -- an exception outside the
  typed set escaped (``IndexError``, ``ZeroDivisionError``, ...): a
  robustness finding that would kill a service worker.
* ``no-op`` / ``not-applicable`` -- the mutator produced the original
  blob back (or declined); nothing was tested.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .artifacts import BAD_OUTCOMES, Finding, load_finding, save_finding
from .mutators import MUTATOR_NAMES, MUTATORS, Mutant
from .oracles import OracleFinding, run_oracles
from .targets import PROTOCOLS, TYPED_REJECTIONS, FuzzTarget, target_for

#: Cap on single-byte shrink probes per finding (keeps shrinking bounded
#: even when a structural mutant re-encodes into a large diff).
_SHRINK_PROBE_LIMIT = 512


def classify_bytes(target: FuzzTarget, data: bytes) -> Tuple[str, Optional[BaseException]]:
    """Decode-then-verify a byte mutant; returns ``(outcome, exception)``."""
    try:
        proof = target.decode(data)
    except TYPED_REJECTIONS as exc:
        return "rejected-decode", exc
    except Exception as exc:  # noqa: BLE001 -- the untyped leak IS the finding
        return "untyped-decode", exc
    return classify_object(target, proof)


def classify_object(target: FuzzTarget, proof: object) -> Tuple[str, Optional[BaseException]]:
    """Verify a proof object; returns ``(outcome, exception)``."""
    try:
        target.run_verify(proof)
    except TYPED_REJECTIONS as exc:
        return "rejected-verify", exc
    except Exception as exc:  # noqa: BLE001
        return "untyped-verify", exc
    return "accepted", None


def shrink_bytes(target: FuzzTarget, data: bytes, outcome: str) -> bytes:
    """Greedily revert mutated bytes toward the honest blob.

    Only equal-length mutants shrink (the diff against ``target.blob``
    is well defined byte-for-byte); each differing byte is reverted if
    the outcome class is preserved, leaving a minimal mutation set.
    """
    original = target.blob
    if len(data) != len(original) or data == original:
        return data
    diff = [i for i in range(len(data)) if data[i] != original[i]]
    if len(diff) > _SHRINK_PROBE_LIMIT:
        return data
    cur = bytearray(data)
    for i in diff:
        saved = cur[i]
        cur[i] = original[i]
        if bytes(cur) == original or classify_bytes(target, bytes(cur))[0] != outcome:
            cur[i] = saved
    return bytes(cur)


@dataclass
class FuzzReport:
    """Aggregate result of one fuzz campaign."""

    seed: int
    iterations_run: int = 0
    elapsed_s: float = 0.0
    outcomes: Dict[str, int] = field(default_factory=dict)
    per_mutator: Dict[str, Dict[str, int]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    oracle_findings: List[OracleFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff the campaign surfaced no findings at all."""
        return not self.findings and not self.oracle_findings

    def summary_lines(self) -> List[str]:
        """Human-readable campaign summary."""
        lines = [
            f"fuzz: seed={self.seed} iterations={self.iterations_run} "
            f"elapsed={self.elapsed_s:.1f}s"
        ]
        for outcome in sorted(self.outcomes):
            lines.append(f"  {outcome}: {self.outcomes[outcome]}")
        lines.append(
            f"  findings: {len(self.findings)} mutation, "
            f"{len(self.oracle_findings)} oracle"
        )
        for f in self.findings:
            lines.append(f"  FINDING {f.describe()}")
        for of in self.oracle_findings:
            lines.append(f"  ORACLE FINDING [{of.oracle}] iter {of.iteration}: {of.detail}")
        return lines


def _bump(counters: Dict[str, int], key: str) -> None:
    counters[key] = counters.get(key, 0) + 1


def run_fuzz(
    seed: int = 0,
    iterations: Optional[int] = None,
    budget_s: Optional[float] = None,
    protocols: Sequence[str] = PROTOCOLS,
    corpus_dir: Optional[str] = None,
    shrink: bool = True,
    oracle_iters: int = 0,
    progress: Optional[Callable[[int, FuzzReport], None]] = None,
) -> FuzzReport:
    """Run a mutation-fuzz campaign (plus optional oracle iterations).

    Stops at ``iterations`` mutants or after ``budget_s`` seconds,
    whichever comes first (1000 iterations if neither is given).
    Findings are shrunk (byte mutants of unchanged length) and, when
    ``corpus_dir`` is given, persisted as replayable artifacts.
    """
    if iterations is None and budget_s is None:
        iterations = 1000
    report = FuzzReport(seed=seed)
    start = time.monotonic()
    i = 0
    while True:
        if iterations is not None and i >= iterations:
            break
        if budget_s is not None and time.monotonic() - start >= budget_s:
            break
        protocol = protocols[i % len(protocols)]
        target = target_for(protocol)
        pick = np.random.default_rng([seed, i, 0])
        name = MUTATOR_NAMES[int(pick.integers(0, len(MUTATOR_NAMES)))]
        mutant = MUTATORS[name](target, np.random.default_rng([seed, i, 1]))
        report.iterations_run = i + 1
        i += 1

        mut_counters = report.per_mutator.setdefault(name, {})
        if mutant is None:
            _bump(report.outcomes, "not-applicable")
            _bump(mut_counters, "not-applicable")
            continue
        if mutant.kind == "bytes" and mutant.data == target.blob:
            _bump(report.outcomes, "no-op")
            _bump(mut_counters, "no-op")
            continue

        if mutant.kind == "bytes":
            outcome, exc = classify_bytes(target, mutant.data)
        else:
            outcome, exc = classify_object(target, mutant.proof)
        _bump(report.outcomes, outcome)
        _bump(mut_counters, outcome)

        if outcome in BAD_OUTCOMES:
            data_hex = shrunk_hex = None
            if mutant.kind == "bytes":
                data_hex = mutant.data.hex()
                if shrink:
                    small = shrink_bytes(target, mutant.data, outcome)
                    if small != mutant.data:
                        shrunk_hex = small.hex()
            finding = Finding(
                protocol=protocol,
                mutator=name,
                kind=mutant.kind,
                seed=seed,
                iteration=i - 1,
                outcome=outcome,
                exception_type=type(exc).__name__ if exc is not None else None,
                exception_msg=str(exc) if exc is not None else None,
                data_hex=data_hex,
                shrunk_hex=shrunk_hex,
                proof_format=target.proof_format,
            )
            report.findings.append(finding)
            if corpus_dir is not None:
                save_finding(finding, corpus_dir)

        if progress is not None and i % 500 == 0:
            progress(i, report)

    report.elapsed_s = time.monotonic() - start
    if oracle_iters > 0:
        report.oracle_findings = run_oracles(seed, oracle_iters)
        report.elapsed_s = time.monotonic() - start
    return report


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one stored artifact."""

    finding: Finding
    outcome: str
    exception: Optional[str]

    @property
    def reproduced(self) -> bool:
        """True iff the artifact still triggers a finding-class outcome."""
        return self.outcome in BAD_OUTCOMES


def replay_mutant(finding: Finding) -> Optional[Mutant]:
    """Regenerate the mutant a finding refers to (for object findings)."""
    target = target_for(finding.protocol)
    rng = np.random.default_rng([finding.seed, finding.iteration, 1])
    return MUTATORS[finding.mutator](target, rng)


def replay_artifact(path: str) -> ReplayResult:
    """Re-run a stored finding against the current code.

    Byte findings replay their stored (shrunk, if available) bytes;
    object findings regenerate the mutant from the seeded generator.
    ``reproduced`` is True when the defect is still present -- the CLI
    maps that to a failing exit code, and to a passing one once the
    fix lands.
    """
    finding = load_finding(path)
    target = target_for(finding.protocol)
    if finding.kind == "bytes":
        blob_hex = finding.shrunk_hex or finding.data_hex
        if blob_hex is None:
            raise ValueError("byte-level artifact carries no mutant bytes")
        outcome, exc = classify_bytes(target, bytes.fromhex(blob_hex))
    else:
        mutant = replay_mutant(finding)
        if mutant is None:
            return ReplayResult(finding=finding, outcome="not-applicable", exception=None)
        if mutant.kind == "bytes":
            outcome, exc = classify_bytes(target, mutant.data)
        else:
            outcome, exc = classify_object(target, mutant.proof)
    return ReplayResult(
        finding=finding,
        outcome=outcome,
        exception=f"{type(exc).__name__}: {exc}" if exc is not None else None,
    )
