"""Differential oracles: optimized data plane vs. slow references.

Each oracle drives one optimized kernel family over randomized shapes
and values and cross-checks it against an independent, obviously-correct
implementation (scalar Python-int arithmetic, the naive Poseidon
permutation, an O(n^2) DFT, a Horner chain).  A mismatch is a finding:
it means the zero-copy data plane silently computes a different field
function than the specification, which no proof-level test would pin
down to a kernel.

All oracles are deterministic in their seed; ``run_oracles(seed, iters)``
derives one child generator per (oracle, iteration) so a reported
iteration can be replayed in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..field import extension as fext, gl64, goldilocks as gl
from ..hashing import optimized, poseidon
from ..ntt import intt, ntt


@dataclass(frozen=True)
class OracleFinding:
    """One divergence between an optimized kernel and its reference."""

    oracle: str
    iteration: int
    detail: str


def _rand_shape(rng: np.random.Generator) -> tuple:
    """A small random array shape (1-D or 2-D, up to a few hundred elems)."""
    if int(rng.integers(0, 2)):
        return (int(rng.integers(1, 257)),)
    return (int(rng.integers(1, 17)), int(rng.integers(1, 17)))


def _scalar_map(fn, *arrays) -> np.ndarray:
    """Apply a Python-int scalar function elementwise (the slow reference)."""
    flats = [np.asarray(a, dtype=np.uint64).reshape(-1) for a in arrays]
    out = np.fromiter(
        (fn(*(int(f[i]) for f in flats)) for i in range(flats[0].size)),
        dtype=np.uint64,
        count=flats[0].size,
    )
    return out.reshape(arrays[0].shape)


def check_gl_kernels(rng: np.random.Generator) -> List[str]:
    """In-place ``_into`` GL kernels vs scalar ``goldilocks`` arithmetic."""
    problems: List[str] = []
    shape = _rand_shape(rng)
    a = gl64.random(shape, rng)
    b = gl64.random(shape, rng)
    ws = gl64.Workspace()

    cases = [
        ("add_into", gl64.add_into, gl.add),
        ("sub_into", gl64.sub_into, gl.sub),
        ("mul_into", gl64.mul_into, gl.mul),
    ]
    for name, kernel, ref_fn in cases:
        out = np.empty(shape, dtype=np.uint64)
        kernel(a, b, out, ws)
        ref = _scalar_map(ref_fn, a, b)
        if not np.array_equal(out, ref):
            problems.append(f"{name} diverges from scalar reference on shape {shape}")
        # Aliased form: out is the first input (the data plane's hot case).
        aliased = a.copy()
        kernel(aliased, b, aliased, ws)
        if not np.array_equal(aliased, ref):
            problems.append(f"{name} (aliased out=a) diverges on shape {shape}")

    out = np.empty(shape, dtype=np.uint64)
    gl64.square_into(a, out, ws)
    if not np.array_equal(out, _scalar_map(gl.square, a)):
        problems.append(f"square_into diverges on shape {shape}")
    gl64.pow7_into(a, out, ws)
    if not np.array_equal(out, _scalar_map(lambda v: gl.pow_mod(v, 7), a)):
        problems.append(f"pow7_into diverges on shape {shape}")

    base = int(rng.integers(0, gl.P, dtype=np.uint64))
    count = int(rng.integers(1, 65))
    table = gl64.powers(base, count)
    ref_table = np.fromiter(
        (gl.pow_mod(base, i) for i in range(count)), dtype=np.uint64, count=count
    )
    if not np.array_equal(table, ref_table):
        problems.append(f"powers({base}, {count}) diverges from pow_mod chain")
    return problems


def check_poseidon(rng: np.random.Generator) -> List[str]:
    """Fused/sparse Poseidon vs the naive permutation, plus scalar form."""
    problems: List[str] = []
    batch = int(rng.integers(1, 9))
    states = gl64.random((batch, poseidon.WIDTH), rng)
    ref = poseidon.permute_naive(states)
    opt = optimized.permute(states)
    if not np.array_equal(opt, ref):
        problems.append(f"optimized.permute diverges from permute_naive (batch {batch})")
    buf = states.copy()
    optimized.permute_into(buf)
    if not np.array_equal(buf, ref):
        problems.append(f"optimized.permute_into diverges from permute_naive (batch {batch})")
    row = int(rng.integers(0, batch))
    scalar = optimized.permute_scalar([int(v) for v in states[row]])
    if [int(v) for v in ref[row]] != scalar:
        problems.append("optimized.permute_scalar diverges from permute_naive")
    return problems


def _naive_dft(a: np.ndarray, inverse: bool = False) -> np.ndarray:
    """O(n^2) reference DFT over GF(p) with Python-int arithmetic."""
    n = a.shape[0]
    log_n = n.bit_length() - 1
    omega = gl.primitive_root_of_unity(log_n)
    if inverse:
        omega = gl.inverse(omega)
    vals = [int(v) for v in a]
    out = np.empty(n, dtype=np.uint64)
    for j in range(n):
        wj = gl.pow_mod(omega, j)
        acc, wji = 0, 1
        for i in range(n):
            acc = gl.add(acc, gl.mul(vals[i], wji))
            wji = gl.mul(wji, wj)
        out[j] = acc
    if inverse:
        n_inv = gl.inverse(n)
        out = _scalar_map(lambda v: gl.mul(v, n_inv), out)
    return out


def check_ntt(rng: np.random.Generator) -> List[str]:
    """Workspace NTT / INTT vs the naive O(n^2) DFT."""
    problems: List[str] = []
    log_n = int(rng.integers(1, 7))
    n = 1 << log_n
    a = gl64.random(n, rng)
    ws = gl64.Workspace()
    fwd = ntt(a, ws=ws)
    if not np.array_equal(fwd, _naive_dft(a)):
        problems.append(f"ntt diverges from naive DFT at n={n}")
    back = intt(fwd, ws=ws)
    if not np.array_equal(back, a):
        problems.append(f"intt(ntt(a)) != a at n={n}")
    if not np.array_equal(intt(a, ws=ws), _naive_dft(a, inverse=True)):
        problems.append(f"intt diverges from naive inverse DFT at n={n}")
    return problems


def _horner_ext(coeffs: np.ndarray, x0: int, x1: int) -> tuple:
    """Scalar Horner evaluation of base coefficients at an ext point."""
    w = fext.non_residue()
    a0, a1 = 0, 0
    for c in [int(v) for v in coeffs][::-1]:
        # (a0, a1) <- (a0, a1) * (x0, x1) + (c, 0)
        n0 = gl.add(gl.mul(a0, x0), gl.mul(w, gl.mul(a1, x1)))
        n1 = gl.add(gl.mul(a0, x1), gl.mul(a1, x0))
        a0, a1 = gl.add(n0, c), n1
    return a0, a1


def check_ext_eval(rng: np.random.Generator) -> List[str]:
    """Power-table extension evaluation vs a scalar Horner chain."""
    problems: List[str] = []
    n = int(rng.integers(1, 129))
    coeffs = gl64.random(n, rng)
    x0 = int(rng.integers(0, gl.P, dtype=np.uint64))
    x1 = int(rng.integers(0, gl.P, dtype=np.uint64))
    x = np.array([x0, x1], dtype=np.uint64)
    got = fext.to_pair(fext.eval_poly_base(coeffs, x))
    if got != _horner_ext(coeffs, x0, x1):
        problems.append(f"eval_poly_base diverges from Horner at n={n}")
    rows = int(rng.integers(1, 5))
    mat = gl64.random((rows, n), rng)
    batch = fext.eval_polys_base(mat, x)
    for r in range(rows):
        if fext.to_pair(batch[r]) != _horner_ext(mat[r], x0, x1):
            problems.append(f"eval_polys_base row {r} diverges from Horner at n={n}")
            break
    table = fext.powers(x, n)
    acc0, acc1 = 1, 0
    for i in range(n):
        if fext.to_pair(table[i]) != (acc0, acc1):
            problems.append(f"fext.powers index {i} diverges from scalar chain")
            break
        n0 = gl.add(gl.mul(acc0, x0), gl.mul(fext.non_residue(), gl.mul(acc1, x1)))
        n1 = gl.add(gl.mul(acc0, x1), gl.mul(acc1, x0))
        acc0, acc1 = n0, n1
    return problems


#: Oracle registry, keyed by stable names (used in reports and artifacts).
ORACLES: Dict[str, Callable[[np.random.Generator], List[str]]] = {
    "gl-kernels": check_gl_kernels,
    "poseidon": check_poseidon,
    "ntt": check_ntt,
    "ext-eval": check_ext_eval,
}


def run_oracles(seed: int, iterations: int) -> List[OracleFinding]:
    """Run every oracle ``iterations`` times; returns all divergences.

    Iteration ``i`` of oracle ``name`` uses the generator seeded with
    ``[seed, index(name), i]`` -- rerunning with the same seed replays
    the exact inputs of a reported finding.
    """
    findings: List[OracleFinding] = []
    for oi, (name, check) in enumerate(ORACLES.items()):
        for i in range(iterations):
            rng = np.random.default_rng([seed, oi, i])
            for detail in check(rng):
                findings.append(OracleFinding(oracle=name, iteration=i, detail=detail))
    return findings
