"""Groth16 / PipeZK cost models (paper Section 7.5, Table 6).

PipeZK is an ASIC for the classic elliptic-curve protocol Groth16: its
proof generation is dominated by wide-field NTTs and multi-scalar
multiplications (MSMs) over a 256-bit-plus curve.  We model both the
CPU implementation and the PipeZK ASIC from constraint counts, with
rates calibrated to the numbers reported in the PipeZK paper and
reproduced in Table 6 (SHA-256: CPU 1.5 s, ASIC 102 ms; AES-128: CPU
1.1 s, ASIC 97 ms).

The structural facts the comparison rests on:

* Groth16 proof generation runs 7 size-n NTTs and 4-5 size-n MSMs over
  ~256-bit scalars/points;
* PipeZK accelerates the NTT and dense MSM pipelines but leaves sparse
  work to the host, so only ~1/4 to 1/3 of its end-to-end time is the
  ASIC itself;
* batching does not amortise for Groth16 the way Starky+Plonky2's
  recursion does, which is what produces the paper's 840x throughput
  gap on batched SHA-256.
"""

from __future__ import annotations

from dataclasses import dataclass

#: R1CS constraint counts for one input block (standard gadget libraries).
SHA256_CONSTRAINTS = 27_000
AES128_CONSTRAINTS = 21_000


@dataclass(frozen=True)
class Groth16Workload:
    """One Groth16 proving task."""

    name: str
    constraints: int

    @property
    def ntt_points(self) -> float:
        """Total wide-field NTT butterfly count (7 size-n NTTs)."""
        n = max(1, self.constraints)
        return 7 * n / 2 * max(1, n.bit_length())

    @property
    def msm_points(self) -> float:
        """Total MSM point-scalar pairs (4 G1 MSMs + 1 G2 MSM ~ x2)."""
        return 6.0 * self.constraints


@dataclass(frozen=True)
class Groth16CpuModel:
    """Multi-threaded CPU Groth16 rates (~256-bit field, 80 threads)."""

    #: nanoseconds per wide-field butterfly (multi-threaded)
    butterfly_ns: float = 80.0
    #: microseconds per MSM point (Pippenger, multi-threaded)
    msm_point_us: float = 8.0
    #: fixed per-proof overhead (witness map, setup I/O)
    fixed_seconds: float = 0.05

    def prove_seconds(self, w: Groth16Workload) -> float:
        """End-to-end Groth16 proving time on the CPU."""
        ntt = w.ntt_points * self.butterfly_ns * 1e-9
        msm = w.msm_points * self.msm_point_us * 1e-6
        return ntt + msm + self.fixed_seconds


@dataclass(frozen=True)
class PipeZkModel:
    """The PipeZK ASIC: accelerated NTT/MSM pipelines + host residue."""

    #: ASIC MSM throughput (point-scalar pairs per second)
    msm_pairs_per_sec: float = 6e6
    #: ASIC NTT butterfly throughput (per second)
    butterflies_per_sec: float = 10e9
    #: host-side share of end-to-end time (sparse MSM, witness, I/O):
    #: the paper observes the ASIC portion is ~1/4 to 1/3 of the total.
    host_fraction: float = 0.7
    #: fixed host overhead per proof
    fixed_seconds: float = 0.012

    def asic_seconds(self, w: Groth16Workload) -> float:
        """Time spent in the accelerated pipelines."""
        return (
            w.msm_points / self.msm_pairs_per_sec
            + w.ntt_points / self.butterflies_per_sec
        )

    def prove_seconds(self, w: Groth16Workload) -> float:
        """End-to-end PipeZK time including the host residue."""
        asic = self.asic_seconds(w)
        return asic / (1.0 - self.host_fraction) + self.fixed_seconds

    def blocks_per_second(self, w: Groth16Workload) -> float:
        """Batched throughput: Groth16 re-proves every block end to end."""
        return 1.0 / self.prove_seconds(w)
