"""Dedicated-units ablation (paper Section 3's motivating argument).

The paper's design philosophy rests on three quantitative claims about
the alternative -- a chip with *separate dedicated units* per kernel:

1. accelerating only the top-2 kernels (as PipeZK did for EC-based
   protocols) caps end-to-end speedup below ~7x by Amdahl's law,
   because the remaining kernels fall back to the CPU with PCIe
   round-trips;
2. static per-kernel resource provisioning leaves units idle whenever
   the workload mix shifts (11%-25% polynomial share across apps), so
   at equal area a dedicated chip is slower than the unified one;
3. the dedicated chip's *average* logic utilisation is low -- each unit
   idles while the others work.

This module models both alternatives on top of the same kernel costs
the UniZK simulator uses, so the comparison is apples-to-apples:

* :class:`DedicatedChip` -- every kernel class gets a fixed share of the
  same total PE budget; kernels run only on their own unit.
* :class:`Top2Chip` -- hash and NTT run on dedicated units; everything
  else executes on the host CPU with PCIe transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..compiler import ComputationGraph, schedule
from ..hw.config import DEFAULT_CONFIG, HwConfig
from ..mapping.base import KIND_HASH, KIND_NTT, KIND_POLY
from .cpu import CpuModel


@dataclass(frozen=True)
class DedicatedChip:
    """Equal-area chip with statically partitioned per-kernel units.

    ``shares`` splits the PE budget between the NTT, hash, and poly
    units (summing to <= 1; the remainder is glue).  Memory bandwidth is
    shared, as on the unified design.
    """

    hw: HwConfig = DEFAULT_CONFIG
    shares: Dict[str, float] = field(
        default_factory=lambda: {KIND_NTT: 0.2, KIND_HASH: 0.6, KIND_POLY: 0.2}
    )

    def run(self, graph: ComputationGraph) -> "DedicatedReport":
        """Execute the graph; each kernel only on its own unit."""
        report = DedicatedReport(workload=graph.name)
        for sk in schedule(graph, self.hw):
            cost = sk.cost
            share = self.shares.get(cost.kind, 1.0)
            if share <= 0:
                raise ValueError(f"no unit provisioned for kind {cost.kind}")
            # Compute time inflates by the unit's share of the PE budget;
            # memory-bound time is unchanged (bandwidth is shared).
            compute = cost.compute_cycles / share
            elapsed = max(compute, cost.memory_cycles(self.hw), 1.0)
            report.cycles_by_kind[cost.kind] = (
                report.cycles_by_kind.get(cost.kind, 0.0) + elapsed
            )
            # Unit-busy accounting for the utilisation claim.
            report.busy_pe_cycles += cost.mult_ops
        report.total_pes = self.hw.total_pes
        return report


@dataclass
class DedicatedReport:
    """Per-class elapsed cycles on the dedicated design."""

    workload: str
    cycles_by_kind: Dict[str, float] = field(default_factory=dict)
    busy_pe_cycles: float = 0.0
    total_pes: int = 0

    @property
    def total_cycles(self) -> float:
        """Kernels serialise, as in the unified schedule."""
        return sum(self.cycles_by_kind.values())

    def total_seconds(self, hw: HwConfig = DEFAULT_CONFIG) -> float:
        """Wall-clock seconds."""
        return hw.cycles_to_seconds(self.total_cycles)

    @property
    def average_logic_utilization(self) -> float:
        """Chip-wide multiplier utilisation (idle units included)."""
        if not self.total_cycles or not self.total_pes:
            return 0.0
        return min(1.0, self.busy_pe_cycles / (self.total_cycles * self.total_pes))


@dataclass(frozen=True)
class Top2Chip:
    """Accelerate only Merkle/hash and NTT; the rest stays on the CPU.

    The paper (Section 3): "only capturing the top-2 kernels will at
    most give us less than 7x speedup according to Amdahl's law", plus
    the PCIe round-trips for the intermediate data.
    """

    hw: HwConfig = DEFAULT_CONFIG
    cpu: CpuModel = field(default_factory=CpuModel)
    pcie_gbps: float = 25.0

    def run(self, graph: ComputationGraph) -> "Top2Report":
        """Execute: hash+NTT on chip, poly/transform on the host."""
        accel_cycles = 0.0
        host_seconds = 0.0
        transfer_bytes = 0.0
        for sk in schedule(graph, self.hw):
            cost = sk.cost
            if cost.kind in (KIND_HASH, KIND_NTT):
                accel_cycles += cost.elapsed_cycles(self.hw)
                continue
            _, secs = self.cpu.node_seconds(sk.node)
            host_seconds += secs
            # Intermediate data crosses PCIe both ways around each
            # host-resident kernel.
            transfer_bytes += cost.mem_bytes
        return Top2Report(
            workload=graph.name,
            accel_seconds=self.hw.cycles_to_seconds(accel_cycles),
            host_seconds=host_seconds,
            transfer_seconds=transfer_bytes / (self.pcie_gbps * 1e9),
        )


@dataclass
class Top2Report:
    """Accelerator + host + transfer split for the top-2 design."""

    workload: str
    accel_seconds: float
    host_seconds: float
    transfer_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end time (phases serialise across PCIe)."""
        return self.accel_seconds + self.host_seconds + self.transfer_seconds
