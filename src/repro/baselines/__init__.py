"""Baseline cost models: multi-threaded CPU, A100 GPU, PipeZK/Groth16."""

from .cpu import CpuModel, CpuReport
from .dedicated import DedicatedChip, DedicatedReport, Top2Chip, Top2Report
from .gpu import GpuModel, GpuReport
from .pipezk import (
    AES128_CONSTRAINTS,
    SHA256_CONSTRAINTS,
    Groth16CpuModel,
    Groth16Workload,
    PipeZkModel,
)

__all__ = [
    "CpuModel",
    "DedicatedChip",
    "DedicatedReport",
    "Top2Chip",
    "Top2Report",
    "CpuReport",
    "GpuModel",
    "GpuReport",
    "Groth16Workload",
    "Groth16CpuModel",
    "PipeZkModel",
    "SHA256_CONSTRAINTS",
    "AES128_CONSTRAINTS",
]
