"""GPU baseline cost model (A100 running plonky2-gpu).

The CUDA port offloads NTTs, Merkle tree construction, and element-wise
polynomial kernels; everything else (gate-constraint evaluation over
custom gates, partial products, Fiat-Shamir, layout glue) stays on the
host, with PCIe transfers at each offload boundary (paper Section 6,
"Baselines": "The other kernels are still executed on the host CPU").

Offloaded kernels run at a multiple of the CPU's multi-threaded rate,
derated by a data-volume efficiency: large working sets (the 2^23-point
LDE matrices of the big applications) thrash the GPU's caches and force
staged transfers, which is how the paper's measured GPU speedups end up
between only 1.2x and 4.6x.  Wide circuits (e.g. MVM's width 400)
exceed the CUDA kernels' per-row resources and fall back to the host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..compiler import ComputationGraph
from ..compiler.graph import KernelNode
from .cpu import CpuModel, CpuReport, _ntt_butterflies, _poly_ops
from ..merkle import merkle_permutation_count


@dataclass(frozen=True)
class GpuModel:
    """Calibrated A100 offload model layered over the CPU model."""

    cpu: CpuModel = CpuModel()
    #: speedup of offloaded kernels over the multi-threaded CPU, before
    #: the volume derating
    offload_speedup: float = 5.3
    #: LDE-domain element count (rows x columns) above which the GPU's
    #: efficiency starts to degrade
    sweet_spot_elems: float = 756e6
    #: circuits wider than this fall back to the host for row kernels
    max_offload_width: int = 256
    #: PCIe bandwidth (GB/s)
    pcie_gbps: float = 25.0

    def _efficiency(self, volume_elems: float) -> float:
        if volume_elems <= self.sweet_spot_elems:
            return 1.0
        return self.sweet_spot_elems / volume_elems

    def run(self, graph: ComputationGraph) -> "GpuReport":
        """Cost a proof-generation graph with GPU offload."""
        # Estimate total committed volume to derate the GPU kernels.
        volume = 0.0
        for node in graph.topological_order():
            if node.kind == "merkle":
                volume += float(node.params["leaves"]) * float(node.params["width"])
        eff = self._efficiency(volume)

        gpu_seconds = 0.0
        host_seconds = 0.0
        transfer_bytes = 0.0
        for node in graph.topological_order():
            kind, cpu_secs = self.cpu.node_seconds(node)
            if self._offloaded(node):
                gpu_seconds += cpu_secs / (self.offload_speedup * eff)
                transfer_bytes += _node_bytes(node)
            else:
                host_seconds += cpu_secs
        transfer_seconds = transfer_bytes / (self.pcie_gbps * 1e9)
        return GpuReport(
            workload=graph.name,
            gpu_seconds=gpu_seconds,
            host_seconds=host_seconds,
            transfer_seconds=transfer_seconds,
        )

    def _offloaded(self, node: KernelNode) -> bool:
        if node.kind in ("ntt", "intt", "lde"):
            return True
        if node.kind == "merkle":
            return float(node.params["width"]) <= self.max_offload_width
        if node.kind == "poly_elementwise":
            return True
        if node.kind == "poly_gate":
            return float(node.params["width"]) <= self.max_offload_width
        return False


@dataclass
class GpuReport:
    """GPU + host + transfer time for one workload."""

    workload: str
    gpu_seconds: float
    host_seconds: float
    transfer_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end time (phases serialise across the PCIe boundary)."""
        return self.gpu_seconds + self.host_seconds + self.transfer_seconds


def _node_bytes(node: KernelNode) -> float:
    """Data crossing PCIe for one offloaded kernel (inputs one way)."""
    p = node.params
    if node.kind in ("ntt", "intt"):
        return float(p["batch"]) * (1 << int(p["log_n"])) * 8
    if node.kind == "lde":
        return float(p["batch"]) * (1 << int(p["log_n"])) * 8
    if node.kind == "merkle":
        return float(p["leaves"]) * 32  # digests come back
    if node.kind == "poly_elementwise":
        return float(p["vector_len"]) * 16
    if node.kind == "poly_gate":
        return float(p["lde_size"]) * 16
    return 0.0
