"""CPU baseline cost model (2x Xeon Gold 5218R, 80 threads, ~200 GB/s).

Walks the same computation graph as the UniZK simulator and charges
each kernel at calibrated per-operation rates.  Calibration anchors:

* single-thread rates reproduce paper Table 1's absolute times and
  per-kernel shares (Poseidon ~1.4 us/permutation, ~5.6 ns/butterfly,
  ~4.4 ns/field op, ~0.7 GB/s single-thread layout transposes);
* per-kernel 80-thread scaling factors reproduce Table 3's multi-thread
  totals (Plonky2's measured parallel speedup is ~10x, far below the
  core count -- memory bandwidth, NUMA, and serial sections bite).

Operation *counts* are not calibrated: they come from the identical
graph the accelerator executes, so CPU-vs-UniZK ratios are structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict

from ..compiler import ComputationGraph
from ..compiler.graph import KernelNode
from ..merkle import merkle_permutation_count

#: Kernel classes used in Table 1's columns.
CPU_KINDS = ("poly", "ntt", "merkle", "other_hash", "transform")


@dataclass(frozen=True)
class CpuModel:
    """Calibrated per-kernel CPU rates."""

    threads: int = 80
    #: single-thread nanoseconds per Poseidon permutation
    perm_ns: float = 1400.0
    #: single-thread nanoseconds per NTT butterfly
    butterfly_ns: float = 5.6
    #: single-thread nanoseconds per polynomial field operation
    field_op_ns: float = 4.4
    #: single-thread layout-transform bandwidth (GB/s)
    transform_gbps: float = 0.7
    #: main-memory bandwidth shared by all threads (GB/s)
    mem_bandwidth_gbps: float = 200.0
    #: measured multi-thread speedups per kernel class (80 threads)
    scaling: Dict[str, float] = field(
        default_factory=lambda: {
            "merkle": 10.4,
            "other_hash": 4.0,
            "ntt": 9.5,
            "poly": 13.0,
            "transform": 7.0,
        }
    )

    def _speedup(self, kind: str) -> float:
        if self.threads <= 1:
            return 1.0
        return min(float(self.threads), self.scaling.get(kind, 8.0))

    # -- per-node costing ------------------------------------------------------

    def node_seconds(self, node: KernelNode) -> tuple[str, float]:
        """Return (Table-1 kernel class, seconds) for one graph node."""
        p = node.params
        if node.kind == "merkle":
            perms = merkle_permutation_count(int(p["leaves"]), int(p["width"]))
            return "merkle", perms * self.perm_ns * 1e-9 / self._speedup("merkle")
        if node.kind == "hash_misc":
            # Fiat-Shamir / grinding: sequential, barely parallelisable.
            return (
                "other_hash",
                float(p["perms"]) * self.perm_ns * 1e-9 / self._speedup("other_hash"),
            )
        if node.kind in ("ntt", "intt", "lde"):
            butterflies = _ntt_butterflies(node)
            return "ntt", butterflies * self.butterfly_ns * 1e-9 / self._speedup("ntt")
        if node.kind in ("poly_elementwise", "poly_gate", "poly_pp"):
            ops = _poly_ops(node)
            return "poly", ops * self.field_op_ns * 1e-9 / self._speedup("poly")
        if node.kind == "transform":
            gbps = min(
                self.transform_gbps * self._speedup("transform"),
                self.mem_bandwidth_gbps / 2,
            )
            return "transform", float(p.get("bytes", 0.0)) / (gbps * 1e9)
        if node.kind == "query_io":
            return "transform", float(p["bytes"]) / (self.mem_bandwidth_gbps * 1e9)
        raise ValueError(f"no CPU model for kind {node.kind!r}")

    def run(self, graph: ComputationGraph) -> "CpuReport":
        """Cost a whole proof-generation graph."""
        report = CpuReport(workload=graph.name, threads=self.threads)
        for node in graph.topological_order():
            kind, secs = self.node_seconds(node)
            report.seconds_by_kind[kind] = report.seconds_by_kind.get(kind, 0.0) + secs
        return report


@dataclass
class CpuReport:
    """CPU time broken down by Table 1's kernel classes."""

    workload: str
    threads: int
    seconds_by_kind: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """End-to-end proof generation time."""
        return sum(self.seconds_by_kind.values())

    def fraction(self, kind: str) -> float:
        """Share of total time for one kernel class."""
        total = self.total_seconds
        return self.seconds_by_kind.get(kind, 0.0) / total if total else 0.0


def _ntt_butterflies(node: KernelNode) -> float:
    p = node.params
    batch = float(p["batch"])
    log_n = int(p["log_n"])
    n = 1 << log_n
    if node.kind == "lde":
        rate_bits = int(p["rate_bits"])
        n_out = n << rate_bits
        return batch * (n / 2 * log_n + n_out / 2 * (log_n + rate_bits))
    return batch * n / 2 * log_n


def _poly_ops(node: KernelNode) -> float:
    p = node.params
    if node.kind == "poly_elementwise":
        return float(p["vector_len"]) * float(p["num_ops"])
    if node.kind == "poly_gate":
        return float(p["lde_size"]) * float(p["ops_per_row"])
    if node.kind == "poly_pp":
        rows = float(p["rows"])
        wires = float(p["wires"])
        return rows * (wires * 6 + 8)
    raise ValueError(node.kind)
