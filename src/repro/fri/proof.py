"""FRI proof containers and size accounting.

The size accounting matters for reproduction: Table 5 of the paper
reports proof sizes (hundreds of kB for Starky base proofs, ~155 kB for
recursive Plonky2 proofs), and our sizes are computed from the same
structural inventory (Merkle caps, query paths, final polynomial,
grinding witness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

#: Bytes per field element.
ELEM_BYTES = 8
#: Bytes per Poseidon digest (4 elements).
DIGEST_BYTES = 4 * ELEM_BYTES


@dataclass
class FriInitialOpening:
    """Openings of every original commitment at one query index."""

    #: one (leaf_row, proof) pair per committed batch
    leaves: List[np.ndarray]
    proofs: List["object"]  # MerkleProof; typed loosely to avoid cycle


@dataclass
class FriLayerOpening:
    """Opening of one commit-phase layer at one query index."""

    pair_leaf: np.ndarray  # (2 * ext) flattened: v_lo.c0, v_lo.c1, v_hi.c0, v_hi.c1
    proof: "object"


@dataclass
class FriQueryRound:
    """All openings belonging to one query index."""

    index: int
    initial: FriInitialOpening
    layers: List[FriLayerOpening]


@dataclass
class FriProof:
    """A complete FRI batch-opening proof."""

    commit_caps: List[np.ndarray]  # caps of the commit-phase layer trees
    final_poly: np.ndarray  # (final_len, 2) extension coefficients
    pow_witness: int
    query_rounds: List[FriQueryRound] = field(default_factory=list)

    def size_bytes(self) -> int:
        """Serialized size: every element/digest the verifier receives."""
        total = 0
        for cap in self.commit_caps:
            total += cap.shape[0] * DIGEST_BYTES
        total += self.final_poly.size * ELEM_BYTES
        total += ELEM_BYTES  # pow witness
        for qr in self.query_rounds:
            for leaf, proof in zip(qr.initial.leaves, qr.initial.proofs):
                total += leaf.size * ELEM_BYTES
                total += len(proof.siblings) * DIGEST_BYTES
            for layer in qr.layers:
                total += layer.pair_leaf.size * ELEM_BYTES
                total += len(layer.proof.siblings) * DIGEST_BYTES
        return total
