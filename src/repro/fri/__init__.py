"""FRI polynomial commitment scheme (commit, batch-open, verify)."""

from .config import PLONKY2_CONFIG, STARKY_CONFIG, TEST_CONFIG, FriConfig
from .proof import FriProof
from .prover import (
    FriOpenings,
    PolynomialBatch,
    combine_openings,
    fold_values,
    fri_prove,
    grind,
    open_batches,
)
from .verifier import FriError, fri_verify

__all__ = [
    "FriConfig",
    "PLONKY2_CONFIG",
    "STARKY_CONFIG",
    "TEST_CONFIG",
    "FriProof",
    "PolynomialBatch",
    "FriOpenings",
    "open_batches",
    "combine_openings",
    "fold_values",
    "fri_prove",
    "grind",
    "fri_verify",
    "FriError",
]
