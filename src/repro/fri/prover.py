"""FRI prover: polynomial batch commitments and batch-opening proofs.

Implements the commit / fold / grind / query pipeline of Figure 1
(right) in the paper:

1. every polynomial batch is low-degree-extended (``iNTT^NN`` then
   zero-pad then coset ``NTT``) and Merkle-committed, with leaf ``i``
   concatenating the values of all batch polynomials at LDE point ``i``
   (Section 2.2, step 3);
2. opening at ``zeta`` reduces all claims to one low-degree test on the
   combined quotient ``sum_k alpha-weighted (F(x) - y) / (x - z_k)``;
3. the combined values are folded layer by layer (arity 2), each layer
   Merkle-committed, betas drawn through Fiat-Shamir;
4. grinding (proof-of-work) and random query indices finish the proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from .. import parallel, tracing
from ..field import extension as fext, gl64, goldilocks as gl
from ..hashing import Challenger
from ..merkle import MerkleTree
from ..ntt import coset_intt_ext, intt, lde_coeffs
from ..parallel import ops as par_ops
from .config import FriConfig
from .proof import (
    FriInitialOpening,
    FriLayerOpening,
    FriProof,
    FriQueryRound,
)


@dataclass
class PolynomialBatch:
    """A batch of polynomials committed under one Merkle cap.

    ``coeffs`` is (num_polys, n); ``values`` is the (N_lde, num_polys)
    LDE-value matrix in natural order over the coset ``g * <omega>``
    (index-major leaf layout, exactly the paper's leaf formation).
    """

    coeffs: np.ndarray
    values: np.ndarray
    tree: MerkleTree
    rate_bits: int

    @classmethod
    def from_coeffs(
        cls,
        coeffs: np.ndarray,
        rate_bits: int,
        cap_height: int,
        ws: gl64.Workspace | None = None,
        slot: str | None = None,
    ) -> "PolynomialBatch":
        """Commit polynomials given by coefficient rows (num_polys, n).

        ``ws``/``slot`` let a prover plan pin the LDE scratch and Merkle
        arena in its reusable workspace.
        """
        coeffs = np.atleast_2d(np.asarray(coeffs, dtype=np.uint64))
        pool = parallel.current_pool()
        if (
            pool is not None
            and slot is not None
            and pool.wants_commit(coeffs.shape[1] << rate_bits)
        ):
            return par_ops.sharded_from_coeffs(
                pool, coeffs, rate_bits, cap_height, f"commit:{slot}"
            )
        ldes = lde_coeffs(coeffs, rate_bits, ws=ws)  # (num_polys, N_lde)
        values = np.ascontiguousarray(ldes.T)  # (N_lde, num_polys)
        tree = MerkleTree(values, cap_height=cap_height, ws=ws, arena_slot=slot)
        return cls(coeffs=coeffs, values=values, tree=tree, rate_bits=rate_bits)

    @classmethod
    def from_values(
        cls,
        subgroup_values: np.ndarray,
        rate_bits: int,
        cap_height: int,
        ws: gl64.Workspace | None = None,
        slot: str | None = None,
    ) -> "PolynomialBatch":
        """Commit polynomials given by their subgroup evaluations."""
        vals = np.atleast_2d(np.asarray(subgroup_values, dtype=np.uint64))
        pool = parallel.current_pool()
        if (
            pool is not None
            and slot is not None
            and pool.wants_commit(vals.shape[1] << rate_bits)
        ):
            # Fused path: each row shard interpolates (iNTT) its own rows
            # before extending them, so the two transforms pipeline per
            # shard instead of barriering between stages.
            return par_ops.sharded_from_values(
                pool, vals, rate_bits, cap_height, f"commit:{slot}"
            )
        return cls.from_coeffs(intt(vals, ws=ws), rate_bits, cap_height, ws=ws, slot=slot)

    @property
    def degree_n(self) -> int:
        """Original (pre-blowup) domain size."""
        return self.coeffs.shape[1]

    @property
    def num_polys(self) -> int:
        """Number of polynomials in the batch."""
        return self.coeffs.shape[0]

    @property
    def cap(self) -> np.ndarray:
        """The Merkle cap committing this batch."""
        return self.tree.cap

    def eval_at_ext(self, point: np.ndarray) -> np.ndarray:
        """Evaluate every polynomial at an extension point: (num_polys, 2)."""
        return fext.eval_polys_base(self.coeffs, point)


@dataclass
class FriOpenings:
    """The opening instance: which columns open at which points.

    ``points[k]`` is an extension point; ``columns[k]`` lists
    ``(batch_index, poly_index)`` pairs opened there; ``values[k]`` is
    the matching (len, 2) array of claimed evaluations.
    """

    points: List[np.ndarray]
    columns: List[List[Tuple[int, int]]]
    values: List[np.ndarray]

    def flat_values(self) -> np.ndarray:
        """All claimed evaluations, concatenated (for transcripts)."""
        if not self.values:
            return np.zeros((0, 2), dtype=np.uint64)
        return np.concatenate([np.atleast_2d(v) for v in self.values])


def open_batches(
    batches: Sequence[PolynomialBatch],
    points: Sequence[np.ndarray],
    columns: Sequence[Sequence[Tuple[int, int]]],
) -> FriOpenings:
    """Honest prover helper: evaluate the requested openings."""
    values = []
    for point, cols in zip(points, columns):
        rows = [batches[b].coeffs[c] for b, c in cols]
        if len({len(r) for r in rows}) == 1:
            vals = fext.eval_polys_base(np.stack(rows), point)
        else:  # mixed-degree batches: evaluate per row off one power table
            vals = np.stack([fext.eval_poly_base(r, point) for r in rows])
        values.append(vals)
    return FriOpenings(points=list(points), columns=[list(c) for c in columns], values=values)


@lru_cache(maxsize=32)
def lde_points(log_n: int, shift: int | None = None) -> np.ndarray:
    """Read-only cached coset points ``shift * omega^i`` (natural order).

    Shared by :func:`combine_openings`, the fold weights and the STARK
    prover's boundary/vanishing tables, so each domain is generated once
    per process instead of once per proof.
    """
    shift = gl.coset_shift() if shift is None else shift
    xs = gl64.mul(
        gl64.powers(gl.primitive_root_of_unity(log_n), 1 << log_n), np.uint64(shift)
    )
    xs.flags.writeable = False
    return xs


@lru_cache(maxsize=64)
def _fold_weights(log_n: int, shift: int) -> np.ndarray:
    """Read-only cached ``1 / (2 x_i)`` over half a size-``2^log_n``
    fold domain (``-x_i`` covers the other half)."""
    half = 1 << (log_n - 1)
    inv2 = np.uint64(gl.inverse(2))
    xs = gl64.mul(gl64.powers(gl.primitive_root_of_unity(log_n), half), np.uint64(shift))
    weights = gl64.mul(inv2, gl64.inv_fast(xs))
    weights.flags.writeable = False
    return weights


def combine_openings(
    batches: Sequence[PolynomialBatch],
    openings: FriOpenings,
    alpha: np.ndarray,
) -> np.ndarray:
    """Build the combined quotient values over the LDE domain.

    Returns an (N_lde, 2) extension array:
    ``sum_k [ (sum_j a^t F_t(x)) - (sum_j a^t y_t) ] / (x - z_k)``.
    This is exactly the element-wise polynomial kernel UniZK runs in
    vector mode before FRI folding.
    """
    n_lde = batches[0].values.shape[0]
    log_lde = n_lde.bit_length() - 1
    xs = lde_points(log_lde)
    total = fext.from_base(gl64.zeros(n_lde))
    alpha_t = fext.one()
    for point, cols, vals in zip(openings.points, openings.columns, openings.values):
        num = fext.from_base(gl64.zeros(n_lde))
        const = fext.zero()
        for (b, c), y in zip(cols, vals):
            f_vals = batches[b].values[:, c]
            num = fext.add(num, fext.scalar_mul(np.broadcast_to(alpha_t, (n_lde, 2)), f_vals))
            const = fext.add(const, fext.mul(alpha_t, y))
            alpha_t = fext.mul(alpha_t, alpha.reshape(2))
        num = fext.sub(num, np.broadcast_to(const, (n_lde, 2)))
        denom = fext.sub(fext.from_base(xs), np.broadcast_to(point.reshape(2), (n_lde, 2)))
        total = fext.add(total, fext.mul(num, fext.inv(denom)))
    return total


def fold_values(values: np.ndarray, beta: np.ndarray, shift: int, log_n: int) -> np.ndarray:
    """One arity-2 FRI fold over the coset ``shift * <omega_N>``.

    ``f'(x^2) = (f(x) + f(-x))/2 + beta * (f(x) - f(-x)) / (2x)``;
    in natural order, ``-x_i`` lives at index ``i + N/2``.
    """
    n = values.shape[0]
    half = n // 2
    lo = values[:half]
    hi = values[half:]
    inv2 = np.uint64(gl.inverse(2))
    even = fext.scalar_mul(fext.add(lo, hi), inv2)
    odd = fext.scalar_mul(fext.sub(lo, hi), _fold_weights(log_n, int(shift)))
    return fext.add(even, fext.mul(np.broadcast_to(beta.reshape(2), odd.shape), odd))


def _layer_tree(
    values: np.ndarray,
    cap_height: int,
    ws: gl64.Workspace | None = None,
    slot: str | None = None,
) -> MerkleTree:
    """Commit a layer: leaf ``i`` packs the pair (v[i], v[i + N/2])."""
    n = values.shape[0]
    half = n // 2
    leaves = np.concatenate([values[:half], values[half:]], axis=1)  # (half, 4)
    return MerkleTree(
        leaves, cap_height=min(cap_height, (half.bit_length() - 1)), ws=ws, arena_slot=slot
    )


def grind(challenger: Challenger, pow_bits: int) -> int:
    """Search a witness whose response has ``pow_bits`` leading zeros."""
    threshold = 1 << (64 - pow_bits)
    witness = 0
    while True:
        fork = challenger.clone()
        fork.observe_element(witness)
        if fork.get_challenge() < threshold:
            return witness
        witness += 1


def check_pow(challenger: Challenger, witness: int, pow_bits: int) -> bool:
    """Verifier side of the grinding check."""
    fork = challenger.clone()
    fork.observe_element(witness)
    return fork.get_challenge() < (1 << (64 - pow_bits))


def fri_prove(
    batches: Sequence[PolynomialBatch],
    openings: FriOpenings,
    challenger: Challenger,
    config: FriConfig,
    ws: gl64.Workspace | None = None,
) -> FriProof:
    """Produce a batch FRI opening proof.

    The caller must already have observed the batch caps and any
    protocol messages; this function observes the claimed opening values
    (mirrored by the verifier) and runs the FRI transcript.
    """
    challenger.observe_elements(openings.flat_values())
    alpha = challenger.get_ext_challenge()

    # Sharding happens strictly *between* transcript interactions: the
    # challenger runs only in this function, so caps and challenges keep
    # the serial order no matter how shard graphs are scheduled.
    pool = parallel.current_pool()
    n_lde = batches[0].values.shape[0]
    shard_rows = pool is not None and pool.parallel and n_lde >= pool.min_rows

    with tracing.span("fri:combine", category="fri"):
        if shard_rows:
            values = par_ops.sharded_combine(pool, batches, openings, alpha)
        else:
            values = combine_openings(batches, openings, alpha)
    n = batches[0].degree_n
    log_lde = n_lde.bit_length() - 1

    # Commit phase.
    num_rounds = config.num_fold_rounds(n.bit_length() - 1)
    trees: List[MerkleTree] = []
    layer_values: List[np.ndarray] = [values]
    shift = gl.coset_shift()
    cur_log = log_lde
    with tracing.span("fri:fold", category="fri", rounds=num_rounds):
        for i in range(num_rounds):
            cur_vals = layer_values[-1]
            if (
                pool is not None
                and pool.parallel
                and cur_vals.shape[0] // 2 >= pool.min_tree_leaves
            ):
                tree = par_ops.sharded_layer_tree(pool, cur_vals, config.cap_height, i)
            else:
                tree = _layer_tree(cur_vals, config.cap_height, ws, f"fri{i}")
            trees.append(tree)
            challenger.observe_cap(tree.cap)
            beta = challenger.get_ext_challenge()
            folded = fold_values(layer_values[-1], beta, shift, cur_log)
            layer_values.append(folded)
            shift = gl.mul(shift, shift)
            cur_log -= 1

        # Final polynomial (coefficients over the remaining coset).
        final_values = layer_values[-1]
        final_coeffs = coset_intt_ext(final_values, shift)
        final_len = max(1, n >> num_rounds)
        final_poly = np.ascontiguousarray(final_coeffs[:final_len])
        challenger.observe_elements(final_poly)

    # Grinding.
    with tracing.span("fri:grind", category="fri", bits=config.proof_of_work_bits):
        pow_witness = grind(challenger, config.proof_of_work_bits)
        challenger.observe_element(pow_witness)

    # Query phase.
    with tracing.span("fri:query", category="fri", queries=config.num_queries):
        indices = challenger.get_indices(config.num_queries, n_lde)
        if pool is not None and pool.parallel and len(indices) >= pool.min_queries:
            layer_args = [
                par_ops.layer_ref_args(pool, tree, vals, i)
                for i, (tree, vals) in enumerate(zip(trees, layer_values[:-1]))
            ]
            query_rounds = par_ops.sharded_query_rounds(
                pool, batches, layer_args, indices
            )
        else:
            query_rounds = []
            for idx in indices:
                initial = FriInitialOpening(
                    leaves=[b.values[idx].copy() for b in batches],
                    proofs=[b.tree.prove(idx) for b in batches],
                )
                layers = []
                cur = idx
                for tree, vals in zip(trees, layer_values[:-1]):
                    half = vals.shape[0] // 2
                    pair = cur % half
                    leaf = np.concatenate([vals[pair], vals[pair + half]])
                    layers.append(
                        FriLayerOpening(pair_leaf=leaf, proof=tree.prove(pair))
                    )
                    cur = pair
                query_rounds.append(
                    FriQueryRound(index=idx, initial=initial, layers=layers)
                )

    return FriProof(
        commit_caps=[t.cap.copy() for t in trees],
        final_poly=final_poly,
        pow_witness=pow_witness,
        query_rounds=query_rounds,
    )
