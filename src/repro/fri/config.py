"""FRI configuration (paper Figure 1 right, Section 2.2).

The two protocols differ only in parameters: Plonky2 uses a blowup
factor of at least 8 (``rate_bits = 3``) with few queries; Starky uses
blowup 2 (``rate_bits = 1``) with more queries.  Both target ~100 bits
of conjectured security via ``queries * rate_bits + proof_of_work_bits``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FriConfig:
    """Parameters of the FRI low-degree test."""

    #: log2 of the blowup factor ``k`` (Plonky2: 3, Starky: 1).
    rate_bits: int = 3
    #: Merkle cap height used for every commitment.
    cap_height: int = 2
    #: Number of query rounds.
    num_queries: int = 28
    #: Grinding bits for the proof-of-work step.
    proof_of_work_bits: int = 8
    #: Stop folding once the degree bound is at most this many coefficients.
    final_poly_len: int = 8

    def __post_init__(self) -> None:
        if self.rate_bits < 1:
            raise ValueError("rate_bits must be >= 1")
        if self.final_poly_len < 1 or self.final_poly_len & (self.final_poly_len - 1):
            raise ValueError("final_poly_len must be a power of two")
        if self.proof_of_work_bits < 0 or self.proof_of_work_bits > 32:
            raise ValueError("proof_of_work_bits out of range")

    @property
    def blowup(self) -> int:
        """The blowup factor ``k = 2**rate_bits``."""
        return 1 << self.rate_bits

    def num_fold_rounds(self, degree_bits: int) -> int:
        """Fold rounds to reduce degree ``2**degree_bits`` to the final size."""
        final_bits = (self.final_poly_len - 1).bit_length()
        return max(0, degree_bits - final_bits)

    def conjectured_security_bits(self) -> int:
        """Conjectured soundness: one ``rate_bits`` per query plus grinding."""
        return self.num_queries * self.rate_bits + self.proof_of_work_bits


#: Plonky2's typical configuration (~100-bit conjectured security).
PLONKY2_CONFIG = FriConfig(rate_bits=3, cap_height=2, num_queries=28, proof_of_work_bits=16)

#: Starky's typical configuration (blowup 2, more queries).
STARKY_CONFIG = FriConfig(rate_bits=1, cap_height=2, num_queries=84, proof_of_work_bits=16)

#: Small parameters for fast functional tests (NOT sound).
TEST_CONFIG = FriConfig(rate_bits=3, cap_height=1, num_queries=8, proof_of_work_bits=4, final_poly_len=4)
