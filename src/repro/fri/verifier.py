"""FRI verifier: transcript replay, Merkle checks, fold consistency.

Mirrors :mod:`repro.fri.prover` step by step.  Any deviation -- a
tampered cap, leaf, final polynomial, grinding witness, or a committed
function that is far from low-degree -- makes verification fail (the
test-suite injects each of these faults).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..field import extension as fext, gl64, goldilocks as gl
from ..hashing import Challenger
from ..merkle import verify_proof
from .config import FriConfig
from .proof import FriProof
from .prover import FriOpenings, check_pow


class FriError(Exception):
    """Raised when a FRI proof fails verification."""


def _combined_at_index(
    leaves: Sequence[np.ndarray],
    openings: FriOpenings,
    alpha: np.ndarray,
    x: int,
) -> np.ndarray:
    """Recompute the combined quotient value at one domain point."""
    total = fext.zero()
    alpha_t = fext.one()
    for point, cols, vals in zip(openings.points, openings.columns, openings.values):
        num = fext.zero()
        const = fext.zero()
        for (b, c), y in zip(cols, vals):
            if not (0 <= b < len(leaves)):
                raise FriError("opened batch index out of range")
            leaf = leaves[b]
            if not (0 <= c < leaf.shape[0]):
                raise FriError("opened column exceeds initial leaf width")
            f_val = int(leaf[c])
            num = fext.add(num, fext.scalar_mul(alpha_t, np.uint64(f_val)))
            const = fext.add(const, fext.mul(alpha_t, y))
            alpha_t = fext.mul(alpha_t, alpha.reshape(2))
        num = fext.sub(num, const)
        denom = fext.sub(fext.from_base(np.uint64(x)), point.reshape(2))
        if bool(fext.is_zero(denom)):
            # Inverting zero would leak a ZeroDivisionError; an opening
            # point on the evaluation domain is simply invalid.
            raise FriError("opening point lies on the evaluation domain")
        total = fext.add(total, fext.mul(num, fext.inv(denom)))
    return total


def fri_verify(
    batch_caps: Sequence[np.ndarray],
    openings: FriOpenings,
    proof: FriProof,
    challenger: Challenger,
    config: FriConfig,
    degree_n: int,
    leaf_widths: Sequence[int | tuple[int, ...]] | None = None,
) -> None:
    """Verify a batch FRI opening proof; raises :class:`FriError` on failure.

    ``batch_caps`` are the caps of the original commitments (in the same
    order the prover used); ``degree_n`` is the claimed degree bound
    (the pre-blowup domain size).  ``leaf_widths``, when given, pins the
    number of elements each initial-opening leaf must carry (one entry
    per batch, an int or a tuple of admissible ints -- a batch that may
    carry optional blinding salt columns admits both widths):
    ``hash_or_noop`` zero-pads rows shorter than a digest, so without
    the width pin an attacker could present a padded or truncated leaf
    whose digest still matches the commitment.
    """
    challenger.observe_elements(openings.flat_values())
    alpha = challenger.get_ext_challenge()

    n_lde = degree_n << config.rate_bits
    log_lde = n_lde.bit_length() - 1
    num_rounds = config.num_fold_rounds(degree_n.bit_length() - 1)
    if len(proof.commit_caps) != num_rounds:
        raise FriError(f"expected {num_rounds} layer caps, got {len(proof.commit_caps)}")

    betas: List[np.ndarray] = []
    for cap in proof.commit_caps:
        challenger.observe_cap(cap)
        betas.append(challenger.get_ext_challenge())

    if proof.final_poly.ndim != 2 or proof.final_poly.shape[1] != 2:
        raise FriError("malformed final polynomial")
    final_len = max(1, degree_n >> num_rounds)
    if proof.final_poly.shape[0] > final_len:
        raise FriError("final polynomial exceeds the degree bound")
    challenger.observe_elements(proof.final_poly)

    if not check_pow(challenger, proof.pow_witness, config.proof_of_work_bits):
        raise FriError("proof-of-work witness is invalid")
    challenger.observe_element(proof.pow_witness)

    indices = challenger.get_indices(config.num_queries, n_lde)
    if len(proof.query_rounds) != len(indices):
        raise FriError("wrong number of query rounds")

    omega = gl.primitive_root_of_unity(log_lde)
    for idx, qr in zip(indices, proof.query_rounds):
        if qr.index != idx:
            raise FriError("query index mismatch with transcript")
        # Initial openings against every original commitment.  The
        # leaves/proofs lists must pair off exactly -- ``zip`` would
        # silently truncate the check loop (skipping Merkle checks for
        # the unpaired leaves) if one list were shorter.
        if len(qr.initial.leaves) != len(batch_caps):
            raise FriError("initial opening count mismatch")
        if len(qr.initial.proofs) != len(qr.initial.leaves):
            raise FriError("initial opening count mismatch")
        for b, (leaf, prf, cap) in enumerate(
            zip(qr.initial.leaves, qr.initial.proofs, batch_caps)
        ):
            if leaf.ndim != 1:
                raise FriError("malformed initial leaf")
            if leaf_widths is not None:
                allowed = leaf_widths[b]
                if isinstance(allowed, int):
                    allowed = (allowed,)
                if leaf.shape[0] not in allowed:
                    raise FriError("malformed initial leaf")
            if not verify_proof(leaf, idx, prf, cap):
                raise FriError("initial Merkle proof failed")
        x = gl.mul(gl.coset_shift(), gl.pow_mod(omega, idx))
        value = _combined_at_index(qr.initial.leaves, openings, alpha, x)

        # Walk the fold layers.
        cur = idx
        cur_size = n_lde
        shift = gl.coset_shift()
        cur_log = log_lde
        if len(qr.layers) != num_rounds:
            raise FriError("wrong number of layer openings")
        for layer, beta, cap in zip(qr.layers, betas, proof.commit_caps):
            half = cur_size // 2
            pair = cur % half
            # Validate the leaf shape before slicing: a truncated or
            # reshaped leaf would otherwise be compared against silently
            # empty ``[0:2]``/``[2:4]`` slices (or crash on a 0-d array),
            # and ``hash_or_noop`` zero-pads 3-element rows into the same
            # digest as a 4-element row ending in zero.
            if layer.pair_leaf.shape != (4,):
                raise FriError("malformed layer leaf")
            if not verify_proof(layer.pair_leaf, pair, layer.proof, cap):
                raise FriError("layer Merkle proof failed")
            lo = layer.pair_leaf[0:2]
            hi = layer.pair_leaf[2:4]
            slot = lo if cur < half else hi
            if not np.array_equal(slot, value.reshape(2)):
                raise FriError("fold consistency check failed")
            x_pair = gl.mul(shift, gl.pow_mod(gl.primitive_root_of_unity(cur_log), pair))
            inv2 = gl.inverse(2)
            even = fext.scalar_mul(fext.add(lo, hi), np.uint64(inv2))
            odd = fext.scalar_mul(
                fext.sub(lo, hi), np.uint64(gl.mul(inv2, gl.inverse(x_pair)))
            )
            value = fext.add(even, fext.mul(beta.reshape(2), odd))
            cur = pair
            cur_size = half
            shift = gl.mul(shift, shift)
            cur_log -= 1

        # Final polynomial check at the residual domain point.
        x_final = fext.from_base(
            np.uint64(gl.mul(shift, gl.pow_mod(gl.primitive_root_of_unity(cur_log), cur)))
        )
        expected = fext.eval_poly_ext(proof.final_poly, x_final)
        if not np.array_equal(expected.reshape(2), value.reshape(2)):
            raise FriError("final polynomial evaluation mismatch")
