"""Vectorised Goldilocks arithmetic on NumPy ``uint64`` arrays.

Every protocol-side bulk computation (NTT butterflies, Poseidon rounds,
FRI folds, quotient evaluation) runs through these kernels.  All inputs
and outputs are canonical (``< p``) ``uint64`` arrays; the functions
broadcast like ordinary NumPy ufuncs.

The multiplication uses 32-bit limb decomposition so that every partial
product fits in a ``uint64``, followed by the standard Goldilocks
reduction based on ``2**64 = 2**32 - 1 (mod p)`` and
``2**96 = -1 (mod p)``.  NumPy's unsigned wrap-around semantics stand in
for hardware carries, which is exactly the arithmetic a UniZK PE
implements in silicon.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from . import goldilocks as gl

#: Goldilocks prime as a ``uint64`` scalar.
P = np.uint64(gl.P)
#: ``2**64 mod p`` as a ``uint64`` scalar.
EPSILON = np.uint64(gl.EPSILON)
_MASK32 = np.uint64(0xFFFF_FFFF)
_U32 = np.uint64(32)
_ZERO = np.uint64(0)

GlArray = np.ndarray
ArrayLike = Union[np.ndarray, int]


def asarray(values) -> GlArray:
    """Coerce ``values`` (ints / lists / arrays) to a canonical GL array."""
    arr = np.asarray(values, dtype=np.uint64)
    if arr.size and bool((arr >= P).any()):
        arr = np.mod(arr, P)
    return arr


def zeros(shape) -> GlArray:
    """Return a zero-filled GL array."""
    return np.zeros(shape, dtype=np.uint64)


def ones(shape) -> GlArray:
    """Return a one-filled GL array."""
    return np.ones(shape, dtype=np.uint64)


def add(a: ArrayLike, b: ArrayLike) -> GlArray:
    """Elementwise ``a + b (mod p)`` for canonical inputs."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    with np.errstate(over="ignore"):
        s = a + b
        s = s + np.where(s < a, EPSILON, _ZERO)
        return s - np.where(s >= P, P, _ZERO)


def sub(a: ArrayLike, b: ArrayLike) -> GlArray:
    """Elementwise ``a - b (mod p)`` for canonical inputs."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    with np.errstate(over="ignore"):
        d = a - b
        return d - np.where(a < b, EPSILON, _ZERO)


def neg(a: ArrayLike) -> GlArray:
    """Elementwise ``-a (mod p)``."""
    a = np.asarray(a, dtype=np.uint64)
    return np.where(a == _ZERO, _ZERO, P - a)


def _mul_wide(a: GlArray, b: GlArray) -> Tuple[GlArray, GlArray]:
    """Return the 128-bit product of ``a * b`` as ``(hi, lo)`` uint64 pairs."""
    a_lo = a & _MASK32
    a_hi = a >> _U32
    b_lo = b & _MASK32
    b_hi = b >> _U32

    with np.errstate(over="ignore"):
        ll = a_lo * b_lo
        lh = a_lo * b_hi
        hl = a_hi * b_lo
        hh = a_hi * b_hi

        mid = lh + hl
        mid_carry = (mid < lh).astype(np.uint64)

        lo = ll + ((mid & _MASK32) << _U32)
        lo_carry = (lo < ll).astype(np.uint64)

        hi = hh + (mid >> _U32) + (mid_carry << _U32) + lo_carry
    return hi, lo


def reduce128(hi: GlArray, lo: GlArray) -> GlArray:
    """Reduce a 128-bit value ``hi * 2**64 + lo`` modulo ``p``.

    Uses ``2**96 = -1`` (subtract the top 32 bits of ``hi``) and
    ``2**64 = 2**32 - 1`` (fold the bottom 32 bits of ``hi``).
    """
    hi_hi = hi >> _U32
    hi_lo = hi & _MASK32

    with np.errstate(over="ignore"):
        t0 = lo - hi_hi
        t0 = t0 - np.where(lo < hi_hi, EPSILON, _ZERO)

        t1 = hi_lo * EPSILON

        res = t0 + t1
        res = res + np.where(res < t1, EPSILON, _ZERO)
        return res - np.where(res >= P, P, _ZERO)


def mul(a: ArrayLike, b: ArrayLike) -> GlArray:
    """Elementwise ``a * b (mod p)``."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    a, b = np.broadcast_arrays(a, b)
    hi, lo = _mul_wide(a, b)
    return reduce128(hi, lo)


def square(a: ArrayLike) -> GlArray:
    """Elementwise ``a**2 (mod p)``."""
    return mul(a, a)


def mul_add(a: ArrayLike, b: ArrayLike, c: ArrayLike) -> GlArray:
    """Elementwise ``a * b + c (mod p)`` (the PE's chained op)."""
    return add(mul(a, b), c)


def pow7(a: ArrayLike) -> GlArray:
    """Elementwise ``a**7``, the Poseidon S-box (4 multiplications)."""
    a = np.asarray(a, dtype=np.uint64)
    a2 = mul(a, a)
    a3 = mul(a2, a)
    a4 = mul(a2, a2)
    return mul(a4, a3)


def pow_scalar(a: ArrayLike, e: int) -> GlArray:
    """Elementwise ``a**e`` for a non-negative Python-int exponent."""
    if e < 0:
        raise ValueError("use inv() + pow_scalar for negative exponents")
    a = np.asarray(a, dtype=np.uint64)
    result = np.broadcast_to(np.uint64(1), a.shape).copy()
    base = a.copy()
    while e:
        if e & 1:
            result = mul(result, base)
        base = mul(base, base)
        e >>= 1
    return result


def inv(a: ArrayLike) -> GlArray:
    """Elementwise inverse via batch (Montgomery) inversion.

    One scalar modular exponentiation for the whole array.  Raises
    :class:`ZeroDivisionError` if any element is zero.
    """
    a = np.asarray(a, dtype=np.uint64)
    flat = a.reshape(-1)
    n = flat.size
    if n == 0:
        return a.copy()
    if bool((flat == _ZERO).any()):
        raise ZeroDivisionError("0 has no inverse in GF(p)")
    prefix = np.empty(n, dtype=np.uint64)
    acc = np.uint64(1)
    for i in range(n):
        prefix[i] = acc
        acc = mul(acc, flat[i])
    inv_acc = np.uint64(gl.inverse(int(acc)))
    out = np.empty(n, dtype=np.uint64)
    for i in range(n - 1, -1, -1):
        out[i] = mul(inv_acc, prefix[i])
        inv_acc = mul(inv_acc, flat[i])
    return out.reshape(a.shape)


def inv_fast(a: ArrayLike) -> GlArray:
    """Elementwise inverse via vectorised square-and-multiply.

    Computes ``a**(p-2)`` with ~64 vectorised squarings; much faster than
    :func:`inv` for large arrays despite the higher op count, because it
    avoids Python-level per-element loops.
    """
    a = np.asarray(a, dtype=np.uint64)
    if bool((a == _ZERO).any()):
        raise ZeroDivisionError("0 has no inverse in GF(p)")
    return pow_scalar(a, gl.P - 2)


def powers(base: int, count: int) -> GlArray:
    """Return ``[1, base, base**2, ..., base**(count-1)]``.

    Built by doubling (log-steps of vectorised multiplies) rather than a
    Python loop, mirroring the on-chip twiddle generator's strategy.
    """
    if count <= 0:
        return zeros(0)
    out = np.empty(count, dtype=np.uint64)
    out[0] = np.uint64(1)
    filled = 1
    step = np.uint64(base % gl.P)
    while filled < count:
        take = min(filled, count - filled)
        out[filled : filled + take] = mul(out[:take], step)
        filled += take
        step = np.uint64(gl.mul(int(step), int(step)))
    return out


def geometric(base: int, start: int, count: int) -> GlArray:
    """Return ``start * base**i`` for ``i in range(count)``."""
    return mul(powers(base, count), np.uint64(start % gl.P))


def dot(a: GlArray, b: GlArray) -> np.uint64:
    """Field dot-product of two 1-D arrays."""
    if a.shape != b.shape:
        raise ValueError("dot operands must have identical shapes")
    prods = mul(a, b)
    return sum_array(prods)


def sum_along_axis(a: GlArray, axis: int = -1) -> GlArray:
    """Field-sum along one axis via pairwise tree reduction.

    Only ``O(log n)`` vectorised :func:`add` calls, so summing a
    ``(batch, 12, 12)`` tensor costs ~4 NumPy kernels -- this keeps the
    batched Poseidon MDS multiply fast.
    """
    a = np.asarray(a, dtype=np.uint64)
    a = np.moveaxis(a, axis, -1)
    while a.shape[-1] > 1:
        half = a.shape[-1] // 2
        merged = add(a[..., :half], a[..., half : 2 * half])
        if a.shape[-1] % 2:
            merged = np.concatenate([merged, a[..., -1:]], axis=-1)
        a = merged
    return a[..., 0]


def sum_array(a: GlArray) -> np.uint64:
    """Sum all elements of ``a`` in the field (tree reduction)."""
    flat = np.ascontiguousarray(a).reshape(-1)
    while flat.size > 1:
        half = flat.size // 2
        low = flat[:half]
        high = flat[half : 2 * half]
        merged = add(low, high)
        if flat.size % 2:
            merged = np.concatenate([merged, flat[-1:]])
        flat = merged
    return np.uint64(flat[0]) if flat.size else np.uint64(0)


def matvec(matrix: GlArray, vec: GlArray) -> GlArray:
    """Field matrix-vector product; ``matrix`` is (m, n), ``vec`` is (n,)
    or a batch (..., n) -- the contraction is over the last axis."""
    m, n = matrix.shape
    if vec.shape[-1] != n:
        raise ValueError("matvec dimension mismatch")
    out = zeros(vec.shape[:-1] + (m,))
    for j in range(m):
        acc = zeros(vec.shape[:-1])
        for k in range(n):
            acc = add(acc, mul(vec[..., k], matrix[j, k]))
        out[..., j] = acc
    return out


def random(shape, rng) -> GlArray:
    """Uniform random canonical field elements (``rng``: numpy Generator)."""
    raw = rng.integers(0, gl.P, size=shape, dtype=np.uint64)
    return raw


def to_ints(a: GlArray):
    """Convert a GL array to a nested list of Python ints (for hashing /
    serialisation / reference checks)."""
    return np.asarray(a, dtype=np.uint64).tolist()
